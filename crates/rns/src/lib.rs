//! Residue number system (RNS/CRT) support for multi-limb NTT
//! workloads.
//!
//! Production homomorphic-encryption schemes work over ciphertext
//! moduli of hundreds of bits. No word-sized engine can run those
//! directly; instead the modulus is a product `Q = Π q_i` of distinct
//! NTT-friendly primes and every polynomial is carried as its residues
//! modulo each `q_i` — `L` independent word-sized problems instead of
//! one big one. This crate provides the math layer for that split:
//!
//! - [`BigUint`] — a minimal `Vec<u64>`-limb big integer (the
//!   workspace builds offline, so no external bignum crate).
//! - [`RnsBasis`] — a validated prime basis for a ring degree, with
//!   precomputed CRT constants (`q̂_i`, `q̂_i⁻¹`) and per-limb
//!   [`NttParams`](bpntt_ntt::NttParams); decompose/reconstruct for
//!   scalars and polynomials.
//! - [`reference`] — a direct negacyclic `a·b mod (Xⁿ+1, Q)` over
//!   [`BigUint`] coefficients, sharing no code with the NTT engines,
//!   used as the end-to-end correctness oracle.
//!
//! The execution side — fanning limbs across the sharded engine wave
//! and submitting RNS groups to the service — lives in
//! `bpntt_core::rns`, which builds on this crate.
//!
//! ```
//! use bpntt_rns::{BigUint, RnsBasis, reference};
//!
//! // Three 14-bit primes ≡ 1 mod 2·256: a ~41-bit composite modulus.
//! let basis = RnsBasis::new(256, &[12289, 13313, 15361])?;
//! let mut a = vec![BigUint::zero(); 256];
//! let mut b = vec![BigUint::zero(); 256];
//! a[0] = BigUint::from_u64(123_456_789);
//! b[1] = BigUint::from_u64(987_654_321);
//!
//! // Decompose, then reconstruct: a lossless round trip below Q.
//! let limbs = basis.decompose_poly(&a)?;
//! assert_eq!(basis.reconstruct_poly(&limbs)?, a);
//!
//! // The reference product is the oracle the NTT paths must match.
//! let c = reference::negacyclic_polymul_basis(&a, &b, &basis)?;
//! assert_eq!(
//!     c[1],
//!     BigUint::from_u64(123_456_789).mul_mod(&BigUint::from_u64(987_654_321), basis.modulus())
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod basis;
pub mod bigint;
pub mod reference;

pub use basis::{RnsBasis, RnsError};
pub use bigint::BigUint;
