//! A minimal unsigned big integer on `Vec<u64>` limbs.
//!
//! This is deliberately a *schoolbook* implementation: the workspace
//! builds offline (no external bignum crate), and the RNS layer only
//! needs correctness at modest sizes — ciphertext moduli of a few
//! hundred bits and `O(n²)` reference polynomial products over them.
//! Multiplication is quadratic, division is binary shift-subtract;
//! both are exact, allocation-light, and easy to audit, which is the
//! point of a verification reference.
//!
//! Representation: little-endian 64-bit limbs with no trailing zero
//! limb; zero is the empty limb vector. The invariant is maintained by
//! every constructor and operation ([`BigUint::normalize`]).

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer (little-endian `u64` limbs).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BigUint {
    /// Little-endian limbs, no trailing zeros (`vec![]` is zero).
    limbs: Vec<u64>,
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        // Normalized limbs: longer means strictly larger; equal length
        // compares from the most-significant limb down.
        self.limbs
            .len()
            .cmp(&other.limbs.len())
            .then_with(|| self.limbs.iter().rev().cmp(other.limbs.iter().rev()))
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl BigUint {
    /// Zero.
    #[must_use]
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    #[must_use]
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// A single-word value.
    #[must_use]
    pub fn from_u64(x: u64) -> Self {
        let mut v = BigUint { limbs: vec![x] };
        v.normalize();
        v
    }

    /// Builds from little-endian limbs (trailing zeros are trimmed).
    #[must_use]
    pub fn from_limbs(limbs: Vec<u64>) -> Self {
        let mut v = BigUint { limbs };
        v.normalize();
        v
    }

    /// The little-endian limbs (no trailing zeros; empty for zero).
    #[must_use]
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Whether the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits (zero has zero bits).
    #[must_use]
    pub fn bits(&self) -> u32 {
        match self.limbs.last() {
            None => 0,
            Some(top) => (self.limbs.len() as u32 - 1) * 64 + (64 - top.leading_zeros()),
        }
    }

    /// Bit `i` (little-endian), `false` past the top.
    #[must_use]
    pub fn bit(&self, i: u32) -> bool {
        let (limb, off) = ((i / 64) as usize, i % 64);
        self.limbs.get(limb).is_some_and(|w| (w >> off) & 1 == 1)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    #[must_use]
    pub fn add(&self, other: &BigUint) -> BigUint {
        let n = self.limbs.len().max(other.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0u64;
        for i in 0..n {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = u64::from(c1) + u64::from(c2);
        }
        out.push(carry);
        BigUint::from_limbs(out)
    }

    /// `self - other`; `None` when `other > self` (values are unsigned).
    #[must_use]
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0, "self >= other was checked");
        Some(BigUint::from_limbs(out))
    }

    /// Schoolbook product `self · other` (quadratic; exact).
    #[must_use]
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = u128::from(a) * u128::from(b) + u128::from(out[i + j]) + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let t = u128::from(out[k]) + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// `self · m` for a single word.
    #[must_use]
    pub fn mul_u64(&self, m: u64) -> BigUint {
        self.mul(&BigUint::from_u64(m))
    }

    /// `self << bits`.
    #[must_use]
    pub fn shl(&self, bits: u32) -> BigUint {
        if self.is_zero() || bits == 0 {
            let mut v = self.clone();
            if bits == 0 {
                return v;
            }
            v.limbs.clear();
            return v;
        }
        let (words, rem) = ((bits / 64) as usize, bits % 64);
        let mut out = vec![0u64; words];
        if rem == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &w in &self.limbs {
                out.push((w << rem) | carry);
                carry = w >> (64 - rem);
            }
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// Quotient and remainder of `self / divisor` via binary
    /// shift-subtract long division — `O(bits · limbs)`, plenty for the
    /// few-hundred-bit values the RNS layer handles.
    ///
    /// # Panics
    ///
    /// Panics on a zero divisor.
    #[must_use]
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero BigUint");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        let shift = self.bits() - divisor.bits();
        let mut quotient = vec![0u64; (shift / 64 + 1) as usize];
        let mut rem = self.clone();
        let mut step = divisor.shl(shift);
        for k in (0..=shift).rev() {
            if let Some(next) = rem.checked_sub(&step) {
                rem = next;
                quotient[(k / 64) as usize] |= 1u64 << (k % 64);
            }
            step = step.shr1();
        }
        (BigUint::from_limbs(quotient), rem)
    }

    /// `self mod modulus`.
    ///
    /// # Panics
    ///
    /// Panics on a zero modulus.
    #[must_use]
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// `self mod m` for a single word (the per-limb residue extraction
    /// of RNS decomposition).
    ///
    /// # Panics
    ///
    /// Panics when `m` is zero.
    #[must_use]
    pub fn rem_u64(&self, m: u64) -> u64 {
        assert!(m != 0, "division by zero word");
        let m128 = u128::from(m);
        let mut acc = 0u128;
        for &w in self.limbs.iter().rev() {
            acc = ((acc << 64) | u128::from(w)) % m128;
        }
        acc as u64
    }

    /// `self >> 1`.
    #[must_use]
    fn shr1(&self) -> BigUint {
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut carry = 0u64;
        for &w in self.limbs.iter().rev() {
            out.push((w >> 1) | (carry << 63));
            carry = w & 1;
        }
        out.reverse();
        BigUint::from_limbs(out)
    }

    /// Modular addition `self + other mod m` (operands already reduced).
    #[must_use]
    pub fn add_mod(&self, other: &BigUint, m: &BigUint) -> BigUint {
        debug_assert!(self < m && other < m, "operands must be reduced");
        let s = self.add(other);
        match s.checked_sub(m) {
            Some(r) => r,
            None => s,
        }
    }

    /// Modular subtraction `self - other mod m` (operands already
    /// reduced).
    #[must_use]
    pub fn sub_mod(&self, other: &BigUint, m: &BigUint) -> BigUint {
        debug_assert!(self < m && other < m, "operands must be reduced");
        match self.checked_sub(other) {
            Some(r) => r,
            None => self
                .add(m)
                .checked_sub(other)
                .expect("self + m >= other when other < m"),
        }
    }

    /// Modular product `self · other mod m`.
    #[must_use]
    pub fn mul_mod(&self, other: &BigUint, m: &BigUint) -> BigUint {
        self.mul(other).rem(m)
    }

    /// Total order (also available through `Ord`; kept for call sites
    /// that read better with a method).
    #[must_use]
    pub fn cmp_big(&self, other: &BigUint) -> Ordering {
        self.cmp(other)
    }
}

impl From<u64> for BigUint {
    fn from(x: u64) -> Self {
        BigUint::from_u64(x)
    }
}

impl fmt::Display for BigUint {
    /// Lowercase hex with a `0x` prefix — exact, round-trippable by
    /// eye, and cheap (decimal would need repeated division for no
    /// diagnostic benefit).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.limbs.last() {
            None => write!(f, "0x0"),
            Some(top) => {
                write!(f, "{top:#x}")?;
                for w in self.limbs.iter().rev().skip(1) {
                    write!(f, "{w:016x}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(limbs: &[u64]) -> BigUint {
        BigUint::from_limbs(limbs.to_vec())
    }

    #[test]
    fn construction_normalizes() {
        assert!(BigUint::zero().is_zero());
        assert_eq!(big(&[0, 0, 0]), BigUint::zero());
        assert_eq!(big(&[5, 0]), BigUint::from_u64(5));
        assert_eq!(BigUint::from_u64(0), BigUint::zero());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::one().bits(), 1);
        assert_eq!(big(&[0, 1]).bits(), 65);
    }

    #[test]
    fn add_sub_round_trip() {
        let a = big(&[u64::MAX, u64::MAX, 7]);
        let b = big(&[1, u64::MAX]);
        let s = a.add(&b);
        assert_eq!(s.checked_sub(&b).unwrap(), a);
        assert_eq!(s.checked_sub(&a).unwrap(), b);
        assert_eq!(b.checked_sub(&a), None);
        assert_eq!(a.checked_sub(&a).unwrap(), BigUint::zero());
    }

    #[test]
    fn mul_matches_u128() {
        for (a, b) in [
            (0u64, 17u64),
            (1, u64::MAX),
            (u64::MAX, u64::MAX),
            (0xdead_beef, 0x1234_5678_9abc_def0),
        ] {
            let p = u128::from(a) * u128::from(b);
            let expect = big(&[p as u64, (p >> 64) as u64]);
            assert_eq!(BigUint::from_u64(a).mul(&BigUint::from_u64(b)), expect);
        }
    }

    #[test]
    fn mul_is_commutative_and_distributive() {
        let a = big(&[0x1111_2222_3333_4444, 0x5555, 9]);
        let b = big(&[u64::MAX, 3]);
        let c = big(&[42, 0, 0, 1]);
        assert_eq!(a.mul(&b), b.mul(&a));
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn division_reconstructs() {
        let a = big(&[0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210, 0xff]);
        for d in [
            BigUint::one(),
            BigUint::from_u64(3),
            big(&[u64::MAX, 1]),
            a.clone(),
            a.add(&BigUint::one()),
        ] {
            let (q, r) = a.div_rem(&d);
            assert!(r < d);
            assert_eq!(q.mul(&d).add(&r), a, "a = q*d + r for d={d}");
        }
        assert_eq!(a.div_rem(&a.add(&BigUint::one())).0, BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = BigUint::one().div_rem(&BigUint::zero());
    }

    #[test]
    fn rem_u64_matches_div_rem() {
        let a = big(&[0xaaaa_bbbb_cccc_dddd, 0x1234, 0x5678_0000_0000]);
        for m in [1u64, 2, 97, 3329, 8_380_417, u64::MAX] {
            assert_eq!(
                a.rem_u64(m),
                a.rem(&BigUint::from_u64(m))
                    .limbs()
                    .first()
                    .copied()
                    .unwrap_or(0)
            );
        }
    }

    #[test]
    fn shifts_are_inverse() {
        let a = big(&[0x8000_0000_0000_0001, 0x7fff_ffff_ffff_ffff]);
        for bits in [0u32, 1, 63, 64, 65, 130] {
            let mut v = a.shl(bits);
            for _ in 0..bits {
                v = v.shr1();
            }
            assert_eq!(v, a, "shl {bits} then shr1 x{bits}");
        }
    }

    #[test]
    fn modular_ops_stay_reduced() {
        let m = big(&[0x1_0000_0001, 7]);
        let a = big(&[u64::MAX, 6]).rem(&m);
        let b = big(&[12345, 3]).rem(&m);
        let s = a.add_mod(&b, &m);
        assert!(s < m);
        assert_eq!(s, a.add(&b).rem(&m));
        let d = a.sub_mod(&b, &m);
        assert!(d < m);
        assert_eq!(d.add(&b).rem(&m), a);
        let p = a.mul_mod(&b, &m);
        assert_eq!(p, a.mul(&b).rem(&m));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(BigUint::zero().to_string(), "0x0");
        assert_eq!(BigUint::from_u64(0xbeef).to_string(), "0xbeef");
        assert_eq!(big(&[0xdead, 0x1]).to_string(), "0x1000000000000dead");
    }

    #[test]
    fn bit_indexing() {
        let a = big(&[0b101, 1]);
        assert!(a.bit(0) && !a.bit(1) && a.bit(2) && !a.bit(3));
        assert!(a.bit(64) && !a.bit(65) && !a.bit(1000));
    }
}
