//! RNS bases: validated sets of NTT-friendly primes with precomputed
//! CRT constants.
//!
//! An [`RnsBasis`] fixes a ring degree `n` and an ordered list of
//! distinct primes `q_0 … q_{L-1}`, each NTT-friendly for `n`
//! (`q_i ≡ 1 mod 2n`, so the negacyclic transform exists per limb).
//! The composite modulus is `Q = Π q_i`; distinct primes are
//! automatically pairwise coprime, so the Chinese Remainder Theorem
//! gives a bijection
//!
//! ```text
//! Z_Q  ≅  Z_{q_0} × … × Z_{q_{L-1}}
//! x   ↦  (x mod q_0, …, x mod q_{L-1})
//! ```
//!
//! with the inverse map precomputed here as the classic Garner-free
//! explicit CRT: with `q̂_i = Q / q_i` and
//! `q̂_i⁻¹ = (q̂_i mod q_i)⁻¹ mod q_i`,
//!
//! ```text
//! x = Σ_i ( (x_i · q̂_i⁻¹) mod q_i ) · q̂_i   (mod Q)
//! ```
//!
//! Each summand is `< q_i · q̂_i = Q`, so the raw sum is `< L·Q` and
//! reconstruction needs at most `L-1` conditional subtractions of `Q`
//! — no big-integer division in the hot path.

use std::error::Error;
use std::fmt;

use bpntt_modmath::zq::{inv_mod, mul_mod};
use bpntt_modmath::ModMathError;
use bpntt_ntt::{NttError, NttParams};

use crate::bigint::BigUint;

/// Errors from basis construction and residue (de)composition.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RnsError {
    /// A basis needs at least one prime.
    EmptyBasis,
    /// The same prime appears twice; limbs must be pairwise coprime.
    DuplicatePrime {
        /// The repeated prime.
        q: u64,
    },
    /// A limb prime failed NTT-friendliness validation for the degree.
    BadLimb {
        /// The offending limb prime.
        q: u64,
        /// The underlying parameter-validation failure.
        source: NttError,
    },
    /// No basis of the requested width could be assembled.
    InsufficientBits {
        /// The requested composite-modulus bit width.
        requested: u32,
        /// The bit width the assembled basis actually reached.
        achieved: u32,
    },
    /// Prime search or constant precomputation failed.
    PrimeSearch {
        /// The underlying modular-arithmetic failure.
        source: ModMathError,
    },
    /// A polynomial had the wrong length for the basis degree.
    WrongLength {
        /// The basis degree `n`.
        expected: usize,
        /// The length actually supplied.
        actual: usize,
    },
    /// A coefficient was not reduced modulo the composite modulus.
    Unreduced {
        /// Index of the offending coefficient.
        index: usize,
    },
    /// A residue vector's limb count does not match the basis.
    LimbCountMismatch {
        /// The basis limb count `L`.
        expected: usize,
        /// The limb count actually supplied.
        actual: usize,
    },
    /// A limb residue was not reduced modulo its prime.
    UnreducedLimb {
        /// Index of the limb.
        limb: usize,
        /// Index of the offending coefficient within the limb.
        index: usize,
        /// The unreduced residue value.
        value: u64,
        /// The limb prime it should be below.
        q: u64,
    },
}

impl fmt::Display for RnsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RnsError::EmptyBasis => write!(f, "an RNS basis needs at least one prime"),
            RnsError::DuplicatePrime { q } => {
                write!(f, "prime {q} appears more than once in the basis")
            }
            RnsError::BadLimb { q, source } => {
                write!(f, "limb prime {q} is not usable: {source}")
            }
            RnsError::InsufficientBits {
                requested,
                achieved,
            } => write!(
                f,
                "could not reach {requested} modulus bits (achieved {achieved})"
            ),
            RnsError::PrimeSearch { source } => {
                write!(f, "prime search for basis failed: {source}")
            }
            RnsError::WrongLength { expected, actual } => {
                write!(
                    f,
                    "polynomial has {actual} coefficients, basis degree is {expected}"
                )
            }
            RnsError::Unreduced { index } => {
                write!(
                    f,
                    "coefficient {index} is not reduced modulo the composite modulus"
                )
            }
            RnsError::LimbCountMismatch { expected, actual } => {
                write!(f, "residue set has {actual} limbs, basis has {expected}")
            }
            RnsError::UnreducedLimb {
                limb,
                index,
                value,
                q,
            } => write!(
                f,
                "limb {limb} coefficient {index} = {value} is not reduced mod {q}"
            ),
        }
    }
}

impl Error for RnsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RnsError::BadLimb { source, .. } => Some(source),
            RnsError::PrimeSearch { source } => Some(source),
            _ => None,
        }
    }
}

/// A validated RNS basis: degree, limb primes, per-limb NTT parameters,
/// and precomputed CRT reconstruction constants.
#[derive(Debug, Clone)]
pub struct RnsBasis {
    n: usize,
    primes: Vec<u64>,
    params: Vec<NttParams>,
    modulus: BigUint,
    modulus_bits: u32,
    q_hat: Vec<BigUint>,
    q_hat_inv: Vec<u64>,
}

impl RnsBasis {
    /// Builds a basis from explicit primes, validating each one for the
    /// degree and precomputing all CRT constants.
    pub fn new(n: usize, primes: &[u64]) -> Result<Self, RnsError> {
        if primes.is_empty() {
            return Err(RnsError::EmptyBasis);
        }
        let mut params = Vec::with_capacity(primes.len());
        for (i, &q) in primes.iter().enumerate() {
            if primes[..i].contains(&q) {
                return Err(RnsError::DuplicatePrime { q });
            }
            // NttParams::new checks primality and q ≡ 1 mod 2n; distinct
            // primes are then pairwise coprime by construction.
            let p = NttParams::new(n, q).map_err(|source| RnsError::BadLimb { q, source })?;
            params.push(p);
        }
        let mut modulus = BigUint::one();
        for &q in primes {
            modulus = modulus.mul_u64(q);
        }
        let mut q_hat = Vec::with_capacity(primes.len());
        let mut q_hat_inv = Vec::with_capacity(primes.len());
        for &q in primes {
            let (hat, rem) = modulus.div_rem(&BigUint::from_u64(q));
            debug_assert!(rem.is_zero(), "q divides Q");
            let hat_mod_q = hat.rem_u64(q);
            let inv = inv_mod(hat_mod_q, q).map_err(|source| RnsError::PrimeSearch { source })?;
            q_hat.push(hat);
            q_hat_inv.push(inv);
        }
        Ok(RnsBasis {
            n,
            primes: primes.to_vec(),
            params,
            modulus_bits: modulus.bits(),
            modulus,
            q_hat,
            q_hat_inv,
        })
    }

    /// Assembles a basis whose composite modulus has at least
    /// `min_bits` bits, using consecutive `limb_bits`-bit NTT-friendly
    /// primes from [`bpntt_modmath::find_ntt_primes`].
    pub fn with_min_bits(n: usize, min_bits: u32, limb_bits: u32) -> Result<Self, RnsError> {
        // Each limb contributes at least limb_bits - 1 bits to Q.
        let floor_per_limb = u64::from(limb_bits.saturating_sub(1)).max(1);
        let count = u64::from(min_bits).div_ceil(floor_per_limb).max(1) as usize;
        let primes = bpntt_modmath::primes::find_ntt_primes(limb_bits, n as u64, count)
            .map_err(|source| RnsError::PrimeSearch { source })?;
        let basis = RnsBasis::new(n, &primes)?;
        if basis.modulus_bits < min_bits {
            return Err(RnsError::InsufficientBits {
                requested: min_bits,
                achieved: basis.modulus_bits,
            });
        }
        Ok(basis)
    }

    /// Ring degree `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of limbs `L`.
    #[must_use]
    pub fn limbs(&self) -> usize {
        self.primes.len()
    }

    /// The limb primes, in basis order.
    #[must_use]
    pub fn primes(&self) -> &[u64] {
        &self.primes
    }

    /// Per-limb NTT parameters, aligned with [`primes`](Self::primes).
    #[must_use]
    pub fn params(&self) -> &[NttParams] {
        &self.params
    }

    /// The composite modulus `Q = Π q_i`.
    #[must_use]
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// Bit width of the composite modulus.
    #[must_use]
    pub fn modulus_bits(&self) -> u32 {
        self.modulus_bits
    }

    /// Decomposes one value `x < Q` into its residues `(x mod q_i)_i`.
    #[must_use]
    pub fn decompose(&self, x: &BigUint) -> Vec<u64> {
        self.primes.iter().map(|&q| x.rem_u64(q)).collect()
    }

    /// Decomposes a degree-`n` polynomial with coefficients `< Q` into
    /// limb-major residue polynomials: result `[i][k]` is coefficient
    /// `k` modulo `q_i`.
    pub fn decompose_poly(&self, poly: &[BigUint]) -> Result<Vec<Vec<u64>>, RnsError> {
        if poly.len() != self.n {
            return Err(RnsError::WrongLength {
                expected: self.n,
                actual: poly.len(),
            });
        }
        for (index, c) in poly.iter().enumerate() {
            if c >= &self.modulus {
                return Err(RnsError::Unreduced { index });
            }
        }
        let mut out = vec![Vec::with_capacity(self.n); self.primes.len()];
        for c in poly {
            for (limb, &q) in self.primes.iter().enumerate() {
                out[limb].push(c.rem_u64(q));
            }
        }
        Ok(out)
    }

    /// Reconstructs `x < Q` from one residue per limb via explicit CRT.
    pub fn reconstruct(&self, residues: &[u64]) -> Result<BigUint, RnsError> {
        if residues.len() != self.primes.len() {
            return Err(RnsError::LimbCountMismatch {
                expected: self.primes.len(),
                actual: residues.len(),
            });
        }
        for (limb, (&x, &q)) in residues.iter().zip(&self.primes).enumerate() {
            if x >= q {
                return Err(RnsError::UnreducedLimb {
                    limb,
                    index: 0,
                    value: x,
                    q,
                });
            }
        }
        Ok(self.reconstruct_unchecked(residues))
    }

    /// CRT sum without residue validation (callers guarantee `x_i < q_i`).
    fn reconstruct_unchecked(&self, residues: &[u64]) -> BigUint {
        let mut acc = BigUint::zero();
        for (limb, &x) in residues.iter().enumerate() {
            let t = mul_mod(x, self.q_hat_inv[limb], self.primes[limb]);
            acc = acc.add(&self.q_hat[limb].mul_u64(t));
        }
        // acc < L·Q: reduce with at most L-1 conditional subtractions.
        while let Some(next) = acc.checked_sub(&self.modulus) {
            acc = next;
        }
        acc
    }

    /// Reconstructs a polynomial from limb-major residue polynomials
    /// (the inverse of [`decompose_poly`](Self::decompose_poly)).
    pub fn reconstruct_poly(&self, limbs: &[Vec<u64>]) -> Result<Vec<BigUint>, RnsError> {
        if limbs.len() != self.primes.len() {
            return Err(RnsError::LimbCountMismatch {
                expected: self.primes.len(),
                actual: limbs.len(),
            });
        }
        for (limb, residues) in limbs.iter().enumerate() {
            if residues.len() != self.n {
                return Err(RnsError::WrongLength {
                    expected: self.n,
                    actual: residues.len(),
                });
            }
            let q = self.primes[limb];
            for (index, &value) in residues.iter().enumerate() {
                if value >= q {
                    return Err(RnsError::UnreducedLimb {
                        limb,
                        index,
                        value,
                        q,
                    });
                }
            }
        }
        let mut point = vec![0u64; self.primes.len()];
        let mut out = Vec::with_capacity(self.n);
        for k in 0..self.n {
            for (limb, residues) in limbs.iter().enumerate() {
                point[limb] = residues[k];
            }
            out.push(self.reconstruct_unchecked(&point));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 14-bit NTT-friendly primes for n up to 512.
    const P14: [u64; 3] = [12289, 13313, 15361];

    #[test]
    fn basis_constants_are_consistent() {
        let basis = RnsBasis::new(256, &P14).unwrap();
        assert_eq!(basis.limbs(), 3);
        let q_prod = 12289u128 * 13313 * 15361;
        assert_eq!(
            basis.modulus().rem_u64(u64::MAX),
            (q_prod % u128::from(u64::MAX)) as u64
        );
        assert_eq!(basis.modulus_bits(), 128 - q_prod.leading_zeros());
        for (i, &q) in basis.primes().iter().enumerate() {
            // q̂_i · q̂_i⁻¹ ≡ 1 mod q_i
            let hat_mod_q = basis.q_hat[i].rem_u64(q);
            assert_eq!(mul_mod(hat_mod_q, basis.q_hat_inv[i], q), 1);
            // q̂_i · q_i = Q
            assert_eq!(basis.q_hat[i].mul_u64(q), *basis.modulus());
            assert_eq!(basis.params()[i].modulus(), q);
            assert_eq!(basis.params()[i].n(), 256);
        }
    }

    #[test]
    fn decompose_reconstruct_round_trip() {
        let basis = RnsBasis::new(64, &P14).unwrap();
        for x in [
            BigUint::zero(),
            BigUint::one(),
            BigUint::from_u64(3329),
            basis.modulus().checked_sub(&BigUint::one()).unwrap(),
            BigUint::from_u64(u64::MAX).rem(basis.modulus()),
        ] {
            let residues = basis.decompose(&x);
            assert_eq!(
                basis.reconstruct(&residues).unwrap(),
                x,
                "round trip of {x}"
            );
        }
    }

    #[test]
    fn poly_round_trip_limb_major() {
        let basis = RnsBasis::new(4, &[97, 113]).unwrap();
        let poly: Vec<BigUint> = [0u64, 1, 96 * 113, 97 * 113 - 1]
            .iter()
            .map(|&c| BigUint::from_u64(c))
            .collect();
        let limbs = basis.decompose_poly(&poly).unwrap();
        assert_eq!(limbs.len(), 2);
        assert_eq!(limbs[0], vec![0, 1, (96 * 113) % 97, (97 * 113 - 1) % 97]);
        assert_eq!(basis.reconstruct_poly(&limbs).unwrap(), poly);
    }

    #[test]
    fn with_min_bits_covers_request() {
        let basis = RnsBasis::with_min_bits(256, 90, 31).unwrap();
        assert!(basis.modulus_bits() >= 90);
        assert_eq!(basis.limbs(), 3);
        for &q in basis.primes() {
            assert_eq!(q % 512, 1);
        }
    }

    #[test]
    fn rejects_bad_bases() {
        assert_eq!(RnsBasis::new(64, &[]).unwrap_err(), RnsError::EmptyBasis);
        assert_eq!(
            RnsBasis::new(64, &[12289, 12289]).unwrap_err(),
            RnsError::DuplicatePrime { q: 12289 }
        );
        // 3329 ≡ 1 mod 256 but not mod 512: fine at n=128, bad at n=256.
        assert!(RnsBasis::new(128, &[3329, 12289]).is_ok());
        assert!(matches!(
            RnsBasis::new(256, &[3329, 12289]).unwrap_err(),
            RnsError::BadLimb { q: 3329, .. }
        ));
        // Composite limb.
        assert!(matches!(
            RnsBasis::new(64, &[12289, 12289 * 3]).unwrap_err(),
            RnsError::BadLimb { .. }
        ));
    }

    #[test]
    fn rejects_bad_inputs() {
        let basis = RnsBasis::new(4, &[97, 113]).unwrap();
        assert_eq!(
            basis.decompose_poly(&vec![BigUint::zero(); 3]).unwrap_err(),
            RnsError::WrongLength {
                expected: 4,
                actual: 3
            }
        );
        let too_big = basis.modulus().clone();
        assert_eq!(
            basis
                .decompose_poly(&[BigUint::zero(), too_big, BigUint::zero(), BigUint::zero()])
                .unwrap_err(),
            RnsError::Unreduced { index: 1 }
        );
        assert_eq!(
            basis.reconstruct(&[0]).unwrap_err(),
            RnsError::LimbCountMismatch {
                expected: 2,
                actual: 1
            }
        );
        assert_eq!(
            basis.reconstruct(&[97, 0]).unwrap_err(),
            RnsError::UnreducedLimb {
                limb: 0,
                index: 0,
                value: 97,
                q: 97
            }
        );
        assert_eq!(
            basis
                .reconstruct_poly(&[vec![0; 4], vec![0, 113, 0, 0]])
                .unwrap_err(),
            RnsError::UnreducedLimb {
                limb: 1,
                index: 1,
                value: 113,
                q: 113
            }
        );
    }

    #[test]
    fn error_display_and_source() {
        let e = RnsBasis::new(256, &[3329, 12289]).unwrap_err();
        assert!(e.to_string().contains("3329"));
        assert!(e.source().is_some());
        let e = RnsError::InsufficientBits {
            requested: 500,
            achieved: 90,
        };
        assert!(e.to_string().contains("500"));
        assert!(e.source().is_none());
    }
}
