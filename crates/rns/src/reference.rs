//! Software reference for the big-modulus negacyclic product.
//!
//! Computes `a · b mod (X^n + 1, Q)` directly over [`BigUint`]
//! coefficients — no NTT, no RNS, just the defining convolution:
//!
//! ```text
//! c_k = Σ_{i+j=k} a_i·b_j  −  Σ_{i+j=k+n} a_i·b_j   (mod Q)
//! ```
//!
//! This is the oracle every RNS path is checked against: it shares no
//! code with the limb decomposition, the NTT engines, or the CRT
//! reconstruction, so agreement between the two is strong evidence of
//! end-to-end correctness.

use crate::basis::{RnsBasis, RnsError};
use crate::bigint::BigUint;

/// Negacyclic product `a · b mod (X^n + 1, Q)` with `Q` an arbitrary
/// big modulus. Coefficients must be reduced (`< Q`) and both inputs
/// must have exactly `n` coefficients.
pub fn negacyclic_polymul_big(
    a: &[BigUint],
    b: &[BigUint],
    n: usize,
    modulus: &BigUint,
) -> Result<Vec<BigUint>, RnsError> {
    for poly in [a, b] {
        if poly.len() != n {
            return Err(RnsError::WrongLength {
                expected: n,
                actual: poly.len(),
            });
        }
        for (index, c) in poly.iter().enumerate() {
            if c >= modulus {
                return Err(RnsError::Unreduced { index });
            }
        }
    }
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        // Positive (wrapped below n) and negated (wrapped past n) parts
        // accumulate unreduced; one reduction per coefficient at the end.
        let mut pos = BigUint::zero();
        let mut neg = BigUint::zero();
        for i in 0..n {
            let prod = a[i].mul(&b[(k + n - i) % n]);
            if i <= k {
                pos = pos.add(&prod);
            } else {
                neg = neg.add(&prod);
            }
        }
        out.push(pos.rem(modulus).sub_mod(&neg.rem(modulus), modulus));
    }
    Ok(out)
}

/// Convenience wrapper: the reference product over a basis's composite
/// modulus `Q`.
pub fn negacyclic_polymul_basis(
    a: &[BigUint],
    b: &[BigUint],
    basis: &RnsBasis,
) -> Result<Vec<BigUint>, RnsError> {
    negacyclic_polymul_big(a, b, basis.n(), basis.modulus())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpntt_modmath::zq::{mul_mod, sub_mod};

    fn from_u64s(coeffs: &[u64]) -> Vec<BigUint> {
        coeffs.iter().map(|&c| BigUint::from_u64(c)).collect()
    }

    /// Same convolution over u64 scalars, as an independent small-case
    /// cross-check of the bigint arithmetic.
    fn scalar_negacyclic(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
        let n = a.len();
        (0..n)
            .map(|k| {
                let mut acc = 0u64;
                for i in 0..n {
                    let prod = mul_mod(a[i], b[(k + n - i) % n], q);
                    acc = if i <= k {
                        (acc + prod) % q
                    } else {
                        sub_mod(acc, prod, q)
                    };
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_scalar_reference_single_word() {
        let q = 3329u64;
        let a = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let b = [3328u64, 0, 1, 17, 2500, 9, 100, 3000];
        let big = negacyclic_polymul_big(&from_u64s(&a), &from_u64s(&b), 8, &BigUint::from_u64(q))
            .unwrap();
        let scalar = scalar_negacyclic(&a, &b, q);
        assert_eq!(big, from_u64s(&scalar));
    }

    #[test]
    fn wraparound_is_negated() {
        // (X^{n-1})² = X^{2n-2} = −X^{n-2} mod X^n + 1.
        let n = 4;
        let q = BigUint::from_u64(97);
        let mut a = vec![BigUint::zero(); n];
        a[n - 1] = BigUint::one();
        let c = negacyclic_polymul_big(&a, &a, n, &q).unwrap();
        let mut expect = vec![BigUint::zero(); n];
        expect[n - 2] = BigUint::from_u64(96); // −1 mod 97
        assert_eq!(c, expect);
    }

    #[test]
    fn multiplication_by_one_is_identity() {
        let basis = RnsBasis::new(8, &[97, 113]).unwrap();
        let mut one = vec![BigUint::zero(); 8];
        one[0] = BigUint::one();
        let a: Vec<BigUint> = (0..8u64)
            .map(|i| BigUint::from_u64(97 * 113 - 1 - i * 1000))
            .collect();
        assert_eq!(negacyclic_polymul_basis(&a, &one, &basis).unwrap(), a);
    }

    #[test]
    fn agrees_with_crt_of_per_limb_products() {
        // Reference over Q must equal the CRT recombination of scalar
        // references per limb — the same identity the engines must meet.
        let basis = RnsBasis::new(8, &[97, 113, 193]).unwrap();
        let a: Vec<BigUint> = (0..8u64).map(|i| BigUint::from_u64(i * 31 + 7)).collect();
        let b: Vec<BigUint> = (0..8u64)
            .map(|i| BigUint::from_u64(i * i * 1000 + 3))
            .collect();
        let direct = negacyclic_polymul_basis(&a, &b, &basis).unwrap();

        let a_limbs = basis.decompose_poly(&a).unwrap();
        let b_limbs = basis.decompose_poly(&b).unwrap();
        let c_limbs: Vec<Vec<u64>> = basis
            .primes()
            .iter()
            .enumerate()
            .map(|(i, &q)| scalar_negacyclic(&a_limbs[i], &b_limbs[i], q))
            .collect();
        assert_eq!(basis.reconstruct_poly(&c_limbs).unwrap(), direct);
    }

    #[test]
    fn rejects_unreduced_and_wrong_length() {
        let q = BigUint::from_u64(97);
        let good = vec![BigUint::zero(); 4];
        assert_eq!(
            negacyclic_polymul_big(&good, &good[..3], 4, &q).unwrap_err(),
            RnsError::WrongLength {
                expected: 4,
                actual: 3
            }
        );
        let mut bad = good.clone();
        bad[2] = BigUint::from_u64(97);
        assert_eq!(
            negacyclic_polymul_big(&good, &bad, 4, &q).unwrap_err(),
            RnsError::Unreduced { index: 2 }
        );
    }
}
