//! Plain modular arithmetic over `u64` operands.
//!
//! These routines are the ground truth against which every optimized or
//! hardware-mapped kernel in the workspace is validated. Intermediate
//! products are computed in `u128`, so any modulus below 2⁶⁴ is supported.

use crate::error::ModMathError;

/// Adds two residues modulo `m`.
///
/// Both inputs must already be reduced (`< m`); this is debug-asserted.
///
/// # Example
///
/// ```
/// assert_eq!(bpntt_modmath::zq::add_mod(5, 6, 7), 4);
/// ```
#[inline]
#[must_use]
pub fn add_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(a < m && b < m, "operands must be reduced");
    let (sum, overflow) = a.overflowing_add(b);
    if overflow || sum >= m {
        sum.wrapping_sub(m)
    } else {
        sum
    }
}

/// Subtracts `b` from `a` modulo `m`.
///
/// Both inputs must already be reduced (`< m`); this is debug-asserted.
///
/// # Example
///
/// ```
/// assert_eq!(bpntt_modmath::zq::sub_mod(2, 5, 7), 4);
/// ```
#[inline]
#[must_use]
pub fn sub_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(a < m && b < m, "operands must be reduced");
    if a >= b {
        a - b
    } else {
        a.wrapping_sub(b).wrapping_add(m)
    }
}

/// Multiplies two residues modulo `m` using a 128-bit intermediate.
///
/// # Example
///
/// ```
/// assert_eq!(bpntt_modmath::zq::mul_mod(6, 6, 7), 1);
/// ```
#[inline]
#[must_use]
pub fn mul_mod(a: u64, b: u64, m: u64) -> u64 {
    debug_assert!(m > 0);
    ((u128::from(a) * u128::from(b)) % u128::from(m)) as u64
}

/// Computes `base^exp mod m` by square-and-multiply.
///
/// `base` need not be reduced. `0^0` is defined as `1 mod m`.
///
/// # Example
///
/// ```
/// assert_eq!(bpntt_modmath::zq::pow_mod(3, 6, 7), 1);
/// ```
#[must_use]
pub fn pow_mod(base: u64, mut exp: u64, m: u64) -> u64 {
    debug_assert!(m > 0);
    if m == 1 {
        return 0;
    }
    let mut acc: u64 = 1;
    let mut base = base % m;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base, m);
        }
        base = mul_mod(base, base, m);
        exp >>= 1;
    }
    acc
}

/// Greatest common divisor by the binary Euclidean algorithm.
///
/// # Example
///
/// ```
/// assert_eq!(bpntt_modmath::zq::gcd(12, 30), 6);
/// ```
#[must_use]
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Computes the modular inverse of `a` modulo `m` via the extended
/// Euclidean algorithm.
///
/// # Errors
///
/// Returns [`ModMathError::NotInvertible`] when `gcd(a, m) ≠ 1`.
///
/// # Example
///
/// ```
/// let inv = bpntt_modmath::zq::inv_mod(3, 7)?;
/// assert_eq!(inv, 5); // 3·5 = 15 ≡ 1 (mod 7)
/// # Ok::<(), bpntt_modmath::ModMathError>(())
/// ```
pub fn inv_mod(a: u64, m: u64) -> Result<u64, ModMathError> {
    let a_red = a % m;
    if a_red == 0 {
        return Err(ModMathError::NotInvertible {
            value: a,
            modulus: m,
        });
    }
    // Extended Euclid on (m, a); track only the coefficient of `a`.
    let (mut old_r, mut r) = (i128::from(m), i128::from(a_red));
    let (mut old_t, mut t) = (0i128, 1i128);
    while r != 0 {
        let quotient = old_r / r;
        (old_r, r) = (r, old_r - quotient * r);
        (old_t, t) = (t, old_t - quotient * t);
    }
    if old_r != 1 {
        return Err(ModMathError::NotInvertible {
            value: a,
            modulus: m,
        });
    }
    let m_i = i128::from(m);
    let inv = ((old_t % m_i) + m_i) % m_i;
    Ok(inv as u64)
}

/// Conditionally subtracts `m` once, mapping `[0, 2m)` onto `[0, m)`.
///
/// This mirrors the final correction step of Montgomery multiplication and
/// of modular addition in the accelerator.
///
/// # Example
///
/// ```
/// assert_eq!(bpntt_modmath::zq::reduce_once(9, 7), 2);
/// assert_eq!(bpntt_modmath::zq::reduce_once(5, 7), 5);
/// ```
#[inline]
#[must_use]
pub fn reduce_once(a: u64, m: u64) -> u64 {
    debug_assert!(a < 2 * m, "input must be below 2m");
    if a >= m {
        a - m
    } else {
        a
    }
}

/// Negates a residue modulo `m` (`0` maps to `0`).
///
/// # Example
///
/// ```
/// assert_eq!(bpntt_modmath::zq::neg_mod(3, 7), 4);
/// assert_eq!(bpntt_modmath::zq::neg_mod(0, 7), 0);
/// ```
#[inline]
#[must_use]
pub fn neg_mod(a: u64, m: u64) -> u64 {
    debug_assert!(a < m);
    if a == 0 {
        0
    } else {
        m - a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_wraps_correctly_near_word_boundary() {
        let m = u64::MAX - 58; // odd, near 2^64
        assert_eq!(add_mod(m - 1, m - 1, m), m - 2);
        assert_eq!(add_mod(0, 0, m), 0);
        assert_eq!(add_mod(1, m - 1, m), 0);
    }

    #[test]
    fn sub_wraps_correctly() {
        assert_eq!(sub_mod(0, 1, 17), 16);
        assert_eq!(sub_mod(16, 16, 17), 0);
    }

    #[test]
    fn pow_matches_fermat_little_theorem() {
        for &q in &[3329u64, 7681, 12289, 8380417] {
            for a in [2u64, 3, 17, 1234] {
                assert_eq!(pow_mod(a, q - 1, q), 1, "a^{{q-1}} != 1 for q={q}");
            }
        }
    }

    #[test]
    fn pow_edge_cases() {
        assert_eq!(pow_mod(0, 0, 7), 1);
        assert_eq!(pow_mod(0, 5, 7), 0);
        assert_eq!(pow_mod(5, 0, 7), 1);
        assert_eq!(pow_mod(5, 1, 1), 0);
    }

    #[test]
    fn inverse_roundtrips() {
        let q = 3329;
        for a in 1..200u64 {
            let inv = inv_mod(a, q).unwrap();
            assert_eq!(mul_mod(a, inv, q), 1);
        }
    }

    #[test]
    fn inverse_rejects_non_coprime() {
        assert!(matches!(
            inv_mod(6, 9),
            Err(ModMathError::NotInvertible { .. })
        ));
        assert!(matches!(
            inv_mod(0, 9),
            Err(ModMathError::NotInvertible { .. })
        ));
        assert!(matches!(
            inv_mod(9, 9),
            Err(ModMathError::NotInvertible { .. })
        ));
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(1, 1), 1);
        assert_eq!(gcd(2 * 3 * 5 * 7, 3 * 7 * 11), 21);
    }

    #[test]
    fn neg_and_reduce() {
        assert_eq!(neg_mod(1, 3329), 3328);
        assert_eq!(reduce_once(3329, 3329), 0);
        assert_eq!(reduce_once(6657, 3329), 3328);
    }
}
