//! Modular arithmetic foundations for the BP-NTT reproduction.
//!
//! This crate is the numerical substrate of the workspace. It provides:
//!
//! * [`zq`] — plain modular arithmetic over `u64` operands
//!   (addition, subtraction, multiplication, exponentiation, inversion).
//! * [`bits`] — bit-reversal and power-of-two utilities used by the NTT.
//! * [`primes`] — deterministic Miller–Rabin primality testing, Pollard-rho
//!   factorization, and NTT-friendly prime search (`q ≡ 1 mod 2N`).
//! * [`roots`] — primitive roots and roots of unity in `Z_q`.
//! * [`montgomery`] — a word-level Montgomery multiplication reference
//!   (`REDC`), including the classical bit-serial interleaved formulation.
//! * [`carrysave`] — redundant (Sum, Carry) arithmetic in the style of a
//!   carry-save adder, the key enabler of bit-parallel in-SRAM computation.
//! * [`bitparallel`] — **Algorithm 2 of the BP-NTT paper**: in-memory
//!   bit-parallel Montgomery modular multiplication expressed purely with
//!   bitwise AND/XOR/OR and 1-bit shifts, together with a step tracer that
//!   reproduces the worked example of Fig. 6.
//!
//! Everything here is pure, deterministic software; the in-SRAM execution of
//! the same algorithm lives in the `bpntt-sram` and `bpntt-core` crates and
//! is cross-validated against this crate's word models.
//!
//! # Example
//!
//! ```
//! use bpntt_modmath::{bitparallel, montgomery::MontCtx};
//!
//! // The paper's Fig. 6 example: A = 4, B = 3, M = 7, n = 3 bits.
//! let ctx = MontCtx::new(7, 3)?;
//! let out = bitparallel::bp_modmul_full(4, 3, 7, 3);
//! assert!(out.is_exact());
//! assert_eq!(out.value() % 7, u128::from(ctx.mont_mul(4, 3)));
//! assert_eq!(out.value(), 5); // A·B·R⁻¹ mod M = 4·3·R⁻¹ ≡ 5 (mod 7), R = 8
//! # Ok::<(), bpntt_modmath::ModMathError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitparallel;
pub mod bits;
pub mod carrysave;
pub mod error;
pub mod montgomery;
pub mod primes;
pub mod roots;
pub mod shoup;
pub mod zq;

pub use error::ModMathError;
