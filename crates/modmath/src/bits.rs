//! Bit-manipulation helpers: bit reversal, power-of-two predicates.
//!
//! The Cooley–Tukey NTT consumes twiddle factors in *bit-reversed* order and
//! produces output in bit-reversed order (paper Algorithm 1); these helpers
//! centralize that logic.

/// Reverses the lowest `bits` bits of `value`.
///
/// Bits above position `bits` must be zero; this is debug-asserted.
///
/// # Panics
///
/// Panics in debug builds if `value >= 2^bits` or `bits > 64`.
///
/// # Example
///
/// ```
/// assert_eq!(bpntt_modmath::bits::bit_reverse(0b001, 3), 0b100);
/// assert_eq!(bpntt_modmath::bits::bit_reverse(0b110, 3), 0b011);
/// ```
#[inline]
#[must_use]
pub fn bit_reverse(value: u64, bits: u32) -> u64 {
    debug_assert!(bits <= 64);
    debug_assert!(bits == 64 || value < (1u64 << bits), "value out of range");
    if bits == 0 {
        return 0;
    }
    value.reverse_bits() >> (64 - bits)
}

/// Permutes `data` in place into bit-reversed index order.
///
/// Applying the permutation twice restores the original order.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
///
/// # Example
///
/// ```
/// let mut v = vec![0, 1, 2, 3, 4, 5, 6, 7];
/// bpntt_modmath::bits::bitrev_permute(&mut v);
/// assert_eq!(v, vec![0, 4, 2, 6, 1, 5, 3, 7]);
/// ```
pub fn bitrev_permute<T>(data: &mut [T]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "length {n} is not a power of two");
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = bit_reverse(i as u64, bits) as usize;
        if j > i {
            data.swap(i, j);
        }
    }
}

/// Returns `log2(n)` when `n` is a power of two.
///
/// # Example
///
/// ```
/// assert_eq!(bpntt_modmath::bits::log2_exact(256), Some(8));
/// assert_eq!(bpntt_modmath::bits::log2_exact(255), None);
/// ```
#[inline]
#[must_use]
pub fn log2_exact(n: u64) -> Option<u32> {
    if n.is_power_of_two() {
        Some(n.trailing_zeros())
    } else {
        None
    }
}

/// Returns the mask with the lowest `bits` bits set.
///
/// `bits` may be 64, in which case the full-word mask is returned.
///
/// # Example
///
/// ```
/// assert_eq!(bpntt_modmath::bits::low_mask(3), 0b111);
/// assert_eq!(bpntt_modmath::bits::low_mask(64), u64::MAX);
/// assert_eq!(bpntt_modmath::bits::low_mask(0), 0);
/// ```
#[inline]
#[must_use]
pub fn low_mask(bits: u32) -> u64 {
    debug_assert!(bits <= 64);
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_reverse_is_involutive() {
        for bits in [1u32, 3, 8, 13, 32, 63] {
            for v in [0u64, 1, 5, 100].iter().map(|v| v & low_mask(bits)) {
                assert_eq!(bit_reverse(bit_reverse(v, bits), bits), v);
            }
        }
    }

    #[test]
    fn bit_reverse_full_width() {
        assert_eq!(bit_reverse(1, 64), 1u64 << 63);
        assert_eq!(bit_reverse(0, 0), 0);
    }

    #[test]
    fn permute_is_involutive() {
        let mut v: Vec<u32> = (0..64).collect();
        let orig = v.clone();
        bitrev_permute(&mut v);
        assert_ne!(v, orig);
        bitrev_permute(&mut v);
        assert_eq!(v, orig);
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn permute_rejects_non_power_of_two() {
        let mut v = vec![1, 2, 3];
        bitrev_permute(&mut v);
    }

    #[test]
    fn log2_exact_works() {
        assert_eq!(log2_exact(1), Some(0));
        assert_eq!(log2_exact(2), Some(1));
        assert_eq!(log2_exact(1 << 40), Some(40));
        assert_eq!(log2_exact(0), None);
        assert_eq!(log2_exact(3), None);
    }
}
