//! **Algorithm 2 of the BP-NTT paper**: in-memory bit-parallel Montgomery
//! modular multiplication, as a word model.
//!
//! The algorithm computes `A·B·R⁻¹ mod M` (with `R = 2^n`, `M` odd) using
//! only bitwise AND/XOR/OR and 1-bit shifts on `n`-bit words — exactly the
//! operation set a dual-wordline SRAM subarray with shifting sense
//! amplifiers can execute. The accumulator is kept as a carry-save
//! `(Sum, Carry)` pair so no carry ever ripples.
//!
//! Two packing observations from the paper keep all state within `n` bits
//! (instead of `n + 1`):
//!
//! 1. the top bit of `Carry` is clear at the end of every iteration, so the
//!    `Carry << 1` realignment never overflows, and
//! 2. the low bit of `Sum ⊕ m` is clear (the Montgomery step makes the
//!    value even), so the `s1 >> 1` halving never drops information.
//!
//! Our reproduction finds these observations hold **when `M < 2^(n-1)`**
//! (one spare bit of headroom, which every parameter set in the paper
//! satisfies — e.g. 12-bit Kyber `q` in 14-bit words). The tolerant entry
//! point [`bp_modmul_full`] records violations for out-of-headroom moduli so
//! the boundary is testable; the strict entry point [`bp_modmul`] requires
//! the headroom and is then provably exact (validated exhaustively for small
//! `n` and by property tests elsewhere).
//!
//! [`bp_modmul_traced`] records every intermediate row value and renders the
//! worked example of the paper's Fig. 6.

use crate::bits::low_mask;
use crate::carrysave::CsPair;
use crate::zq::reduce_once;

/// Outcome of a tolerant Algorithm 2 run (see [`bp_modmul_full`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpOutcome {
    /// Final accumulator as a carry-save pair (each word masked to `n` bits).
    pub pair: CsPair,
    /// Number of iterations in which `Carry << 1` dropped a set top bit
    /// (violations of the paper's Observation 1).
    pub obs1_violations: u32,
    /// Number of iterations in which `s1 >> 1` dropped a set low bit
    /// (violations of the paper's Observation 2).
    pub obs2_violations: u32,
}

impl BpOutcome {
    /// The value represented by the final pair, `Sum + 2·Carry`.
    #[inline]
    #[must_use]
    pub fn value(&self) -> u128 {
        self.pair.value()
    }

    /// True when the run stayed within the paper's packing observations,
    /// i.e. the result is exact.
    #[inline]
    #[must_use]
    pub fn is_exact(&self) -> bool {
        self.obs1_violations == 0 && self.obs2_violations == 0
    }
}

/// Tolerant Algorithm 2: runs the bit-parallel Montgomery multiplication on
/// `n`-bit words for *any* odd `m < 2^n`, masking shifted-out bits exactly
/// as `n`-column hardware would, and reporting how often the paper's two
/// packing observations were violated.
///
/// When [`BpOutcome::is_exact`] the value equals `a·b·R⁻¹ mod m` up to one
/// conditional subtraction (`< 2m`).
///
/// # Panics
///
/// Panics if `n ∉ 2..=64`, `m` is even, `m ≥ 2^n`, or `a, b ≥ m`.
#[must_use]
pub fn bp_modmul_full(a: u64, b: u64, m: u64, n: u32) -> BpOutcome {
    assert!((2..=64).contains(&n), "bit width {n} outside 2..=64");
    assert_eq!(m & 1, 1, "modulus must be odd");
    let mask = low_mask(n);
    assert!(m <= mask, "modulus {m} does not fit in {n} bits");
    assert!(a < m && b < m, "operands must be reduced modulo m");

    let mut sum: u64 = 0;
    let mut carry: u64 = 0;
    let mut obs1 = 0;
    let mut obs2 = 0;

    for i in 0..n {
        if (a >> i) & 1 == 1 {
            // P ← P + B  (lines 6–9)
            let c1 = sum & b;
            let s1 = sum ^ b;
            if (n < 64 && (carry >> (n - 1)) & 1 == 1) || (n == 64 && (carry >> 63) == 1) {
                obs1 += 1;
            }
            let cs = (carry << 1) & mask;
            let c2 = cs & s1;
            sum = cs ^ s1;
            debug_assert_eq!(c1 & c2, 0);
            carry = c1 | c2;
        }
        // m ← LSB(Sum) ? M : 0;  P ← (P + m) / 2  (lines 11–16)
        let m_sel = if sum & 1 == 1 { m } else { 0 };
        let c1 = sum & m_sel;
        let s1 = sum ^ m_sel;
        if s1 & 1 == 1 {
            obs2 += 1;
        }
        let s1 = s1 >> 1;
        let c2 = s1 & c1;
        let s2 = s1 ^ c1;
        let c3 = carry & s2;
        sum = carry ^ s2;
        debug_assert_eq!(c2 & c3, 0);
        carry = c2 | c3;
    }

    BpOutcome {
        pair: CsPair { sum, carry },
        obs1_violations: obs1,
        obs2_violations: obs2,
    }
}

/// Strict Algorithm 2: bit-parallel Montgomery multiplication
/// `a·b·R⁻¹ mod m` with `R = 2^n`, returning the accumulator `P < 2m`
/// (apply [`reduce_once`](crate::zq::reduce_once) — or use
/// [`bp_modmul_reduced`] — for the canonical residue).
///
/// Requires one bit of modulus headroom, `m < 2^(n-1)`, under which the
/// paper's packing observations provably hold and the `n`-column dataflow is
/// exact.
///
/// # Panics
///
/// Panics if the headroom requirement (or any [`bp_modmul_full`]
/// precondition) is violated.
///
/// # Example
///
/// ```
/// // Kyber's q = 3329 in 14-bit words: R = 2^14.
/// let p = bpntt_modmath::bitparallel::bp_modmul(1234, 567, 3329, 14);
/// assert!(p < 2 * 3329);
/// ```
#[must_use]
pub fn bp_modmul(a: u64, b: u64, m: u64, n: u32) -> u64 {
    assert!(
        n == 64 || m < (1u64 << (n - 1)),
        "modulus {m} needs one bit of headroom in {n}-bit words"
    );
    if n == 64 {
        assert!(
            m < (1u64 << 63),
            "modulus needs one bit of headroom in 64-bit words"
        );
    }
    let out = bp_modmul_full(a, b, m, n);
    debug_assert!(
        out.is_exact(),
        "packing observations violated despite headroom"
    );
    let v = out.value();
    debug_assert!(v < 2 * u128::from(m));
    v as u64
}

/// Strict Algorithm 2 with the final conditional subtraction applied:
/// returns the canonical residue `a·b·R⁻¹ mod m`.
///
/// # Panics
///
/// Same conditions as [`bp_modmul`].
///
/// # Example
///
/// ```
/// // Fig. 6 of the paper: A=4, B=3, M=7 → 5 (R = 8).
/// assert_eq!(bpntt_modmath::bitparallel::bp_modmul_reduced(4, 3, 7, 4), 6);
/// // (with n=4 the radix differs from the figure; the 3-bit run is traced below)
/// let out = bpntt_modmath::bitparallel::bp_modmul_full(4, 3, 7, 3);
/// assert_eq!(out.value() % 7, 5);
/// ```
#[must_use]
pub fn bp_modmul_reduced(a: u64, b: u64, m: u64, n: u32) -> u64 {
    reduce_once(bp_modmul(a, b, m, n), m)
}

/// One iteration's intermediate row values, for tracing (Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpIterTrace {
    /// Iteration index `i` (multiplier bit position).
    pub i: u32,
    /// The multiplier bit `aᵢ` driving the conditional add.
    pub a_bit: bool,
    /// `(c1, s1, c2)` of the `P += B` step, when `aᵢ = 1`.
    pub add_step: Option<(u64, u64, u64)>,
    /// `Sum` after the conditional add.
    pub sum_after_add: u64,
    /// `Carry` after the conditional add.
    pub carry_after_add: u64,
    /// The selected `m` (either `M` or 0).
    pub m_selected: u64,
    /// `(c1, s1_shifted, c2, s2, c3)` of the Montgomery halving step.
    pub mont_step: (u64, u64, u64, u64, u64),
    /// `Sum` at the end of the iteration.
    pub sum: u64,
    /// `Carry` at the end of the iteration.
    pub carry: u64,
}

/// Full trace of a strict Algorithm 2 run (see [`bp_modmul_traced`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BpTrace {
    /// Inputs `(a, b, m, n)`.
    pub a: u64,
    /// Multiplicand.
    pub b: u64,
    /// Modulus.
    pub m: u64,
    /// Word width in bits.
    pub n: u32,
    /// Per-iteration intermediate values.
    pub iters: Vec<BpIterTrace>,
    /// Final accumulator pair.
    pub pair: CsPair,
}

impl BpTrace {
    /// The final value `Sum + 2·Carry` (`< 2m`).
    #[must_use]
    pub fn value(&self) -> u64 {
        self.pair.value() as u64
    }

    /// The canonical residue `a·b·R⁻¹ mod m`.
    #[must_use]
    pub fn reduced(&self) -> u64 {
        reduce_once(self.value(), self.m)
    }
}

impl std::fmt::Display for BpTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let w = self.n as usize;
        writeln!(
            f,
            "bit-parallel Montgomery: A={}, B={}, M={}, R=2^{}",
            self.a, self.b, self.m, self.n
        )?;
        writeln!(f, "  B = {:0w$b}   M = {:0w$b}", self.b, self.m)?;
        for it in &self.iters {
            writeln!(
                f,
                "iteration {} (a{} = {}):",
                it.i,
                it.i,
                u8::from(it.a_bit)
            )?;
            if let Some((c1, s1, c2)) = it.add_step {
                writeln!(f, "  P += B : c1={:0w$b} s1={:0w$b} c2={:0w$b}", c1, s1, c2)?;
                writeln!(
                    f,
                    "           Sum={:0w$b} Carry={:0w$b}",
                    it.sum_after_add, it.carry_after_add
                )?;
            }
            let (c1, s1, c2, s2, c3) = it.mont_step;
            writeln!(f, "  m = {:0w$b}", it.m_selected)?;
            writeln!(
                f,
                "  P=(P+m)/2 : c1={:0w$b} s1>>1={:0w$b} c2={:0w$b} s2={:0w$b} c3={:0w$b}",
                c1, s1, c2, s2, c3
            )?;
            writeln!(
                f,
                "  Sum={:0w$b} Carry={:0w$b}  (P = {})",
                it.sum,
                it.carry,
                CsPair {
                    sum: it.sum,
                    carry: it.carry
                }
                .value()
            )?;
        }
        writeln!(
            f,
            "output: P = Sum + Carry<<1 = {:0w$b} + {:0w$b}<<1 = {}  →  {} (mod {})",
            self.pair.sum,
            self.pair.carry,
            self.value(),
            self.reduced(),
            self.m
        )
    }
}

/// Runs strict Algorithm 2 while recording every intermediate value;
/// `format!("{}", trace)` renders the paper's Fig. 6 walk-through.
///
/// # Panics
///
/// Panics when `m ≥ 2^(n-1)` *and* a packing observation is actually
/// violated; the Fig. 6 inputs (`M = 7`, `n = 3`) stay exact and are
/// accepted.
#[must_use]
pub fn bp_modmul_traced(a: u64, b: u64, m: u64, n: u32) -> BpTrace {
    assert!((2..=64).contains(&n), "bit width {n} outside 2..=64");
    assert_eq!(m & 1, 1, "modulus must be odd");
    let mask = low_mask(n);
    assert!(m <= mask, "modulus {m} does not fit in {n} bits");
    assert!(a < m && b < m, "operands must be reduced modulo m");

    let mut sum: u64 = 0;
    let mut carry: u64 = 0;
    let mut iters = Vec::with_capacity(n as usize);

    for i in 0..n {
        let a_bit = (a >> i) & 1 == 1;
        let mut add_step = None;
        if a_bit {
            let c1 = sum & b;
            let s1 = sum ^ b;
            assert_eq!(
                carry & !(mask >> 1),
                0,
                "Observation 1 violated at iteration {i}"
            );
            let cs = (carry << 1) & mask;
            let c2 = cs & s1;
            sum = cs ^ s1;
            carry = c1 | c2;
            add_step = Some((c1, s1, c2));
        }
        let (sum_after_add, carry_after_add) = (sum, carry);
        let m_selected = if sum & 1 == 1 { m } else { 0 };
        let c1 = sum & m_selected;
        let s1 = sum ^ m_selected;
        assert_eq!(s1 & 1, 0, "Observation 2 violated at iteration {i}");
        let s1 = s1 >> 1;
        let c2 = s1 & c1;
        let s2 = s1 ^ c1;
        let c3 = carry & s2;
        sum = carry ^ s2;
        carry = c2 | c3;
        iters.push(BpIterTrace {
            i,
            a_bit,
            add_step,
            sum_after_add,
            carry_after_add,
            m_selected,
            mont_step: (c1, s1, c2, s2, c3),
            sum,
            carry,
        });
    }

    BpTrace {
        a,
        b,
        m,
        n,
        iters,
        pair: CsPair { sum, carry },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montgomery::MontCtx;

    #[test]
    fn fig6_example_step_by_step() {
        // Paper Fig. 6: A=4, B=3, M=7, n=3. Output P = 001 + 010<<1 = 5.
        let trace = bp_modmul_traced(4, 3, 7, 3);
        assert_eq!(trace.pair.sum, 0b001);
        assert_eq!(trace.pair.carry, 0b010);
        assert_eq!(trace.value(), 5);
        assert_eq!(trace.reduced(), 5);
        // P stays 0 for the two low zero bits of A.
        assert_eq!(trace.iters[0].sum, 0);
        assert_eq!(trace.iters[0].carry, 0);
        assert_eq!(trace.iters[1].sum, 0);
        assert_eq!(trace.iters[1].carry, 0);
        // The rendered trace mentions the inputs.
        let text = trace.to_string();
        assert!(text.contains("A=4, B=3, M=7"));
        assert!(text.contains("→  5 (mod 7)"));
    }

    #[test]
    fn exhaustive_small_widths_with_headroom() {
        // For every n in 3..=8, every odd m < 2^(n-1), every a, b < m:
        // Algorithm 2 must be exact and match the interleaved reference.
        for n in 3..=8u32 {
            let top = 1u64 << (n - 1);
            let mut m = 3;
            while m < top {
                let ctx = MontCtx::new(m, n).unwrap();
                for a in 0..m {
                    for b in 0..m {
                        let out = bp_modmul_full(a, b, m, n);
                        assert!(out.is_exact(), "violation at a={a} b={b} m={m} n={n}");
                        let expect = ctx.mont_mul_interleaved(a, b);
                        assert_eq!(out.value(), u128::from(expect), "a={a} b={b} m={m} n={n}");
                        assert_eq!(bp_modmul_reduced(a, b, m, n), ctx.mont_mul(a, b));
                    }
                }
                m += 2;
            }
        }
    }

    #[test]
    fn headroom_boundary_study() {
        // Without the headroom bit (2^(n-1) ≤ m < 2^n), the packing
        // observations *can* fail: this documents the boundary that the
        // paper's parameter choices implicitly respect. We assert that
        // (1) exact runs still match the reference, and (2) at least one
        // violating input exists for some modulus in this range.
        let mut any_violation = false;
        for n in 3..=6u32 {
            let lo = 1u64 << (n - 1);
            let hi = 1u64 << n;
            let mut m = lo + 1;
            while m < hi {
                let ctx = MontCtx::new(m, n).unwrap();
                for a in 0..m {
                    for b in 0..m {
                        let out = bp_modmul_full(a, b, m, n);
                        if out.is_exact() {
                            assert_eq!(out.value(), u128::from(ctx.mont_mul_interleaved(a, b)));
                        } else {
                            any_violation = true;
                        }
                    }
                }
                m += 2;
            }
        }
        assert!(
            any_violation,
            "expected at least one packing violation without headroom; \
             if none exist the observations hold unconditionally"
        );
    }

    #[test]
    fn fig6_modulus_without_headroom_is_still_exact_on_figure_inputs() {
        // M = 7 = 2^3 − 1 has no headroom at n = 3, yet the figure's inputs
        // stay exact — and all (a, b) for M=7 happen to as well.
        for a in 0..7u64 {
            for b in 0..7u64 {
                let out = bp_modmul_full(a, b, 7, 3);
                let ctx = MontCtx::new(7, 3).unwrap();
                if out.is_exact() {
                    assert_eq!(out.value(), u128::from(ctx.mont_mul_interleaved(a, b)));
                }
            }
        }
    }

    #[test]
    fn standard_parameter_sets_are_exact() {
        let cases: &[(u64, u32)] = &[
            (3329, 13),    // Kyber q in its minimal headroom width
            (3329, 14),    // the paper's 14-bit setting
            (3329, 16),    // the paper's 16-bit setting
            (12289, 16),   // Falcon
            (8380417, 24), // Dilithium
            (8380417, 32), // the paper's 32-bit setting
        ];
        for &(q, n) in cases {
            let ctx = MontCtx::new(q, n).unwrap();
            let samples = [0u64, 1, 2, q / 2, q - 2, q - 1, 1234 % q, 40961 % q];
            for &a in &samples {
                for &b in &samples {
                    assert_eq!(
                        bp_modmul_reduced(a, b, q, n),
                        ctx.mont_mul(a, b),
                        "q={q} n={n} a={a} b={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn wide_words_random_spotcheck() {
        // 63-bit modulus in 64-bit words (maximal configuration).
        let m = (1u64 << 62) + 5; // odd, < 2^63
        let ctx = MontCtx::new(m, 64).unwrap();
        let mut x: u64 = 0x1234_5678_9ABC_DEF0;
        for _ in 0..50 {
            // xorshift for determinism without pulling in rand here
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let a = x % m;
            let b = x.rotate_left(17) % m;
            assert_eq!(bp_modmul_reduced(a, b, m, 64), ctx.mont_mul(a, b));
        }
    }

    #[test]
    #[should_panic(expected = "headroom")]
    fn strict_entry_rejects_headroomless_modulus() {
        let _ = bp_modmul(1, 1, 7, 3);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn rejects_even_modulus() {
        let _ = bp_modmul_full(1, 1, 6, 4);
    }

    #[test]
    #[should_panic(expected = "reduced")]
    fn rejects_unreduced_operands() {
        let _ = bp_modmul_full(9, 1, 7, 4);
    }
}
