//! Error type shared by the modular-arithmetic routines.

use std::error::Error;
use std::fmt;

/// Errors produced by modular-arithmetic construction and queries.
///
/// The arithmetic kernels themselves (`add_mod`, `mont_mul`, …) are total
/// once their context has been validated, so errors surface only at
/// construction/validation boundaries, per the "validate arguments"
/// guideline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModMathError {
    /// The modulus must be odd for Montgomery arithmetic (`M ⊥ R`, `R = 2^n`).
    EvenModulus {
        /// The offending modulus.
        modulus: u64,
    },
    /// The modulus must be at least 3.
    ModulusTooSmall {
        /// The offending modulus.
        modulus: u64,
    },
    /// The modulus does not fit the requested bit width.
    ModulusTooWide {
        /// The offending modulus.
        modulus: u64,
        /// The requested width in bits.
        bits: u32,
    },
    /// Bit widths must lie in `2..=64`.
    InvalidBitWidth {
        /// The requested width in bits.
        bits: u32,
    },
    /// The element has no inverse modulo the modulus.
    NotInvertible {
        /// The non-invertible element.
        value: u64,
        /// The modulus.
        modulus: u64,
    },
    /// No root of unity of the requested order exists in `Z_q`.
    NoRootOfUnity {
        /// The requested multiplicative order.
        order: u64,
        /// The modulus.
        modulus: u64,
    },
    /// Prime search exhausted its range without finding a match.
    NoPrimeFound {
        /// The requested bit length.
        bits: u32,
        /// The congruence stride (`q ≡ 1 mod stride`).
        stride: u64,
    },
}

impl fmt::Display for ModMathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ModMathError::EvenModulus { modulus } => {
                write!(
                    f,
                    "modulus {modulus} is even; Montgomery arithmetic requires an odd modulus"
                )
            }
            ModMathError::ModulusTooSmall { modulus } => {
                write!(f, "modulus {modulus} is too small; at least 3 is required")
            }
            ModMathError::ModulusTooWide { modulus, bits } => {
                write!(f, "modulus {modulus} does not fit in {bits} bits")
            }
            ModMathError::InvalidBitWidth { bits } => {
                write!(f, "bit width {bits} is outside the supported range 2..=64")
            }
            ModMathError::NotInvertible { value, modulus } => {
                write!(f, "{value} is not invertible modulo {modulus}")
            }
            ModMathError::NoRootOfUnity { order, modulus } => {
                write!(
                    f,
                    "no root of unity of order {order} exists modulo {modulus}"
                )
            }
            ModMathError::NoPrimeFound { bits, stride } => {
                write!(
                    f,
                    "no {bits}-bit prime congruent to 1 mod {stride} was found"
                )
            }
        }
    }
}

impl Error for ModMathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            ModMathError::EvenModulus { modulus: 8 },
            ModMathError::ModulusTooSmall { modulus: 1 },
            ModMathError::ModulusTooWide {
                modulus: 100,
                bits: 4,
            },
            ModMathError::InvalidBitWidth { bits: 1 },
            ModMathError::NotInvertible {
                value: 2,
                modulus: 8,
            },
            ModMathError::NoRootOfUnity {
                order: 16,
                modulus: 17,
            },
            ModMathError::NoPrimeFound {
                bits: 3,
                stride: 4096,
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            // Messages start with the offending value or a lowercase word,
            // never with an uppercase sentence opener.
            assert!(
                !s.chars().next().unwrap().is_uppercase(),
                "bad message: {s}"
            );
        }
    }

    #[test]
    fn error_trait_object_is_usable() {
        let e: Box<dyn Error + Send + Sync> = Box::new(ModMathError::EvenModulus { modulus: 4 });
        assert!(e.to_string().contains("even"));
    }
}
