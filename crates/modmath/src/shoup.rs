//! Shoup modular multiplication with a precomputed quotient.
//!
//! When one factor `w` is fixed across many multiplications (twiddle
//! factors in an NTT), Harvey's formulation ("Faster arithmetic for
//! number-theoretic transforms", arXiv:1205.2926) precomputes
//! `w' = ⌊w·2⁶⁴ / q⌋` once; each product then costs two widening
//! multiplications, one low multiplication, and a single conditional
//! subtraction — no division, no remainder:
//!
//! ```text
//! q̂ = ⌊w'·t / 2⁶⁴⌋          (estimate of ⌊w·t / q⌋, off by at most 1)
//! r  = (w·t − q̂·q) mod 2⁶⁴   ∈ [0, 2q)
//! r  −= q  if r ≥ q
//! ```
//!
//! The estimate bound (and therefore correctness for *any* `t < 2⁶⁴`)
//! holds whenever `q < 2⁶³`; every NTT modulus in this workspace is far
//! below that.

use crate::zq::mul_mod;

/// Precomputes the Shoup quotient `⌊w·2⁶⁴ / q⌋` for the fixed factor `w`.
///
/// # Panics
///
/// Panics in debug builds when `w ≥ q` or `q` is zero.
#[inline]
#[must_use]
pub fn shoup_precompute(w: u64, q: u64) -> u64 {
    debug_assert!(q > 0, "modulus must be nonzero");
    debug_assert!(w < q, "the fixed factor must be reduced");
    ((u128::from(w) << 64) / u128::from(q)) as u64
}

/// Multiplies `t` by the fixed factor `w` modulo `q`, using the
/// precomputed quotient `w_shoup = ⌊w·2⁶⁴ / q⌋`.
///
/// Correct for any `t < 2⁶⁴` whenever `q < 2⁶³` (callers with larger
/// moduli must fall back to [`mul_mod`]).
///
/// # Example
///
/// ```
/// use bpntt_modmath::shoup::{mul_mod_shoup, shoup_precompute};
///
/// let (w, q) = (1234, 12289);
/// let w_shoup = shoup_precompute(w, q);
/// assert_eq!(mul_mod_shoup(w, w_shoup, 777, q), (1234 * 777) % q);
/// ```
#[inline]
#[must_use]
pub fn mul_mod_shoup(w: u64, w_shoup: u64, t: u64, q: u64) -> u64 {
    debug_assert!(q < 1 << 63, "Shoup multiplication needs q < 2^63");
    let q_hat = ((u128::from(w_shoup) * u128::from(t)) >> 64) as u64;
    let r = w.wrapping_mul(t).wrapping_sub(q_hat.wrapping_mul(q));
    if r >= q {
        r - q
    } else {
        r
    }
}

/// A fixed factor bundled with its precomputed quotient.
///
/// # Example
///
/// ```
/// use bpntt_modmath::shoup::ShoupMul;
///
/// let m = ShoupMul::new(3, 17);
/// assert_eq!(m.mul(10), 13);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShoupMul {
    w: u64,
    w_shoup: u64,
    q: u64,
}

impl ShoupMul {
    /// Precomputes the quotient for the fixed factor `w` modulo `q`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `w ≥ q`, `q = 0`, or `q ≥ 2⁶³`.
    #[must_use]
    pub fn new(w: u64, q: u64) -> Self {
        debug_assert!(q < 1 << 63, "Shoup multiplication needs q < 2^63");
        ShoupMul {
            w,
            w_shoup: shoup_precompute(w, q),
            q,
        }
    }

    /// The fixed factor.
    #[inline]
    #[must_use]
    pub fn factor(&self) -> u64 {
        self.w
    }

    /// `w·t mod q`.
    #[inline]
    #[must_use]
    pub fn mul(&self, t: u64) -> u64 {
        mul_mod_shoup(self.w, self.w_shoup, t, self.q)
    }
}

/// Reference check used by tests: the Shoup product must equal the
/// 128-bit-division ground truth.
#[must_use]
pub fn matches_mul_mod(w: u64, t: u64, q: u64) -> bool {
    mul_mod_shoup(w, shoup_precompute(w, q), t, q) == mul_mod(w, t, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_small_moduli() {
        // Every (w, t) pair for every modulus (prime or not) up to 64:
        // the quotient estimate must never be off by more than the single
        // correction step.
        for q in 2u64..=64 {
            for w in 0..q {
                let w_shoup = shoup_precompute(w, q);
                for t in 0..q {
                    assert_eq!(
                        mul_mod_shoup(w, w_shoup, t, q),
                        mul_mod(w, t, q),
                        "w={w} t={t} q={q}"
                    );
                }
            }
        }
    }

    #[test]
    fn exhaustive_ntt_primes_sampled_factors() {
        // The workspace's standard NTT moduli with every small factor and
        // a stride over the full range.
        for q in [97u64, 193, 3329, 7681, 12_289, 8_380_417] {
            for w in (0..q).step_by((q / 97).max(1) as usize) {
                let w_shoup = shoup_precompute(w, q);
                for t in (0..q).step_by((q / 61).max(1) as usize) {
                    assert_eq!(
                        mul_mod_shoup(w, w_shoup, t, q),
                        mul_mod(w, t, q),
                        "w={w} t={t} q={q}"
                    );
                }
            }
        }
    }

    #[test]
    fn unreduced_second_operand_is_fine() {
        // Correctness holds for any t < 2^64 (only w must be reduced).
        let q = 12_289;
        for w in [0u64, 1, 2, 6144, 12_288] {
            let w_shoup = shoup_precompute(w, q);
            for t in [12_289u64, 1 << 32, u64::MAX, u64::MAX - 12_289] {
                assert_eq!(
                    mul_mod_shoup(w, w_shoup, t, q),
                    mul_mod(w, t % q, q),
                    "w={w} t={t}"
                );
            }
        }
    }

    #[test]
    fn large_moduli_near_the_bound() {
        // Worst-case moduli just below 2^63, with adversarial operands.
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        for q in [(1u64 << 62) + 1, (1 << 63) - 25, (1 << 63) - 1] {
            for _ in 0..2000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let w = x % q;
                let t = x.rotate_left(17) % q;
                assert!(matches_mul_mod(w, t, q), "w={w} t={t} q={q}");
            }
            // Edge operands.
            for w in [0, 1, q - 1] {
                for t in [0, 1, q - 1] {
                    assert!(matches_mul_mod(w, t, q), "w={w} t={t} q={q}");
                }
            }
        }
    }

    #[test]
    fn shoup_mul_struct_roundtrip() {
        let q = 7681;
        for w in 0..q {
            let m = ShoupMul::new(w, q);
            assert_eq!(m.factor(), w);
            assert_eq!(m.mul(4321), mul_mod(w, 4321, q));
        }
    }
}
