//! Word-level Montgomery multiplication reference.
//!
//! BP-NTT's Algorithm 2 is a carry-save reformulation of radix-2 interleaved
//! Montgomery multiplication. This module provides the two classical
//! formulations it must agree with:
//!
//! * [`MontCtx::mont_mul`] — the textbook REDC (`A·B·R⁻¹ mod M` computed
//!   with one wide product and one reduction), and
//! * [`MontCtx::mont_mul_interleaved`] — the bit-serial interleaved loop
//!   (`P ← (P + aᵢ·B + m)/2`), which is step-for-step the integer shadow of
//!   Algorithm 2.
//!
//! Both are used as oracles in unit, property, and integration tests.

use crate::error::ModMathError;
use crate::zq::{inv_mod, reduce_once};

/// Montgomery multiplication context for modulus `m` and radix `R = 2^n`.
///
/// # Example
///
/// ```
/// use bpntt_modmath::montgomery::MontCtx;
///
/// let ctx = MontCtx::new(3329, 13)?;
/// let a_m = ctx.to_mont(1234);
/// let b_m = ctx.to_mont(567);
/// let prod = ctx.from_mont(ctx.mont_mul(a_m, b_m));
/// assert_eq!(prod, (1234 * 567) % 3329);
/// # Ok::<(), bpntt_modmath::ModMathError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MontCtx {
    m: u64,
    n_bits: u32,
    /// `R mod m`.
    r_mod_m: u64,
    /// `R² mod m`, used by [`MontCtx::to_mont`].
    r2_mod_m: u64,
    /// `R⁻¹ mod m`, used by tests and by [`MontCtx::from_mont`].
    r_inv: u64,
    /// `−m⁻¹ mod R` (masked to `n_bits`), used by REDC.
    neg_m_inv: u64,
}

impl MontCtx {
    /// Creates a context for odd modulus `m` and radix `R = 2^n_bits`.
    ///
    /// # Errors
    ///
    /// * [`ModMathError::EvenModulus`] if `m` is even (then `m ∤ R` fails).
    /// * [`ModMathError::ModulusTooSmall`] if `m < 3`.
    /// * [`ModMathError::InvalidBitWidth`] if `n_bits ∉ 2..=64`.
    /// * [`ModMathError::ModulusTooWide`] if `m ≥ 2^n_bits`.
    pub fn new(m: u64, n_bits: u32) -> Result<Self, ModMathError> {
        if m.is_multiple_of(2) {
            return Err(ModMathError::EvenModulus { modulus: m });
        }
        if m < 3 {
            return Err(ModMathError::ModulusTooSmall { modulus: m });
        }
        if !(2..=64).contains(&n_bits) {
            return Err(ModMathError::InvalidBitWidth { bits: n_bits });
        }
        if n_bits < 64 && m >= (1u64 << n_bits) {
            return Err(ModMathError::ModulusTooWide {
                modulus: m,
                bits: n_bits,
            });
        }
        let r = 1u128 << n_bits;
        let r_mod_m = (r % u128::from(m)) as u64;
        let r2_mod_m = ((u128::from(r_mod_m) * u128::from(r_mod_m)) % u128::from(m)) as u64;
        // m⁻¹ mod 2^64 by Newton–Hensel lifting, then mask to n_bits.
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m.wrapping_mul(inv)));
        }
        debug_assert_eq!(m.wrapping_mul(inv), 1);
        let mask = if n_bits == 64 {
            u64::MAX
        } else {
            (1u64 << n_bits) - 1
        };
        let neg_m_inv = inv.wrapping_neg() & mask;
        // R⁻¹ mod m exists because m is odd.
        let r_inv = inv_mod(r_mod_m, m)?;
        Ok(MontCtx {
            m,
            n_bits,
            r_mod_m,
            r2_mod_m,
            r_inv,
            neg_m_inv,
        })
    }

    /// The modulus `M`.
    #[inline]
    #[must_use]
    pub fn modulus(&self) -> u64 {
        self.m
    }

    /// The radix exponent `n` (`R = 2^n`).
    #[inline]
    #[must_use]
    pub fn n_bits(&self) -> u32 {
        self.n_bits
    }

    /// `R mod M` — the Montgomery representation of 1.
    #[inline]
    #[must_use]
    pub fn r_mod_m(&self) -> u64 {
        self.r_mod_m
    }

    /// Converts `a` into the Montgomery domain: `a·R mod M`.
    #[inline]
    #[must_use]
    pub fn to_mont(&self, a: u64) -> u64 {
        self.mont_mul(a % self.m, self.r2_mod_m)
    }

    /// Converts `a` out of the Montgomery domain: `a·R⁻¹ mod M`.
    #[inline]
    #[must_use]
    pub fn from_mont(&self, a: u64) -> u64 {
        self.mont_mul(a, 1)
    }

    /// Montgomery product `A·B·R⁻¹ mod M` via REDC, fully reduced.
    ///
    /// Inputs must be `< M`; this is debug-asserted.
    #[must_use]
    pub fn mont_mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.m && b < self.m);
        let mask: u128 = if self.n_bits == 64 {
            u128::from(u64::MAX)
        } else {
            (1u128 << self.n_bits) - 1
        };
        let t = u128::from(a) * u128::from(b);
        let k = ((t & mask) * u128::from(self.neg_m_inv)) & mask;
        let u = (t + k * u128::from(self.m)) >> self.n_bits;
        reduce_once(u as u64, self.m)
    }

    /// Bit-serial interleaved Montgomery product, the integer shadow of
    /// BP-NTT Algorithm 2: `P ← (P + aᵢ·B + m)/2` for `n` rounds.
    ///
    /// Returns the *unreduced* accumulator `P < 2M`; apply
    /// [`reduce_once`](crate::zq::reduce_once) for the canonical residue.
    /// Inputs must be `< M`; this is debug-asserted.
    #[must_use]
    pub fn mont_mul_interleaved(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.m && b < self.m);
        let mut p: u128 = 0;
        for i in 0..self.n_bits {
            if (a >> i) & 1 == 1 {
                p += u128::from(b);
            }
            if p & 1 == 1 {
                p += u128::from(self.m);
            }
            p >>= 1;
        }
        debug_assert!(p < 2 * u128::from(self.m));
        p as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zq::mul_mod;

    fn residues(q: u64) -> Vec<u64> {
        vec![0, 1, 2, q / 3, q / 2, q - 2, q - 1]
    }

    #[test]
    fn redc_matches_schoolbook_for_standard_params() {
        for (q, n) in [
            (3329u64, 13u32),
            (3329, 16),
            (12289, 16),
            (8380417, 24),
            (8380417, 32),
        ] {
            let ctx = MontCtx::new(q, n).unwrap();
            for &a in &residues(q) {
                for &b in &residues(q) {
                    let expect = mul_mod(mul_mod(a, b, q), ctx.r_inv, q);
                    assert_eq!(ctx.mont_mul(a, b), expect, "a={a} b={b} q={q} n={n}");
                }
            }
        }
    }

    #[test]
    fn interleaved_matches_redc() {
        for (q, n) in [(7u64, 3u32), (3329, 13), (12289, 14), (8380417, 23)] {
            let ctx = MontCtx::new(q, n).unwrap();
            for &a in &residues(q) {
                for &b in &residues(q) {
                    assert_eq!(
                        reduce_once(ctx.mont_mul_interleaved(a, b), q),
                        ctx.mont_mul(a, b),
                        "a={a} b={b} q={q} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn domain_conversion_roundtrips() {
        let ctx = MontCtx::new(3329, 13).unwrap();
        for a in (0..3329).step_by(97) {
            assert_eq!(ctx.from_mont(ctx.to_mont(a)), a);
        }
    }

    #[test]
    fn fig6_example_in_integers() {
        // A = 4, B = 3, M = 7, R = 8: 4·3·R⁻¹ ≡ 5 (mod 7).
        let ctx = MontCtx::new(7, 3).unwrap();
        assert_eq!(reduce_once(ctx.mont_mul_interleaved(4, 3), 7), 5);
        assert_eq!(ctx.mont_mul(4, 3), 5);
    }

    #[test]
    fn sixty_four_bit_radix() {
        let q = (1u64 << 62) - 57; // a large odd number (not necessarily prime; REDC only needs odd)
        let ctx = MontCtx::new(q, 64).unwrap();
        let a = q - 12345;
        let b = q - 67890;
        let expect = mul_mod(mul_mod(a, b, q), ctx.r_inv, q);
        assert_eq!(ctx.mont_mul(a, b), expect);
        assert_eq!(reduce_once(ctx.mont_mul_interleaved(a, b), q), expect);
    }

    #[test]
    fn constructor_validation() {
        assert!(matches!(
            MontCtx::new(8, 8),
            Err(ModMathError::EvenModulus { .. })
        ));
        assert!(matches!(
            MontCtx::new(1, 8),
            Err(ModMathError::ModulusTooSmall { .. })
        ));
        assert!(matches!(
            MontCtx::new(257, 8),
            Err(ModMathError::ModulusTooWide { .. })
        ));
        assert!(matches!(
            MontCtx::new(7, 1),
            Err(ModMathError::InvalidBitWidth { .. })
        ));
        assert!(matches!(
            MontCtx::new(7, 65),
            Err(ModMathError::InvalidBitWidth { .. })
        ));
        assert!(MontCtx::new(255, 8).is_ok());
    }
}
