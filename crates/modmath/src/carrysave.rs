//! Redundant carry-save arithmetic on `u64` words.
//!
//! A carry-save adder keeps a number as a `(Sum, Carry)` pair with value
//! `Sum + 2·Carry`, so additions touch every bit position independently —
//! no carry ripple. This is the property BP-NTT exploits: all bit positions
//! of an SRAM row are processed by the sense amplifiers in the same cycle,
//! so an addition that would otherwise serialize over the carry chain
//! completes in a constant number of row activations.
//!
//! The word-level operations here mirror, bit for bit, the row operations
//! the accelerator performs (`bpntt-core` cross-validates against them).

/// A number in carry-save representation: value = `sum + 2·carry`.
///
/// # Example
///
/// ```
/// use bpntt_modmath::carrysave::CsPair;
///
/// let mut p = CsPair::ZERO;
/// p = p.add(13);
/// p = p.add(29);
/// assert_eq!(p.value(), 42);
/// assert_eq!(p.resolve().0, 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct CsPair {
    /// The bitwise-sum word.
    pub sum: u64,
    /// The carry word; each bit has weight `2^(i+1)`.
    pub carry: u64,
}

impl CsPair {
    /// The pair representing zero.
    pub const ZERO: CsPair = CsPair { sum: 0, carry: 0 };

    /// Creates a pair holding the plain value `v` (carry empty).
    #[inline]
    #[must_use]
    pub fn from_value(v: u64) -> Self {
        CsPair { sum: v, carry: 0 }
    }

    /// The represented value, `sum + 2·carry`, computed exactly in `u128`.
    #[inline]
    #[must_use]
    pub fn value(&self) -> u128 {
        u128::from(self.sum) + 2 * u128::from(self.carry)
    }

    /// Adds a plain word using two half-adder passes — the exact dataflow of
    /// BP-NTT Algorithm 2 lines 6–9 (`c1,s1 = Sum&B, Sum⊕B`;
    /// `Carry<<1`; `c2,Sum = Carry&s1, Carry⊕s1`; `Carry = c1|c2`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `carry` has its top bit set (the left shift
    /// would overflow the word; within Algorithm 2 this never happens — that
    /// is the paper's Observation 1).
    #[inline]
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, b: u64) -> Self {
        let c1 = self.sum & b;
        let s1 = self.sum ^ b;
        debug_assert_eq!(
            self.carry >> 63,
            0,
            "carry top bit must be clear before the shift"
        );
        let cs = self.carry << 1;
        let c2 = cs & s1;
        let sum = cs ^ s1;
        debug_assert_eq!(c1 & c2, 0, "half-adder carries are disjoint");
        CsPair {
            sum,
            carry: c1 | c2,
        }
    }

    /// Halves the represented value after adding `b`, fused exactly like
    /// Algorithm 2 lines 11–16 (`c1,s1 = Sum&b, Sum⊕b`; `s1>>1`;
    /// `c2,s2 = s1&c1, s1⊕c1`; `c3,Sum = Carry&s2, Carry⊕s2`;
    /// `Carry = c2|c3`).
    ///
    /// The represented value must be even after adding `b` (the Montgomery
    /// step guarantees this; it is the paper's Observation 2) — otherwise
    /// the dropped bit is debug-asserted.
    #[inline]
    #[must_use]
    pub fn add_then_halve(self, b: u64) -> Self {
        let c1 = self.sum & b;
        let s1 = self.sum ^ b;
        debug_assert_eq!(
            s1 & 1,
            0,
            "value must be even before halving (Observation 2)"
        );
        let s1 = s1 >> 1;
        let c2 = s1 & c1;
        let s2 = s1 ^ c1;
        let c3 = self.carry & s2;
        let sum = self.carry ^ s2;
        debug_assert_eq!(c2 & c3, 0, "half-adder carries are disjoint");
        CsPair {
            sum,
            carry: c2 | c3,
        }
    }

    /// Resolves the pair to a plain value by iterated half-adds, returning
    /// the value and the number of ripple rounds needed (what the
    /// accelerator pays in row operations).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the value overflows 64 bits.
    #[must_use]
    pub fn resolve(mut self) -> (u64, u32) {
        let mut rounds = 0;
        while self.carry != 0 {
            debug_assert_eq!(self.carry >> 63, 0, "resolution overflow");
            let cs = self.carry << 1;
            let sum = self.sum ^ cs;
            self.carry = self.sum & cs;
            self.sum = sum;
            rounds += 1;
        }
        (self.sum, rounds)
    }

    /// True when the represented value's least-significant bit is 1.
    ///
    /// Because the carry word carries weight `2^(i+1)`, the LSB of the value
    /// equals the LSB of `sum` — this is what lets the accelerator's `Check`
    /// instruction read parity from the Sum row alone.
    #[inline]
    #[must_use]
    pub fn is_odd(&self) -> bool {
        self.sum & 1 == 1
    }
}

/// Classic 3:2 carry-save compressor: returns `(sum, carry)` with
/// `a + b + c = sum + 2·carry`.
///
/// # Example
///
/// ```
/// let (s, c) = bpntt_modmath::carrysave::compress3(5, 6, 7);
/// assert_eq!(u128::from(s) + 2 * u128::from(c), 18);
/// ```
#[inline]
#[must_use]
pub fn compress3(a: u64, b: u64, c: u64) -> (u64, u64) {
    let sum = a ^ b ^ c;
    let carry = (a & b) | (a & c) | (b & c);
    (sum, carry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_preserves_value() {
        let mut p = CsPair::ZERO;
        let mut expect: u128 = 0;
        for b in [0u64, 1, 0xFF, 0xDEAD_BEEF, 1 << 40, 0x0F0F_F0F0] {
            p = p.add(b);
            expect += u128::from(b);
            assert_eq!(p.value(), expect);
        }
        let (v, _) = p.resolve();
        assert_eq!(u128::from(v), expect);
    }

    #[test]
    fn add_then_halve_preserves_value() {
        // Start with odd value 13, add odd 7 → 20, halve → 10.
        let p = CsPair::from_value(13).add_then_halve(7);
        assert_eq!(p.value(), 10);
        // Even value, add zero → halve.
        let p = CsPair::from_value(10).add_then_halve(0);
        assert_eq!(p.value(), 5);
    }

    #[test]
    fn resolve_counts_ripple_rounds() {
        let (v, r) = CsPair::ZERO.resolve();
        assert_eq!((v, r), (0, 0));
        let (v, r) = CsPair {
            sum: 0b01,
            carry: 0b01,
        }
        .resolve();
        assert_eq!(v, 3);
        assert!(r >= 1);
        // Worst-case ripple: 0b0111…1 + 1 propagates across the word.
        let (v, r) = CsPair {
            sum: (1 << 20) - 1,
            carry: 1,
        }
        .resolve();
        assert_eq!(u128::from(v), ((1u128 << 20) - 1) + 2);
        assert!(r >= 20, "long ripple expected, got {r}");
    }

    #[test]
    fn parity_via_sum_lsb() {
        for v in 0..32u64 {
            let p = CsPair {
                sum: v,
                carry: v.rotate_left(3) & 0x7FFF_FFFF,
            };
            assert_eq!(p.is_odd(), p.value() % 2 == 1);
        }
    }

    #[test]
    fn compressor_identity() {
        for a in [0u64, 3, 0xFFFF, 1 << 30] {
            for b in [0u64, 5, 0xF0F0] {
                for c in [0u64, 9, 0xAAAA] {
                    let (s, cy) = compress3(a, b, c);
                    assert_eq!(
                        u128::from(s) + 2 * u128::from(cy),
                        u128::from(a) + u128::from(b) + u128::from(c)
                    );
                }
            }
        }
    }
}
