//! Primality testing, factorization, and NTT-friendly prime search.
//!
//! An `N`-point negacyclic NTT over `Z_q` requires a primitive `2N`-th root
//! of unity, which exists exactly when `q ≡ 1 (mod 2N)`. The lattice
//! parameter sets used in the paper (Kyber, Dilithium, Falcon, and the
//! homomorphic-encryption levels of the HE standard) all pick such primes;
//! [`find_ntt_prime`] reproduces that search for arbitrary bit widths, which
//! is what the flexibility sweep of Fig. 8 relies on.

use crate::error::ModMathError;
use crate::zq::{gcd, mul_mod, pow_mod};

/// Deterministic Miller–Rabin primality test, exact for all `u64` inputs.
///
/// Uses the standard deterministic witness set
/// `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}` which is known to be
/// sufficient below 3.3 × 10²⁴.
///
/// # Example
///
/// ```
/// assert!(bpntt_modmath::primes::is_prime(3329));     // Kyber q
/// assert!(bpntt_modmath::primes::is_prime(8380417));  // Dilithium q
/// assert!(!bpntt_modmath::primes::is_prime(3331 * 7));
/// ```
#[must_use]
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // Write n-1 = d · 2^s with d odd.
    let mut d = n - 1;
    let s = d.trailing_zeros();
    d >>= s;
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Factors `n` into its distinct prime factors (Pollard's rho + trial
/// division), returned in ascending order.
///
/// Multiplicities are not reported because root-of-unity searches only need
/// the distinct factors of `q − 1`.
///
/// # Example
///
/// ```
/// assert_eq!(bpntt_modmath::primes::distinct_prime_factors(3328), vec![2, 13]);
/// ```
#[must_use]
pub fn distinct_prime_factors(n: u64) -> Vec<u64> {
    let mut factors = Vec::new();
    let mut stack = vec![n];
    while let Some(mut m) = stack.pop() {
        if m < 2 {
            continue;
        }
        while m % 2 == 0 {
            push_unique(&mut factors, 2);
            m /= 2;
        }
        if m == 1 {
            continue;
        }
        if is_prime(m) {
            push_unique(&mut factors, m);
            continue;
        }
        // Trial division for small factors keeps rho's work composite-only.
        let mut found_small = false;
        let mut p = 3u64;
        while p * p <= m && p < 1000 {
            if m % p == 0 {
                push_unique(&mut factors, p);
                while m % p == 0 {
                    m /= p;
                }
                found_small = true;
            }
            p += 2;
        }
        if found_small {
            stack.push(m);
            continue;
        }
        let d = pollard_rho(m);
        stack.push(d);
        stack.push(m / d);
    }
    factors.sort_unstable();
    factors
}

fn push_unique(v: &mut Vec<u64>, x: u64) {
    if !v.contains(&x) {
        v.push(x);
    }
}

/// Pollard's rho with Brent's cycle detection. `n` must be odd, composite,
/// and free of factors below 1000.
fn pollard_rho(n: u64) -> u64 {
    debug_assert!(n > 1 && !is_prime(n) && n % 2 == 1);
    let mut c = 1u64;
    loop {
        let f = |x: u64| -> u64 { (mul_mod(x, x, n) + c) % n };
        let (mut x, mut y, mut d) = (2u64, 2u64, 1u64);
        while d == 1 {
            x = f(x);
            y = f(f(y));
            d = gcd(x.abs_diff(y), n);
        }
        if d != n {
            return d;
        }
        c += 1; // cycle hit n itself; retry with a different polynomial
    }
}

/// Finds the smallest prime of exactly `bits` bits with `q ≡ 1 (mod stride)`.
///
/// `stride` is typically `2N` for an `N`-point negacyclic NTT. The search
/// starts from `2^(bits-1)` and walks upward in steps of `stride`.
///
/// # Errors
///
/// Returns [`ModMathError::NoPrimeFound`] if no such prime exists below
/// `2^bits`, and [`ModMathError::InvalidBitWidth`] for `bits` outside
/// `3..=63`.
///
/// # Example
///
/// ```
/// // A 14-bit prime supporting a 512-point negacyclic NTT: Falcon's 12289.
/// let q = bpntt_modmath::primes::find_ntt_prime(14, 1024)?;
/// assert_eq!(q, 12289);
/// # Ok::<(), bpntt_modmath::ModMathError>(())
/// ```
pub fn find_ntt_prime(bits: u32, stride: u64) -> Result<u64, ModMathError> {
    if !(3..=63).contains(&bits) {
        return Err(ModMathError::InvalidBitWidth { bits });
    }
    let lo = 1u64 << (bits - 1);
    let hi = 1u64 << bits;
    // First candidate ≥ lo with q ≡ 1 (mod stride).
    let rem = (lo - 1) % stride;
    let mut q = if rem == 0 {
        lo
    } else {
        lo.checked_add(stride - rem)
            .ok_or(ModMathError::NoPrimeFound { bits, stride })?
    };
    while q < hi {
        if is_prime(q) {
            return Ok(q);
        }
        q = match q.checked_add(stride) {
            Some(next) => next,
            None => break,
        };
    }
    Err(ModMathError::NoPrimeFound { bits, stride })
}

/// Finds the *largest* prime of exactly `bits` bits with `q ≡ 1 (mod stride)`.
///
/// Useful for HE-style parameter sets that want the modulus close to the top
/// of its bit range.
///
/// # Errors
///
/// Same conditions as [`find_ntt_prime`].
pub fn find_ntt_prime_high(bits: u32, stride: u64) -> Result<u64, ModMathError> {
    if !(3..=63).contains(&bits) {
        return Err(ModMathError::InvalidBitWidth { bits });
    }
    let lo = 1u64 << (bits - 1);
    let hi = 1u64 << bits;
    let mut q = hi - ((hi - 1) % stride); // largest value < hi with q ≡ 1 (mod stride)
    while q >= lo {
        if is_prime(q) {
            return Ok(q);
        }
        match q.checked_sub(stride) {
            Some(next) => q = next,
            None => break,
        }
    }
    Err(ModMathError::NoPrimeFound { bits, stride })
}

/// Sieve of Eratosthenes over `2..limit`, the cheap pre-filter in front
/// of Miller–Rabin when a basis search walks many candidates.
fn sieve_small_primes(limit: u64) -> Vec<u64> {
    let limit = limit.max(3) as usize;
    let mut composite = vec![false; limit];
    let mut primes = Vec::new();
    for p in 2..limit {
        if composite[p] {
            continue;
        }
        primes.push(p as u64);
        let mut m = p * p;
        while m < limit {
            composite[m] = true;
            m += p;
        }
    }
    primes
}

/// Finds the `count` smallest distinct NTT-friendly primes of exactly
/// `bits` bits for an `n`-point negacyclic NTT — every prime satisfies
/// `q ≡ 1 (mod 2n)`, so each supports the primitive `2n`-th root of
/// unity the transform needs. This is the residue-basis generator the
/// RNS/CRT layer builds on: `count` pairwise-coprime word-sized primes
/// whose product covers a multi-hundred-bit ciphertext modulus.
///
/// Candidates walk upward from `2^(bits-1)` in steps of `2n`; each is
/// pre-filtered by a small-prime sieve before the deterministic
/// Miller–Rabin test ([`is_prime`]) settles it, so the dominant cost on
/// a long walk is cheap trial division, not modular exponentiation.
///
/// # Errors
///
/// [`ModMathError::InvalidBitWidth`] for `bits` outside `3..=63`, and
/// [`ModMathError::NoPrimeFound`] when fewer than `count` such primes
/// exist below `2^bits` (or `count` is zero — an empty basis is a
/// caller bug worth failing loudly on).
///
/// # Example
///
/// ```
/// // A 3-limb basis of 14-bit primes for a 512-point negacyclic NTT.
/// let basis = bpntt_modmath::primes::find_ntt_primes(14, 512, 3)?;
/// assert_eq!(basis, vec![12289, 13313, 15361]);
/// # Ok::<(), bpntt_modmath::ModMathError>(())
/// ```
pub fn find_ntt_primes(bits: u32, n: u64, count: usize) -> Result<Vec<u64>, ModMathError> {
    if !(3..=63).contains(&bits) {
        return Err(ModMathError::InvalidBitWidth { bits });
    }
    let stride = n
        .checked_mul(2)
        .filter(|&s| s > 0)
        .ok_or(ModMathError::NoPrimeFound { bits, stride: n })?;
    let no_prime = ModMathError::NoPrimeFound { bits, stride };
    if count == 0 {
        return Err(no_prime);
    }
    let small = sieve_small_primes(1024);
    let lo = 1u64 << (bits - 1);
    let hi = 1u64 << bits;
    let rem = (lo - 1) % stride;
    let mut q = if rem == 0 {
        lo
    } else {
        lo.checked_add(stride - rem).ok_or(no_prime.clone())?
    };
    let mut primes = Vec::with_capacity(count);
    while q < hi && primes.len() < count {
        let sieved_out = small
            .iter()
            .take_while(|&&p| p.saturating_mul(p) <= q)
            .any(|&p| q != p && q.is_multiple_of(p));
        if !sieved_out && is_prime(q) {
            primes.push(q);
        }
        q = match q.checked_add(stride) {
            Some(next) => next,
            None => break,
        };
    }
    if primes.len() < count {
        return Err(no_prime);
    }
    Ok(primes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_and_composites() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 3329, 7681, 12289, 8380417];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        let composites = [0u64, 1, 4, 9, 91, 561, 3329 * 7681, 1 << 40];
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn large_primes() {
        // Largest 64-bit prime and a Carmichael-adjacent case.
        assert!(is_prime(18_446_744_073_709_551_557));
        assert!(!is_prime(18_446_744_073_709_551_555));
    }

    #[test]
    fn factors_of_known_values() {
        assert_eq!(distinct_prime_factors(1), Vec::<u64>::new());
        assert_eq!(distinct_prime_factors(2), vec![2]);
        assert_eq!(distinct_prime_factors(3328), vec![2, 13]); // Kyber q-1 = 2^8·13
        assert_eq!(distinct_prime_factors(8380416), vec![2, 3, 11, 31]); // Dilithium q-1 = 2^13·3·11·31... verified below
        let q = 8380417u64;
        let fs = distinct_prime_factors(q - 1);
        let mut prod_check = q - 1;
        for f in &fs {
            assert!(is_prime(*f));
            while prod_check.is_multiple_of(*f) {
                prod_check /= f;
            }
        }
        assert_eq!(prod_check, 1);
    }

    #[test]
    fn factors_of_semiprime() {
        let p = 1_000_003u64;
        let r = 999_983u64;
        let mut fs = distinct_prime_factors(p * r);
        fs.sort_unstable();
        assert_eq!(fs, vec![r, p]);
    }

    #[test]
    fn ntt_prime_search_matches_standards() {
        // Kyber: 12-bit prime with q ≡ 1 mod 256 (n=128 tree); 3329 = 13·256+1.
        assert_eq!(find_ntt_prime(12, 256).unwrap(), 3329);
        // Falcon: 14-bit prime, 2N = 1024 → 12289.
        assert_eq!(find_ntt_prime(14, 1024).unwrap(), 12289);
        // Dilithium: 23-bit prime, 2N = 512 → 8380417 is ≡ 1 mod 8192, check it's found for stride 512.
        let q = find_ntt_prime(23, 512).unwrap();
        assert!(is_prime(q) && q % 512 == 1 && (q >> 22) == 1);
    }

    #[test]
    fn ntt_prime_bounds_respected() {
        // 13-bit primes ≡ 1 mod 2048 do not exist (only 4097 and 6145 are
        // candidates, both composite) — widths start at 14 for stride 2048.
        assert!(find_ntt_prime(13, 2048).is_err());
        for bits in [14u32, 16, 21, 29, 31] {
            let q = find_ntt_prime(bits, 2048).unwrap();
            assert!(is_prime(q));
            assert_eq!(q % 2048, 1);
            assert_eq!(
                64 - q.leading_zeros(),
                bits,
                "q={q} not exactly {bits} bits"
            );
            let qh = find_ntt_prime_high(bits, 2048).unwrap();
            assert!(is_prime(qh) && qh % 2048 == 1 && qh >= q);
        }
    }

    #[test]
    fn ntt_prime_rejects_bad_width() {
        assert!(find_ntt_prime(2, 8).is_err());
        assert!(find_ntt_prime(64, 8).is_err());
    }

    #[test]
    fn ntt_primes_match_exhaustive_search() {
        // Every (bits, n) small case is cross-checked against a brute
        // force walk over the full bit range: the generator must return
        // exactly the first `count` primes ≡ 1 mod 2n, in order.
        for (bits, n) in [(10u32, 4u64), (12, 64), (12, 128), (14, 256), (16, 256)] {
            let stride = 2 * n;
            let all: Vec<u64> = ((1u64 << (bits - 1))..(1u64 << bits))
                .filter(|q| q % stride == 1 && is_prime(*q))
                .collect();
            assert!(!all.is_empty(), "no primes for bits={bits} n={n}");
            for count in 1..=all.len() {
                assert_eq!(
                    find_ntt_primes(bits, n, count).unwrap(),
                    all[..count],
                    "bits={bits} n={n} count={count}"
                );
            }
            // Asking for one more than exists fails typed.
            assert_eq!(
                find_ntt_primes(bits, n, all.len() + 1),
                Err(ModMathError::NoPrimeFound { bits, stride })
            );
        }
    }

    #[test]
    fn ntt_primes_agree_with_single_prime_search() {
        for (bits, n) in [(14u32, 128u64), (14, 512), (23, 256), (30, 256)] {
            let primes = find_ntt_primes(bits, n, 3).unwrap();
            assert_eq!(primes[0], find_ntt_prime(bits, 2 * n).unwrap());
            assert_eq!(primes.len(), 3);
            for w in primes.windows(2) {
                assert!(w[0] < w[1], "ascending and distinct: {primes:?}");
            }
            for &q in &primes {
                assert!(is_prime(q));
                assert_eq!(q % (2 * n), 1);
                assert_eq!(64 - q.leading_zeros(), bits);
            }
        }
    }

    #[test]
    fn ntt_primes_reject_degenerate_requests() {
        assert_eq!(
            find_ntt_primes(2, 8, 1),
            Err(ModMathError::InvalidBitWidth { bits: 2 })
        );
        assert_eq!(
            find_ntt_primes(64, 8, 1),
            Err(ModMathError::InvalidBitWidth { bits: 64 })
        );
        // Zero-count and overflow-stride requests fail typed, not panic.
        assert!(find_ntt_primes(12, 128, 0).is_err());
        assert!(find_ntt_primes(12, u64::MAX, 1).is_err());
        // 13-bit primes ≡ 1 mod 2048 do not exist.
        assert!(find_ntt_primes(13, 1024, 1).is_err());
    }

    #[test]
    fn sieve_matches_is_prime() {
        let sieved = sieve_small_primes(1024);
        let expect: Vec<u64> = (2..1024).filter(|&x| is_prime(x)).collect();
        assert_eq!(sieved, expect);
    }
}
