//! Primitive roots and roots of unity in `Z_q`.
//!
//! The NTT needs a primitive `N`-th root of unity `ω`, and the negacyclic
//! ("x^N + 1") variant used by all lattice schemes additionally needs a
//! primitive `2N`-th root `ψ` with `ψ² = ω`. This module finds both from a
//! generator of `Z_q*`.

use crate::error::ModMathError;
use crate::primes::distinct_prime_factors;
use crate::zq::pow_mod;

/// Finds the smallest primitive root (generator of `Z_q*`) for prime `q`.
///
/// # Errors
///
/// Returns [`ModMathError::ModulusTooSmall`] for `q < 3`. Behaviour is
/// unspecified for composite `q` (the search may loop over all residues and
/// fail); callers are expected to pass primes.
///
/// # Example
///
/// ```
/// assert_eq!(bpntt_modmath::roots::primitive_root(7).unwrap(), 3);
/// assert_eq!(bpntt_modmath::roots::primitive_root(3329).unwrap(), 3);
/// ```
pub fn primitive_root(q: u64) -> Result<u64, ModMathError> {
    if q < 3 {
        return Err(ModMathError::ModulusTooSmall { modulus: q });
    }
    let phi = q - 1;
    let factors = distinct_prime_factors(phi);
    'candidate: for g in 2..q {
        for f in &factors {
            if pow_mod(g, phi / f, q) == 1 {
                continue 'candidate;
            }
        }
        return Ok(g);
    }
    Err(ModMathError::NoRootOfUnity {
        order: phi,
        modulus: q,
    })
}

/// Finds a primitive `order`-th root of unity modulo prime `q`.
///
/// The returned element `r` satisfies `r^order = 1` and `r^(order/p) ≠ 1`
/// for every prime `p | order`.
///
/// # Errors
///
/// Returns [`ModMathError::NoRootOfUnity`] when `order ∤ q − 1`, and
/// propagates failures of [`primitive_root`].
///
/// # Example
///
/// ```
/// use bpntt_modmath::{roots, zq};
/// let omega = roots::primitive_nth_root(256, 3329)?;
/// assert_eq!(zq::pow_mod(omega, 256, 3329), 1);
/// assert_ne!(zq::pow_mod(omega, 128, 3329), 1);
/// # Ok::<(), bpntt_modmath::ModMathError>(())
/// ```
pub fn primitive_nth_root(order: u64, q: u64) -> Result<u64, ModMathError> {
    if order == 0 || !(q - 1).is_multiple_of(order) {
        return Err(ModMathError::NoRootOfUnity { order, modulus: q });
    }
    let g = primitive_root(q)?;
    let r = pow_mod(g, (q - 1) / order, q);
    debug_assert!(is_primitive_root_of_order(r, order, q));
    Ok(r)
}

/// Checks that `r` has exact multiplicative order `order` modulo `q`.
///
/// # Example
///
/// ```
/// assert!(bpntt_modmath::roots::is_primitive_root_of_order(6, 2, 7)); // 6 ≡ −1
/// assert!(!bpntt_modmath::roots::is_primitive_root_of_order(2, 2, 7));
/// ```
#[must_use]
pub fn is_primitive_root_of_order(r: u64, order: u64, q: u64) -> bool {
    if pow_mod(r, order, q) != 1 {
        return false;
    }
    distinct_prime_factors(order)
        .iter()
        .all(|p| pow_mod(r, order / p, q) != 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zq::mul_mod;

    #[test]
    fn primitive_roots_of_known_primes() {
        for (q, g) in [
            (3u64, 2u64),
            (5, 2),
            (7, 3),
            (17, 3),
            (3329, 3),
            (12289, 11),
        ] {
            assert_eq!(primitive_root(q).unwrap(), g, "primitive root of {q}");
        }
    }

    #[test]
    fn rejects_tiny_modulus() {
        assert!(primitive_root(2).is_err());
        assert!(primitive_root(0).is_err());
    }

    #[test]
    fn nth_roots_have_exact_order() {
        for q in [3329u64, 7681, 12289, 8380417] {
            let mut order = 2u64;
            while (q - 1) % order == 0 && order <= 8192 {
                let r = primitive_nth_root(order, q).unwrap();
                assert!(
                    is_primitive_root_of_order(r, order, q),
                    "order {order} mod {q}"
                );
                order *= 2;
            }
        }
    }

    #[test]
    fn psi_squared_is_omega() {
        let q = 3329u64;
        let psi = primitive_nth_root(256, q).unwrap(); // 2N = 256 for Kyber's 128-point layer
        let omega = primitive_nth_root(128, q).unwrap();
        // ψ² is *a* primitive 128-th root; it generates the same subgroup as ω.
        let psi2 = mul_mod(psi, psi, q);
        assert!(is_primitive_root_of_order(psi2, 128, q));
        assert!(is_primitive_root_of_order(omega, 128, q));
    }

    #[test]
    fn rejects_orders_not_dividing_group() {
        assert!(primitive_nth_root(0, 17).is_err());
        assert!(primitive_nth_root(5, 17).is_err());
        assert!(primitive_nth_root(32, 17).is_err());
    }
}
