//! RNS execution: fanning residue limbs across sharded engines.
//!
//! [`bpntt_rns`] supplies the math — validated prime bases, big-integer
//! coefficients, CRT decompose/reconstruct. This module supplies the
//! execution: an [`RnsContext`] owns one [`ShardedBpNtt`] **per limb
//! prime**, carved out of a single shard budget, and runs all limbs of
//! a big-modulus request concurrently as one *RNS wave*.
//!
//! # Why one engine per limb (and not mixed-prime chunks)
//!
//! Compiled programs, the fused word-engine emitters, and the generic
//! executor are all specialized to a single modulus `q` — an engine's
//! kernels bake `q` into the instruction stream. Chunks of different
//! primes therefore cannot share one physical shard set; what *can* be
//! shared is the wall-clock window. Limbs are embarrassingly parallel
//! (no cross-limb data flow until CRT reconstruction), so the context
//! splits its shard budget `S` into `⌊S/L⌋` shards per limb and fans
//! the limbs out with scoped threads. A single-limb request leaves
//! `S−⌊S/L⌋·1`-ish of the budget idle; an L-limb request fills `L`
//! slices of it at once — exactly the wave-occupancy gap the service
//! benchmarks keep reporting.
//!
//! # Plan sharing
//!
//! Compiled pipelines are keyed by `(backend, geometry, q, spec)` in a
//! shareable [`RnsPlanCache`]. Two contexts over the same basis (or
//! overlapping bases) compile each limb's plan once; later contexts
//! import the `Arc` and count a hit — the same discipline as the
//! service's cross-tenant cache, usable without a service.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use bpntt_rns::{BigUint, RnsBasis, RnsError};
use bpntt_sram::FaultPlan;

use crate::backend::BackendKind;
use crate::config::BpNttConfig;
use crate::error::BpNttError;
use crate::pipeline::{CompiledPipeline, ExecMode, PipelineSpec};
use crate::sharded::{RecoveryOptions, RecoveryReport, ShardedBpNtt};

/// Cache key: everything a compiled pipeline is specialized to.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    backend: BackendKind,
    n: usize,
    q: u64,
    rows: usize,
    cols: usize,
    bitwidth: usize,
    spec: PipelineSpec,
}

#[derive(Debug, Default)]
struct PlanCacheInner {
    plans: HashMap<PlanKey, Arc<CompiledPipeline>>,
    hits: u64,
}

/// A shareable compiled-plan cache for RNS contexts.
///
/// Clones share storage: hand one cache to several [`RnsContext`]s and
/// limbs with the same `(backend, geometry, prime, spec)` compile once.
/// [`hits`](Self::hits) counts every import that avoided a compile.
#[derive(Debug, Clone, Default)]
pub struct RnsPlanCache {
    inner: Arc<Mutex<PlanCacheInner>>,
}

impl RnsPlanCache {
    /// A fresh, empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct compiled plans held.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.inner.lock().expect("plan cache poisoned").plans.len()
    }

    /// How many compiles were avoided by importing a cached plan.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.inner.lock().expect("plan cache poisoned").hits
    }
}

/// What one RNS wave looked like: how full the shard budget was and
/// where the time went.
#[derive(Debug, Clone, Default)]
pub struct RnsWaveReport {
    /// Shards that claimed work, summed over limbs.
    pub participating: usize,
    /// Total shards across all limb engines (the budget).
    pub capacity: usize,
    /// `participating / capacity` — the fan-out occupancy.
    pub occupancy: f64,
    /// Wall-clock seconds of the whole fan-out (decompose and
    /// reconstruction excluded; this is the engine window).
    pub wall_secs: f64,
    /// Per-limb wall-clock estimate: the slowest shard of each limb.
    pub limb_secs: Vec<f64>,
}

/// Executes big-modulus polynomial pipelines by RNS limb fan-out.
///
/// One sharded engine per limb prime, all sharing a geometry and a
/// backend; [`run_rns_batch`](Self::run_rns_batch) decomposes
/// big-integer inputs, runs every limb concurrently, and CRT-recombines
/// the outputs. See the module docs for the design rationale.
#[derive(Debug)]
pub struct RnsContext {
    basis: Arc<RnsBasis>,
    engines: Vec<ShardedBpNtt>,
    backend: BackendKind,
    rows: usize,
    cols: usize,
    bitwidth: usize,
    cache: RnsPlanCache,
    last_wave: RnsWaveReport,
}

impl RnsContext {
    /// Builds a context with a private plan cache. `shards_total` is the
    /// whole budget; each of the `L` limbs gets `max(1, shards_total/L)`
    /// shards.
    ///
    /// # Errors
    ///
    /// Propagates engine construction failures — e.g.
    /// [`BpNttError::NoHeadroom`] when a limb prime does not fit
    /// `bitwidth`-bit words with a spare bit.
    pub fn new(
        basis: Arc<RnsBasis>,
        rows: usize,
        cols: usize,
        bitwidth: usize,
        shards_total: usize,
        backend: BackendKind,
    ) -> Result<Self, BpNttError> {
        Self::with_plan_cache(
            basis,
            rows,
            cols,
            bitwidth,
            shards_total,
            backend,
            RnsPlanCache::new(),
        )
    }

    /// As [`new`](Self::new), but sharing `cache` with other contexts so
    /// repeated limb primes import compiled plans instead of recompiling.
    pub fn with_plan_cache(
        basis: Arc<RnsBasis>,
        rows: usize,
        cols: usize,
        bitwidth: usize,
        shards_total: usize,
        backend: BackendKind,
        cache: RnsPlanCache,
    ) -> Result<Self, BpNttError> {
        let limbs = basis.limbs();
        let shards_per_limb = (shards_total / limbs).max(1);
        let engines = basis
            .params()
            .iter()
            .map(|p| {
                let cfg = BpNttConfig::new(rows, cols, bitwidth, p.clone())?;
                ShardedBpNtt::with_backend(&cfg, shards_per_limb, backend)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RnsContext {
            basis,
            engines,
            backend,
            rows,
            cols,
            bitwidth,
            cache,
            last_wave: RnsWaveReport::default(),
        })
    }

    /// The basis this context executes over.
    #[must_use]
    pub fn basis(&self) -> &Arc<RnsBasis> {
        &self.basis
    }

    /// Number of limbs `L`.
    #[must_use]
    pub fn limbs(&self) -> usize {
        self.engines.len()
    }

    /// Shards per limb engine.
    #[must_use]
    pub fn shards_per_limb(&self) -> usize {
        self.engines[0].shards()
    }

    /// Total shards across all limb engines.
    #[must_use]
    pub fn shards_total(&self) -> usize {
        self.engines.iter().map(ShardedBpNtt::shards).sum()
    }

    /// The backend kind every limb runs on.
    #[must_use]
    pub fn backend_kind(&self) -> BackendKind {
        self.backend
    }

    /// The shared plan cache (clone it into sibling contexts).
    #[must_use]
    pub fn plan_cache(&self) -> RnsPlanCache {
        self.cache.clone()
    }

    /// One limb's engine, for inspection (stats, recovery reports).
    ///
    /// # Panics
    ///
    /// Panics if `limb` is out of range.
    #[must_use]
    pub fn engine(&self, limb: usize) -> &ShardedBpNtt {
        &self.engines[limb]
    }

    /// Configures the detect→retry→quarantine→degrade ladder on every
    /// limb engine.
    pub fn set_recovery(&mut self, opts: RecoveryOptions) {
        for e in &mut self.engines {
            e.set_recovery(opts);
        }
    }

    /// Installs a fault plan on one limb's shards (chaos drills corrupt
    /// a single limb; the others stay clean).
    ///
    /// # Panics
    ///
    /// Panics if `limb` is out of range.
    pub fn install_fault_plan_on_limb(&mut self, limb: usize, plan: &FaultPlan) {
        self.engines[limb].install_fault_plan(plan);
    }

    /// Clears fault plans on every limb engine.
    pub fn clear_fault_plans(&mut self) {
        for e in &mut self.engines {
            let _ = e.clear_fault_plans();
        }
    }

    /// One limb's recovery report for its most recent wave.
    ///
    /// # Panics
    ///
    /// Panics if `limb` is out of range.
    #[must_use]
    pub fn last_recovery(&self, limb: usize) -> &RecoveryReport {
        self.engines[limb].last_recovery()
    }

    /// The most recent RNS wave's occupancy/timing report.
    #[must_use]
    pub fn last_wave(&self) -> &RnsWaveReport {
        &self.last_wave
    }

    /// Ensures every limb engine holds a compiled pipeline for `spec`,
    /// importing from the shared cache where possible (hit) and
    /// compiling + publishing otherwise (miss). Idempotent; called
    /// automatically by the run methods.
    ///
    /// # Errors
    ///
    /// Propagates pipeline validation/compilation failures.
    pub fn compile(&mut self, spec: &PipelineSpec) -> Result<(), BpNttError> {
        for (engine, &q) in self.engines.iter_mut().zip(self.basis.primes()) {
            if engine.has_pipeline(spec) {
                continue;
            }
            let key = PlanKey {
                backend: self.backend,
                n: self.basis.n(),
                q,
                rows: self.rows,
                cols: self.cols,
                bitwidth: self.bitwidth,
                spec: spec.clone(),
            };
            let mut cache = self.cache.inner.lock().expect("plan cache poisoned");
            if let Some(pipe) = cache.plans.get(&key) {
                let pipe = Arc::clone(pipe);
                cache.hits += 1;
                drop(cache);
                engine.import_pipeline(&pipe);
            } else {
                drop(cache);
                let pipe = engine.warm_pipeline(spec)?;
                let mut cache = self.cache.inner.lock().expect("plan cache poisoned");
                cache.plans.insert(key, pipe);
            }
        }
        Ok(())
    }

    /// Runs one big-modulus pipeline over a batch, limbs fanned out
    /// concurrently. `inputs` is slot-major like
    /// [`ShardedBpNtt::run_pipeline_batch`]: one batch of degree-`n`
    /// big-integer polynomials (coefficients `< Q`) per declared input
    /// slot, all batches of equal length. Returns the output batch,
    /// CRT-reconstructed to coefficients `< Q`.
    ///
    /// # Errors
    ///
    /// [`BpNttError::Rns`] for decomposition failures (wrong length,
    /// unreduced coefficients); otherwise the first limb failure, after
    /// every limb has stopped.
    pub fn run_rns_batch(
        &mut self,
        spec: &PipelineSpec,
        mode: ExecMode,
        inputs: &[&[Vec<BigUint>]],
    ) -> Result<Vec<Vec<BigUint>>, BpNttError> {
        self.compile(spec)?;
        let limb_inputs = self.decompose_slots(inputs)?;
        let limbs = self.engines.len();

        // Fan out: scoped threads, one per limb, each owning a disjoint
        // &mut engine. The scope joins everything even on error.
        let t0 = Instant::now();
        let mut results: Vec<Option<Result<Vec<Vec<u64>>, BpNttError>>> =
            (0..limbs).map(|_| None).collect();
        std::thread::scope(|scope| {
            for ((engine, slots), out) in self
                .engines
                .iter_mut()
                .zip(&limb_inputs)
                .zip(results.iter_mut())
            {
                scope.spawn(move || {
                    let slot_refs: Vec<&[Vec<u64>]> = slots.iter().map(Vec::as_slice).collect();
                    *out = Some(engine.run_pipeline_batch(spec, mode, &slot_refs));
                });
            }
        });
        let wall_secs = t0.elapsed().as_secs_f64();

        let participating: usize = self
            .engines
            .iter()
            .map(|e| e.last_wave_shard_secs().len())
            .sum();
        let capacity = self.shards_total();
        self.last_wave = RnsWaveReport {
            participating,
            capacity,
            occupancy: participating as f64 / capacity as f64,
            wall_secs,
            limb_secs: self
                .engines
                .iter()
                .map(|e| e.last_wave_shard_secs().iter().copied().fold(0.0, f64::max))
                .collect(),
        };

        let mut limb_outputs = Vec::with_capacity(limbs);
        for r in results {
            limb_outputs.push(r.expect("every limb thread ran")?);
        }
        self.reconstruct_batch(limb_outputs)
    }

    /// As [`run_rns_batch`](Self::run_rns_batch) but with the limbs run
    /// one after another on the same engines — the sequential baseline
    /// the bench compares fan-out against. Results are identical.
    ///
    /// # Errors
    ///
    /// As [`run_rns_batch`](Self::run_rns_batch).
    pub fn run_limbs_sequential(
        &mut self,
        spec: &PipelineSpec,
        mode: ExecMode,
        inputs: &[&[Vec<BigUint>]],
    ) -> Result<Vec<Vec<BigUint>>, BpNttError> {
        self.compile(spec)?;
        let limb_inputs = self.decompose_slots(inputs)?;
        let t0 = Instant::now();
        let mut limb_outputs = Vec::with_capacity(self.engines.len());
        let mut limb_secs = Vec::with_capacity(self.engines.len());
        let mut participating = 0usize;
        for (engine, slots) in self.engines.iter_mut().zip(&limb_inputs) {
            let slot_refs: Vec<&[Vec<u64>]> = slots.iter().map(Vec::as_slice).collect();
            limb_outputs.push(engine.run_pipeline_batch(spec, mode, &slot_refs)?);
            // Sequential limbs never overlap, so the budget-wide view
            // only ever sees one limb's shards busy at a time.
            participating = participating.max(engine.last_wave_shard_secs().len());
            limb_secs.push(
                engine
                    .last_wave_shard_secs()
                    .iter()
                    .copied()
                    .fold(0.0, f64::max),
            );
        }
        let capacity = self.shards_total();
        self.last_wave = RnsWaveReport {
            participating,
            capacity,
            occupancy: participating as f64 / capacity as f64,
            wall_secs: t0.elapsed().as_secs_f64(),
            limb_secs,
        };
        self.reconstruct_batch(limb_outputs)
    }

    /// Single-request convenience: one polynomial per input slot.
    ///
    /// # Errors
    ///
    /// As [`run_rns_batch`](Self::run_rns_batch).
    pub fn run_rns(
        &mut self,
        spec: &PipelineSpec,
        mode: ExecMode,
        inputs: &[Vec<BigUint>],
    ) -> Result<Vec<BigUint>, BpNttError> {
        let slot_batches: Vec<Vec<Vec<BigUint>>> =
            inputs.iter().map(|poly| vec![poly.clone()]).collect();
        let slot_refs: Vec<&[Vec<BigUint>]> = slot_batches.iter().map(Vec::as_slice).collect();
        let mut out = self.run_rns_batch(spec, mode, &slot_refs)?;
        Ok(out.pop().expect("batch of one yields one output"))
    }

    /// Decomposes slot-major big-integer batches into per-limb
    /// slot-major residue batches: result `[limb][slot][batch_item]`.
    fn decompose_slots(
        &self,
        inputs: &[&[Vec<BigUint>]],
    ) -> Result<Vec<Vec<Vec<Vec<u64>>>>, RnsError> {
        let limbs = self.basis.limbs();
        let mut out = vec![vec![Vec::new(); inputs.len()]; limbs];
        for (slot, batch) in inputs.iter().enumerate() {
            for poly in batch.iter() {
                let residues = self.basis.decompose_poly(poly)?;
                for (limb, residue_poly) in residues.into_iter().enumerate() {
                    out[limb][slot].push(residue_poly);
                }
            }
        }
        Ok(out)
    }

    /// CRT-recombines batch-major limb outputs into big coefficients.
    fn reconstruct_batch(
        &self,
        limb_outputs: Vec<Vec<Vec<u64>>>,
    ) -> Result<Vec<Vec<BigUint>>, BpNttError> {
        let batch = limb_outputs.first().map_or(0, Vec::len);
        let mut out = Vec::with_capacity(batch);
        let mut point = Vec::with_capacity(self.basis.limbs());
        for b in 0..batch {
            point.clear();
            for limb in &limb_outputs {
                point.push(limb[b].clone());
            }
            out.push(self.basis.reconstruct_poly(&point)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpntt_rns::reference;

    const N: usize = 64;
    /// 14-bit primes ≡ 1 mod 1024, so valid for any n ≤ 512.
    const PRIMES: [u64; 3] = [12289, 13313, 15361];

    fn ctx(shards_total: usize) -> RnsContext {
        let basis = Arc::new(RnsBasis::new(N, &PRIMES).unwrap());
        RnsContext::new(basis, 140, 128, 16, shards_total, BackendKind::Sim).unwrap()
    }

    fn test_polys(seed: u64, basis: &RnsBasis) -> Vec<BigUint> {
        // Deterministic pseudo-random coefficients below Q.
        let modulus = basis.modulus();
        (0..basis.n())
            .map(|i| {
                let x = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(i as u64)
                    .wrapping_mul(0xbf58_476d_1ce4_e5b9);
                BigUint::from_u64(x).rem(modulus)
            })
            .collect()
    }

    #[test]
    fn rns_polymul_matches_bigint_reference() {
        let mut ctx = ctx(6);
        let a = test_polys(1, ctx.basis());
        let b = test_polys(2, ctx.basis());
        let expect = reference::negacyclic_polymul_basis(&a, &b, ctx.basis()).unwrap();
        let got = ctx
            .run_rns(&PipelineSpec::polymul(), ExecMode::Replay, &[a, b])
            .unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn fanned_equals_sequential_and_fills_more_shards() {
        let mut ctx = ctx(6);
        let a = test_polys(3, ctx.basis());
        let b = test_polys(4, ctx.basis());
        let slots = [vec![a], vec![b]];
        let refs: Vec<&[Vec<BigUint>]> = slots.iter().map(Vec::as_slice).collect();
        let spec = PipelineSpec::polymul();
        let fanned = ctx.run_rns_batch(&spec, ExecMode::Replay, &refs).unwrap();
        let fan_report = ctx.last_wave().clone();
        let sequential = ctx
            .run_limbs_sequential(&spec, ExecMode::Replay, &refs)
            .unwrap();
        let seq_report = ctx.last_wave().clone();
        assert_eq!(fanned, sequential);
        // One polynomial occupies one shard per limb: 3 concurrent vs 1
        // at a time sequentially, out of the same budget of 6.
        assert_eq!(fan_report.capacity, 6);
        assert_eq!(fan_report.participating, 3);
        assert_eq!(seq_report.participating, 1);
        assert!(fan_report.occupancy > seq_report.occupancy);
        assert_eq!(fan_report.limb_secs.len(), 3);
    }

    #[test]
    fn sibling_contexts_share_compiled_plans() {
        let mut first = ctx(3);
        let spec = PipelineSpec::polymul();
        first.compile(&spec).unwrap();
        assert_eq!(first.plan_cache().hits(), 0);
        assert_eq!(first.plan_cache().entries(), 3);

        let mut second = RnsContext::with_plan_cache(
            Arc::clone(first.basis()),
            140,
            128,
            16,
            3,
            BackendKind::Sim,
            first.plan_cache(),
        )
        .unwrap();
        second.compile(&spec).unwrap();
        // Every limb of the second context imported instead of compiling.
        assert_eq!(first.plan_cache().hits(), 3);
        assert_eq!(first.plan_cache().entries(), 3);
        // Idempotent: recompiling is a no-op, not another round of hits.
        second.compile(&spec).unwrap();
        assert_eq!(first.plan_cache().hits(), 3);
    }

    #[test]
    fn shard_budget_is_split_across_limbs() {
        let ctx = ctx(7);
        assert_eq!(ctx.limbs(), 3);
        assert_eq!(ctx.shards_per_limb(), 2); // 7 / 3, floor, min 1
        assert_eq!(ctx.shards_total(), 6);
        let tiny = ctx_with_shards(1);
        assert_eq!(tiny.shards_per_limb(), 1); // never starves a limb
    }

    fn ctx_with_shards(shards_total: usize) -> RnsContext {
        let basis = Arc::new(RnsBasis::new(N, &PRIMES).unwrap());
        RnsContext::new(basis, 140, 128, 16, shards_total, BackendKind::Sim).unwrap()
    }

    #[test]
    fn rejects_unreduced_and_misshaped_inputs() {
        let mut ctx = ctx(3);
        let spec = PipelineSpec::polymul();
        let good = test_polys(5, ctx.basis());
        let short = good[..N - 1].to_vec();
        let err = ctx
            .run_rns(&spec, ExecMode::Replay, &[good.clone(), short])
            .unwrap_err();
        assert!(matches!(
            err,
            BpNttError::Rns(RnsError::WrongLength { expected: N, actual }) if actual == N - 1
        ));
        let mut unreduced = good.clone();
        unreduced[7] = ctx.basis().modulus().clone();
        let err = ctx
            .run_rns(&spec, ExecMode::Replay, &[good, unreduced])
            .unwrap_err();
        assert!(matches!(
            err,
            BpNttError::Rns(RnsError::Unreduced { index: 7 })
        ));
    }
}
