//! In-SRAM kernel code generation: Algorithm 2 and the butterfly arithmetic.
//!
//! Every routine here emits BP-NTT instructions into an
//! [`InstrSink`] — either a live [`Controller`](bpntt_sram::Controller)
//! (execute-as-emitted, the classic path) or a
//! [`Recorder`](bpntt_sram::Recorder) (capture once, replay many times
//! through [`Controller::run_compiled`](bpntt_sram::Controller::run_compiled)).
//! Generation uses only the row budget of the layout's [`RowMap`]: the
//! carry-save accumulator (`Sum`, `Carry`), two half-adder temporaries, and
//! the two constant rows (`M`, `2^w − M`). Shift discipline follows
//! `DESIGN.md` D1/D2:
//!
//! * the `Carry << 1` realignment of Algorithm 2 uses a **global** shift —
//!   the end-of-iteration carry provably has a clear MSB in every tile
//!   whenever `M < 2^(w−1)`, *independent of the data*, so nothing ever
//!   crosses a tile boundary (the paper's Observation 1);
//! * the Montgomery halving and all resolution loops use **tile-masked**
//!   shifts, giving exact mod-`2^w` semantics per tile even for tiles
//!   holding staging garbage during cross-tile SIMD.
//!
//! The carry/borrow resolution loops terminate early through the wired-OR
//! zero detector. That is the *only* data dependence in the instruction
//! stream, and it is expressed as a structured
//! [`ZeroLoopSpec`] so a recorded program replays the exact
//! dynamic trace emission would produce.
//!
//! The multiplier of a modular multiplication is either a compile-time
//! constant (twiddle factors of a single-lane-per-tile schedule — the
//! multiplier is "hidden in the control commands", §IV-D) or a per-tile
//! value in a row, consumed bit-by-bit through `Check` predication (used by
//! pointwise multiplication and by multi-tile schedules where each tile
//! needs a different twiddle).
//!
//! **The emitted instruction shapes are a contract.** The replay
//! compiler's peephole pass (`bpntt_sram::program`) pattern-matches the
//! exact sequences this module emits — the add-B and halve steps, the
//! resolution-round bodies, and the butterfly epilogues (the carry-save
//! and borrow-save initiators, `cond_sub_q`'s conditional copy,
//! `add_mod`'s conditional select, `sub_mod`'s sign-fix) — and lowers
//! each to a single-pass word-engine superop. The *emit path is bound by
//! the same contract*: `ExecMode::FusedEmit` streams these emissions
//! through `bpntt_sram::FusedSink`, which runs the identical matchers
//! online (same shapes, same order, same chain accumulation) and
//! executes matched groups through the fused executors. Reordering or
//! reshaping an emission here silently degrades *both* replay and fused
//! emission to the generic path (it stays correct — equivalence
//! proptests still pass — but the benchmarks regress and the fast-path
//! coverage counters `FastPathStats` drop to zero, which the CI
//! coverage assertion catches); update the matchers alongside any
//! change. Pipeline segments (`bpntt_core::pipeline`) compile each op
//! through these same emitters, one program per op — the segment
//! boundary is an op boundary, so a fusion or matcher change never has
//! to reason across ops.

use crate::error::BpNttError;
use crate::layout::RowMap;
use bpntt_sram::{
    BitOp, InstrSink, Instruction, PredMode, RowAddr, ShiftDir, UnaryKind, ZeroLoopSpec,
};

/// Emits in-SRAM arithmetic kernels for one modulus / bit-width pair.
#[derive(Debug, Clone, Copy)]
pub struct Kernels {
    rm: RowMap,
    q: u64,
    bitwidth: usize,
}

impl Kernels {
    /// Creates a kernel emitter.
    ///
    /// The caller (the engine) guarantees `q < 2^(bitwidth−1)` — validated
    /// by [`BpNttConfig`](crate::BpNttConfig).
    #[must_use]
    pub fn new(rm: RowMap, q: u64, bitwidth: usize) -> Self {
        debug_assert!(bitwidth == 64 || q < (1u64 << (bitwidth - 1)));
        Kernels { rm, q, bitwidth }
    }

    /// The row map in use.
    #[must_use]
    pub fn rowmap(&self) -> &RowMap {
        &self.rm
    }

    fn exec<S: InstrSink>(&self, sink: &mut S, i: Instruction) -> Result<(), BpNttError> {
        sink.emit(i)?;
        Ok(())
    }

    // ---- Algorithm 2 ----------------------------------------------------

    /// `Sum ← a · B · R⁻¹` in carry-save form, with the multiplier `a` a
    /// compile-time constant (twiddles pre-scaled by `R`). Leaves the
    /// accumulator in `(Sum, Carry)`; follow with [`Self::resolve`] and
    /// [`Self::cond_sub_q`].
    ///
    /// # Errors
    ///
    /// Propagates simulator faults (bad rows — a codegen bug, not a user
    /// input).
    pub fn modmul_const<S: InstrSink>(
        &self,
        sink: &mut S,
        b_row: RowAddr,
        a: u64,
    ) -> Result<(), BpNttError> {
        let rm = &self.rm;
        self.exec(
            sink,
            Instruction::Unary {
                dst: rm.sum,
                src: rm.sum,
                kind: UnaryKind::Zero,
                pred: PredMode::Always,
            },
        )?;
        self.exec(
            sink,
            Instruction::Unary {
                dst: rm.carry,
                src: rm.carry,
                kind: UnaryKind::Zero,
                pred: PredMode::Always,
            },
        )?;
        for i in 0..self.bitwidth {
            if (a >> i) & 1 == 1 {
                self.add_b_step(sink, b_row, PredMode::Always)?;
            }
            self.montgomery_halve_step(sink)?;
        }
        Ok(())
    }

    /// `Sum ← A · B · R⁻¹` in carry-save form with the multiplier read from
    /// `a_row` (per-tile values, consumed via `Check` predication). Used by
    /// pointwise multiplication and per-tile-twiddle schedules. Runs in
    /// data-independent time (every iteration executes the same
    /// instructions).
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn modmul_data<S: InstrSink>(
        &self,
        sink: &mut S,
        b_row: RowAddr,
        a_row: RowAddr,
    ) -> Result<(), BpNttError> {
        let rm = &self.rm;
        self.exec(
            sink,
            Instruction::Unary {
                dst: rm.sum,
                src: rm.sum,
                kind: UnaryKind::Zero,
                pred: PredMode::Always,
            },
        )?;
        self.exec(
            sink,
            Instruction::Unary {
                dst: rm.carry,
                src: rm.carry,
                kind: UnaryKind::Zero,
                pred: PredMode::Always,
            },
        )?;
        for i in 0..self.bitwidth {
            self.exec(
                sink,
                Instruction::Check {
                    src: a_row,
                    bit: i as u16,
                },
            )?;
            self.add_b_step(sink, b_row, PredMode::IfSet)?;
            self.montgomery_halve_step(sink)?;
        }
        Ok(())
    }

    /// Lines 6–9 of Algorithm 2: `P ← P + B` as two half-adder passes.
    fn add_b_step<S: InstrSink>(
        &self,
        sink: &mut S,
        b_row: RowAddr,
        pred: PredMode,
    ) -> Result<(), BpNttError> {
        let rm = &self.rm;
        // c1, s1 = Sum & B, Sum ⊕ B — one activation, two write-backs.
        self.exec(
            sink,
            Instruction::Binary {
                dst: rm.t_carry,
                op: BitOp::And,
                src0: rm.sum,
                src1: b_row,
                dst2: Some((rm.t_sum, BitOp::Xor)),
                shift: None,
                pred,
            },
        )?;
        // Carry << 1 (Observation 1: global shift is safe — the previous
        // iteration's carry MSB is clear in every tile).
        self.exec(
            sink,
            Instruction::Shift {
                dst: rm.carry,
                src: rm.carry,
                dir: ShiftDir::Left,
                masked: false,
                pred,
            },
        )?;
        // c2, Sum = Carry & s1, Carry ⊕ s1 — write c2 over Carry itself.
        self.exec(
            sink,
            Instruction::Binary {
                dst: rm.carry,
                op: BitOp::And,
                src0: rm.carry,
                src1: rm.t_sum,
                dst2: Some((rm.sum, BitOp::Xor)),
                shift: None,
                pred,
            },
        )?;
        // Carry = c1 | c2.
        self.exec(
            sink,
            Instruction::Binary {
                dst: rm.carry,
                op: BitOp::Or,
                src0: rm.carry,
                src1: rm.t_carry,
                dst2: None,
                shift: None,
                pred,
            },
        )
    }

    /// Lines 11–16 of Algorithm 2: `m ← LSB(Sum) ? M : 0`, then
    /// `P ← (P + m) / 2`. The `m` selection is per-tile predication on the
    /// constant row `M` — no materialized `m` row is needed, which is what
    /// keeps the reserved-row budget at the paper's six.
    fn montgomery_halve_step<S: InstrSink>(&self, sink: &mut S) -> Result<(), BpNttError> {
        let rm = &self.rm;
        self.exec(
            sink,
            Instruction::Check {
                src: rm.sum,
                bit: 0,
            },
        )?;
        // Odd tiles: c1, s1 = Sum & M, (Sum ⊕ M) >> 1 (fused shift;
        // Observation 2 makes the dropped LSB provably zero).
        self.exec(
            sink,
            Instruction::Binary {
                dst: rm.t_sum,
                op: BitOp::Xor,
                src0: rm.sum,
                src1: rm.modulus,
                dst2: Some((rm.t_carry, BitOp::And)),
                shift: Some((ShiftDir::Right, true)),
                pred: PredMode::IfSet,
            },
        )?;
        // Even tiles: m = 0, so s1 = Sum >> 1 and c1 = 0.
        self.exec(
            sink,
            Instruction::Shift {
                dst: rm.t_sum,
                src: rm.sum,
                dir: ShiftDir::Right,
                masked: true,
                pred: PredMode::IfClear,
            },
        )?;
        self.exec(
            sink,
            Instruction::Unary {
                dst: rm.t_carry,
                src: rm.t_carry,
                kind: UnaryKind::Zero,
                pred: PredMode::IfClear,
            },
        )?;
        // c2, s2 = s1 & c1, s1 ⊕ c1.
        self.exec(
            sink,
            Instruction::Binary {
                dst: rm.t_carry,
                op: BitOp::And,
                src0: rm.t_sum,
                src1: rm.t_carry,
                dst2: Some((rm.t_sum, BitOp::Xor)),
                shift: None,
                pred: PredMode::Always,
            },
        )?;
        // c3, Sum = Carry & s2, Carry ⊕ s2.
        self.exec(
            sink,
            Instruction::Binary {
                dst: rm.carry,
                op: BitOp::And,
                src0: rm.carry,
                src1: rm.t_sum,
                dst2: Some((rm.sum, BitOp::Xor)),
                shift: None,
                pred: PredMode::Always,
            },
        )?;
        // Carry = c2 | c3.
        self.exec(
            sink,
            Instruction::Binary {
                dst: rm.carry,
                op: BitOp::Or,
                src0: rm.carry,
                src1: rm.t_carry,
                dst2: None,
                shift: None,
                pred: PredMode::Always,
            },
        )
    }

    // ---- carry/borrow resolution -----------------------------------------

    /// Resolves an arbitrary `(sum, carry)` carry-save pair into a plain
    /// value in `s_row`, using tile-masked shifts and the wired-OR zero
    /// detector for early termination.
    fn resolve_pair<S: InstrSink>(
        &self,
        sink: &mut S,
        s_row: RowAddr,
        c_row: RowAddr,
    ) -> Result<(), BpNttError> {
        let body = [
            Instruction::Shift {
                dst: c_row,
                src: c_row,
                dir: ShiftDir::Left,
                masked: true,
                pred: PredMode::Always,
            },
            Instruction::Binary {
                dst: c_row,
                op: BitOp::And,
                src0: s_row,
                src1: c_row,
                dst2: Some((s_row, BitOp::Xor)),
                shift: None,
                pred: PredMode::Always,
            },
        ];
        sink.zero_loop(ZeroLoopSpec {
            src: c_row,
            even_body: &body,
            odd_body: &body,
            max_checks: self.bitwidth + 1,
            odd_epilogue: &[],
        })?;
        Ok(())
    }

    /// Resolves the main accumulator: `Sum ← Sum + 2·Carry` (plain value).
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn resolve<S: InstrSink>(&self, sink: &mut S) -> Result<(), BpNttError> {
        self.resolve_pair(sink, self.rm.sum, self.rm.carry)
    }

    /// Conditionally subtracts `q` once: maps `Sum ∈ [0, 2q)` to `[0, q)`.
    ///
    /// Computes `D = (Sum + (2^w − q)) mod 2^w` with the constant
    /// complement row; `MSB(D) = 0 ⇔ Sum ≥ q` (one headroom bit), then a
    /// predicated copy selects `D` or keeps `Sum`.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn cond_sub_q<S: InstrSink>(&self, sink: &mut S) -> Result<(), BpNttError> {
        let rm = &self.rm;
        self.exec(
            sink,
            Instruction::Binary {
                dst: rm.t_carry,
                op: BitOp::And,
                src0: rm.sum,
                src1: rm.comp_modulus,
                dst2: Some((rm.t_sum, BitOp::Xor)),
                shift: None,
                pred: PredMode::Always,
            },
        )?;
        self.resolve_pair(sink, rm.t_sum, rm.t_carry)?;
        self.exec(
            sink,
            Instruction::Check {
                src: rm.t_sum,
                bit: (self.bitwidth - 1) as u16,
            },
        )?;
        self.exec(
            sink,
            Instruction::Unary {
                dst: rm.sum,
                src: rm.t_sum,
                kind: UnaryKind::Copy,
                pred: PredMode::IfClear,
            },
        )
    }

    // ---- modular add / subtract ------------------------------------------

    /// `dst ← (x + y) mod q` for reduced operands. When `final_mask` is
    /// given, only tiles selected by `MaskTiles(stride_log2, phase)`
    /// receive the result (the arithmetic itself runs in every tile so the
    /// zero detector converges); the mask is restored to all-tiles after.
    ///
    /// Clobbers both temporaries and `Carry` (not `Sum` unless it is `dst`).
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn add_mod<S: InstrSink>(
        &self,
        sink: &mut S,
        dst: RowAddr,
        x: RowAddr,
        y: RowAddr,
        final_mask: Option<(u8, bool)>,
    ) -> Result<(), BpNttError> {
        let rm = &self.rm;
        // x + y < 2q < 2^w: carry-save then resolve.
        self.exec(
            sink,
            Instruction::Binary {
                dst: rm.t_carry,
                op: BitOp::And,
                src0: x,
                src1: y,
                dst2: Some((rm.t_sum, BitOp::Xor)),
                shift: None,
                pred: PredMode::Always,
            },
        )?;
        self.resolve_pair(sink, rm.t_sum, rm.t_carry)?;
        // D = (t_sum + comp) mod 2^w into Carry.
        self.exec(
            sink,
            Instruction::Binary {
                dst: rm.t_carry,
                op: BitOp::And,
                src0: rm.t_sum,
                src1: rm.comp_modulus,
                dst2: Some((rm.carry, BitOp::Xor)),
                shift: None,
                pred: PredMode::Always,
            },
        )?;
        self.resolve_pair(sink, rm.carry, rm.t_carry)?;
        self.exec(
            sink,
            Instruction::Check {
                src: rm.carry,
                bit: (self.bitwidth - 1) as u16,
            },
        )?;
        if let Some((stride_log2, phase)) = final_mask {
            self.exec(sink, Instruction::MaskTiles { stride_log2, phase })?;
        }
        self.exec(
            sink,
            Instruction::Unary {
                dst,
                src: rm.t_sum,
                kind: UnaryKind::Copy,
                pred: PredMode::IfSet,
            },
        )?;
        self.exec(
            sink,
            Instruction::Unary {
                dst,
                src: rm.carry,
                kind: UnaryKind::Copy,
                pred: PredMode::IfClear,
            },
        )?;
        if final_mask.is_some() {
            self.exec(sink, Instruction::MaskAll)?;
        }
        Ok(())
    }

    /// `dst ← (x − y) mod q` for reduced operands, via borrow-save
    /// subtraction (`s = x ⊕ y`, `b = ¬x ∧ y`, iterated) with an MSB sign
    /// test and a predicated `+q` fix-up. Same masking contract and row
    /// clobbers as [`Self::add_mod`].
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn sub_mod<S: InstrSink>(
        &self,
        sink: &mut S,
        dst: RowAddr,
        x: RowAddr,
        y: RowAddr,
        final_mask: Option<(u8, bool)>,
    ) -> Result<(), BpNttError> {
        let rm = &self.rm;
        // s0 = x ⊕ y; b0 = ¬x ∧ y = (x ⊕ y) ∧ y.
        self.exec(
            sink,
            Instruction::Binary {
                dst: rm.t_sum,
                op: BitOp::Xor,
                src0: x,
                src1: y,
                dst2: None,
                shift: None,
                pred: PredMode::Always,
            },
        )?;
        self.exec(
            sink,
            Instruction::Binary {
                dst: rm.t_carry,
                op: BitOp::And,
                src0: rm.t_sum,
                src1: y,
                dst2: None,
                shift: None,
                pred: PredMode::Always,
            },
        )?;
        // Borrow resolution: value = s − 2b. Rounds alternate the `s` row
        // between t_sum and carry to stay within the row budget; the
        // odd-parity epilogue copies the live row back into t_sum.
        let round = |s_cur: RowAddr, s_other: RowAddr| {
            [
                Instruction::Shift {
                    dst: rm.t_carry,
                    src: rm.t_carry,
                    dir: ShiftDir::Left,
                    masked: true,
                    pred: PredMode::Always,
                },
                Instruction::Binary {
                    dst: s_other,
                    op: BitOp::Xor,
                    src0: s_cur,
                    src1: rm.t_carry,
                    dst2: None,
                    shift: None,
                    pred: PredMode::Always,
                },
                Instruction::Binary {
                    dst: rm.t_carry,
                    op: BitOp::And,
                    src0: s_other,
                    src1: rm.t_carry,
                    dst2: None,
                    shift: None,
                    pred: PredMode::Always,
                },
            ]
        };
        let odd_epilogue = [Instruction::Unary {
            dst: rm.t_sum,
            src: rm.carry,
            kind: UnaryKind::Copy,
            pred: PredMode::Always,
        }];
        sink.zero_loop(ZeroLoopSpec {
            src: rm.t_carry,
            even_body: &round(rm.t_sum, rm.carry),
            odd_body: &round(rm.carry, rm.t_sum),
            max_checks: self.bitwidth + 1,
            odd_epilogue: &odd_epilogue,
        })?;
        // Negative ⇔ MSB set (one headroom bit). Add q where negative.
        self.exec(
            sink,
            Instruction::Check {
                src: rm.t_sum,
                bit: (self.bitwidth - 1) as u16,
            },
        )?;
        self.exec(
            sink,
            Instruction::Unary {
                dst: rm.carry,
                src: rm.carry,
                kind: UnaryKind::Zero,
                pred: PredMode::Always,
            },
        )?;
        self.exec(
            sink,
            Instruction::Unary {
                dst: rm.carry,
                src: rm.modulus,
                kind: UnaryKind::Copy,
                pred: PredMode::IfSet,
            },
        )?;
        self.exec(
            sink,
            Instruction::Binary {
                dst: rm.t_carry,
                op: BitOp::And,
                src0: rm.t_sum,
                src1: rm.carry,
                dst2: Some((rm.t_sum, BitOp::Xor)),
                shift: None,
                pred: PredMode::Always,
            },
        )?;
        self.resolve_pair(sink, rm.t_sum, rm.t_carry)?;
        if let Some((stride_log2, phase)) = final_mask {
            self.exec(sink, Instruction::MaskTiles { stride_log2, phase })?;
        }
        self.exec(
            sink,
            Instruction::Unary {
                dst,
                src: rm.t_sum,
                kind: UnaryKind::Copy,
                pred: PredMode::Always,
            },
        )?;
        if final_mask.is_some() {
            self.exec(sink, Instruction::MaskAll)?;
        }
        Ok(())
    }

    // ---- butterflies ------------------------------------------------------

    /// Completes a modular multiplication: resolve the accumulator and
    /// reduce into `[0, q)`; the product ends in `Sum`.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn finish_modmul<S: InstrSink>(&self, sink: &mut S) -> Result<(), BpNttError> {
        self.resolve(sink)?;
        self.cond_sub_q(sink)
    }

    /// Cooley–Tukey butterfly with a compile-time twiddle:
    /// `t = ζ·a[hi]; a[hi] = a[lo] − t; a[lo] = a[lo] + t` (paper
    /// Algorithm 1 lines 6–8). `zeta_mont = ζ·R mod q`.
    ///
    /// Note the *implicit shift*: `a[lo]` and `a[hi]` are combined purely
    /// by activating their rows — no coefficient ever moves columns.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn ct_butterfly_const<S: InstrSink>(
        &self,
        sink: &mut S,
        lo: RowAddr,
        hi: RowAddr,
        zeta_mont: u64,
    ) -> Result<(), BpNttError> {
        self.modmul_const(sink, hi, zeta_mont)?;
        self.finish_modmul(sink)?;
        self.sub_mod(sink, hi, lo, self.rm.sum, None)?;
        self.add_mod(sink, lo, lo, self.rm.sum, None)
    }

    /// Cooley–Tukey butterfly with per-tile twiddles read from the layout's
    /// twiddle row.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    ///
    /// # Panics
    ///
    /// Panics if the layout has no twiddle row (single-tile layouts use
    /// [`Self::ct_butterfly_const`]).
    pub fn ct_butterfly_data<S: InstrSink>(
        &self,
        sink: &mut S,
        lo: RowAddr,
        hi: RowAddr,
    ) -> Result<(), BpNttError> {
        let tw = self
            .rm
            .twiddle
            .expect("data-driven butterfly needs a twiddle row");
        self.modmul_data(sink, hi, tw)?;
        self.finish_modmul(sink)?;
        self.sub_mod(sink, hi, lo, self.rm.sum, None)?;
        self.add_mod(sink, lo, lo, self.rm.sum, None)
    }

    /// Gentleman–Sande butterfly with a compile-time inverse twiddle:
    /// `u = a[lo]; v = a[hi]; a[lo] = u + v; a[hi] = ζ⁻¹·(u − v)`.
    /// `inv_zeta_mont = ζ⁻¹·R mod q`.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn gs_butterfly_const<S: InstrSink>(
        &self,
        sink: &mut S,
        lo: RowAddr,
        hi: RowAddr,
        inv_zeta_mont: u64,
    ) -> Result<(), BpNttError> {
        let rm = &self.rm;
        self.sub_mod(sink, rm.sum, lo, hi, None)?;
        self.add_mod(sink, lo, lo, hi, None)?;
        self.exec(
            sink,
            Instruction::Unary {
                dst: hi,
                src: rm.sum,
                kind: UnaryKind::Copy,
                pred: PredMode::Always,
            },
        )?;
        self.modmul_const(sink, hi, inv_zeta_mont)?;
        self.finish_modmul(sink)?;
        self.exec(
            sink,
            Instruction::Unary {
                dst: hi,
                src: rm.sum,
                kind: UnaryKind::Copy,
                pred: PredMode::Always,
            },
        )
    }

    /// Gentleman–Sande butterfly with per-tile inverse twiddles.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    ///
    /// # Panics
    ///
    /// Panics if the layout has no twiddle/scratch rows.
    pub fn gs_butterfly_data<S: InstrSink>(
        &self,
        sink: &mut S,
        lo: RowAddr,
        hi: RowAddr,
    ) -> Result<(), BpNttError> {
        let rm = &self.rm;
        let tw = rm
            .twiddle
            .expect("data-driven butterfly needs a twiddle row");
        let scratch = rm
            .scratch
            .expect("data-driven GS butterfly needs the scratch row");
        self.sub_mod(sink, rm.sum, lo, hi, None)?;
        self.add_mod(sink, lo, lo, hi, None)?;
        self.exec(
            sink,
            Instruction::Unary {
                dst: scratch,
                src: rm.sum,
                kind: UnaryKind::Copy,
                pred: PredMode::Always,
            },
        )?;
        self.modmul_data(sink, scratch, tw)?;
        self.finish_modmul(sink)?;
        self.exec(
            sink,
            Instruction::Unary {
                dst: hi,
                src: rm.sum,
                kind: UnaryKind::Copy,
                pred: PredMode::Always,
            },
        )
    }

    /// Multiplies a coefficient row by a compile-time constant in place:
    /// `row ← c·row·R⁻¹ mod q` (used for the inverse transform's `N⁻¹`
    /// scaling; pass `c = k·R mod q` to realize `row ← k·row`).
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn scale_const<S: InstrSink>(
        &self,
        sink: &mut S,
        row: RowAddr,
        c: u64,
    ) -> Result<(), BpNttError> {
        self.modmul_const(sink, row, c)?;
        self.finish_modmul(sink)?;
        self.exec(
            sink,
            Instruction::Unary {
                dst: row,
                src: self.rm.sum,
                kind: UnaryKind::Copy,
                pred: PredMode::Always,
            },
        )
    }

    /// Moves `src` into `dst` shifted by `d_tiles` whole tiles (global
    /// shifts; `d_tiles × bitwidth` cycles — the cross-tile alignment cost
    /// of Fig. 8(b)).
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn move_tiles<S: InstrSink>(
        &self,
        sink: &mut S,
        dst: RowAddr,
        src: RowAddr,
        d_tiles: usize,
        dir: ShiftDir,
    ) -> Result<(), BpNttError> {
        let steps = d_tiles * self.bitwidth;
        for k in 0..steps {
            let from = if k == 0 { src } else { dst };
            self.exec(
                sink,
                Instruction::Shift {
                    dst,
                    src: from,
                    dir,
                    masked: false,
                    pred: PredMode::Always,
                },
            )?;
        }
        Ok(())
    }

    /// The modulus this emitter was built for.
    #[must_use]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// The word width in bits.
    #[must_use]
    pub fn bitwidth(&self) -> usize {
        self.bitwidth
    }
}
