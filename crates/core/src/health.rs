//! Self-healing shard health: scoring, scrubbing, and canary
//! reintegration.
//!
//! PR 6's recovery ladder (detect → retry → quarantine → degrade, see
//! [`crate::RecoveryOptions`]) made quarantine a **one-way door**: a
//! shard hit by a transient fault burst stayed benched until an operator
//! called `lift_quarantine`, and under sustained chaos a service degraded
//! monotonically toward the ~5-6× slower software fallback. This module
//! is the missing half of that fault model — automated recovery:
//!
//! * [`HealthMonitor`] keeps a per-shard state machine
//!   (`healthy → quarantined → probing → canary → healthy`) plus a fault
//!   history with **exponential time decay**, so a burst that stopped
//!   minutes ago scores near zero while persistent damage (every probe
//!   keeps failing, every canary wave keeps faulting) keeps the score —
//!   and therefore the bench — high.
//! * The **scrubber** ([`ShardedBpNtt::scrub_pass`](crate::ShardedBpNtt::scrub_pass),
//!   driven periodically by the service's background scrubber thread)
//!   runs seeded **known-answer probes** against quarantined shards: a
//!   compiled pipeline executes probe-owned inputs and the rows are
//!   compared reference-exact against precomputed software-reference
//!   output. Between waves it also *patrol-scrubs* idle healthy shards,
//!   so a latent stuck-at cell is found by a probe instead of by tenant
//!   traffic.
//! * A quarantined shard that passes [`HealthOptions::probes_to_canary`]
//!   consecutive probes re-enters service in **canary** mode: it may
//!   claim wave chunks again, but every chunk it touches is checked
//!   under [`VerifyPolicy::Full`](crate::VerifyPolicy), regardless of
//!   the wave's configured policy — a still-flaky shard cannot corrupt a
//!   spot-checked chunk. After
//!   [`HealthOptions::canary_waves_to_healthy`] clean canary waves the
//!   shard is promoted back to full duty (a **reintegration**); a canary
//!   failure re-quarantines it with **doubled** probe backoff (capped at
//!   [`HealthOptions::max_probe_backoff`]).
//!
//! # Contract with the fault model
//!
//! The PR 6 contract was: transients are consumed by the failing run
//! (retry helps), persistent faults are re-imposed every tick (retry
//! cannot help; quarantine the array). This module extends it: *all*
//! quarantines are now leases, not verdicts. The probe/canary ladder is
//! the proof-of-repair protocol — a shard only regains full duty by
//! producing reference-exact output repeatedly, first on probe data
//! (zero tenant exposure), then on fully verified tenant chunks (zero
//! unverified exposure). Persistent damage therefore converges to
//! "benched with exponentially backed-off probes", while a healed burst
//! (e.g. a [`FaultPlan::active_between`](bpntt_sram::FaultPlan::active_between)
//! window that closed) converges back to full-speed hardware waves with
//! no operator involvement.
//!
//! All transition logic takes time as an explicit `now` in seconds, so
//! every threshold is deterministic and unit-testable without sleeping.

use std::time::Duration;

/// Knobs for the scrubbing / canary-reintegration ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthOptions {
    /// Base interval between known-answer probes of a quarantined
    /// shard (doubled per canary demotion, capped at
    /// [`Self::max_probe_backoff`]).
    pub probe_interval: Duration,
    /// Consecutive probe passes required to promote a quarantined shard
    /// to canary duty (the ISSUE's `N`).
    pub probes_to_canary: u32,
    /// Clean canary waves required to promote a canary back to full
    /// duty (the ISSUE's `M`).
    pub canary_waves_to_healthy: u32,
    /// Upper bound on the per-shard probe backoff.
    pub max_probe_backoff: Duration,
    /// Half-life of the exponentially decayed per-shard fault score:
    /// after one half-life, a recorded fault counts half.
    pub decay_half_life: Duration,
    /// A quarantined shard is only probed once its decayed score falls
    /// to this threshold — a shard still being hammered is not worth
    /// probe cycles yet.
    pub probe_score_threshold: f64,
    /// Patrol-scrub idle healthy shards between waves.
    pub patrol: bool,
    /// Interval between patrol probes of one healthy shard.
    pub patrol_interval: Duration,
}

impl Default for HealthOptions {
    fn default() -> Self {
        HealthOptions {
            probe_interval: Duration::from_millis(100),
            probes_to_canary: 2,
            canary_waves_to_healthy: 2,
            max_probe_backoff: Duration::from_secs(5),
            decay_half_life: Duration::from_secs(10),
            probe_score_threshold: 8.0,
            patrol: true,
            patrol_interval: Duration::from_secs(1),
        }
    }
}

impl HealthOptions {
    /// Aggressive knobs for tests and chaos drills: tiny intervals,
    /// single-probe promotion, one clean canary wave.
    #[must_use]
    pub fn aggressive() -> Self {
        HealthOptions {
            probe_interval: Duration::from_millis(1),
            probes_to_canary: 1,
            canary_waves_to_healthy: 1,
            max_probe_backoff: Duration::from_millis(50),
            decay_half_life: Duration::from_millis(20),
            probe_score_threshold: 1e9,
            patrol: true,
            patrol_interval: Duration::from_millis(5),
        }
    }
}

/// Where one shard sits in the healing state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealthState {
    /// Full duty: claims chunks under the wave's configured verify
    /// policy.
    Healthy,
    /// Benched and under scrub: at least one known-answer probe has
    /// passed since quarantine, but not yet enough for canary duty.
    Probing,
    /// Back in service on a leash: claims chunks, but every chunk it
    /// touches is verified under `VerifyPolicy::Full`.
    Canary,
    /// Benched: claims no chunks; eligible for known-answer probes.
    Quarantined,
}

impl ShardHealthState {
    /// Stable metrics encoding (`0` healthy, `1` canary, `2` probing,
    /// `3` quarantined) — ordered by distance from full duty.
    #[must_use]
    pub fn as_code(self) -> u8 {
        match self {
            ShardHealthState::Healthy => 0,
            ShardHealthState::Canary => 1,
            ShardHealthState::Probing => 2,
            ShardHealthState::Quarantined => 3,
        }
    }

    /// Stable lowercase name for exports.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ShardHealthState::Healthy => "healthy",
            ShardHealthState::Probing => "probing",
            ShardHealthState::Canary => "canary",
            ShardHealthState::Quarantined => "quarantined",
        }
    }
}

/// A state-machine edge a probe or canary wave just took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthTransition {
    /// Enough consecutive probe passes: quarantined/probing → canary.
    EnteredCanary,
    /// Enough clean canary waves: canary → healthy.
    Reintegrated,
    /// A canary wave faulted: canary → quarantined, backoff doubled.
    Demoted,
}

/// Cumulative healing-ladder counters (drained into
/// [`ServiceMetrics`](crate::ServiceMetrics) by the service layer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthCounters {
    /// Known-answer probes executed (quarantine scrub + patrol).
    pub probes_run: u64,
    /// Probes whose rows matched the reference exactly.
    pub probes_passed: u64,
    /// Shards promoted canary → healthy (full reintegrations).
    pub reintegrations: u64,
    /// Canary shards re-quarantined by a faulting wave.
    pub canary_demotions: u64,
    /// Patrol probes of healthy shards (subset of `probes_run`).
    pub patrol_probes: u64,
    /// Healthy shards quarantined *by a patrol probe* (latent damage
    /// found before tenant traffic hit it).
    pub patrol_quarantines: u64,
}

/// Per-shard healing state.
#[derive(Debug, Clone)]
struct ShardSlot {
    state: ShardHealthState,
    /// Consecutive probe passes since (re-)quarantine.
    probe_passes: u32,
    /// Clean canary waves since canary entry.
    clean_canary_waves: u32,
    /// Current probe backoff in seconds (doubles per demotion).
    backoff_secs: f64,
    /// Monotonic second at which the next probe is allowed.
    next_probe_at: f64,
    /// Monotonic second at which the next patrol probe is allowed.
    next_patrol_at: f64,
    /// Exponentially decayed fault score…
    score: f64,
    /// …as of this monotonic second.
    score_at: f64,
}

/// The per-shard healing state machine: fault scoring with exponential
/// time decay, probe scheduling with backoff, and the
/// quarantined → probing → canary → healthy promotion ladder. Pure and
/// deterministic — callers supply monotonic time as `now` seconds (the
/// sharded engine uses its construction instant's elapsed time).
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    opts: HealthOptions,
    slots: Vec<ShardSlot>,
    counters: HealthCounters,
}

impl HealthMonitor {
    /// A monitor for `shards` shards, all healthy.
    #[must_use]
    pub fn new(shards: usize, opts: HealthOptions) -> Self {
        HealthMonitor {
            slots: (0..shards)
                .map(|_| ShardSlot {
                    state: ShardHealthState::Healthy,
                    probe_passes: 0,
                    clean_canary_waves: 0,
                    backoff_secs: opts.probe_interval.as_secs_f64(),
                    next_probe_at: 0.0,
                    next_patrol_at: opts.patrol_interval.as_secs_f64(),
                    score: 0.0,
                    score_at: 0.0,
                })
                .collect(),
            opts,
            counters: HealthCounters::default(),
        }
    }

    /// The active knobs.
    #[must_use]
    pub fn options(&self) -> &HealthOptions {
        &self.opts
    }

    /// Replaces the knobs and re-arms every shard's probe backoff and
    /// patrol timer at the new cadence: a demotion-doubled backoff in
    /// progress resets to the new base, and every shard becomes
    /// immediately eligible for its next probe/patrol — the first scrub
    /// pass after a reconfiguration is a full baseline check.
    pub fn set_options(&mut self, opts: HealthOptions) {
        let base = opts.probe_interval.as_secs_f64();
        for s in &mut self.slots {
            s.backoff_secs = base;
            s.next_probe_at = 0.0;
            s.next_patrol_at = 0.0;
        }
        self.opts = opts;
    }

    /// Number of shards tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the monitor tracks zero shards.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Cumulative ladder counters.
    #[must_use]
    pub fn counters(&self) -> HealthCounters {
        self.counters
    }

    /// The state of shard `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn state(&self, idx: usize) -> ShardHealthState {
        self.slots[idx].state
    }

    /// Every shard's state, indexed by shard.
    #[must_use]
    pub fn states(&self) -> Vec<ShardHealthState> {
        self.slots.iter().map(|s| s.state).collect()
    }

    /// Whether shard `idx` is benched (quarantined or probing) and must
    /// not claim wave chunks.
    #[must_use]
    pub fn is_benched(&self, idx: usize) -> bool {
        matches!(
            self.slots[idx].state,
            ShardHealthState::Quarantined | ShardHealthState::Probing
        )
    }

    /// Whether shard `idx` is on canary duty (claims chunks, but only
    /// under `VerifyPolicy::Full`).
    #[must_use]
    pub fn is_canary(&self, idx: usize) -> bool {
        self.slots[idx].state == ShardHealthState::Canary
    }

    /// The decayed fault score of shard `idx` at `now` seconds.
    #[must_use]
    pub fn score(&self, idx: usize, now: f64) -> f64 {
        let s = &self.slots[idx];
        decay(s.score, now - s.score_at, self.opts.decay_half_life)
    }

    /// Records one detected fault on shard `idx` (wave verification
    /// failure, worker panic, failed probe): the score decays to `now`,
    /// then gains 1.
    pub fn record_fault(&mut self, idx: usize, now: f64) {
        let half_life = self.opts.decay_half_life;
        let s = &mut self.slots[idx];
        s.score = decay(s.score, now - s.score_at, half_life) + 1.0;
        s.score_at = now;
    }

    /// Benches shard `idx` (ladder exhaustion, operator action, or a
    /// failed patrol probe). Resets the promotion progress; the probe
    /// backoff is kept (it only grows via canary demotion and resets on
    /// reintegration or an operator lift).
    pub fn quarantine(&mut self, idx: usize, now: f64) {
        let s = &mut self.slots[idx];
        s.state = ShardHealthState::Quarantined;
        s.probe_passes = 0;
        s.clean_canary_waves = 0;
        s.next_probe_at = now + s.backoff_secs;
    }

    /// Operator override: returns shard `idx` straight to full duty and
    /// forgets its fault history and backoff.
    pub fn lift(&mut self, idx: usize) {
        let base = self.opts.probe_interval.as_secs_f64();
        let s = &mut self.slots[idx];
        s.state = ShardHealthState::Healthy;
        s.probe_passes = 0;
        s.clean_canary_waves = 0;
        s.backoff_secs = base;
        s.score = 0.0;
    }

    /// Whether the scrubber should run a known-answer probe against
    /// benched shard `idx` now: the backoff interval has elapsed *and*
    /// the decayed score has cooled below the probe threshold.
    #[must_use]
    pub fn due_for_probe(&self, idx: usize, now: f64) -> bool {
        self.is_benched(idx)
            && now >= self.slots[idx].next_probe_at
            && self.score(idx, now) <= self.opts.probe_score_threshold
    }

    /// Whether the scrubber should patrol-probe *healthy* shard `idx`.
    #[must_use]
    pub fn due_for_patrol(&self, idx: usize, now: f64) -> bool {
        self.opts.patrol
            && self.slots[idx].state == ShardHealthState::Healthy
            && now >= self.slots[idx].next_patrol_at
    }

    /// Records a patrol probe of a healthy shard. A failure benches the
    /// shard immediately — the probe found latent damage before tenant
    /// traffic did.
    pub fn record_patrol(&mut self, idx: usize, passed: bool, now: f64) {
        self.counters.probes_run += 1;
        self.counters.patrol_probes += 1;
        self.slots[idx].next_patrol_at = now + self.opts.patrol_interval.as_secs_f64();
        if passed {
            self.counters.probes_passed += 1;
        } else {
            self.counters.patrol_quarantines += 1;
            self.record_fault(idx, now);
            self.quarantine(idx, now);
        }
    }

    /// Records a known-answer probe of a benched shard. Enough
    /// consecutive passes promote it to canary duty; a failure resets
    /// the streak and re-arms the backoff.
    pub fn record_probe(&mut self, idx: usize, passed: bool, now: f64) -> Option<HealthTransition> {
        self.counters.probes_run += 1;
        if !passed {
            self.record_fault(idx, now);
            let s = &mut self.slots[idx];
            s.state = ShardHealthState::Quarantined;
            s.probe_passes = 0;
            s.next_probe_at = now + s.backoff_secs;
            return None;
        }
        self.counters.probes_passed += 1;
        let probes_to_canary = self.opts.probes_to_canary;
        let s = &mut self.slots[idx];
        s.probe_passes += 1;
        s.next_probe_at = now + s.backoff_secs;
        if s.probe_passes >= probes_to_canary {
            s.state = ShardHealthState::Canary;
            s.probe_passes = 0;
            s.clean_canary_waves = 0;
            Some(HealthTransition::EnteredCanary)
        } else {
            s.state = ShardHealthState::Probing;
            None
        }
    }

    /// Records the outcome of one wave in which canary shard `idx`
    /// participated. Enough clean waves reintegrate it (backoff and
    /// score reset — the shard has proven itself); a faulting wave
    /// demotes it back to quarantine with **doubled** probe backoff.
    pub fn record_canary_wave(
        &mut self,
        idx: usize,
        clean: bool,
        now: f64,
    ) -> Option<HealthTransition> {
        let opts = self.opts;
        if clean {
            let s = &mut self.slots[idx];
            s.clean_canary_waves += 1;
            if s.clean_canary_waves >= opts.canary_waves_to_healthy {
                s.state = ShardHealthState::Healthy;
                s.clean_canary_waves = 0;
                s.backoff_secs = opts.probe_interval.as_secs_f64();
                s.score = 0.0;
                s.next_patrol_at = now + opts.patrol_interval.as_secs_f64();
                self.counters.reintegrations += 1;
                Some(HealthTransition::Reintegrated)
            } else {
                None
            }
        } else {
            self.record_fault(idx, now);
            let cap = opts.max_probe_backoff.as_secs_f64();
            let s = &mut self.slots[idx];
            s.backoff_secs = (s.backoff_secs * 2.0).min(cap);
            s.state = ShardHealthState::Quarantined;
            s.probe_passes = 0;
            s.clean_canary_waves = 0;
            s.next_probe_at = now + s.backoff_secs;
            self.counters.canary_demotions += 1;
            Some(HealthTransition::Demoted)
        }
    }
}

/// `score` after `dt` seconds of exponential decay with `half_life`.
fn decay(score: f64, dt: f64, half_life: Duration) -> f64 {
    let hl = half_life.as_secs_f64();
    if score == 0.0 || dt <= 0.0 || hl <= 0.0 {
        return score;
    }
    score * (-std::f64::consts::LN_2 * dt / hl).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> HealthOptions {
        HealthOptions {
            probe_interval: Duration::from_secs(1),
            probes_to_canary: 2,
            canary_waves_to_healthy: 2,
            max_probe_backoff: Duration::from_secs(8),
            decay_half_life: Duration::from_secs(10),
            probe_score_threshold: 4.0,
            patrol: true,
            patrol_interval: Duration::from_secs(5),
        }
    }

    #[test]
    fn score_decays_with_the_configured_half_life() {
        let mut m = HealthMonitor::new(1, opts());
        m.record_fault(0, 0.0);
        m.record_fault(0, 0.0);
        assert!((m.score(0, 0.0) - 2.0).abs() < 1e-12);
        // One half-life: exactly half remains.
        assert!((m.score(0, 10.0) - 1.0).abs() < 1e-12);
        // Two half-lives: a quarter.
        assert!((m.score(0, 20.0) - 0.5).abs() < 1e-12);
        // Recording at t=10 decays first, then adds: 1 + 1 = 2.
        m.record_fault(0, 10.0);
        assert!((m.score(0, 10.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn persistent_hammering_defers_probes_until_scores_cool() {
        let mut m = HealthMonitor::new(1, opts());
        for _ in 0..8 {
            m.record_fault(0, 0.0);
        }
        m.quarantine(0, 0.0);
        // Backoff elapsed but the score (8) is above the threshold (4):
        // a shard still being hammered is not probed.
        assert!(!m.due_for_probe(0, 2.0));
        // One half-life later the score is 4 → eligible.
        assert!(m.due_for_probe(0, 10.0));
    }

    #[test]
    fn probe_passes_promote_to_canary_and_failures_reset_the_streak() {
        let mut m = HealthMonitor::new(1, opts());
        m.quarantine(0, 0.0);
        assert_eq!(m.state(0), ShardHealthState::Quarantined);
        assert!(!m.due_for_probe(0, 0.5), "backoff not yet elapsed");
        assert!(m.due_for_probe(0, 1.0));

        assert_eq!(m.record_probe(0, true, 1.0), None);
        assert_eq!(m.state(0), ShardHealthState::Probing);
        assert!(m.is_benched(0), "probing shards still claim no chunks");
        // A failure resets the streak to zero…
        assert_eq!(m.record_probe(0, false, 2.0), None);
        assert_eq!(m.state(0), ShardHealthState::Quarantined);
        // …so two more passes are needed for canary.
        assert_eq!(m.record_probe(0, true, 3.0), None);
        assert_eq!(
            m.record_probe(0, true, 4.0),
            Some(HealthTransition::EnteredCanary)
        );
        assert_eq!(m.state(0), ShardHealthState::Canary);
        assert!(!m.is_benched(0));
        assert!(m.is_canary(0));
        let c = m.counters();
        assert_eq!(c.probes_run, 4);
        assert_eq!(c.probes_passed, 3);
    }

    #[test]
    fn clean_canary_waves_reintegrate_and_reset_backoff() {
        let mut m = HealthMonitor::new(1, opts());
        m.quarantine(0, 0.0);
        m.record_probe(0, true, 1.0);
        m.record_probe(0, true, 2.0);
        assert!(m.is_canary(0));
        assert_eq!(m.record_canary_wave(0, true, 3.0), None);
        assert_eq!(
            m.record_canary_wave(0, true, 4.0),
            Some(HealthTransition::Reintegrated)
        );
        assert_eq!(m.state(0), ShardHealthState::Healthy);
        assert_eq!(m.counters().reintegrations, 1);
        assert!(
            (m.score(0, 4.0)).abs() < 1e-12,
            "reintegration clears history"
        );
    }

    #[test]
    fn canary_failure_requarantines_with_doubled_capped_backoff() {
        let mut m = HealthMonitor::new(1, opts());
        m.quarantine(0, 0.0);
        // First demotion: backoff 1 s → 2 s.
        m.record_probe(0, true, 1.0);
        m.record_probe(0, true, 2.0);
        assert_eq!(
            m.record_canary_wave(0, false, 3.0),
            Some(HealthTransition::Demoted)
        );
        assert_eq!(m.state(0), ShardHealthState::Quarantined);
        assert!(!m.due_for_probe(0, 4.9), "doubled backoff: due at 3 + 2 s");
        assert!(m.due_for_probe(0, 5.0));
        // Keep demoting: 4, 8, then capped at 8.
        for (demote_at, expect_next) in [(6.0, 10.0), (11.0, 19.0), (20.0, 28.0)] {
            m.record_probe(0, true, demote_at - 1.0);
            m.record_probe(0, true, demote_at - 0.5);
            m.record_canary_wave(0, false, demote_at);
            assert!(!m.due_for_probe(0, expect_next - 0.1));
            assert!(m.due_for_probe(0, expect_next));
        }
        assert_eq!(m.counters().canary_demotions, 4);
        // An operator lift resets the backoff to base.
        m.lift(0);
        assert_eq!(m.state(0), ShardHealthState::Healthy);
        m.quarantine(0, 100.0);
        assert!(m.due_for_probe(0, 101.0));
    }

    #[test]
    fn patrol_failure_benches_a_healthy_shard() {
        let mut m = HealthMonitor::new(2, opts());
        assert!(!m.due_for_patrol(0, 1.0), "patrol interval not elapsed");
        assert!(m.due_for_patrol(0, 5.0));
        m.record_patrol(0, true, 5.0);
        assert_eq!(m.state(0), ShardHealthState::Healthy);
        assert!(!m.due_for_patrol(0, 6.0), "re-armed after the pass");
        assert!(m.due_for_patrol(1, 5.0));
        m.record_patrol(1, false, 5.0);
        assert_eq!(m.state(1), ShardHealthState::Quarantined);
        let c = m.counters();
        assert_eq!(c.patrol_probes, 2);
        assert_eq!(c.patrol_quarantines, 1);
        // Patrol can be disabled wholesale.
        let mut off = opts();
        off.patrol = false;
        m.set_options(off);
        assert!(!m.due_for_patrol(0, 1000.0));
    }
}
