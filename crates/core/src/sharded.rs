//! Multi-array batch sharding: scale one compiled program across K arrays.
//!
//! A single BP-NTT array processes `lanes` polynomials per batch. Real
//! workloads (HE ciphertext limbs, server-side signature verification)
//! arrive in batches of hundreds to thousands — far beyond one array. A
//! [`ShardedBpNtt`] provisions `K` identically configured [`BpNtt`]
//! arrays, compiles each schedule **once**, shares the compiled program
//! across every shard behind an `Arc`, and replays it on all shards in
//! parallel (one OS thread per shard, via `std::thread::scope` — the
//! dependency-free equivalent of a rayon fan-out). Batches larger than
//! `K × lanes` are processed in waves.
//!
//! This mirrors the paper's scaling argument: BP-NTT's area is small
//! enough (0.063 mm² per 256×256 array) that a memory chip hosts hundreds
//! of arrays, all driven by the *same* instruction stream. The sharded
//! engine is that argument in software: one compilation, K replicas, no
//! cross-shard communication.
//!
//! # Example
//!
//! ```
//! use bpntt_core::{BpNttConfig, ShardedBpNtt};
//! use bpntt_ntt::NttParams;
//!
//! let cfg = BpNttConfig::new(32, 32, 8, NttParams::new(8, 97)?)?;
//! let mut sharded = ShardedBpNtt::new(&cfg, 4)?;
//! // 4 shards × 4 lanes = 16 polynomials per wave.
//! assert_eq!(sharded.lanes_total(), 16);
//! let batch: Vec<Vec<u64>> = (0..23)
//!     .map(|s| (0..8).map(|j| (s * 13 + j * 7) as u64 % 97).collect())
//!     .collect();
//! let spectra = sharded.forward_batch(&batch)?;
//! assert_eq!(spectra.len(), 23);
//! # Ok::<(), bpntt_core::BpNttError>(())
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::config::BpNttConfig;
use crate::engine::BpNtt;
use crate::error::BpNttError;
use crate::pipeline::{CompiledPipeline, ExecMode, PipelineSpec};
use bpntt_sram::{CompiledProgram, Stats};

/// `K` identically configured BP-NTT arrays replaying shared compiled
/// programs over partitioned batches.
#[derive(Debug)]
pub struct ShardedBpNtt {
    shards: Vec<BpNtt>,
    lanes_per_shard: usize,
    /// Wall-clock seconds each participating shard thread spent in the
    /// most recent batch fan-out (load + compute + read-back across every
    /// chunk it claimed), indexed by shard. Shards that spawned no worker
    /// (fewer chunks than shards) report no entry.
    last_shard_secs: Vec<f64>,
}

/// One shard worker's outcome: the chunks it completed (tagged with their
/// chunk index so the wave can reassemble input order), the first error it
/// hit (it stops claiming chunks after one), and its thread's total
/// wall-clock seconds.
type ShardOutcome = (Vec<(usize, Vec<Vec<u64>>)>, Option<BpNttError>, f64);

impl ShardedBpNtt {
    /// Provisions `shards` arrays with the given configuration.
    ///
    /// # Errors
    ///
    /// [`BpNttError::InvalidShardCount`] for zero shards; otherwise
    /// propagates per-array construction failures.
    pub fn new(config: &BpNttConfig, shards: usize) -> Result<Self, BpNttError> {
        if shards == 0 {
            return Err(BpNttError::InvalidShardCount { shards });
        }
        let shards: Vec<BpNtt> = (0..shards)
            .map(|_| BpNtt::new(config.clone()))
            .collect::<Result<_, _>>()?;
        let lanes_per_shard = config.layout().lanes();
        Ok(ShardedBpNtt {
            shards,
            lanes_per_shard,
            last_shard_secs: Vec::new(),
        })
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Polynomials processed per wave across all shards.
    #[must_use]
    pub fn lanes_total(&self) -> usize {
        self.shards.len() * self.lanes_per_shard
    }

    /// Aggregated simulator statistics over every shard.
    ///
    /// Integer fields (cycles, instruction counts, row loads) are exact
    /// and independent of scheduling. The `f64` energy accumulator is
    /// summed in shard order, but work-stealing makes the chunk→shard
    /// assignment nondeterministic, so the aggregate's last-bit rounding
    /// can differ run to run on multi-core hosts. The bit-identical
    /// `Stats` discipline (replay ≡ emit, SIMD ≡ scalar) is a
    /// *per-engine* invariant and is unaffected — don't compare sharded
    /// aggregate energy bit-for-bit across runs.
    #[must_use]
    pub fn stats(&self) -> Stats {
        self.shards
            .iter()
            .fold(Stats::default(), |acc, s| acc + *s.stats())
    }

    /// Resets every shard's statistics.
    pub fn reset_stats(&mut self) {
        for s in &mut self.shards {
            s.reset_stats();
        }
    }

    /// Per-shard wall-clock seconds of the most recent batch fan-out —
    /// **every** batch entry point ([`Self::forward_batch`],
    /// [`Self::roundtrip_batch`], [`Self::polymul_batch`]) routes through
    /// the same timed [`run_wave`](Self::run_wave) path, so these numbers
    /// always describe the last call, never a stale earlier wave. One
    /// entry per participating shard (`min(shards, chunks)` workers
    /// spawn; work-stealing may let a fast shard claim several chunks).
    /// Empty batches clear the slice. On a single-core host the sum
    /// approximates the wave's wall-clock — the threads serialize — so
    /// flat `polys_per_sec` scaling is expected there; on real multi-core
    /// hardware the wave completes in roughly the per-shard maximum.
    #[must_use]
    pub fn last_wave_shard_secs(&self) -> &[f64] {
        &self.last_shard_secs
    }

    /// Compiles the pipeline for `spec` once (on shard 0) and installs
    /// the shared `Arc` (and its segment programs) into every other
    /// shard, so the parallel phase never compiles. Used by the service
    /// layer so tenant registration, not the first request, pays the
    /// compile.
    pub(crate) fn warm_pipeline(
        &mut self,
        spec: &PipelineSpec,
    ) -> Result<Arc<CompiledPipeline>, BpNttError> {
        let pipe = self.shards[0].compile_pipeline(spec)?;
        for shard in &mut self.shards[1..] {
            shard.install_pipeline(&pipe);
        }
        Ok(pipe)
    }

    /// Whether shard 0 already holds a compiled pipeline for `spec`.
    pub(crate) fn has_pipeline(&self, spec: &PipelineSpec) -> bool {
        self.shards[0].has_pipeline(spec)
    }

    /// Installs an externally compiled pipeline into every shard (the
    /// service layer's cross-tenant `(params, layout, spec)` cache hit
    /// path).
    pub(crate) fn import_pipeline(&mut self, pipe: &Arc<CompiledPipeline>) {
        for shard in &mut self.shards {
            shard.install_pipeline(pipe);
        }
    }

    /// Executes one compiled pipeline over an arbitrarily large batch —
    /// **the** single timed execution path of every batch operation. The
    /// batch is cut into chunks of `lanes_per_shard` polynomials, one
    /// worker thread spawns per participating shard
    /// (`min(shards, chunks)`), and workers **steal** the next unclaimed
    /// chunk from a shared counter — a slow shard never stalls the wave,
    /// it just claims fewer chunks. Each claimed chunk runs the *whole*
    /// op-graph on-array (operands loaded once, one read-back at the
    /// end — no intermediate `read_batch`/`load_batch` round-trips
    /// between ops). Output order matches input order (chunks are
    /// reassembled by index). `inputs` is slot-major: one batch per
    /// declared input slot, all of equal length.
    fn run_wave(
        &mut self,
        pipe: &Arc<CompiledPipeline>,
        mode: ExecMode,
        inputs: &[&[Vec<u64>]],
    ) -> Result<Vec<Vec<u64>>, BpNttError> {
        let batch = inputs.first().map_or(0, |b| b.len());
        let lanes = self.lanes_per_shard.max(1);
        let n_chunks = batch.div_ceil(lanes);
        let workers = self.shards.len().min(n_chunks);
        let next = AtomicUsize::new(0);
        let mut outcomes: Vec<ShardOutcome> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for shard in self.shards.iter_mut().take(workers) {
                let next = &next;
                let pipe = Arc::clone(pipe);
                handles.push(scope.spawn(move || {
                    let t = std::time::Instant::now();
                    let mut done: Vec<(usize, Vec<Vec<u64>>)> = Vec::new();
                    let mut err: Option<BpNttError> = None;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n_chunks {
                            break;
                        }
                        let lo = i * lanes;
                        let hi = (lo + lanes).min(batch);
                        let chunk: Vec<&[Vec<u64>]> =
                            inputs.iter().map(|slot| &slot[lo..hi]).collect();
                        match shard.run_compiled_pipeline(&pipe, mode, &chunk) {
                            Ok(v) => done.push((i, v)),
                            Err(e) => {
                                // Poison the counter so the other workers
                                // stop claiming: the wave is already
                                // doomed, finishing remaining chunks
                                // would be discarded work.
                                next.store(n_chunks, Ordering::Relaxed);
                                err = Some(e);
                                break;
                            }
                        }
                    }
                    (done, err, t.elapsed().as_secs_f64())
                }));
            }
            for h in handles {
                outcomes.push(h.join().expect("shard thread panicked"));
            }
        });
        // Every worker has joined, so record all timings before the first
        // shard error can propagate — a failed wave still reports one
        // entry per participating shard.
        self.last_shard_secs.clear();
        self.last_shard_secs.extend(outcomes.iter().map(|o| o.2));
        let mut slots: Vec<Option<Vec<Vec<u64>>>> = (0..n_chunks).map(|_| None).collect();
        let mut first_err = None;
        for (done, err, _) in outcomes {
            for (i, v) in done {
                slots[i] = Some(v);
            }
            if let Some(e) = err {
                first_err.get_or_insert(e);
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        let mut out = Vec::with_capacity(batch);
        for s in slots {
            out.extend(s.expect("error-free wave fills every chunk"));
        }
        Ok(out)
    }

    /// Executes a pipeline op-graph over an arbitrarily large batch: the
    /// spec compiles once (on shard 0, `Arc`-shared everywhere), the
    /// batch is work-stolen across shards in lane-sized chunks, and each
    /// chunk runs the whole graph per lane in one load/read cycle.
    /// `inputs` is slot-major — one batch per input slot the spec
    /// declares, all of equal length.
    ///
    /// # Errors
    ///
    /// [`BpNttError::InvalidPipeline`] for input-count mismatches and
    /// for no-input specs (resident graphs are a single-engine feature:
    /// work-stealing gives a wave no stable chunk→shard assignment for
    /// on-array state to survive between calls),
    /// [`BpNttError::BatchMismatch`] for unequal batch lengths;
    /// otherwise compilation, validation, and simulator failures.
    pub fn run_pipeline_batch(
        &mut self,
        spec: &PipelineSpec,
        mode: ExecMode,
        inputs: &[&[Vec<u64>]],
    ) -> Result<Vec<Vec<u64>>, BpNttError> {
        // Clear before any early return: even a rejected call must not
        // leave a previous wave's timings behind.
        self.last_shard_secs.clear();
        if spec.input_slots().is_empty() {
            return Err(BpNttError::InvalidPipeline {
                reason: "sharded pipelines must declare at least one input slot \
                         (resident no-input graphs only exist on a single engine)"
                    .into(),
            });
        }
        if inputs.len() != spec.input_slots().len() {
            return Err(BpNttError::InvalidPipeline {
                reason: format!(
                    "spec declares {} input slot(s) but {} batch(es) were supplied",
                    spec.input_slots().len(),
                    inputs.len()
                ),
            });
        }
        if let (Some(first), Some(shorter)) = (
            inputs.first(),
            inputs.iter().find(|b| b.len() != inputs[0].len()),
        ) {
            return Err(BpNttError::BatchMismatch {
                a: first.len(),
                b: shorter.len(),
            });
        }
        if inputs[0].is_empty() {
            return Ok(Vec::new());
        }
        let pipe = self.warm_pipeline(spec)?;
        self.run_wave(&pipe, mode, inputs)
    }

    /// Forward-transforms an arbitrarily large batch — the canned
    /// [`PipelineSpec::forward_ntt`] graph under replay: waves of
    /// `lanes_total` polynomials are partitioned across shards and each
    /// shard replays the shared compiled forward program. Output order
    /// matches input order.
    ///
    /// # Errors
    ///
    /// Propagates validation (length/reduction) and simulator failures.
    pub fn forward_batch(&mut self, polys: &[Vec<u64>]) -> Result<Vec<Vec<u64>>, BpNttError> {
        self.run_pipeline_batch(&PipelineSpec::forward_ntt(), ExecMode::Replay, &[polys])
    }

    /// Forward + inverse roundtrip over an arbitrarily large batch — the
    /// canned [`PipelineSpec::roundtrip`] graph under replay (primarily a
    /// correctness/throughput harness: the output equals the input when
    /// the transform pair is exact).
    ///
    /// # Errors
    ///
    /// Propagates validation and simulator failures.
    pub fn roundtrip_batch(&mut self, polys: &[Vec<u64>]) -> Result<Vec<Vec<u64>>, BpNttError> {
        self.run_pipeline_batch(&PipelineSpec::roundtrip(), ExecMode::Replay, &[polys])
    }

    /// Negacyclic polynomial multiplication over an arbitrarily large
    /// batch of operand pairs: `out[i] = a[i] ⊛ b[i]` — the canned
    /// [`PipelineSpec::polymul`] graph under replay. Chunks of pairs are
    /// work-stolen across shards through the same timed
    /// [`run_wave`](Self::run_wave) path as the transforms, so
    /// [`Self::last_wave_shard_secs`] describes *this* call; every shard
    /// replays the four shared compiled segments (two forwards,
    /// pointwise, debt-folded scaled inverse) per chunk with no
    /// intermediate load/read round-trips.
    ///
    /// # Errors
    ///
    /// [`BpNttError::BatchMismatch`] when `a` and `b` differ in length;
    /// otherwise propagates validation and simulator failures.
    pub fn polymul_batch(
        &mut self,
        a: &[Vec<u64>],
        b: &[Vec<u64>],
    ) -> Result<Vec<Vec<u64>>, BpNttError> {
        self.run_pipeline_batch(&PipelineSpec::polymul(), ExecMode::Replay, &[a, b])
    }

    /// Every compiled program shard 0 holds, for the service layer's
    /// cross-tenant cache keyed by `(params, layout)`.
    pub(crate) fn export_programs(&self) -> Vec<(crate::engine::ProgramKey, Arc<CompiledProgram>)> {
        self.shards[0].export_programs()
    }

    /// Installs externally compiled programs into every shard (the
    /// service layer's cache hit path: a new tenant with an identical
    /// `(params, layout)` never recompiles).
    pub(crate) fn import_programs(
        &mut self,
        progs: &[(crate::engine::ProgramKey, Arc<CompiledProgram>)],
    ) {
        for shard in &mut self.shards {
            for (key, prog) in progs {
                shard.install_program(*key, Arc::clone(prog));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpntt_ntt::forward::ntt_in_place;
    use bpntt_ntt::polymul::polymul_schoolbook;
    use bpntt_ntt::{NttParams, TwiddleTable};

    fn pseudo(n: usize, q: u64, seed: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % q
            })
            .collect()
    }

    fn config() -> BpNttConfig {
        BpNttConfig::new(32, 32, 8, NttParams::new(8, 97).unwrap()).unwrap()
    }

    #[test]
    fn rejects_zero_shards() {
        assert!(matches!(
            ShardedBpNtt::new(&config(), 0),
            Err(BpNttError::InvalidShardCount { .. })
        ));
    }

    #[test]
    fn forward_batch_matches_reference_across_waves() {
        let params = NttParams::new(8, 97).unwrap();
        let mut sharded = ShardedBpNtt::new(&config(), 3).unwrap();
        // 3 shards × 4 lanes = 12 per wave; 30 polys → 3 waves, last partial.
        let batch: Vec<Vec<u64>> = (0..30).map(|s| pseudo(8, 97, s + 1)).collect();
        let got = sharded.forward_batch(&batch).unwrap();
        assert_eq!(got.len(), 30);
        let t = TwiddleTable::new(&params);
        for (i, p) in batch.iter().enumerate() {
            let mut expect = p.clone();
            ntt_in_place(&params, &t, &mut expect).unwrap();
            assert_eq!(got[i], expect, "poly {i}");
        }
    }

    #[test]
    fn roundtrip_batch_is_identity() {
        let mut sharded = ShardedBpNtt::new(&config(), 2).unwrap();
        let batch: Vec<Vec<u64>> = (0..17).map(|s| pseudo(8, 97, s + 50)).collect();
        assert_eq!(sharded.roundtrip_batch(&batch).unwrap(), batch);
    }

    #[test]
    fn polymul_batch_matches_schoolbook() {
        let params = NttParams::new(8, 97).unwrap();
        let mut sharded = ShardedBpNtt::new(&config(), 2).unwrap();
        let a: Vec<Vec<u64>> = (0..11).map(|s| pseudo(8, 97, s + 100)).collect();
        let b: Vec<Vec<u64>> = (0..11).map(|s| pseudo(8, 97, s + 200)).collect();
        let got = sharded.polymul_batch(&a, &b).unwrap();
        assert_eq!(got.len(), 11);
        for i in 0..11 {
            let expect = polymul_schoolbook(&params, &a[i], &b[i]).unwrap();
            assert_eq!(got[i], expect, "pair {i}");
        }
    }

    #[test]
    fn polymul_batch_rejects_mismatched_operands() {
        let mut sharded = ShardedBpNtt::new(&config(), 2).unwrap();
        let a = vec![pseudo(8, 97, 1)];
        assert!(matches!(
            sharded.polymul_batch(&a, &[]),
            Err(BpNttError::BatchMismatch { a: 1, b: 0 })
        ));
    }

    #[test]
    fn sharded_stats_aggregate_and_match_single_array() {
        // Two shards fed the *same* chunk accumulate exactly 2× the
        // single-array statistics (the resolution loops are data-dependent,
        // so the chunks must match for exact doubling).
        let chunk: Vec<Vec<u64>> = (0..4).map(|s| pseudo(8, 97, s + 7)).collect();
        let mut batch = chunk.clone();
        batch.extend(chunk.iter().cloned());

        let mut single = ShardedBpNtt::new(&config(), 1).unwrap();
        single.forward_batch(&chunk).unwrap();
        let s1 = single.stats();

        let mut sharded = ShardedBpNtt::new(&config(), 2).unwrap();
        sharded.forward_batch(&batch).unwrap();
        let s2 = sharded.stats();

        assert_eq!(s2.cycles, 2 * s1.cycles);
        assert_eq!(s2.counts.total(), 2 * s1.counts.total());
    }

    #[test]
    fn per_shard_wall_clock_is_recorded() {
        let mut sharded = ShardedBpNtt::new(&config(), 3).unwrap();
        assert!(sharded.last_wave_shard_secs().is_empty());
        // 2 full chunks + 1 partial → all three shards participate.
        let batch: Vec<Vec<u64>> = (0..9).map(|s| pseudo(8, 97, s + 60)).collect();
        sharded.forward_batch(&batch).unwrap();
        let secs = sharded.last_wave_shard_secs();
        assert_eq!(secs.len(), 3);
        assert!(secs.iter().all(|&s| s > 0.0));
        // A wave that fills only one shard reports only that shard.
        sharded.forward_batch(&batch[..2]).unwrap();
        assert_eq!(sharded.last_wave_shard_secs().len(), 1);
    }

    #[test]
    fn polymul_batch_refreshes_shard_timings() {
        // Regression: polymul_batch used to run its own untimed fan-out,
        // leaving last_wave_shard_secs describing the *previous*
        // forward/roundtrip wave. It now routes through the timed
        // run_wave path like every other batch op.
        let mut sharded = ShardedBpNtt::new(&config(), 2).unwrap();
        // A 9-poly forward leaves 3 chunks → 2 participating shards.
        let batch: Vec<Vec<u64>> = (0..9).map(|s| pseudo(8, 97, s + 300)).collect();
        sharded.forward_batch(&batch).unwrap();
        let stale: Vec<f64> = sharded.last_wave_shard_secs().to_vec();
        assert_eq!(stale.len(), 2);

        // One pair → one chunk → exactly one participating shard. Before
        // the fix this call left the two forward entries in place.
        let a = vec![pseudo(8, 97, 310)];
        let b = vec![pseudo(8, 97, 311)];
        sharded.polymul_batch(&a, &b).unwrap();
        let secs = sharded.last_wave_shard_secs();
        assert_eq!(
            secs.len(),
            1,
            "polymul must report one entry per participating shard"
        );
        assert!(secs[0] > 0.0);

        // A full-width polymul reports every participating shard again.
        let a: Vec<Vec<u64>> = (0..9).map(|s| pseudo(8, 97, s + 320)).collect();
        let b: Vec<Vec<u64>> = (0..9).map(|s| pseudo(8, 97, s + 330)).collect();
        sharded.polymul_batch(&a, &b).unwrap();
        let secs = sharded.last_wave_shard_secs();
        assert_eq!(secs.len(), 2);
        assert!(secs.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn empty_batches_clear_timings_and_skip_work() {
        // Regression: empty batches used to warm/compile programs and
        // leave the previous wave's shard timings in place.
        let mut sharded = ShardedBpNtt::new(&config(), 2).unwrap();
        let batch: Vec<Vec<u64>> = (0..4).map(|s| pseudo(8, 97, s + 400)).collect();
        sharded.forward_batch(&batch).unwrap();
        assert!(!sharded.last_wave_shard_secs().is_empty());

        assert_eq!(sharded.forward_batch(&[]).unwrap(), Vec::<Vec<u64>>::new());
        assert!(
            sharded.last_wave_shard_secs().is_empty(),
            "empty forward batch must clear stale timings"
        );

        sharded.roundtrip_batch(&batch).unwrap();
        assert!(!sharded.last_wave_shard_secs().is_empty());
        assert!(sharded.roundtrip_batch(&[]).unwrap().is_empty());
        assert!(sharded.last_wave_shard_secs().is_empty());

        sharded.polymul_batch(&batch, &batch).unwrap();
        assert!(!sharded.last_wave_shard_secs().is_empty());
        assert!(sharded.polymul_batch(&[], &[]).unwrap().is_empty());
        assert!(sharded.last_wave_shard_secs().is_empty());

        // And a fresh engine compiles nothing for an empty batch.
        let mut fresh = ShardedBpNtt::new(&config(), 2).unwrap();
        fresh.forward_batch(&[]).unwrap();
        fresh.roundtrip_batch(&[]).unwrap();
        fresh.polymul_batch(&[], &[]).unwrap();
        for shard in &fresh.shards {
            assert_eq!(shard.cached_programs(), 0, "empty batches must not compile");
        }
    }

    #[test]
    fn work_stealing_preserves_input_order() {
        // 30 polys over 3 shards → 8 chunks stolen by 3 workers in
        // nondeterministic order; the reassembled output must still match
        // the reference in input order.
        let params = NttParams::new(8, 97).unwrap();
        let mut sharded = ShardedBpNtt::new(&config(), 3).unwrap();
        let batch: Vec<Vec<u64>> = (0..30).map(|s| pseudo(8, 97, s + 500)).collect();
        let got = sharded.forward_batch(&batch).unwrap();
        let t = TwiddleTable::new(&params);
        for (i, p) in batch.iter().enumerate() {
            let mut expect = p.clone();
            ntt_in_place(&params, &t, &mut expect).unwrap();
            assert_eq!(got[i], expect, "poly {i}");
        }
        // Workers spawn for min(shards, chunks) — all 3 here.
        assert_eq!(sharded.last_wave_shard_secs().len(), 3);
    }

    #[test]
    fn shared_programs_compile_once() {
        let mut sharded = ShardedBpNtt::new(&config(), 4).unwrap();
        let batch: Vec<Vec<u64>> = (0..16).map(|s| pseudo(8, 97, s + 9)).collect();
        sharded.forward_batch(&batch).unwrap();
        for shard in &sharded.shards {
            assert_eq!(
                shard.cached_programs(),
                1,
                "every shard holds the shared program"
            );
        }
    }
}
