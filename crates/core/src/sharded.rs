//! Multi-array batch sharding: scale one compiled program across K arrays.
//!
//! A single BP-NTT array processes `lanes` polynomials per batch. Real
//! workloads (HE ciphertext limbs, server-side signature verification)
//! arrive in batches of hundreds to thousands — far beyond one array. A
//! [`ShardedBpNtt`] provisions `K` identically configured [`BpNtt`]
//! arrays, compiles each schedule **once**, shares the compiled program
//! across every shard behind an `Arc`, and replays it on all shards in
//! parallel (one OS thread per shard, via `std::thread::scope` — the
//! dependency-free equivalent of a rayon fan-out). Batches larger than
//! `K × lanes` are processed in waves.
//!
//! This mirrors the paper's scaling argument: BP-NTT's area is small
//! enough (0.063 mm² per 256×256 array) that a memory chip hosts hundreds
//! of arrays, all driven by the *same* instruction stream. The sharded
//! engine is that argument in software: one compilation, K replicas, no
//! cross-shard communication.
//!
//! # Example
//!
//! ```
//! use bpntt_core::{BpNttConfig, ShardedBpNtt};
//! use bpntt_ntt::NttParams;
//!
//! let cfg = BpNttConfig::new(32, 32, 8, NttParams::new(8, 97)?)?;
//! let mut sharded = ShardedBpNtt::new(&cfg, 4)?;
//! // 4 shards × 4 lanes = 16 polynomials per wave.
//! assert_eq!(sharded.lanes_total(), 16);
//! let batch: Vec<Vec<u64>> = (0..23)
//!     .map(|s| (0..8).map(|j| (s * 13 + j * 7) as u64 % 97).collect())
//!     .collect();
//! let spectra = sharded.forward_batch(&batch)?;
//! assert_eq!(spectra.len(), 23);
//! # Ok::<(), bpntt_core::BpNttError>(())
//! ```

use std::sync::Arc;

use crate::config::BpNttConfig;
use crate::engine::BpNtt;
use crate::error::BpNttError;
use bpntt_sram::Stats;

/// `K` identically configured BP-NTT arrays replaying shared compiled
/// programs over partitioned batches.
#[derive(Debug)]
pub struct ShardedBpNtt {
    shards: Vec<BpNtt>,
    lanes_per_shard: usize,
    /// Wall-clock seconds each shard thread spent in the most recent wave
    /// (load + compute + read-back), indexed by shard. Shards beyond the
    /// last wave's chunk count report no entry.
    last_shard_secs: Vec<f64>,
}

/// Which batch operation to run on each shard.
#[derive(Clone, Copy)]
enum Op {
    Forward,
    Roundtrip,
}

/// One shard's wave outcome plus its thread's wall-clock seconds.
type ShardOutcome = (Result<Vec<Vec<u64>>, BpNttError>, f64);

impl ShardedBpNtt {
    /// Provisions `shards` arrays with the given configuration.
    ///
    /// # Errors
    ///
    /// [`BpNttError::InvalidShardCount`] for zero shards; otherwise
    /// propagates per-array construction failures.
    pub fn new(config: &BpNttConfig, shards: usize) -> Result<Self, BpNttError> {
        if shards == 0 {
            return Err(BpNttError::InvalidShardCount { shards });
        }
        let shards: Vec<BpNtt> = (0..shards)
            .map(|_| BpNtt::new(config.clone()))
            .collect::<Result<_, _>>()?;
        let lanes_per_shard = config.layout().lanes();
        Ok(ShardedBpNtt {
            shards,
            lanes_per_shard,
            last_shard_secs: Vec::new(),
        })
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Polynomials processed per wave across all shards.
    #[must_use]
    pub fn lanes_total(&self) -> usize {
        self.shards.len() * self.lanes_per_shard
    }

    /// Aggregated simulator statistics over every shard.
    #[must_use]
    pub fn stats(&self) -> Stats {
        self.shards
            .iter()
            .fold(Stats::default(), |acc, s| acc + *s.stats())
    }

    /// Resets every shard's statistics.
    pub fn reset_stats(&mut self) {
        for s in &mut self.shards {
            s.reset_stats();
        }
    }

    /// Per-shard wall-clock seconds of the most recent
    /// forward/roundtrip wave (load, compute, and read-back inside each
    /// shard thread). On a single-core host the
    /// sum approximates the wave's wall-clock — the threads serialize — so
    /// flat `polys_per_sec` scaling is expected there; on real multi-core
    /// hardware the wave completes in roughly the per-shard maximum.
    #[must_use]
    pub fn last_wave_shard_secs(&self) -> &[f64] {
        &self.last_shard_secs
    }

    /// Compiles the programs for `keys` once (on shard 0) and installs the
    /// shared `Arc`s into every other shard, so the parallel phase never
    /// compiles.
    fn warm_programs(&mut self, keys: &[crate::engine::ProgramKey]) -> Result<(), BpNttError> {
        for &key in keys {
            let prog = self.shards[0].program(key)?;
            for shard in &mut self.shards[1..] {
                shard.install_program(key, Arc::clone(&prog));
            }
        }
        Ok(())
    }

    /// Runs one already-warmed operation over one wave of at most
    /// `lanes_total` polynomials, fanned out one thread per shard.
    fn run_wave(
        &mut self,
        wave: &[Vec<u64>],
        op: Op,
        out: &mut Vec<Vec<u64>>,
    ) -> Result<(), BpNttError> {
        let lanes = self.lanes_per_shard;
        debug_assert!(wave.len() <= self.lanes_total());
        let mut results: Vec<ShardOutcome> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (shard, chunk) in self.shards.iter_mut().zip(wave.chunks(lanes)) {
                handles.push(scope.spawn(move || {
                    let t = std::time::Instant::now();
                    let mut run = || -> Result<Vec<Vec<u64>>, BpNttError> {
                        shard.load_batch(chunk)?;
                        match op {
                            Op::Forward => shard.forward()?,
                            Op::Roundtrip => {
                                shard.forward()?;
                                shard.inverse()?;
                            }
                        }
                        shard.read_batch(chunk.len())
                    };
                    let r = run();
                    (r, t.elapsed().as_secs_f64())
                }));
            }
            for h in handles {
                results.push(h.join().expect("shard thread panicked"));
            }
        });
        // Every thread has joined, so record all timings before the first
        // shard error can propagate — a failed wave still reports one
        // entry per participating shard.
        self.last_shard_secs.clear();
        self.last_shard_secs.extend(results.iter().map(|&(_, s)| s));
        for (r, _) in results {
            out.extend(r?);
        }
        Ok(())
    }

    /// Forward-transforms an arbitrarily large batch: waves of
    /// `lanes_total` polynomials are partitioned across shards and each
    /// shard replays the shared compiled forward program. Output order
    /// matches input order.
    ///
    /// # Errors
    ///
    /// Propagates validation (length/reduction) and simulator failures.
    pub fn forward_batch(&mut self, polys: &[Vec<u64>]) -> Result<Vec<Vec<u64>>, BpNttError> {
        self.warm_programs(&[self.shards[0].transform_program_keys()[0]])?;
        let mut out = Vec::with_capacity(polys.len());
        for wave in polys.chunks(self.lanes_total().max(1)) {
            self.run_wave(wave, Op::Forward, &mut out)?;
        }
        Ok(out)
    }

    /// Forward + inverse roundtrip over an arbitrarily large batch
    /// (primarily a correctness/throughput harness: the output equals the
    /// input when the transform pair is exact).
    ///
    /// # Errors
    ///
    /// Propagates validation and simulator failures.
    pub fn roundtrip_batch(&mut self, polys: &[Vec<u64>]) -> Result<Vec<Vec<u64>>, BpNttError> {
        let keys = self.shards[0].transform_program_keys();
        self.warm_programs(&keys)?;
        let mut out = Vec::with_capacity(polys.len());
        for wave in polys.chunks(self.lanes_total().max(1)) {
            self.run_wave(wave, Op::Roundtrip, &mut out)?;
        }
        Ok(out)
    }

    /// Negacyclic polynomial multiplication over an arbitrarily large
    /// batch of operand pairs: `out[i] = a[i] ⊛ b[i]`. Each wave is
    /// partitioned across shards; every shard replays the four shared
    /// compiled programs (two forwards, pointwise, scaled inverse).
    ///
    /// # Errors
    ///
    /// [`BpNttError::BatchMismatch`] when `a` and `b` differ in length;
    /// otherwise propagates validation and simulator failures.
    pub fn polymul_batch(
        &mut self,
        a: &[Vec<u64>],
        b: &[Vec<u64>],
    ) -> Result<Vec<Vec<u64>>, BpNttError> {
        if a.len() != b.len() {
            return Err(BpNttError::BatchMismatch {
                a: a.len(),
                b: b.len(),
            });
        }
        let keys = self.shards[0].polymul_program_keys();
        self.warm_programs(&keys)?;
        let lanes = self.lanes_per_shard;
        let per_wave = self.lanes_total();
        let mut out = Vec::with_capacity(a.len());
        for (wave_a, wave_b) in a.chunks(per_wave).zip(b.chunks(per_wave)) {
            let mut results: Vec<Result<Vec<Vec<u64>>, BpNttError>> = Vec::new();
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for ((shard, chunk_a), chunk_b) in self
                    .shards
                    .iter_mut()
                    .zip(wave_a.chunks(lanes))
                    .zip(wave_b.chunks(lanes))
                {
                    handles.push(scope.spawn(move || shard.polymul(chunk_a, chunk_b)));
                }
                for h in handles {
                    results.push(h.join().expect("shard thread panicked"));
                }
            });
            for r in results {
                out.extend(r?);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpntt_ntt::forward::ntt_in_place;
    use bpntt_ntt::polymul::polymul_schoolbook;
    use bpntt_ntt::{NttParams, TwiddleTable};

    fn pseudo(n: usize, q: u64, seed: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % q
            })
            .collect()
    }

    fn config() -> BpNttConfig {
        BpNttConfig::new(32, 32, 8, NttParams::new(8, 97).unwrap()).unwrap()
    }

    #[test]
    fn rejects_zero_shards() {
        assert!(matches!(
            ShardedBpNtt::new(&config(), 0),
            Err(BpNttError::InvalidShardCount { .. })
        ));
    }

    #[test]
    fn forward_batch_matches_reference_across_waves() {
        let params = NttParams::new(8, 97).unwrap();
        let mut sharded = ShardedBpNtt::new(&config(), 3).unwrap();
        // 3 shards × 4 lanes = 12 per wave; 30 polys → 3 waves, last partial.
        let batch: Vec<Vec<u64>> = (0..30).map(|s| pseudo(8, 97, s + 1)).collect();
        let got = sharded.forward_batch(&batch).unwrap();
        assert_eq!(got.len(), 30);
        let t = TwiddleTable::new(&params);
        for (i, p) in batch.iter().enumerate() {
            let mut expect = p.clone();
            ntt_in_place(&params, &t, &mut expect).unwrap();
            assert_eq!(got[i], expect, "poly {i}");
        }
    }

    #[test]
    fn roundtrip_batch_is_identity() {
        let mut sharded = ShardedBpNtt::new(&config(), 2).unwrap();
        let batch: Vec<Vec<u64>> = (0..17).map(|s| pseudo(8, 97, s + 50)).collect();
        assert_eq!(sharded.roundtrip_batch(&batch).unwrap(), batch);
    }

    #[test]
    fn polymul_batch_matches_schoolbook() {
        let params = NttParams::new(8, 97).unwrap();
        let mut sharded = ShardedBpNtt::new(&config(), 2).unwrap();
        let a: Vec<Vec<u64>> = (0..11).map(|s| pseudo(8, 97, s + 100)).collect();
        let b: Vec<Vec<u64>> = (0..11).map(|s| pseudo(8, 97, s + 200)).collect();
        let got = sharded.polymul_batch(&a, &b).unwrap();
        assert_eq!(got.len(), 11);
        for i in 0..11 {
            let expect = polymul_schoolbook(&params, &a[i], &b[i]).unwrap();
            assert_eq!(got[i], expect, "pair {i}");
        }
    }

    #[test]
    fn polymul_batch_rejects_mismatched_operands() {
        let mut sharded = ShardedBpNtt::new(&config(), 2).unwrap();
        let a = vec![pseudo(8, 97, 1)];
        assert!(matches!(
            sharded.polymul_batch(&a, &[]),
            Err(BpNttError::BatchMismatch { a: 1, b: 0 })
        ));
    }

    #[test]
    fn sharded_stats_aggregate_and_match_single_array() {
        // Two shards fed the *same* chunk accumulate exactly 2× the
        // single-array statistics (the resolution loops are data-dependent,
        // so the chunks must match for exact doubling).
        let chunk: Vec<Vec<u64>> = (0..4).map(|s| pseudo(8, 97, s + 7)).collect();
        let mut batch = chunk.clone();
        batch.extend(chunk.iter().cloned());

        let mut single = ShardedBpNtt::new(&config(), 1).unwrap();
        single.forward_batch(&chunk).unwrap();
        let s1 = single.stats();

        let mut sharded = ShardedBpNtt::new(&config(), 2).unwrap();
        sharded.forward_batch(&batch).unwrap();
        let s2 = sharded.stats();

        assert_eq!(s2.cycles, 2 * s1.cycles);
        assert_eq!(s2.counts.total(), 2 * s1.counts.total());
    }

    #[test]
    fn per_shard_wall_clock_is_recorded() {
        let mut sharded = ShardedBpNtt::new(&config(), 3).unwrap();
        assert!(sharded.last_wave_shard_secs().is_empty());
        // 2 full chunks + 1 partial → all three shards participate.
        let batch: Vec<Vec<u64>> = (0..9).map(|s| pseudo(8, 97, s + 60)).collect();
        sharded.forward_batch(&batch).unwrap();
        let secs = sharded.last_wave_shard_secs();
        assert_eq!(secs.len(), 3);
        assert!(secs.iter().all(|&s| s > 0.0));
        // A wave that fills only one shard reports only that shard.
        sharded.forward_batch(&batch[..2]).unwrap();
        assert_eq!(sharded.last_wave_shard_secs().len(), 1);
    }

    #[test]
    fn shared_programs_compile_once() {
        let mut sharded = ShardedBpNtt::new(&config(), 4).unwrap();
        let batch: Vec<Vec<u64>> = (0..16).map(|s| pseudo(8, 97, s + 9)).collect();
        sharded.forward_batch(&batch).unwrap();
        for shard in &sharded.shards {
            assert_eq!(
                shard.cached_programs(),
                1,
                "every shard holds the shared program"
            );
        }
    }
}
