//! Multi-array batch sharding: scale one compiled program across K arrays.
//!
//! A single BP-NTT array processes `lanes` polynomials per batch. Real
//! workloads (HE ciphertext limbs, server-side signature verification)
//! arrive in batches of hundreds to thousands — far beyond one array. A
//! [`ShardedBpNtt`] provisions `K` identically configured engines behind
//! the [`NttBackend`] seam (the cost-accounted simulator by default, the
//! native direct-execution backend via [`ShardedBpNtt::with_backend`] — see
//! [`crate::backend`]), compiles each schedule **once**, shares the
//! compiled program across every shard behind an `Arc`, and replays it on
//! all shards in parallel (one OS thread per shard, via
//! `std::thread::scope` — the dependency-free equivalent of a rayon
//! fan-out). Batches larger than `K × lanes` are processed in waves.
//!
//! This mirrors the paper's scaling argument: BP-NTT's area is small
//! enough (0.063 mm² per 256×256 array) that a memory chip hosts hundreds
//! of arrays, all driven by the *same* instruction stream. The sharded
//! engine is that argument in software: one compilation, K replicas, no
//! cross-shard communication.
//!
//! # Example
//!
//! ```
//! use bpntt_core::{BpNttConfig, ShardedBpNtt};
//! use bpntt_ntt::NttParams;
//!
//! let cfg = BpNttConfig::new(32, 32, 8, NttParams::new(8, 97)?)?;
//! let mut sharded = ShardedBpNtt::new(&cfg, 4)?;
//! // 4 shards × 4 lanes = 16 polynomials per wave.
//! assert_eq!(sharded.lanes_total(), 16);
//! let batch: Vec<Vec<u64>> = (0..23)
//!     .map(|s| (0..8).map(|j| (s * 13 + j * 7) as u64 % 97).collect())
//!     .collect();
//! let spectra = sharded.forward_batch(&batch)?;
//! assert_eq!(spectra.len(), 23);
//! # Ok::<(), bpntt_core::BpNttError>(())
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::backend::{new_backend, BackendKind, NttBackend};
use crate::config::BpNttConfig;
use crate::error::BpNttError;
use crate::health::{HealthCounters, HealthMonitor, HealthOptions, ShardHealthState};
use crate::pipeline::{CompiledPipeline, ExecMode, PipelineSpec};
use crate::verify::VerifyPolicy;
use bpntt_sram::{CompiledProgram, FaultPlan, FaultStats, Stats};

/// How a sharded wave detects and recovers from corrupted or crashed
/// chunks — the detect→retry→quarantine→degrade ladder.
///
/// The default is the historical behavior: no verification, no retries,
/// and the first chunk error (now including a worker panic, surfaced as
/// [`BpNttError::WorkerPanicked`]) fails the wave. With recovery active
/// the ladder guarantees a correct answer always comes back:
///
/// 1. **detect** — each shard checks its chunk under `verify`
///    (see [`VerifyPolicy`]);
/// 2. **retry** — a failed chunk reruns on the same shard up to
///    `retry_budget` more times (a transient upset is consumed by the
///    failed run, so the retry executes on clean state, and every retry
///    spot-checks fresh points);
/// 3. **quarantine** — a shard that exhausts the budget is presumed
///    persistently faulty (stuck-at cell, dead wordline): it stops
///    claiming work for this and future waves and its chunk re-dispatches
///    once to a healthy shard through the work queue;
/// 4. **degrade** — chunks still unfilled at reassembly (re-dispatch also
///    failed, or every shard is quarantined) are recomputed with the
///    software reference when `software_fallback` is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryOptions {
    /// Output verification applied by every shard to every chunk.
    pub verify: VerifyPolicy,
    /// Extra attempts a shard gives a failing chunk before quarantining
    /// itself.
    pub retry_budget: usize,
    /// Recompute terminally failed chunks with the software reference
    /// instead of failing the wave.
    pub software_fallback: bool,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            verify: VerifyPolicy::Off,
            retry_budget: 0,
            software_fallback: false,
        }
    }
}

impl RecoveryOptions {
    /// The full ladder: spot-check verification, two retries, software
    /// fallback.
    #[must_use]
    pub fn resilient() -> Self {
        RecoveryOptions {
            verify: VerifyPolicy::SpotCheck { points: 2 },
            retry_budget: 2,
            software_fallback: true,
        }
    }

    /// Whether any recovery rung beyond fail-the-wave is active.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.verify.is_active() || self.retry_budget > 0 || self.software_fallback
    }
}

/// What the recovery ladder actually did — per wave
/// ([`ShardedBpNtt::last_recovery`]) and cumulatively
/// ([`ShardedBpNtt::recovery_totals`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryReport {
    /// Chunk attempts that failed detection (verification or simulator
    /// error) or crashed.
    pub faults_detected: u64,
    /// Chunk re-executions (same shard or re-dispatched).
    pub retries: u64,
    /// Shards currently quarantined.
    pub quarantined_shards: u64,
    /// Polynomials answered by the software reference fallback.
    pub fallback_polys: u64,
    /// Worker panics contained by `catch_unwind`.
    pub worker_panics: u64,
    /// Wall-clock seconds spent verifying outputs.
    pub verify_secs: f64,
    /// Whether this wave (or any wave, for totals) left the happy path:
    /// a shard was quarantined or a chunk fell back to software.
    pub degraded: bool,
}

impl RecoveryReport {
    fn absorb(&mut self, other: &RecoveryReport) {
        self.faults_detected += other.faults_detected;
        self.retries += other.retries;
        // "Currently quarantined" is a level, not a count: totals keep
        // the high-water mark, per-wave reports overwrite.
        self.quarantined_shards = self.quarantined_shards.max(other.quarantined_shards);
        self.fallback_polys += other.fallback_polys;
        self.worker_panics += other.worker_panics;
        self.verify_secs += other.verify_secs;
        self.degraded |= other.degraded;
    }
}

/// `K` identically configured BP-NTT arrays replaying shared compiled
/// programs over partitioned batches.
#[derive(Debug)]
pub struct ShardedBpNtt {
    shards: Vec<Box<dyn NttBackend>>,
    backend: BackendKind,
    lanes_per_shard: usize,
    /// Wall-clock seconds each participating shard thread spent in the
    /// most recent batch fan-out (load + compute + read-back across every
    /// chunk it claimed), indexed by shard. Shards that spawned no worker
    /// (fewer chunks than shards) report no entry.
    last_shard_secs: Vec<f64>,
    recovery: RecoveryOptions,
    /// The per-shard healing state machine: quarantine flags, canary
    /// progress, decayed fault scores, probe scheduling (see
    /// [`crate::health`]).
    health: HealthMonitor,
    /// Construction instant — the monitor's monotonic time base.
    t0: Instant,
    /// Lazily built known-answer probe vectors (see [`Self::scrub_pass`]).
    probe: Option<ProbeSet>,
    last_report: RecoveryReport,
    totals: RecoveryReport,
}

/// One probe vector: slot-major inputs (one lane per slot) paired with
/// the software-reference output rows they must reproduce exactly.
type ProbeVector = (Vec<Vec<Vec<u64>>>, Vec<u64>);

/// Precomputed known-answer probe data: seeded inputs and their
/// software-reference outputs, compared reference-exact against the
/// probed shard's rows.
#[derive(Debug)]
struct ProbeSet {
    spec: PipelineSpec,
    /// Probe vectors rotated across probes.
    vectors: Vec<ProbeVector>,
    /// Rotation cursor.
    cursor: usize,
}

/// What one [`ShardedBpNtt::scrub_pass`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Known-answer probes executed this pass (scrub + patrol).
    pub probes_run: u64,
    /// Probes whose rows matched the reference exactly.
    pub probes_passed: u64,
    /// Shards promoted quarantined/probing → canary this pass.
    pub entered_canary: u64,
    /// Patrol probes of healthy shards (subset of `probes_run`).
    pub patrol_probes: u64,
    /// Healthy shards benched by a failing patrol probe.
    pub patrol_quarantines: u64,
}

/// One shard worker's outcome.
struct ShardOutcome {
    /// Completed chunks, tagged with their chunk index so the wave can
    /// reassemble input order.
    done: Vec<(usize, Vec<Vec<u64>>)>,
    /// The error that stopped this worker (fail-the-wave mode only).
    err: Option<BpNttError>,
    /// The worker thread's total wall-clock seconds.
    secs: f64,
    /// Whether the worker quarantined its shard.
    quarantined: bool,
    /// Detection/retry/panic/verify-time counters for the wave report.
    report: RecoveryReport,
}

/// A chunk awaiting re-dispatch after its owning shard was quarantined:
/// `(chunk index, hops)`. One hop is allowed — a chunk that fails on a
/// *second* shard goes to the software fallback, not around the ring.
type Requeue = Mutex<Vec<(usize, u8)>>;

impl ShardedBpNtt {
    /// Provisions `shards` arrays with the given configuration on the
    /// default [`BackendKind::Sim`] backend.
    ///
    /// # Errors
    ///
    /// [`BpNttError::InvalidShardCount`] for zero shards; otherwise
    /// propagates per-array construction failures.
    pub fn new(config: &BpNttConfig, shards: usize) -> Result<Self, BpNttError> {
        Self::with_backend(config, shards, BackendKind::Sim)
    }

    /// Provisions `shards` engines of the requested backend kind. Every
    /// shard runs the same kind — heterogeneous waves are a service-layer
    /// concern (one sharded engine per tenant, tenants on different
    /// backends).
    ///
    /// # Errors
    ///
    /// [`BpNttError::InvalidShardCount`] for zero shards; otherwise
    /// propagates per-engine construction failures.
    pub fn with_backend(
        config: &BpNttConfig,
        shards: usize,
        backend: BackendKind,
    ) -> Result<Self, BpNttError> {
        if shards == 0 {
            return Err(BpNttError::InvalidShardCount { shards });
        }
        let shards: Vec<Box<dyn NttBackend>> = (0..shards)
            .map(|_| new_backend(backend, config))
            .collect::<Result<_, _>>()?;
        let lanes_per_shard = config.layout().lanes();
        let n_shards = shards.len();
        Ok(ShardedBpNtt {
            shards,
            backend,
            lanes_per_shard,
            last_shard_secs: Vec::new(),
            recovery: RecoveryOptions::default(),
            health: HealthMonitor::new(n_shards, HealthOptions::default()),
            t0: Instant::now(),
            probe: None,
            last_report: RecoveryReport::default(),
            totals: RecoveryReport::default(),
        })
    }

    /// Monotonic seconds since construction — the health monitor's time
    /// base.
    fn now_secs(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Which backend kind every shard runs on.
    #[must_use]
    pub fn backend_kind(&self) -> BackendKind {
        self.backend
    }

    /// Configures the detect→retry→quarantine→degrade ladder (see
    /// [`RecoveryOptions`]); applies the verification policy to every
    /// shard.
    pub fn set_recovery(&mut self, opts: RecoveryOptions) {
        self.recovery = opts;
        for s in &mut self.shards {
            s.set_verify_policy(opts.verify);
        }
    }

    /// The active recovery configuration.
    #[must_use]
    pub fn recovery(&self) -> RecoveryOptions {
        self.recovery
    }

    /// Installs `plan` on every shard, reseeded per shard so the shards
    /// draw independent fault streams from one chaos description.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        for (i, s) in self.shards.iter_mut().enumerate() {
            let seed = plan
                .seed()
                .wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            s.install_fault_plan(plan.clone().with_seed(seed));
        }
    }

    /// Clears every shard's fault plan, returning the summed injection
    /// counters.
    pub fn clear_fault_plans(&mut self) -> FaultStats {
        let mut total = FaultStats::default();
        for s in &mut self.shards {
            let st = s.clear_fault_plan();
            total.transients += st.transients;
            total.persistent_imposications += st.persistent_imposications;
        }
        total
    }

    /// Indices of the shards currently benched (quarantined or under
    /// probe) — canary shards are back in service and not listed.
    #[must_use]
    pub fn quarantined(&self) -> Vec<usize> {
        (0..self.shards.len())
            .filter(|&i| self.health.is_benched(i))
            .collect()
    }

    /// Benches one shard: it stops claiming wave chunks until the
    /// scrubber reintegrates it or an operator lifts the quarantine.
    /// The ladder calls this automatically on budget exhaustion; it is
    /// public for operator-driven removal (e.g. a known-bad array).
    ///
    /// # Panics
    ///
    /// Panics if `shard_idx` is out of range.
    pub fn quarantine(&mut self, shard_idx: usize) {
        assert!(
            shard_idx < self.shards.len(),
            "shard {shard_idx} out of range"
        );
        let now = self.now_secs();
        self.health.quarantine(shard_idx, now);
    }

    /// Operator override: returns one quarantined (or canary) shard
    /// straight to full duty, forgetting its fault history and probe
    /// backoff — e.g. after physically replacing the faulty array.
    ///
    /// # Panics
    ///
    /// Panics if `shard_idx` is out of range.
    pub fn lift_quarantine(&mut self, shard_idx: usize) {
        assert!(
            shard_idx < self.shards.len(),
            "shard {shard_idx} out of range"
        );
        self.health.lift(shard_idx);
    }

    /// Returns every benched shard to service (e.g. after clearing an
    /// injected fault plan across the board).
    pub fn lift_all_quarantines(&mut self) {
        for i in 0..self.shards.len() {
            self.health.lift(i);
        }
    }

    /// Every shard's healing state, indexed by shard.
    #[must_use]
    pub fn shard_health(&self) -> Vec<ShardHealthState> {
        self.health.states()
    }

    /// Cumulative healing-ladder counters (probes, reintegrations,
    /// canary demotions).
    #[must_use]
    pub fn health_counters(&self) -> HealthCounters {
        self.health.counters()
    }

    /// Replaces the healing knobs (probe cadence, canary thresholds,
    /// decay half-life; see [`HealthOptions`]).
    pub fn set_health_options(&mut self, opts: HealthOptions) {
        self.health.set_options(opts);
    }

    /// The decayed fault score of one shard right now (unit: faults,
    /// halved per [`HealthOptions::decay_half_life`]).
    ///
    /// # Panics
    ///
    /// Panics if `shard_idx` is out of range.
    #[must_use]
    pub fn shard_score(&self, shard_idx: usize) -> f64 {
        self.health.score(shard_idx, self.now_secs())
    }

    /// Number of compiled programs each shard engine currently caches
    /// (caches are kept uniform across shards; this reads shard 0).
    #[must_use]
    pub fn cached_programs(&self) -> usize {
        self.shards[0].cached_programs()
    }

    /// Opaque identities of the programs cached by shard `shard_idx`,
    /// sorted. Two equal snapshots mean the cache still holds the
    /// *same* program objects — nothing was recompiled or replaced in
    /// between (scrub probes must replay, never mutate the cache).
    ///
    /// Panics if `shard_idx` is out of range.
    #[must_use]
    pub fn program_identities(&self, shard_idx: usize) -> Vec<usize> {
        let mut ids: Vec<usize> = self.shards[shard_idx]
            .export_programs()
            .iter()
            .map(|(_, prog)| Arc::as_ptr(prog) as usize)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// One scrubber pass: runs seeded known-answer probes against every
    /// benched shard whose backoff has elapsed (and whose decayed fault
    /// score has cooled), and patrol-probes idle healthy shards whose
    /// patrol interval has elapsed. Probe rows are compared
    /// **reference-exact** against precomputed software-reference
    /// output; probes run on probe-owned inputs and never touch
    /// tenant-visible operand slots or mutate already-cached programs.
    ///
    /// Shards accumulating enough consecutive passes re-enter service
    /// in canary mode (see [`crate::health`]); the promotion back to
    /// full duty happens in [`Self::run_pipeline_batch`] waves, not
    /// here. The service layer drives this from its background scrubber
    /// thread; standalone users call it on their own cadence.
    pub fn scrub_pass(&mut self) -> ScrubReport {
        let mut report = ScrubReport::default();
        for idx in 0..self.shards.len() {
            let now = self.now_secs();
            if self.health.due_for_probe(idx, now) {
                let passed = self.probe_shard(idx);
                report.probes_run += 1;
                report.probes_passed += u64::from(passed);
                let now = self.now_secs();
                if let Some(crate::health::HealthTransition::EnteredCanary) =
                    self.health.record_probe(idx, passed, now)
                {
                    report.entered_canary += 1;
                }
            } else if self.health.due_for_patrol(idx, now) {
                let passed = self.probe_shard(idx);
                report.probes_run += 1;
                report.probes_passed += u64::from(passed);
                report.patrol_probes += 1;
                report.patrol_quarantines += u64::from(!passed);
                let now = self.now_secs();
                self.health.record_patrol(idx, passed, now);
            }
        }
        report
    }

    /// Executes one known-answer probe on shard `shard_idx`: a compiled
    /// pipeline over seeded probe inputs, rows asserted reference-exact
    /// against the precomputed software reference. Any divergence,
    /// typed error, or contained panic is a failed probe.
    fn probe_shard(&mut self, shard_idx: usize) -> bool {
        if self.ensure_probe_set().is_err() {
            return false;
        }
        let probe = self.probe.as_mut().expect("probe set built above");
        let (inputs, expected) = {
            let v = &probe.vectors[probe.cursor % probe.vectors.len()];
            probe.cursor += 1;
            (&v.0, &v.1)
        };
        let spec = probe.spec.clone();
        let shard = &mut self.shards[shard_idx];
        // Compile-or-cache-hit: probes of a warmed engine never
        // recompile, a cold engine pays the compile once.
        let pipe = match shard.compile(&spec) {
            Ok(p) => p,
            Err(_) => return false,
        };
        let chunk: Vec<&[Vec<u64>]> = inputs.iter().map(|slot| slot.as_slice()).collect();
        let res = catch_unwind(AssertUnwindSafe(|| {
            shard
                .execute(&pipe, ExecMode::Replay, &chunk)
                .map(|(rows, _)| rows)
        }));
        // Probe verification time must not pollute the next wave's
        // recovery report.
        let _ = shard.take_verify_secs();
        match res {
            Ok(Ok(rows)) => rows.len() == 1 && rows[0] == *expected,
            _ => false,
        }
    }

    /// Builds the probe vectors on first use: seeded pseudo-random
    /// operands for the canned forward-NTT graph, with the expected rows
    /// precomputed by the software reference.
    fn ensure_probe_set(&mut self) -> Result<(), BpNttError> {
        if self.probe.is_some() {
            return Ok(());
        }
        let spec = PipelineSpec::forward_ntt();
        let cfg = self.shards[0].config();
        let n = cfg.params().n();
        let q = cfg.params().modulus();
        let mut vectors = Vec::new();
        for seed in [0x5C_12_u64, 0xBBED_u64] {
            let mut x = seed | 1;
            let poly: Vec<u64> = (0..n)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x % q
                })
                .collect();
            let expected = self.shards[0]
                .verifier()
                .clone()
                .software_lane(&spec, &[&poly])?
                .ok_or_else(|| BpNttError::InvalidPipeline {
                    reason: "probe spec has no software reference".into(),
                })?;
            vectors.push((vec![vec![poly]], expected));
        }
        self.probe = Some(ProbeSet {
            spec,
            vectors,
            cursor: 0,
        });
        Ok(())
    }

    /// What the recovery ladder did during the most recent wave.
    #[must_use]
    pub fn last_recovery(&self) -> &RecoveryReport {
        &self.last_report
    }

    /// Cumulative ladder activity since construction.
    #[must_use]
    pub fn recovery_totals(&self) -> &RecoveryReport {
        &self.totals
    }

    /// Polynomials processed per wave across all shards.
    #[must_use]
    pub fn lanes_total(&self) -> usize {
        self.shards.len() * self.lanes_per_shard
    }

    /// Aggregated simulator statistics over every shard.
    ///
    /// Integer fields (cycles, instruction counts, row loads) are exact
    /// and independent of scheduling. The `f64` energy accumulator is
    /// summed in shard order, but work-stealing makes the chunk→shard
    /// assignment nondeterministic, so the aggregate's last-bit rounding
    /// can differ run to run on multi-core hosts. The bit-identical
    /// `Stats` discipline (replay ≡ emit, SIMD ≡ scalar) is a
    /// *per-engine* invariant and is unaffected — don't compare sharded
    /// aggregate energy bit-for-bit across runs.
    ///
    /// On the [`BackendKind::Native`] backend no shard models cost, so
    /// the aggregate is all zeros — wall clock
    /// ([`Self::last_wave_shard_secs`]) is the native metric.
    #[must_use]
    pub fn stats(&self) -> Stats {
        self.shards.iter().fold(Stats::default(), |acc, s| {
            acc + s.sim_stats().unwrap_or_default()
        })
    }

    /// Resets every shard's statistics.
    pub fn reset_stats(&mut self) {
        for s in &mut self.shards {
            s.reset_stats();
        }
    }

    /// Per-shard wall-clock seconds of the most recent batch fan-out —
    /// **every** batch entry point ([`Self::forward_batch`],
    /// [`Self::roundtrip_batch`], [`Self::polymul_batch`]) routes through
    /// the same timed [`run_wave`](Self::run_wave) path, so these numbers
    /// always describe the last call, never a stale earlier wave. One
    /// entry per participating shard (`min(shards, chunks)` workers
    /// spawn; work-stealing may let a fast shard claim several chunks).
    /// Empty batches clear the slice. On a single-core host the sum
    /// approximates the wave's wall-clock — the threads serialize — so
    /// flat `polys_per_sec` scaling is expected there; on real multi-core
    /// hardware the wave completes in roughly the per-shard maximum.
    #[must_use]
    pub fn last_wave_shard_secs(&self) -> &[f64] {
        &self.last_shard_secs
    }

    /// Compiles the pipeline for `spec` once (on shard 0) and installs
    /// the shared `Arc` (and its segment programs) into every other
    /// shard, so the parallel phase never compiles. Used by the service
    /// layer so tenant registration, not the first request, pays the
    /// compile.
    pub(crate) fn warm_pipeline(
        &mut self,
        spec: &PipelineSpec,
    ) -> Result<Arc<CompiledPipeline>, BpNttError> {
        let pipe = self.shards[0].compile(spec)?;
        for shard in &mut self.shards[1..] {
            shard.install_pipeline(&pipe);
        }
        Ok(pipe)
    }

    /// Whether shard 0 already holds a compiled pipeline for `spec`.
    pub(crate) fn has_pipeline(&self, spec: &PipelineSpec) -> bool {
        self.shards[0].has_pipeline(spec)
    }

    /// Installs an externally compiled pipeline into every shard (the
    /// service layer's cross-tenant `(params, layout, spec)` cache hit
    /// path).
    pub(crate) fn import_pipeline(&mut self, pipe: &Arc<CompiledPipeline>) {
        for shard in &mut self.shards {
            shard.install_pipeline(pipe);
        }
    }

    /// Executes one compiled pipeline over an arbitrarily large batch —
    /// **the** single timed execution path of every batch operation. The
    /// batch is cut into chunks of `lanes_per_shard` polynomials, one
    /// worker thread spawns per participating shard
    /// (`min(shards, chunks)`), and workers **steal** the next unclaimed
    /// chunk from a shared counter — a slow shard never stalls the wave,
    /// it just claims fewer chunks. Each claimed chunk runs the *whole*
    /// op-graph on-array (operands loaded once, one read-back at the
    /// end — no intermediate `read_batch`/`load_batch` round-trips
    /// between ops). Output order matches input order (chunks are
    /// reassembled by index). `inputs` is slot-major: one batch per
    /// declared input slot, all of equal length.
    fn run_wave(
        &mut self,
        pipe: &Arc<CompiledPipeline>,
        mode: ExecMode,
        inputs: &[&[Vec<u64>]],
        cancel: Option<&(dyn Fn() -> bool + Sync)>,
    ) -> Result<Vec<Vec<u64>>, BpNttError> {
        let batch = inputs.first().map_or(0, |b| b.len());
        let lanes = self.lanes_per_shard.max(1);
        let n_chunks = batch.div_ceil(lanes);
        let ladder = self.recovery.is_active();
        let retry_budget = self.recovery.retry_budget;
        let benched: Vec<bool> = (0..self.shards.len())
            .map(|i| self.health.is_benched(i))
            .collect();
        let canary: Vec<bool> = (0..self.shards.len())
            .map(|i| self.health.is_canary(i))
            .collect();
        let wave_policy = self.recovery.verify;
        let next = AtomicUsize::new(0);
        let requeue: Requeue = Mutex::new(Vec::new());
        let mut outcomes: Vec<(usize, ShardOutcome)> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (sid, shard) in self.shards.iter_mut().enumerate() {
                if benched[sid] || handles.len() == n_chunks {
                    continue;
                }
                if canary[sid] {
                    // Canary leash: every chunk this shard touches is
                    // fully verified, whatever the wave's policy.
                    shard.set_verify_policy(VerifyPolicy::Full);
                }
                let (next, requeue, pipe) = (&next, &requeue, Arc::clone(pipe));
                let shard: &mut dyn NttBackend = shard.as_mut();
                handles.push((
                    sid,
                    scope.spawn(move || {
                        run_worker(WorkerCtx {
                            shard,
                            sid,
                            pipe: &pipe,
                            mode,
                            inputs,
                            batch,
                            lanes,
                            n_chunks,
                            next,
                            requeue,
                            ladder,
                            retry_budget,
                            cancel,
                        })
                    }),
                ));
            }
            for (sid, h) in handles {
                // A panic that escaped the per-chunk catch_unwind (e.g. in
                // the claim loop itself) loses the worker's chunks but not
                // the wave's type-safety: it surfaces as WorkerPanicked.
                let outcome = h.join().unwrap_or_else(|_| ShardOutcome {
                    done: Vec::new(),
                    err: Some(BpNttError::WorkerPanicked { shard: sid }),
                    secs: 0.0,
                    quarantined: ladder,
                    report: RecoveryReport {
                        faults_detected: 1,
                        worker_panics: 1,
                        ..RecoveryReport::default()
                    },
                });
                outcomes.push((sid, outcome));
            }
        });
        // Restore the wave policy on canary shards before any early
        // return (the leash is per-wave, the policy field is persistent).
        for (sid, shard) in self.shards.iter_mut().enumerate() {
            if canary[sid] {
                shard.set_verify_policy(wave_policy);
            }
        }
        // Every worker has joined, so record all timings before the first
        // shard error can propagate — a failed wave still reports one
        // entry per participating shard.
        self.last_shard_secs.clear();
        self.last_shard_secs
            .extend(outcomes.iter().map(|(_, o)| o.secs));
        let now = self.now_secs();
        let mut wave = RecoveryReport::default();
        let mut slots: Vec<Option<Vec<Vec<u64>>>> = (0..n_chunks).map(|_| None).collect();
        let mut first_err = None;
        for (sid, o) in outcomes {
            wave.absorb(&o.report);
            for _ in 0..o.report.faults_detected {
                self.health.record_fault(sid, now);
            }
            let claimed = !o.done.is_empty();
            for (i, v) in o.done {
                slots[i] = Some(v);
            }
            if o.quarantined {
                if canary[sid] {
                    // A canary wave faulted: demote with doubled probe
                    // backoff — it must re-earn canary duty.
                    self.health.record_canary_wave(sid, false, now);
                } else {
                    self.health.quarantine(sid, now);
                }
                wave.degraded = true;
            } else if canary[sid] && claimed && o.err.is_none() {
                // A clean, fully verified canary wave counts toward
                // reintegration.
                self.health.record_canary_wave(sid, true, now);
            }
            if let Some(e) = o.err {
                first_err.get_or_insert(e);
            }
        }
        // A cancelled wave (every waiter gone — e.g. the last network
        // client of the group disconnected) stops claiming chunks; the
        // unfilled remainder is reported typed, not recomputed in
        // software. Completed chunks' timings and ladder activity are
        // still recorded below.
        if slots.iter().any(Option::is_none) && cancel.is_some_and(|c| c()) {
            wave.quarantined_shards = self.quarantined().len() as u64;
            self.last_report = wave;
            self.totals.absorb(&wave);
            self.totals.quarantined_shards = wave.quarantined_shards;
            return Err(BpNttError::Cancelled);
        }
        // The degrade rung: chunks nobody completed (their shard
        // quarantined and the one re-dispatch hop failed or never ran)
        // are recomputed with the software reference.
        let mut fallback_err = None;
        if ladder && self.recovery.software_fallback && slots.iter().any(Option::is_none) {
            let verifier = self.shards[0].verifier().clone();
            for (i, slot) in slots.iter_mut().enumerate() {
                if slot.is_some() {
                    continue;
                }
                let lo = i * lanes;
                let hi = (lo + lanes).min(batch);
                let chunk: Vec<&[Vec<u64>]> = inputs.iter().map(|s| &s[lo..hi]).collect();
                match verifier.software_outputs(pipe.spec(), &chunk) {
                    Ok(v) => {
                        wave.fallback_polys += (hi - lo) as u64;
                        wave.degraded = true;
                        *slot = Some(v);
                    }
                    Err(e) => {
                        fallback_err.get_or_insert(e);
                        break;
                    }
                }
            }
        }
        wave.quarantined_shards = self.quarantined().len() as u64;
        self.last_report = wave;
        self.totals.absorb(&wave);
        self.totals.quarantined_shards = wave.quarantined_shards;
        if let Some(e) = fallback_err {
            return Err(e);
        }
        if slots.iter().any(Option::is_none) {
            // Ladder off (or fallback disabled): the wave fails with the
            // first chunk error — a legitimate chunk error propagates
            // instead of panicking, and a panicked worker surfaces as
            // WorkerPanicked. The engines stay usable for the next wave.
            return Err(first_err.unwrap_or(BpNttError::WorkerPanicked { shard: 0 }));
        }
        let mut out = Vec::with_capacity(batch);
        for s in slots {
            out.extend(s.expect("every chunk filled or the wave failed above"));
        }
        Ok(out)
    }

    /// Executes a pipeline op-graph over an arbitrarily large batch: the
    /// spec compiles once (on shard 0, `Arc`-shared everywhere), the
    /// batch is work-stolen across shards in lane-sized chunks, and each
    /// chunk runs the whole graph per lane in one load/read cycle.
    /// `inputs` is slot-major — one batch per input slot the spec
    /// declares, all of equal length.
    ///
    /// # Errors
    ///
    /// [`BpNttError::InvalidPipeline`] for input-count mismatches and
    /// for no-input specs (resident graphs are a single-engine feature:
    /// work-stealing gives a wave no stable chunk→shard assignment for
    /// on-array state to survive between calls),
    /// [`BpNttError::BatchMismatch`] for unequal batch lengths;
    /// otherwise compilation, validation, and simulator failures.
    pub fn run_pipeline_batch(
        &mut self,
        spec: &PipelineSpec,
        mode: ExecMode,
        inputs: &[&[Vec<u64>]],
    ) -> Result<Vec<Vec<u64>>, BpNttError> {
        self.run_pipeline_batch_inner(spec, mode, inputs, None)
    }

    /// [`Self::run_pipeline_batch`] with a cooperative cancellation
    /// probe: workers consult `cancel` before claiming each chunk, and a
    /// wave whose probe turns true mid-flight stops claiming and fails
    /// typed with [`BpNttError::Cancelled`] instead of finishing (or
    /// software-recomputing) work nobody is waiting for. Chunks already
    /// claimed still run to completion — cancellation is a claim-time
    /// boundary, never a mid-chunk abort.
    ///
    /// # Errors
    ///
    /// As [`Self::run_pipeline_batch`], plus [`BpNttError::Cancelled`]
    /// when the probe fired before the wave filled every chunk.
    pub fn run_pipeline_batch_cancellable(
        &mut self,
        spec: &PipelineSpec,
        mode: ExecMode,
        inputs: &[&[Vec<u64>]],
        cancel: &(dyn Fn() -> bool + Sync),
    ) -> Result<Vec<Vec<u64>>, BpNttError> {
        self.run_pipeline_batch_inner(spec, mode, inputs, Some(cancel))
    }

    fn run_pipeline_batch_inner(
        &mut self,
        spec: &PipelineSpec,
        mode: ExecMode,
        inputs: &[&[Vec<u64>]],
        cancel: Option<&(dyn Fn() -> bool + Sync)>,
    ) -> Result<Vec<Vec<u64>>, BpNttError> {
        // Clear before any early return: even a rejected call must not
        // leave a previous wave's timings or recovery report behind.
        self.last_shard_secs.clear();
        self.last_report = RecoveryReport::default();
        if spec.input_slots().is_empty() {
            return Err(BpNttError::InvalidPipeline {
                reason: "sharded pipelines must declare at least one input slot \
                         (resident no-input graphs only exist on a single engine)"
                    .into(),
            });
        }
        if inputs.len() != spec.input_slots().len() {
            return Err(BpNttError::InvalidPipeline {
                reason: format!(
                    "spec declares {} input slot(s) but {} batch(es) were supplied",
                    spec.input_slots().len(),
                    inputs.len()
                ),
            });
        }
        if let (Some(first), Some(shorter)) = (
            inputs.first(),
            inputs.iter().find(|b| b.len() != inputs[0].len()),
        ) {
            return Err(BpNttError::BatchMismatch {
                a: first.len(),
                b: shorter.len(),
            });
        }
        if inputs[0].is_empty() {
            return Ok(Vec::new());
        }
        let pipe = self.warm_pipeline(spec)?;
        self.run_wave(&pipe, mode, inputs, cancel)
    }

    /// Forward-transforms an arbitrarily large batch — the canned
    /// [`PipelineSpec::forward_ntt`] graph under replay: waves of
    /// `lanes_total` polynomials are partitioned across shards and each
    /// shard replays the shared compiled forward program. Output order
    /// matches input order.
    ///
    /// # Errors
    ///
    /// Propagates validation (length/reduction) and simulator failures.
    pub fn forward_batch(&mut self, polys: &[Vec<u64>]) -> Result<Vec<Vec<u64>>, BpNttError> {
        self.run_pipeline_batch(&PipelineSpec::forward_ntt(), ExecMode::Replay, &[polys])
    }

    /// Forward + inverse roundtrip over an arbitrarily large batch — the
    /// canned [`PipelineSpec::roundtrip`] graph under replay (primarily a
    /// correctness/throughput harness: the output equals the input when
    /// the transform pair is exact).
    ///
    /// # Errors
    ///
    /// Propagates validation and simulator failures.
    pub fn roundtrip_batch(&mut self, polys: &[Vec<u64>]) -> Result<Vec<Vec<u64>>, BpNttError> {
        self.run_pipeline_batch(&PipelineSpec::roundtrip(), ExecMode::Replay, &[polys])
    }

    /// Negacyclic polynomial multiplication over an arbitrarily large
    /// batch of operand pairs: `out[i] = a[i] ⊛ b[i]` — the canned
    /// [`PipelineSpec::polymul`] graph under replay. Chunks of pairs are
    /// work-stolen across shards through the same timed
    /// [`run_wave`](Self::run_wave) path as the transforms, so
    /// [`Self::last_wave_shard_secs`] describes *this* call; every shard
    /// replays the four shared compiled segments (two forwards,
    /// pointwise, debt-folded scaled inverse) per chunk with no
    /// intermediate load/read round-trips.
    ///
    /// # Errors
    ///
    /// [`BpNttError::BatchMismatch`] when `a` and `b` differ in length;
    /// otherwise propagates validation and simulator failures.
    pub fn polymul_batch(
        &mut self,
        a: &[Vec<u64>],
        b: &[Vec<u64>],
    ) -> Result<Vec<Vec<u64>>, BpNttError> {
        self.run_pipeline_batch(&PipelineSpec::polymul(), ExecMode::Replay, &[a, b])
    }

    /// Every compiled program shard 0 holds, for the service layer's
    /// cross-tenant cache keyed by `(params, layout)`.
    pub(crate) fn export_programs(&self) -> Vec<(crate::engine::ProgramKey, Arc<CompiledProgram>)> {
        self.shards[0].export_programs()
    }

    /// Installs externally compiled programs into every shard (the
    /// service layer's cache hit path: a new tenant with an identical
    /// `(params, layout)` never recompiles).
    pub(crate) fn import_programs(
        &mut self,
        progs: &[(crate::engine::ProgramKey, Arc<CompiledProgram>)],
    ) {
        for shard in &mut self.shards {
            for (key, prog) in progs {
                shard.install_program(*key, Arc::clone(prog));
            }
        }
    }
}

/// Everything one wave worker needs (bundled so the spawn site stays
/// readable).
struct WorkerCtx<'scope, 'env> {
    shard: &'scope mut dyn NttBackend,
    sid: usize,
    pipe: &'scope CompiledPipeline,
    mode: ExecMode,
    inputs: &'scope [&'env [Vec<u64>]],
    batch: usize,
    lanes: usize,
    n_chunks: usize,
    next: &'scope AtomicUsize,
    requeue: &'scope Requeue,
    ladder: bool,
    retry_budget: usize,
    cancel: Option<&'env (dyn Fn() -> bool + Sync)>,
}

/// One shard worker: claim chunks (re-dispatched ones first, then the
/// shared counter), run each with the ladder's per-chunk attempt budget,
/// self-quarantine on exhaustion.
fn run_worker(ctx: WorkerCtx<'_, '_>) -> ShardOutcome {
    let WorkerCtx {
        shard,
        sid,
        pipe,
        mode,
        inputs,
        batch,
        lanes,
        n_chunks,
        next,
        requeue,
        ladder,
        retry_budget,
        cancel,
    } = ctx;
    let t = std::time::Instant::now();
    let mut out = ShardOutcome {
        done: Vec::new(),
        err: None,
        secs: 0.0,
        quarantined: false,
        report: RecoveryReport::default(),
    };
    'claim: loop {
        // Cancelled mid-wave: stop claiming. Unclaimed chunks stay
        // unfilled and the wave reports `Cancelled` at reassembly.
        if cancel.is_some_and(|c| c()) {
            break;
        }
        // Chunks orphaned by a quarantined shard take priority over new
        // work: they are the wave's critical path.
        let requeued = requeue.lock().expect("requeue lock").pop();
        let (i, hops) = match requeued {
            Some(c) => c,
            None => {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_chunks {
                    break;
                }
                (i, 0)
            }
        };
        let lo = i * lanes;
        let hi = (lo + lanes).min(batch);
        let chunk: Vec<&[Vec<u64>]> = inputs.iter().map(|slot| &slot[lo..hi]).collect();
        let attempts = if ladder { 1 + retry_budget } else { 1 };
        let mut last_err: Option<BpNttError> = None;
        for attempt in 0..attempts {
            if attempt > 0 || hops > 0 {
                out.report.retries += 1;
            }
            // Isolate the attempt: an injected hard fault (or any other
            // panic inside the simulator) must cost at most this chunk,
            // never the process. The engine reloads all inputs on the
            // next attempt, so mid-pipeline array state is not a hazard.
            let res = catch_unwind(AssertUnwindSafe(|| {
                shard.execute(pipe, mode, &chunk).map(|(rows, _)| rows)
            }));
            out.report.verify_secs += shard.take_verify_secs();
            match res {
                Ok(Ok(v)) => {
                    out.done.push((i, v));
                    continue 'claim;
                }
                Ok(Err(e)) => {
                    out.report.faults_detected += 1;
                    last_err = Some(e);
                }
                Err(_) => {
                    out.report.faults_detected += 1;
                    out.report.worker_panics += 1;
                    last_err = Some(BpNttError::WorkerPanicked { shard: sid });
                }
            }
        }
        // Budget exhausted. With the ladder active the shard is presumed
        // persistently faulty: quarantine it and hand the chunk to a
        // healthy shard (one hop; a twice-failed chunk waits for the
        // software fallback). Without the ladder, poison the counter —
        // the wave is already doomed.
        out.err = last_err;
        if ladder {
            if hops == 0 {
                requeue.lock().expect("requeue lock").push((i, 1));
            }
            out.quarantined = true;
        } else {
            next.store(n_chunks, Ordering::Relaxed);
        }
        break;
    }
    out.secs = t.elapsed().as_secs_f64();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpntt_ntt::forward::ntt_in_place;
    use bpntt_ntt::polymul::polymul_schoolbook;
    use bpntt_ntt::{NttParams, TwiddleTable};

    fn pseudo(n: usize, q: u64, seed: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % q
            })
            .collect()
    }

    fn config() -> BpNttConfig {
        BpNttConfig::new(32, 32, 8, NttParams::new(8, 97).unwrap()).unwrap()
    }

    #[test]
    fn rejects_zero_shards() {
        assert!(matches!(
            ShardedBpNtt::new(&config(), 0),
            Err(BpNttError::InvalidShardCount { .. })
        ));
    }

    #[test]
    fn forward_batch_matches_reference_across_waves() {
        let params = NttParams::new(8, 97).unwrap();
        let mut sharded = ShardedBpNtt::new(&config(), 3).unwrap();
        // 3 shards × 4 lanes = 12 per wave; 30 polys → 3 waves, last partial.
        let batch: Vec<Vec<u64>> = (0..30).map(|s| pseudo(8, 97, s + 1)).collect();
        let got = sharded.forward_batch(&batch).unwrap();
        assert_eq!(got.len(), 30);
        let t = TwiddleTable::new(&params);
        for (i, p) in batch.iter().enumerate() {
            let mut expect = p.clone();
            ntt_in_place(&params, &t, &mut expect).unwrap();
            assert_eq!(got[i], expect, "poly {i}");
        }
    }

    #[test]
    fn roundtrip_batch_is_identity() {
        let mut sharded = ShardedBpNtt::new(&config(), 2).unwrap();
        let batch: Vec<Vec<u64>> = (0..17).map(|s| pseudo(8, 97, s + 50)).collect();
        assert_eq!(sharded.roundtrip_batch(&batch).unwrap(), batch);
    }

    #[test]
    fn polymul_batch_matches_schoolbook() {
        let params = NttParams::new(8, 97).unwrap();
        let mut sharded = ShardedBpNtt::new(&config(), 2).unwrap();
        let a: Vec<Vec<u64>> = (0..11).map(|s| pseudo(8, 97, s + 100)).collect();
        let b: Vec<Vec<u64>> = (0..11).map(|s| pseudo(8, 97, s + 200)).collect();
        let got = sharded.polymul_batch(&a, &b).unwrap();
        assert_eq!(got.len(), 11);
        for i in 0..11 {
            let expect = polymul_schoolbook(&params, &a[i], &b[i]).unwrap();
            assert_eq!(got[i], expect, "pair {i}");
        }
    }

    #[test]
    fn polymul_batch_rejects_mismatched_operands() {
        let mut sharded = ShardedBpNtt::new(&config(), 2).unwrap();
        let a = vec![pseudo(8, 97, 1)];
        assert!(matches!(
            sharded.polymul_batch(&a, &[]),
            Err(BpNttError::BatchMismatch { a: 1, b: 0 })
        ));
    }

    #[test]
    fn sharded_stats_aggregate_and_match_single_array() {
        // Two shards fed the *same* chunk accumulate exactly 2× the
        // single-array statistics (the resolution loops are data-dependent,
        // so the chunks must match for exact doubling).
        let chunk: Vec<Vec<u64>> = (0..4).map(|s| pseudo(8, 97, s + 7)).collect();
        let mut batch = chunk.clone();
        batch.extend(chunk.iter().cloned());

        let mut single = ShardedBpNtt::new(&config(), 1).unwrap();
        single.forward_batch(&chunk).unwrap();
        let s1 = single.stats();

        let mut sharded = ShardedBpNtt::new(&config(), 2).unwrap();
        sharded.forward_batch(&batch).unwrap();
        let s2 = sharded.stats();

        assert_eq!(s2.cycles, 2 * s1.cycles);
        assert_eq!(s2.counts.total(), 2 * s1.counts.total());
    }

    #[test]
    fn per_shard_wall_clock_is_recorded() {
        let mut sharded = ShardedBpNtt::new(&config(), 3).unwrap();
        assert!(sharded.last_wave_shard_secs().is_empty());
        // 2 full chunks + 1 partial → all three shards participate.
        let batch: Vec<Vec<u64>> = (0..9).map(|s| pseudo(8, 97, s + 60)).collect();
        sharded.forward_batch(&batch).unwrap();
        let secs = sharded.last_wave_shard_secs();
        assert_eq!(secs.len(), 3);
        assert!(secs.iter().all(|&s| s > 0.0));
        // A wave that fills only one shard reports only that shard.
        sharded.forward_batch(&batch[..2]).unwrap();
        assert_eq!(sharded.last_wave_shard_secs().len(), 1);
    }

    #[test]
    fn polymul_batch_refreshes_shard_timings() {
        // Regression: polymul_batch used to run its own untimed fan-out,
        // leaving last_wave_shard_secs describing the *previous*
        // forward/roundtrip wave. It now routes through the timed
        // run_wave path like every other batch op.
        let mut sharded = ShardedBpNtt::new(&config(), 2).unwrap();
        // A 9-poly forward leaves 3 chunks → 2 participating shards.
        let batch: Vec<Vec<u64>> = (0..9).map(|s| pseudo(8, 97, s + 300)).collect();
        sharded.forward_batch(&batch).unwrap();
        let stale: Vec<f64> = sharded.last_wave_shard_secs().to_vec();
        assert_eq!(stale.len(), 2);

        // One pair → one chunk → exactly one participating shard. Before
        // the fix this call left the two forward entries in place.
        let a = vec![pseudo(8, 97, 310)];
        let b = vec![pseudo(8, 97, 311)];
        sharded.polymul_batch(&a, &b).unwrap();
        let secs = sharded.last_wave_shard_secs();
        assert_eq!(
            secs.len(),
            1,
            "polymul must report one entry per participating shard"
        );
        assert!(secs[0] > 0.0);

        // A full-width polymul reports every participating shard again.
        let a: Vec<Vec<u64>> = (0..9).map(|s| pseudo(8, 97, s + 320)).collect();
        let b: Vec<Vec<u64>> = (0..9).map(|s| pseudo(8, 97, s + 330)).collect();
        sharded.polymul_batch(&a, &b).unwrap();
        let secs = sharded.last_wave_shard_secs();
        assert_eq!(secs.len(), 2);
        assert!(secs.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn empty_batches_clear_timings_and_skip_work() {
        // Regression: empty batches used to warm/compile programs and
        // leave the previous wave's shard timings in place.
        let mut sharded = ShardedBpNtt::new(&config(), 2).unwrap();
        let batch: Vec<Vec<u64>> = (0..4).map(|s| pseudo(8, 97, s + 400)).collect();
        sharded.forward_batch(&batch).unwrap();
        assert!(!sharded.last_wave_shard_secs().is_empty());

        assert_eq!(sharded.forward_batch(&[]).unwrap(), Vec::<Vec<u64>>::new());
        assert!(
            sharded.last_wave_shard_secs().is_empty(),
            "empty forward batch must clear stale timings"
        );

        sharded.roundtrip_batch(&batch).unwrap();
        assert!(!sharded.last_wave_shard_secs().is_empty());
        assert!(sharded.roundtrip_batch(&[]).unwrap().is_empty());
        assert!(sharded.last_wave_shard_secs().is_empty());

        sharded.polymul_batch(&batch, &batch).unwrap();
        assert!(!sharded.last_wave_shard_secs().is_empty());
        assert!(sharded.polymul_batch(&[], &[]).unwrap().is_empty());
        assert!(sharded.last_wave_shard_secs().is_empty());

        // And a fresh engine compiles nothing for an empty batch.
        let mut fresh = ShardedBpNtt::new(&config(), 2).unwrap();
        fresh.forward_batch(&[]).unwrap();
        fresh.roundtrip_batch(&[]).unwrap();
        fresh.polymul_batch(&[], &[]).unwrap();
        for shard in &fresh.shards {
            assert_eq!(shard.cached_programs(), 0, "empty batches must not compile");
        }
    }

    #[test]
    fn work_stealing_preserves_input_order() {
        // 30 polys over 3 shards → 8 chunks stolen by 3 workers in
        // nondeterministic order; the reassembled output must still match
        // the reference in input order.
        let params = NttParams::new(8, 97).unwrap();
        let mut sharded = ShardedBpNtt::new(&config(), 3).unwrap();
        let batch: Vec<Vec<u64>> = (0..30).map(|s| pseudo(8, 97, s + 500)).collect();
        let got = sharded.forward_batch(&batch).unwrap();
        let t = TwiddleTable::new(&params);
        for (i, p) in batch.iter().enumerate() {
            let mut expect = p.clone();
            ntt_in_place(&params, &t, &mut expect).unwrap();
            assert_eq!(got[i], expect, "poly {i}");
        }
        // Workers spawn for min(shards, chunks) — all 3 here.
        assert_eq!(sharded.last_wave_shard_secs().len(), 3);
    }

    #[test]
    fn worker_panic_is_typed_and_scoped_to_one_wave() {
        // Regression for the old `join().expect("shard thread panicked")`:
        // an injected hard fault panics a worker mid-wave; the wave must
        // fail with the typed WorkerPanicked error (not abort the
        // process) and the very next wave must succeed on the same
        // engines.
        let mut sharded = ShardedBpNtt::new(&config(), 2).unwrap();
        let batch: Vec<Vec<u64>> = (0..8).map(|s| pseudo(8, 97, s + 600)).collect();
        let clean = sharded.forward_batch(&batch).unwrap();
        sharded.install_fault_plan(&FaultPlan::seeded(5).hard_fault_at(0));
        let err = sharded.forward_batch(&batch).unwrap_err();
        assert!(
            matches!(err, BpNttError::WorkerPanicked { .. }),
            "got {err:?}"
        );
        assert!(sharded.last_recovery().worker_panics >= 1);
        // The hard fault fires once per shard, but a poisoned wave can
        // end before the *other* shard's worker ran (and consumed its
        // own fault) — each retry wave burns at least one remaining
        // fault, so the engines run clean within shards + 1 waves.
        let mut healed = None;
        for _ in 0..3 {
            match sharded.forward_batch(&batch) {
                Ok(out) => {
                    healed = Some(out);
                    break;
                }
                Err(BpNttError::WorkerPanicked { .. }) => {}
                Err(other) => panic!("expected WorkerPanicked, got {other:?}"),
            }
        }
        assert_eq!(healed.expect("engines never ran clean"), clean);
    }

    #[test]
    fn chunk_error_propagates_instead_of_panicking() {
        // Regression for `expect("error-free wave fills every chunk")`:
        // a chunk failing verification mid-wave (ladder off except
        // detection) must surface its typed error.
        let mut sharded = ShardedBpNtt::new(&config(), 2).unwrap();
        sharded.set_recovery(RecoveryOptions {
            verify: VerifyPolicy::Full,
            retry_budget: 0,
            software_fallback: false,
        });
        // A dead wordline in the coefficient region corrupts every chunk.
        sharded.install_fault_plan(&FaultPlan::seeded(1).dead_row(0));
        let batch: Vec<Vec<u64>> = (0..8).map(|s| pseudo(8, 97, s + 650)).collect();
        match sharded.forward_batch(&batch) {
            Err(BpNttError::IntegrityFailure { .. }) => {}
            other => panic!("expected IntegrityFailure, got {other:?}"),
        }
        assert!(sharded.last_recovery().faults_detected >= 1);
    }

    #[test]
    fn ladder_recovers_hard_fault_via_retry() {
        // One hard fault per shard at instruction 0: the first attempt of
        // the first chunk on each shard panics, the retry (fault
        // consumed) succeeds. The full ladder returns a correct,
        // complete wave.
        let params = NttParams::new(8, 97).unwrap();
        let mut sharded = ShardedBpNtt::new(&config(), 2).unwrap();
        sharded.set_recovery(RecoveryOptions::resilient());
        sharded.install_fault_plan(&FaultPlan::seeded(9).hard_fault_at(0));
        let batch: Vec<Vec<u64>> = (0..12).map(|s| pseudo(8, 97, s + 660)).collect();
        let got = sharded.forward_batch(&batch).unwrap();
        let t = TwiddleTable::new(&params);
        for (i, p) in batch.iter().enumerate() {
            let mut expect = p.clone();
            ntt_in_place(&params, &t, &mut expect).unwrap();
            assert_eq!(got[i], expect, "poly {i}");
        }
        let r = sharded.recovery_totals();
        assert!(r.worker_panics >= 1);
        assert!(r.retries >= 1);
        assert!(r.faults_detected >= 1);
    }

    #[test]
    fn stuck_at_fault_quarantines_and_falls_back() {
        // A dead row on every shard corrupts persistently: retries are
        // useless, every shard quarantines, and the software fallback
        // still delivers the correct answer for every polynomial.
        let params = NttParams::new(8, 97).unwrap();
        let mut sharded = ShardedBpNtt::new(&config(), 2).unwrap();
        sharded.set_recovery(RecoveryOptions {
            verify: VerifyPolicy::Full,
            retry_budget: 1,
            software_fallback: true,
        });
        sharded.install_fault_plan(&FaultPlan::seeded(3).dead_row(2));
        let batch: Vec<Vec<u64>> = (0..8).map(|s| pseudo(8, 97, s + 670)).collect();
        let got = sharded.forward_batch(&batch).unwrap();
        let t = TwiddleTable::new(&params);
        for (i, p) in batch.iter().enumerate() {
            let mut expect = p.clone();
            ntt_in_place(&params, &t, &mut expect).unwrap();
            assert_eq!(got[i], expect, "poly {i} must come from the fallback");
        }
        let r = sharded.last_recovery();
        assert!(r.degraded);
        assert!(r.fallback_polys > 0);
        assert_eq!(r.quarantined_shards, 2);
        assert_eq!(sharded.quarantined(), vec![0, 1]);

        // With every shard quarantined the next wave is pure software —
        // still correct, still complete.
        let got = sharded.forward_batch(&batch).unwrap();
        assert_eq!(got.len(), 8);
        assert_eq!(sharded.last_recovery().fallback_polys, 8);

        // Lifting the quarantine (fault cleared) restores hardware waves.
        sharded.clear_fault_plans();
        sharded.lift_all_quarantines();
        sharded.forward_batch(&batch).unwrap();
        assert_eq!(sharded.last_recovery().fallback_polys, 0);
        assert!(!sharded.last_recovery().degraded);
    }

    #[test]
    fn burst_fault_heals_through_probe_canary_reintegration() {
        // The full self-healing ladder with NO manual lift_quarantine:
        // a windowed dead-row burst corrupts the first wave on every
        // shard (quarantine), the burst window closes, scrubber probes
        // pass (canary), and a clean fully-verified wave reintegrates.
        let params = NttParams::new(8, 97).unwrap();
        let t = TwiddleTable::new(&params);
        // 6 chunks per wave: enough that a canary shard reliably claims
        // work even when the healthy shard gets a head start.
        let batch: Vec<Vec<u64>> = (0..24).map(|s| pseudo(8, 97, s + 700)).collect();
        let expect: Vec<Vec<u64>> = batch
            .iter()
            .map(|p| {
                let mut e = p.clone();
                ntt_in_place(&params, &t, &mut e).unwrap();
                e
            })
            .collect();

        // Calibrate the burst window: instructions one shard spends on
        // one chunk (the clock is mode- and backend-independent).
        let mut probe = ShardedBpNtt::new(&config(), 1).unwrap();
        probe.forward_batch(&batch[..4]).unwrap();
        let chunk_instrs = probe.stats().counts.total();
        assert!(chunk_instrs > 0);

        let mut sharded = ShardedBpNtt::new(&config(), 2).unwrap();
        sharded.set_recovery(RecoveryOptions {
            verify: VerifyPolicy::Full,
            retry_budget: 0,
            software_fallback: true,
        });
        sharded.set_health_options(HealthOptions::aggressive());
        // Dead wordline for exactly the first chunk's worth of
        // instructions on each shard, then the array heals.
        sharded.install_fault_plan(
            &FaultPlan::seeded(3)
                .dead_row(2)
                .active_between(0, chunk_instrs),
        );

        // Wave 1: both shards corrupt, quarantine, fallback answers.
        let got = sharded.forward_batch(&batch).unwrap();
        assert_eq!(got, expect, "degraded wave still reference-exact");
        assert_eq!(sharded.quarantined(), vec![0, 1]);
        assert!(sharded.shard_score(0) > 0.0, "faults scored");

        // Scrub until the burst window closes under the probes
        // themselves (each probe advances the shard's instruction
        // clock, so a probe that still lands inside the window fails,
        // backs off, and the next one lands beyond it).
        let mut entered_canary = 0;
        for _ in 0..50 {
            std::thread::sleep(std::time::Duration::from_millis(5));
            entered_canary += sharded.scrub_pass().entered_canary;
            if sharded.quarantined().is_empty() {
                break;
            }
        }
        assert_eq!(entered_canary, 2, "both shards promoted to canary");
        assert!(sharded.quarantined().is_empty());
        assert_eq!(
            sharded.shard_health(),
            vec![ShardHealthState::Canary, ShardHealthState::Canary]
        );

        // Canary shards run fully verified; one clean claimed wave each
        // reintegrates them (canary_waves_to_healthy = 1). Work-stealing
        // gives no claim guarantee per wave, so run a few.
        for _ in 0..10 {
            let got = sharded.forward_batch(&batch).unwrap();
            assert_eq!(got, expect);
            assert_eq!(sharded.last_recovery().fallback_polys, 0, "hardware wave");
            if sharded
                .shard_health()
                .iter()
                .all(|&s| s == ShardHealthState::Healthy)
            {
                break;
            }
        }
        assert_eq!(
            sharded.shard_health(),
            vec![ShardHealthState::Healthy, ShardHealthState::Healthy]
        );
        let c = sharded.health_counters();
        assert_eq!(c.reintegrations, 2);
        assert_eq!(c.canary_demotions, 0);
        assert!(c.probes_passed >= 2);

        // Wave 3: fully healed, full speed, no degradation.
        let got = sharded.forward_batch(&batch).unwrap();
        assert_eq!(got, expect);
        assert!(!sharded.last_recovery().degraded);
    }

    #[test]
    fn canary_failure_demotes_with_doubled_backoff() {
        // A persistent (un-windowed) dead row: probes executed while the
        // fault is live keep failing, so the shard stays benched and
        // never corrupts tenant output.
        let mut sharded = ShardedBpNtt::new(&config(), 2).unwrap();
        sharded.set_recovery(RecoveryOptions {
            verify: VerifyPolicy::Full,
            retry_budget: 0,
            software_fallback: true,
        });
        sharded.set_health_options(HealthOptions::aggressive());
        sharded.install_fault_plan(&FaultPlan::seeded(3).dead_row(2));
        let batch: Vec<Vec<u64>> = (0..8).map(|s| pseudo(8, 97, s + 710)).collect();
        sharded.forward_batch(&batch).unwrap();
        assert_eq!(sharded.quarantined(), vec![0, 1]);
        std::thread::sleep(std::time::Duration::from_millis(10));
        let scrub = sharded.scrub_pass();
        assert_eq!(scrub.probes_run, 2);
        assert_eq!(scrub.probes_passed, 0, "probes catch the live fault");
        assert_eq!(sharded.quarantined(), vec![0, 1], "still benched");
        // Output stays reference-exact throughout (software fallback).
        let params = NttParams::new(8, 97).unwrap();
        let t = TwiddleTable::new(&params);
        let got = sharded.forward_batch(&batch).unwrap();
        for (i, p) in batch.iter().enumerate() {
            let mut e = p.clone();
            ntt_in_place(&params, &t, &mut e).unwrap();
            assert_eq!(got[i], e, "poly {i}");
        }
    }

    #[test]
    fn per_shard_quarantine_and_lift() {
        // Satellite: operator-grade per-shard control.
        let mut sharded = ShardedBpNtt::new(&config(), 3).unwrap();
        sharded.quarantine(1);
        assert_eq!(sharded.quarantined(), vec![1]);
        assert_eq!(sharded.shard_health()[1], ShardHealthState::Quarantined);
        // Waves route around the benched shard and stay correct.
        let batch: Vec<Vec<u64>> = (0..12).map(|s| pseudo(8, 97, s + 720)).collect();
        let got = sharded.forward_batch(&batch).unwrap();
        assert_eq!(got.len(), 12);
        assert!(sharded.last_wave_shard_secs().len() <= 2);
        sharded.lift_quarantine(1);
        assert!(sharded.quarantined().is_empty());
        sharded.quarantine(0);
        sharded.quarantine(2);
        sharded.lift_all_quarantines();
        assert!(sharded.quarantined().is_empty());
    }

    #[test]
    fn patrol_probe_finds_latent_damage_before_traffic() {
        // A healthy-looking shard with a live persistent fault is
        // benched by the patrol scrubber, not by a tenant wave.
        let mut sharded = ShardedBpNtt::new(&config(), 2).unwrap();
        sharded.set_recovery(RecoveryOptions::resilient());
        let mut opts = HealthOptions::aggressive();
        opts.patrol_interval = std::time::Duration::from_millis(1);
        sharded.set_health_options(opts);
        sharded.install_fault_plan(&FaultPlan::seeded(3).dead_row(2));
        std::thread::sleep(std::time::Duration::from_millis(5));
        let scrub = sharded.scrub_pass();
        assert_eq!(scrub.patrol_probes, 2);
        assert_eq!(scrub.patrol_quarantines, 2);
        assert_eq!(sharded.quarantined(), vec![0, 1]);
        assert_eq!(sharded.health_counters().patrol_quarantines, 2);
    }

    #[test]
    fn shared_programs_compile_once() {
        let mut sharded = ShardedBpNtt::new(&config(), 4).unwrap();
        let batch: Vec<Vec<u64>> = (0..16).map(|s| pseudo(8, 97, s + 9)).collect();
        sharded.forward_batch(&batch).unwrap();
        for shard in &sharded.shards {
            assert_eq!(
                shard.cached_programs(),
                1,
                "every shard holds the shared program"
            );
        }
    }
}
