//! Composable op-graph pipelines: the single entry point for whole
//! workloads (paper Table 3 scores *polynomial multiplication* — forward,
//! forward, pointwise, inverse — end to end, not isolated transforms).
//!
//! A [`PipelineSpec`] describes a computation over up to
//! `⌊(rows − reserved) / N⌋` on-array operand regions ("slots", slot `s`
//! based at coefficient row `s·N`) as an ordered list of [`PipeOp`]s:
//!
//! * [`PipeOp::Forward`] / [`PipeOp::Inverse`] — the in-place NTT pair on
//!   one slot. The transforms are natively **negacyclic** (the ψ-folded
//!   twiddle schedule performs the wrap/unwrap), so no explicit
//!   negacyclic ops exist: `Inverse ∘ Pointwise ∘ Forward²` *is* the
//!   negacyclic product.
//! * [`PipeOp::Pointwise`] — `dst ← dst · src · R⁻¹` coefficient-wise
//!   (the data-driven bit-parallel multiplier; `src` is left intact, so a
//!   spectrum can be reused across calls — NTT-domain caching).
//! * [`PipeOp::ScaleBy`] — `slot ← slot · factor` for a compile-time
//!   constant factor.
//!
//! # The Montgomery-debt contract
//!
//! Each data-driven multiplication leaves a stray `R⁻¹` (Montgomery
//! residue) on its destination slot. The compiler **never emits
//! correction steps eagerly**: it tracks the accumulated debt per slot
//! (`Pointwise` on `dst` adds `debt(src) + 1`) and folds the
//! compensating `R^debt` into the *next* constant multiplication on that
//! slot — the `N⁻¹` scaling of an `Inverse`, or a `ScaleBy` — in the
//! spirit of Harvey's precomputed-quotient NTT arithmetic (the same
//! philosophy behind the Shoup multiplies in `bpntt-modmath`). If the
//! output slot still carries debt when the graph ends, one final scale
//! segment by `R^debt` is appended so pipeline outputs are *always* in
//! the plain residue domain. A canned [`PipelineSpec::polymul`] therefore
//! compiles to exactly the four programs legacy
//! [`BpNtt::polymul`](crate::BpNtt::polymul) replays — same cache keys,
//! same instruction streams, bit-identical rows and
//! [`Stats`](bpntt_sram::Stats).
//!
//! # Compilation, caching, and the segment-boundary contract
//!
//! [`BpNtt::compile_pipeline`](crate::BpNtt::compile_pipeline) lowers a
//! spec into a [`CompiledPipeline`]: an ordered list of
//! `Arc<CompiledProgram>` **segments**, one per op (plus at most one
//! appended debt-compensation scale). Segment boundaries are exactly op
//! boundaries — an op never spans two segments and no instruction
//! reordering crosses an op boundary — so a pipeline execution is
//! indistinguishable (rows *and* `Stats`, including the f64 energy
//! accumulation order) from running the constituent fixed-shape entry
//! points back to back on resident data. Segments are keyed by
//! `ProgramKey` in the engine's existing program cache and shared
//! between pipelines, the legacy entry points, and (behind `Arc`s)
//! across [`ShardedBpNtt`](crate::ShardedBpNtt) shards and
//! [`NttService`](crate::NttService) tenants; compiled pipelines are
//! cached per engine keyed by the spec, and across tenants keyed by
//! `(params, layout, spec)`.
//!
//! In-SRAM data movement *between* segments is the point of the design:
//! operands are loaded once before the first segment and results read
//! once after the last, so a multi-op graph saves one full
//! load/read round-trip per lane per intermediate op compared with
//! composing the fixed op shapes through `load_batch`/`read_batch`.
//!
//! # Execution modes
//!
//! Every pipeline (and every legacy entry point) executes under one of
//! three [`ExecMode`]s — the former `forward`/`forward_uncached`/
//! `forward_uncached_generic` triplicate collapsed into a parameter:
//!
//! * [`ExecMode::Replay`] — replay the cached compiled segments (the
//!   production path: no codegen, no validation, no per-instruction cost
//!   evaluation).
//! * [`ExecMode::FusedEmit`] — per-call code generation streamed through
//!   the online [`FusedSink`](bpntt_sram::FusedSink) matchers into the
//!   same fused word-engine executors replay uses.
//! * [`ExecMode::Generic`] — strictly per-instruction emission, the
//!   ground-truth baseline the equivalence proptests pin the other two
//!   against.
//!
//! # Backends
//!
//! Compiled pipelines are backend-independent: a [`CompiledPipeline`]
//! produced on one [`NttBackend`](crate::backend::NttBackend) installs
//! and executes unchanged on another (fingerprint-checked), so the
//! cost-accounted simulator and the native direct-execution backend
//! share plans. See the [`backend`](crate::backend) module.
//!
//! # Example
//!
//! ```
//! use bpntt_core::{BpNtt, BpNttConfig, ExecMode, PipelineSpec};
//! use bpntt_ntt::NttParams;
//!
//! // 2·8 + 6 rows: two operand slots on one tile.
//! let cfg = BpNttConfig::new(32, 32, 8, NttParams::new(8, 97)?)?;
//! let mut acc = BpNtt::new(cfg)?;
//! let a = vec![vec![1u64, 2, 3, 4, 5, 6, 7, 8]];
//! let b = vec![vec![8u64, 7, 6, 5, 4, 3, 2, 1]];
//! // The canned negacyclic-product graph: fwd, fwd, pointwise, inverse.
//! let spec = PipelineSpec::polymul();
//! let products = acc.run_pipeline(&spec, ExecMode::Replay, &[&a, &b])?;
//! assert_eq!(products.len(), 1);
//! # Ok::<(), bpntt_core::BpNttError>(())
//! ```

use std::sync::Arc;

use crate::engine::ProgramKey;
use crate::error::BpNttError;
use crate::layout::Layout;
use bpntt_sram::CompiledProgram;

/// How a pipeline (or a legacy fixed-shape entry point) executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecMode {
    /// Replay the cached compiled program(s) — the production path.
    #[default]
    Replay,
    /// Per-call code generation through the fused word-engine executors
    /// ([`FusedSink`](bpntt_sram::FusedSink)).
    FusedEmit,
    /// Per-call code generation with strictly per-instruction execution —
    /// the equivalence ground truth and historical bench baseline.
    Generic,
}

impl ExecMode {
    /// All three modes, for equivalence sweeps.
    pub const ALL: [ExecMode; 3] = [ExecMode::Replay, ExecMode::FusedEmit, ExecMode::Generic];
}

/// One node of a pipeline op-graph. Slots are on-array operand regions:
/// slot `s` occupies coefficient rows `s·N .. (s+1)·N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PipeOp {
    /// In-place forward (negacyclic) NTT of one slot.
    Forward {
        /// Operand slot.
        slot: u8,
    },
    /// In-place inverse NTT of one slot, including the `N⁻¹` scaling
    /// (with any accumulated Montgomery debt folded into the constant).
    Inverse {
        /// Operand slot.
        slot: u8,
    },
    /// Coefficient-wise product `dst ← dst · src · R⁻¹` (data-driven
    /// multiplier). `src` is left intact; the `R⁻¹` is tracked as debt
    /// and compensated later (see the module docs).
    Pointwise {
        /// Destination slot (accumulates the product and the debt).
        dst: u8,
        /// Source slot (unchanged — reusable as a cached spectrum).
        src: u8,
    },
    /// Multiply every coefficient of a slot by a compile-time constant:
    /// `slot ← slot · factor mod q` (`factor` must be reduced).
    ScaleBy {
        /// Operand slot.
        slot: u8,
        /// The (reduced) constant factor.
        factor: u64,
    },
}

impl PipeOp {
    /// Every slot this op references.
    fn slots(self) -> [Option<u8>; 2] {
        match self {
            PipeOp::Forward { slot } | PipeOp::Inverse { slot } | PipeOp::ScaleBy { slot, .. } => {
                [Some(slot), None]
            }
            PipeOp::Pointwise { dst, src } => [Some(dst), Some(src)],
        }
    }
}

/// A described computation: which slots are loaded from caller batches,
/// the ordered op-graph, and which slot is read back. The spec is the
/// cache key — engines cache one [`CompiledPipeline`] per distinct spec,
/// and the service's cross-tenant cache keys on `(params, layout, spec)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct PipelineSpec {
    ops: Vec<PipeOp>,
    inputs: Vec<u8>,
    output: Option<u8>,
}

impl PipelineSpec {
    /// An empty spec; chain builder calls to describe the graph.
    #[must_use]
    pub fn new() -> Self {
        PipelineSpec::default()
    }

    /// Declares a slot loaded from a caller-supplied batch (in call
    /// order: the i-th `input` consumes the i-th batch passed to
    /// [`BpNtt::run_pipeline`](crate::BpNtt::run_pipeline)). Slots never
    /// declared as inputs start with whatever the array holds — zeroes
    /// on a fresh engine, or a spectrum a previous pipeline left behind
    /// (NTT-domain caching).
    #[must_use]
    pub fn input(mut self, slot: u8) -> Self {
        self.inputs.push(slot);
        self
    }

    /// Appends a forward NTT of `slot`.
    #[must_use]
    pub fn forward(mut self, slot: u8) -> Self {
        self.ops.push(PipeOp::Forward { slot });
        self
    }

    /// Appends an inverse NTT of `slot` (debt-folded `N⁻¹` scaling).
    #[must_use]
    pub fn inverse(mut self, slot: u8) -> Self {
        self.ops.push(PipeOp::Inverse { slot });
        self
    }

    /// Appends `dst ← dst · src · R⁻¹` (tracked as Montgomery debt).
    #[must_use]
    pub fn pointwise(mut self, dst: u8, src: u8) -> Self {
        self.ops.push(PipeOp::Pointwise { dst, src });
        self
    }

    /// Appends `slot ← slot · factor`.
    #[must_use]
    pub fn scale_by(mut self, slot: u8, factor: u64) -> Self {
        self.ops.push(PipeOp::ScaleBy { slot, factor });
        self
    }

    /// Declares the slot read back after the last op.
    #[must_use]
    pub fn output(mut self, slot: u8) -> Self {
        self.output = Some(slot);
        self
    }

    /// Canned spec: one forward NTT (`submit_forward`, `forward_batch`).
    #[must_use]
    pub fn forward_ntt() -> Self {
        PipelineSpec::new().input(0).forward(0).output(0)
    }

    /// Canned spec: forward + inverse roundtrip on one slot.
    #[must_use]
    pub fn roundtrip() -> Self {
        PipelineSpec::new().input(0).forward(0).inverse(0).output(0)
    }

    /// Canned spec: the full negacyclic product (Table 3's workload) —
    /// forward both operands, pointwise, scaled inverse. Compiles to the
    /// exact four programs legacy `polymul` replays.
    #[must_use]
    pub fn polymul() -> Self {
        PipelineSpec::new()
            .input(0)
            .input(1)
            .forward(0)
            .forward(1)
            .pointwise(0, 1)
            .inverse(0)
            .output(0)
    }

    /// Canned spec: negacyclic product of two operands *already in the
    /// NTT domain* — pointwise + scaled inverse only. The NTT-domain
    /// caching workload: transform a reused operand once, then skip both
    /// forward transforms (and one operand reload) on every product.
    #[must_use]
    pub fn polymul_spectral() -> Self {
        PipelineSpec::new()
            .input(0)
            .input(1)
            .pointwise(0, 1)
            .inverse(0)
            .output(0)
    }

    /// The op-graph, in execution order.
    #[must_use]
    pub fn ops(&self) -> &[PipeOp] {
        &self.ops
    }

    /// Slots loaded from caller batches, in load order.
    #[must_use]
    pub fn input_slots(&self) -> &[u8] {
        &self.inputs
    }

    /// The slot read back, if any.
    #[must_use]
    pub fn output_slot(&self) -> Option<u8> {
        self.output
    }

    /// Number of slots the spec references (`1 + max slot`), or 0 for a
    /// spec referencing none.
    #[must_use]
    pub fn slots(&self) -> usize {
        let mut max: Option<u8> = None;
        let mut see = |s: u8| max = Some(max.map_or(s, |m: u8| m.max(s)));
        for op in &self.ops {
            for s in op.slots().into_iter().flatten() {
                see(s);
            }
        }
        for &s in &self.inputs {
            see(s);
        }
        if let Some(s) = self.output {
            see(s);
        }
        max.map_or(0, |m| usize::from(m) + 1)
    }

    /// Static validation against a layout and modulus: op-graph sanity
    /// (non-empty, distinct inputs, `Pointwise` self-product, reduced
    /// `ScaleBy` factors) and slot capacity (`slots·N` coefficient rows
    /// must fit, on a single tile once more than one slot is involved).
    /// Shared by engine compilation and service submit-time validation,
    /// so a bad request fails its own submission with a typed error
    /// instead of poisoning a dispatcher wave.
    ///
    /// # Errors
    ///
    /// [`BpNttError::InvalidPipeline`] for graph defects,
    /// [`BpNttError::CapacityExceeded`] when the slots do not fit.
    pub fn check(&self, layout: &Layout, q: u64) -> Result<(), BpNttError> {
        if self.ops.is_empty() {
            return Err(BpNttError::InvalidPipeline {
                reason: "pipeline has no operations".into(),
            });
        }
        for op in &self.ops {
            match *op {
                PipeOp::Pointwise { dst, src } if dst == src => {
                    return Err(BpNttError::InvalidPipeline {
                        reason: format!("pointwise self-product on slot {dst}"),
                    });
                }
                PipeOp::ScaleBy { factor, .. } if factor >= q => {
                    return Err(BpNttError::InvalidPipeline {
                        reason: format!("scale factor {factor} is not reduced modulo {q}"),
                    });
                }
                _ => {}
            }
        }
        for (i, &s) in self.inputs.iter().enumerate() {
            if self.inputs[..i].contains(&s) {
                return Err(BpNttError::InvalidPipeline {
                    reason: format!("slot {s} declared as input twice"),
                });
            }
        }
        let slots = self.slots();
        let n = layout.n();
        let capacity = layout.rows().saturating_sub(layout.reserved_rows());
        // Multi-tile layouts hold exactly one operand (the layout already
        // validated that it fits across its tiles); single-tile layouts
        // hold one slot per `n` coefficient rows.
        if (layout.is_multi_tile() && slots > 1)
            || (!layout.is_multi_tile() && slots * n > capacity)
        {
            return Err(BpNttError::CapacityExceeded {
                n: slots * n,
                capacity,
            });
        }
        Ok(())
    }
}

/// One compiled segment: the program-cache key it was compiled under and
/// the shared compiled program.
#[derive(Debug, Clone)]
pub(crate) struct PipelineSegment {
    pub(crate) key: ProgramKey,
    pub(crate) program: Arc<CompiledProgram>,
}

/// The configuration a pipeline was compiled against. Compiled programs
/// embed absolute row addresses and tile geometry, so executing a
/// pipeline on a differently configured engine must be rejected with a
/// typed error — not replayed onto rows that don't exist (panic) or
/// silently land on the wrong data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ConfigFingerprint {
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    pub(crate) bitwidth: usize,
    pub(crate) n: usize,
    pub(crate) q: u64,
}

impl ConfigFingerprint {
    pub(crate) fn of(config: &crate::config::BpNttConfig) -> Self {
        ConfigFingerprint {
            rows: config.rows(),
            cols: config.cols(),
            bitwidth: config.bitwidth(),
            n: config.params().n(),
            q: config.params().modulus(),
        }
    }
}

/// A spec lowered against one `(params, layout)`: the ordered compiled
/// segments (one per op, plus at most one appended Montgomery-debt
/// compensation scale — see the [module docs](self)). Engine-independent
/// once built: programs reference row addresses and the default cost
/// model only, so one compilation is shared behind an `Arc` across
/// [`ShardedBpNtt`](crate::ShardedBpNtt) shards and across identically
/// configured [`NttService`](crate::NttService) tenants.
#[derive(Debug, Clone)]
pub struct CompiledPipeline {
    pub(crate) spec: PipelineSpec,
    pub(crate) segments: Vec<PipelineSegment>,
    /// The configuration this pipeline is valid for (checked at
    /// execution time).
    pub(crate) fingerprint: ConfigFingerprint,
}

impl CompiledPipeline {
    /// The spec this pipeline was compiled from (the cache key).
    #[must_use]
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// Number of compiled segments (ops plus any appended debt
    /// compensation).
    #[must_use]
    pub fn segments(&self) -> usize {
        self.segments.len()
    }

    /// Total fused superops across every segment's compiled program —
    /// the fusion-coverage observable, aggregated the same way
    /// `CompiledProgram::fused_ops` reports it per schedule.
    #[must_use]
    pub fn fused_ops(&self) -> usize {
        self.segments.iter().map(|s| s.program.fused_ops()).sum()
    }

    /// Coefficients per polynomial (the slot stride in rows).
    #[must_use]
    pub fn n(&self) -> usize {
        self.fingerprint.n
    }

    /// The `(key, program)` pairs, for installing into engine caches.
    pub(crate) fn export_segments(&self) -> Vec<(ProgramKey, Arc<CompiledProgram>)> {
        self.segments
            .iter()
            .map(|s| (s.key, Arc::clone(&s.program)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(rows: usize, n: usize) -> Layout {
        Layout::new(rows, 32, 8, n).unwrap()
    }

    #[test]
    fn canned_specs_have_expected_shape() {
        let p = PipelineSpec::polymul();
        assert_eq!(p.ops().len(), 4);
        assert_eq!(p.input_slots(), &[0, 1]);
        assert_eq!(p.output_slot(), Some(0));
        assert_eq!(p.slots(), 2);
        assert_eq!(PipelineSpec::forward_ntt().slots(), 1);
        assert_eq!(PipelineSpec::polymul_spectral().ops().len(), 2);
    }

    #[test]
    fn check_rejects_graph_defects() {
        let l = layout(32, 8);
        assert!(matches!(
            PipelineSpec::new().check(&l, 97),
            Err(BpNttError::InvalidPipeline { .. })
        ));
        assert!(matches!(
            PipelineSpec::new().pointwise(1, 1).check(&l, 97),
            Err(BpNttError::InvalidPipeline { .. })
        ));
        assert!(matches!(
            PipelineSpec::new().scale_by(0, 97).check(&l, 97),
            Err(BpNttError::InvalidPipeline { .. })
        ));
        assert!(matches!(
            PipelineSpec::new()
                .input(0)
                .input(0)
                .forward(0)
                .check(&l, 97),
            Err(BpNttError::InvalidPipeline { .. })
        ));
    }

    #[test]
    fn check_enforces_slot_capacity() {
        // 32 rows, n=8: capacity 26 points → 3 slots fit, 4 do not.
        let l = layout(32, 8);
        assert!(PipelineSpec::new()
            .forward(0)
            .pointwise(0, 2)
            .check(&l, 97)
            .is_ok());
        assert!(matches!(
            PipelineSpec::new().forward(3).check(&l, 97),
            Err(BpNttError::CapacityExceeded {
                n: 32,
                capacity: 26
            })
        ));
        // 16 rows: one slot only — polymul cannot fit.
        let tight = layout(16, 8);
        assert!(PipelineSpec::forward_ntt().check(&tight, 97).is_ok());
        assert!(matches!(
            PipelineSpec::polymul().check(&tight, 97),
            Err(BpNttError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn check_rejects_multi_slot_on_multi_tile() {
        // 16-point over 8 coefficients/tile → multi-tile.
        let l = Layout::new(16, 32, 8, 16).unwrap();
        assert!(l.is_multi_tile());
        assert!(PipelineSpec::forward_ntt().check(&l, 97).is_ok());
        assert!(matches!(
            PipelineSpec::polymul().check(&l, 97),
            Err(BpNttError::CapacityExceeded { .. })
        ));
    }
}
