//! Tile-based data layout (paper §IV-B, Fig. 5(a)).
//!
//! The array is split into `⌊cols / bitwidth⌋` tiles; each tile's rows hold
//! one coefficient per row with the word laid out across the tile's
//! bitlines. Because all coefficients of a polynomial share their tile's
//! bitlines, a butterfly selects its two operands purely by row address —
//! the paper's *implicit (costless) shift*.
//!
//! Two regimes:
//!
//! * **Single-tile** (`N ≤ rows − 6`): one polynomial per tile, so the
//!   layout processes `n_tiles` independent NTTs in SIMD. Six non-data rows
//!   are reserved — `Sum`, `Carry`, two half-adder temporaries, the modulus
//!   row `M`, and its two's-complement companion `2^w − M` — exactly the
//!   paper's "250 rows for coefficients and 6 rows for intermediate
//!   variables" on a 256-row array.
//! * **Multi-tile** (`N > rows − 6`): one polynomial spans
//!   `N / coeffs_per_tile` adjacent tiles, where `coeffs_per_tile` is a
//!   power of two so that every Cooley–Tukey stage pairs tiles at a uniform
//!   distance (SIMD across blocks). Two further rows are reserved: a
//!   cross-tile staging row and a per-tile twiddle row (stages then use the
//!   data-driven multiplier path). Cross-tile alignment costs
//!   `distance × bitwidth` one-bit shifts — the extra shift overhead that
//!   drives Fig. 8(b).

use crate::error::BpNttError;
use bpntt_sram::RowAddr;

/// Reserved (non-coefficient) rows of the layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowMap {
    /// Carry-save accumulator: bitwise sum word.
    pub sum: RowAddr,
    /// Carry-save accumulator: carry word.
    pub carry: RowAddr,
    /// Half-adder temporary (the `c1`/`c2`/`c3` of Algorithm 2).
    pub t_carry: RowAddr,
    /// Half-adder temporary (the `s1`/`s2` of Algorithm 2).
    pub t_sum: RowAddr,
    /// Constant row holding the modulus `M` replicated in every tile.
    pub modulus: RowAddr,
    /// Constant row holding `2^bitwidth − M` (two's-complement companion,
    /// used by the conditional subtraction).
    pub comp_modulus: RowAddr,
    /// Cross-tile staging row (multi-tile layouts only).
    pub scratch: Option<RowAddr>,
    /// Per-tile twiddle operand row (multi-tile layouts only).
    pub twiddle: Option<RowAddr>,
}

/// The derived data layout for one configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    rows: usize,
    cols: usize,
    bitwidth: usize,
    n: usize,
    n_tiles: usize,
    coeffs_per_tile: usize,
    tiles_per_poly: usize,
    lanes: usize,
    rowmap: RowMap,
}

impl Layout {
    /// Derives the layout for an `n`-point polynomial on a `rows × cols`
    /// array with `bitwidth`-bit tiles.
    ///
    /// # Errors
    ///
    /// [`BpNttError::CapacityExceeded`] when the polynomial cannot fit,
    /// [`BpNttError::ArrayTooNarrow`] when not even one tile fits.
    pub fn new(rows: usize, cols: usize, bitwidth: usize, n: usize) -> Result<Self, BpNttError> {
        let n_tiles = cols / bitwidth;
        if n_tiles == 0 {
            return Err(BpNttError::ArrayTooNarrow { cols, bitwidth });
        }
        let single_tile_capacity = rows.saturating_sub(6);
        let top = rows as u16;
        let base_map = RowMap {
            sum: RowAddr(top - 1),
            carry: RowAddr(top - 2),
            t_carry: RowAddr(top - 3),
            t_sum: RowAddr(top - 4),
            modulus: RowAddr(top - 5),
            comp_modulus: RowAddr(top - 6),
            scratch: None,
            twiddle: None,
        };
        if n <= single_tile_capacity {
            return Ok(Layout {
                rows,
                cols,
                bitwidth,
                n,
                n_tiles,
                coeffs_per_tile: n,
                tiles_per_poly: 1,
                lanes: n_tiles,
                rowmap: base_map,
            });
        }
        // Multi-tile: reserve 8 rows, power-of-two coefficients per tile.
        let usable = rows.saturating_sub(8);
        if usable == 0 {
            return Err(BpNttError::CapacityExceeded { n, capacity: 0 });
        }
        let coeffs_per_tile = prev_power_of_two(usable);
        let tiles_per_poly = n.div_ceil(coeffs_per_tile);
        if !n.is_multiple_of(coeffs_per_tile) || tiles_per_poly > n_tiles {
            return Err(BpNttError::CapacityExceeded {
                n,
                capacity: coeffs_per_tile * n_tiles,
            });
        }
        let rowmap = RowMap {
            scratch: Some(RowAddr(top - 7)),
            twiddle: Some(RowAddr(top - 8)),
            ..base_map
        };
        Ok(Layout {
            rows,
            cols,
            bitwidth,
            n,
            n_tiles,
            coeffs_per_tile,
            tiles_per_poly,
            lanes: n_tiles / tiles_per_poly,
            rowmap,
        })
    }

    /// Array height.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Physical columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Tile width = coefficient bit width.
    #[must_use]
    pub fn bitwidth(&self) -> usize {
        self.bitwidth
    }

    /// Polynomial order.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of tiles, `⌊cols / bitwidth⌋`.
    #[must_use]
    pub fn n_tiles(&self) -> usize {
        self.n_tiles
    }

    /// Columns actually occupied by tiles (`n_tiles × bitwidth`); the
    /// remainder of the physical row is unused, as in the paper's
    /// "`n` tiles with `⌊256/n⌋`-bit coefficients".
    #[must_use]
    pub fn active_cols(&self) -> usize {
        self.n_tiles * self.bitwidth
    }

    /// Coefficients stored per tile.
    #[must_use]
    pub fn coeffs_per_tile(&self) -> usize {
        self.coeffs_per_tile
    }

    /// Tiles spanned by one polynomial (1 in the single-tile regime).
    #[must_use]
    pub fn tiles_per_poly(&self) -> usize {
        self.tiles_per_poly
    }

    /// Independent polynomials processed in parallel.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// True when one polynomial spans several tiles.
    #[must_use]
    pub fn is_multi_tile(&self) -> bool {
        self.tiles_per_poly > 1
    }

    /// The reserved-row map.
    #[must_use]
    pub fn rowmap(&self) -> &RowMap {
        &self.rowmap
    }

    /// Number of reserved (non-coefficient) rows: 6 in the single-tile
    /// regime (matching the paper's Fig. 5(a)), 8 when cross-tile staging
    /// and per-tile twiddles are needed.
    #[must_use]
    pub fn reserved_rows(&self) -> usize {
        if self.is_multi_tile() {
            8
        } else {
            6
        }
    }

    /// The `(tile, row)` holding coefficient `j` of lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` or `j` exceed the layout (internal callers iterate
    /// within bounds).
    #[must_use]
    pub fn coeff_position(&self, lane: usize, j: usize) -> (usize, RowAddr) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        assert!(j < self.n, "coefficient {j} out of range");
        let tile = lane * self.tiles_per_poly + j / self.coeffs_per_tile;
        let row = j % self.coeffs_per_tile;
        (tile, RowAddr(row as u16))
    }

    /// The row shared by coefficient offset `r` in every tile (multi-tile
    /// schedules operate on whole rows).
    #[must_use]
    pub fn offset_row(&self, r: usize) -> RowAddr {
        debug_assert!(r < self.coeffs_per_tile);
        RowAddr(r as u16)
    }

    /// Storage capacity in points for a whole array at this bit width if
    /// used purely as coefficient storage (the paper's headline claims:
    /// 250-point × 256-bit or 4500-point × 14-bit for one 256×256 array).
    #[must_use]
    pub fn storage_capacity(rows: usize, cols: usize, bitwidth: usize) -> usize {
        (cols / bitwidth) * rows.saturating_sub(6)
    }
}

fn prev_power_of_two(x: usize) -> usize {
    debug_assert!(x > 0);
    1usize << (usize::BITS - 1 - x.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacity_claims() {
        // "a single 256×256 SRAM subarray … up to a 250-point polynomial
        //  with 256-bit coefficients or a 4500-point polynomial with 14-bit
        //  coefficients"
        assert_eq!(Layout::storage_capacity(256, 256, 256), 250);
        assert_eq!(Layout::storage_capacity(256, 256, 14), 18 * 250);
        assert_eq!(Layout::storage_capacity(256, 256, 14), 4500);
        // And the PQC/HE requirements from the introduction fit:
        assert!(Layout::storage_capacity(256, 256, 32) >= 1024);
        assert!(Layout::storage_capacity(256, 256, 16) >= 1024);
    }

    #[test]
    fn single_tile_layout_matches_fig5a() {
        // Fig. 5(a): eight 32-bit tiles, 250 coefficient rows, 6 reserved.
        let l = Layout::new(256, 256, 32, 128).unwrap();
        assert_eq!(l.n_tiles(), 8);
        assert_eq!(l.lanes(), 8);
        assert_eq!(l.reserved_rows(), 6);
        assert!(!l.is_multi_tile());
        let (tile, row) = l.coeff_position(3, 17);
        assert_eq!((tile, row.index()), (3, 17));
        // Reserved rows sit at the top of the array.
        assert_eq!(l.rowmap().sum.index(), 255);
        assert_eq!(l.rowmap().comp_modulus.index(), 250);
        assert_eq!(l.rowmap().scratch, None);
    }

    #[test]
    fn max_single_tile_order_uses_all_rows() {
        let l = Layout::new(256, 256, 16, 250).unwrap();
        assert!(!l.is_multi_tile());
        assert_eq!(l.coeffs_per_tile(), 250);
        let (_, row) = l.coeff_position(0, 249);
        assert_eq!(row.index(), 249);
    }

    #[test]
    fn multi_tile_layout_for_large_orders() {
        // 1024-point, 16-bit on 256×256: 128 coefficients per tile,
        // 8 tiles per polynomial, 2 lanes.
        let l = Layout::new(256, 256, 16, 1024).unwrap();
        assert!(l.is_multi_tile());
        assert_eq!(l.coeffs_per_tile(), 128);
        assert_eq!(l.tiles_per_poly(), 8);
        assert_eq!(l.lanes(), 2);
        assert_eq!(l.reserved_rows(), 8);
        assert!(l.rowmap().scratch.is_some());
        let (tile, row) = l.coeff_position(1, 300);
        assert_eq!(tile, 8 + 2); // lane 1 starts at tile 8; 300/128 = 2
        assert_eq!(row.index(), 300 - 2 * 128);
    }

    #[test]
    fn capacity_errors() {
        // 4096-point 16-bit needs 32 tiles of 128 — only 16 exist.
        assert!(matches!(
            Layout::new(256, 256, 16, 4096),
            Err(BpNttError::CapacityExceeded { .. })
        ));
        // Fits at 8-bit width (32 tiles).
        assert!(Layout::new(256, 256, 8, 4096).is_ok());
    }

    #[test]
    fn prev_power_of_two_works() {
        assert_eq!(prev_power_of_two(1), 1);
        assert_eq!(prev_power_of_two(2), 2);
        assert_eq!(prev_power_of_two(3), 2);
        assert_eq!(prev_power_of_two(248), 128);
        assert_eq!(prev_power_of_two(256), 256);
    }
}
