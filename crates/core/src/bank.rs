//! Bank-level organization (paper Fig. 4(a–c)).
//!
//! A last-level-cache slice contains several SRAM banks; each bank
//! "usually has four subarrays", of which BP-NTT repurposes **one for
//! memory-mapped command/control** (the CTRL/CMD subarray holding the
//! encoded instruction stream) and the rest as vector compute units. All
//! compute subarrays of a bank execute the same broadcast instruction
//! stream, so throughput scales with the compute-subarray count at
//! unchanged latency, while the control subarray is amortized — and, as
//! the paper notes, "different banks performing the same operations can
//! share [the] CTRL/CMD subarray".
//!
//! This module models exactly that: `N` lock-stepped [`BpNtt`] engines plus
//! one control subarray charged in area and instruction-fetch energy.

use crate::config::BpNttConfig;
use crate::engine::BpNtt;
use crate::error::BpNttError;
use crate::metrics::PerfReport;
use bpntt_sram::geometry::{AreaModel, FrequencyModel};
use bpntt_sram::Stats;

/// A bank of lock-stepped BP-NTT subarrays sharing one CTRL/CMD subarray.
///
/// # Example
///
/// ```
/// use bpntt_core::{bank::Bank, BpNttConfig};
/// use bpntt_ntt::NttParams;
///
/// let cfg = BpNttConfig::new(16, 32, 8, NttParams::new(8, 97)?)?;
/// let mut bank = Bank::new(cfg, 3)?; // the paper's 1 ctrl + 3 compute
/// assert_eq!(bank.total_lanes(), 3 * 4);
/// # Ok::<(), bpntt_core::BpNttError>(())
/// ```
#[derive(Debug)]
pub struct Bank {
    compute: Vec<BpNtt>,
    config: BpNttConfig,
}

impl Bank {
    /// Builds a bank with `compute_subarrays` identical engines.
    ///
    /// # Errors
    ///
    /// Propagates configuration failures; rejects an empty bank.
    pub fn new(config: BpNttConfig, compute_subarrays: usize) -> Result<Self, BpNttError> {
        if compute_subarrays == 0 {
            return Err(BpNttError::CapacityExceeded { n: 0, capacity: 0 });
        }
        let compute = (0..compute_subarrays)
            .map(|_| BpNtt::new(config.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Bank { compute, config })
    }

    /// The paper's default bank: four subarrays, one repurposed for
    /// CTRL/CMD, three computing.
    ///
    /// # Errors
    ///
    /// Propagates configuration failures.
    pub fn paper_bank(config: BpNttConfig) -> Result<Self, BpNttError> {
        Self::new(config, 3)
    }

    /// Number of compute subarrays.
    #[must_use]
    pub fn compute_subarrays(&self) -> usize {
        self.compute.len()
    }

    /// Total parallel NTT lanes across the bank.
    #[must_use]
    pub fn total_lanes(&self) -> usize {
        self.compute.len() * self.config.layout().lanes()
    }

    /// Loads one batch per subarray (each up to the per-array lane count).
    ///
    /// # Errors
    ///
    /// Rejects more batches than subarrays; propagates per-array loading
    /// failures.
    pub fn load_batches(&mut self, batches: &[Vec<Vec<u64>>]) -> Result<(), BpNttError> {
        if batches.len() > self.compute.len() {
            return Err(BpNttError::BatchTooLarge {
                batch: batches.len(),
                lanes: self.compute.len(),
            });
        }
        for (engine, batch) in self.compute.iter_mut().zip(batches) {
            engine.load_batch(batch)?;
        }
        Ok(())
    }

    /// Runs the forward NTT on every subarray (lock-step broadcast).
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn forward(&mut self) -> Result<(), BpNttError> {
        for engine in &mut self.compute {
            engine.forward()?;
        }
        Ok(())
    }

    /// Runs the inverse NTT on every subarray.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn inverse(&mut self) -> Result<(), BpNttError> {
        for engine in &mut self.compute {
            engine.inverse()?;
        }
        Ok(())
    }

    /// Reads `batch` polynomials back from subarray `idx`.
    ///
    /// # Errors
    ///
    /// Propagates read failures.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn read_batch(&mut self, idx: usize, batch: usize) -> Result<Vec<Vec<u64>>, BpNttError> {
        self.compute[idx].read_batch(batch)
    }

    /// Resets statistics on every subarray.
    pub fn reset_stats(&mut self) {
        for engine in &mut self.compute {
            engine.reset_stats();
        }
    }

    /// Bank-level statistics: **cycles are the maximum** over subarrays
    /// (they run in lock step off one broadcast stream), energies and
    /// instruction counts **sum**.
    #[must_use]
    pub fn stats(&self) -> Stats {
        let mut total = Stats::default();
        let mut max_cycles = 0;
        for engine in &self.compute {
            let s = engine.stats();
            max_cycles = max_cycles.max(s.cycles);
            total += *s;
        }
        total.cycles = max_cycles;
        total
    }

    /// Bank-level performance report. The area charges the compute
    /// subarrays **plus one conventional subarray** for CTRL/CMD; the
    /// throughput counts every lane of every compute subarray.
    ///
    /// # Panics
    ///
    /// Panics if no work has been simulated yet.
    #[must_use]
    pub fn perf_report(&self, area: &AreaModel, freq: &FrequencyModel) -> PerfReport {
        let geometry = self.config.geometry();
        let stats = self.stats();
        let mut report = PerfReport::from_stats(&stats, self.total_lanes(), geometry, area, freq);
        // Replace the single-array area with the bank area: N compute
        // arrays (with the <2% compute additions) + 1 conventional
        // CTRL/CMD array.
        let breakdown = area.breakdown(geometry);
        let bank_area =
            breakdown.total_mm2() * self.compute.len() as f64 + breakdown.conventional_mm2();
        report.area_mm2 = bank_area;
        report.tput_per_area = report.throughput / 1e3 / bank_area;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpntt_ntt::{forward, NttParams, Polynomial, TwiddleTable};

    fn config() -> BpNttConfig {
        BpNttConfig::new(16, 32, 8, NttParams::new(8, 97).unwrap()).unwrap()
    }

    #[test]
    fn bank_runs_independent_batches() {
        let params = NttParams::new(8, 97).unwrap();
        let mut bank = Bank::paper_bank(config()).unwrap();
        assert_eq!(bank.compute_subarrays(), 3);
        let batches: Vec<Vec<Vec<u64>>> = (0..3u64)
            .map(|s| {
                (0..4u64)
                    .map(|l| Polynomial::pseudo_random(&params, 10 * s + l + 1).into_coeffs())
                    .collect()
            })
            .collect();
        bank.load_batches(&batches).unwrap();
        bank.forward().unwrap();
        let tw = TwiddleTable::new(&params);
        for (i, batch) in batches.iter().enumerate() {
            let got = bank.read_batch(i, 4).unwrap();
            for (lane, p) in batch.iter().enumerate() {
                let mut expect = p.clone();
                forward::ntt_in_place(&params, &tw, &mut expect).unwrap();
                assert_eq!(got[lane], expect, "subarray {i} lane {lane}");
            }
        }
    }

    #[test]
    fn bank_roundtrip() {
        let params = NttParams::new(8, 97).unwrap();
        let mut bank = Bank::new(config(), 2).unwrap();
        let batches: Vec<Vec<Vec<u64>>> = (0..2u64)
            .map(|s| vec![Polynomial::pseudo_random(&params, s + 40).into_coeffs()])
            .collect();
        bank.load_batches(&batches).unwrap();
        bank.forward().unwrap();
        bank.inverse().unwrap();
        for (i, batch) in batches.iter().enumerate() {
            assert_eq!(&bank.read_batch(i, 1).unwrap(), batch);
        }
    }

    #[test]
    fn bank_scales_throughput_not_latency() {
        let params = NttParams::new(8, 97).unwrap();
        let run = |n_arrays: usize| {
            let mut bank = Bank::new(config(), n_arrays).unwrap();
            let batches: Vec<Vec<Vec<u64>>> = (0..n_arrays as u64)
                .map(|s| vec![Polynomial::pseudo_random(&params, s + 1).into_coeffs()])
                .collect();
            bank.load_batches(&batches).unwrap();
            bank.reset_stats();
            bank.forward().unwrap();
            bank.perf_report(&AreaModel::cmos_45nm(), &FrequencyModel::cmos_45nm())
        };
        let one = run(1);
        let three = run(3);
        assert_eq!(one.cycles, three.cycles, "lock-step: identical latency");
        assert!((three.throughput / one.throughput - 3.0).abs() < 1e-9);
        assert!(
            three.energy_nj > 2.9 * one.energy_nj,
            "energy sums across subarrays"
        );
        // The shared CTRL/CMD subarray is amortized: bank TA improves as
        // compute subarrays are added.
        assert!(three.tput_per_area > one.tput_per_area);
    }

    #[test]
    fn rejects_empty_bank_and_oversized_batches() {
        assert!(Bank::new(config(), 0).is_err());
        let mut bank = Bank::new(config(), 2).unwrap();
        let too_many = vec![vec![vec![0u64; 8]; 1]; 3];
        assert!(matches!(
            bank.load_batches(&too_many),
            Err(BpNttError::BatchTooLarge { .. })
        ));
    }

    #[test]
    fn stats_aggregate_max_cycles_sum_energy() {
        let params = NttParams::new(8, 97).unwrap();
        let mut bank = Bank::new(config(), 2).unwrap();
        bank.load_batches(&[
            vec![Polynomial::pseudo_random(&params, 1).into_coeffs()],
            vec![Polynomial::pseudo_random(&params, 2).into_coeffs()],
        ])
        .unwrap();
        bank.reset_stats();
        bank.forward().unwrap();
        let s = bank.stats();
        assert!(s.cycles > 0);
        assert!(s.counts.binary > 0);
    }
}
