//! The BP-NTT batch execution engine.
//!
//! Ties the tile [`Layout`](crate::layout::Layout), the
//! [`Kernels`](crate::kernels::Kernels) code generator, and the SRAM
//! [`Controller`] together into the accelerator the paper evaluates:
//! load a batch of polynomials (one per lane), run the in-place forward or
//! inverse NTT schedule entirely inside the array, and read the batch
//! back. All lanes execute the same instruction stream — the SIMD
//! parallelism across tiles is where BP-NTT's throughput comes from.
//!
//! # Compile once, replay many
//!
//! The instruction stream of a schedule depends only on the configuration
//! (`NttParams` + `Layout` + cost models) — never on the loaded data. The
//! engine therefore *traces* each schedule once through a
//! [`Recorder`](bpntt_sram::Recorder) into a compiled program and replays
//! it on every subsequent call ([`BpNtt::forward`], [`BpNtt::inverse`],
//! [`BpNtt::polymul`]); replay skips code generation, twiddle Montgomery
//! conversions, per-instruction validation, and cost-model evaluation,
//! while producing bit-identical array contents and bit-identical
//! [`Stats`] to direct emission (see [`BpNtt::forward_uncached`]). The
//! compiled stream runs almost entirely as fused word-engine superops —
//! multiplier chains, resolution loops, and the butterfly epilogues
//! (`CompiledProgram::fused_epilogues` counts the latter) — which the
//! `bpntt-sram` word-engine executes through runtime-dispatched AVX2
//! kernels with a bit-identical scalar fallback, register-resident for
//! rows up to four 256-bit chunks (1024 columns). The compiled programs
//! are shared — [`ShardedBpNtt`](crate::ShardedBpNtt) clones them across
//! shards behind an `Arc`.
//!
//! The *emit* path shares those executors: [`BpNtt::forward_uncached`] /
//! [`BpNtt::inverse_uncached`] stream their generated instructions
//! through a [`FusedSink`], which matches the same recorded shapes online
//! and runs them fused, so per-call code generation no longer executes
//! ~15 generic instructions per butterfly epilogue. The strictly
//! per-instruction originals survive as
//! [`BpNtt::forward_uncached_generic`] /
//! [`BpNtt::inverse_uncached_generic`] — the ground truth the
//! equivalence proptests pin every other path against, and the
//! denominator of the replay-speedup trajectory.
//! [`BpNtt::fastpath_stats`] reports which strategy actually executed.

use std::collections::HashMap;
use std::sync::Arc;

use crate::config::BpNttConfig;
use crate::error::BpNttError;
use crate::kernels::Kernels;
use crate::layout::Layout;
use bpntt_modmath::montgomery::MontCtx;
use bpntt_modmath::zq::mul_mod;
use bpntt_ntt::TwiddleTable;
use bpntt_sram::{
    BitRow, CompiledProgram, Controller, FastPathStats, FusedSink, InstrSink, Instruction,
    PredMode, Recorder, RowAddr, ShiftDir, SramArray, Stats, UnaryKind,
};

/// Cache key for one compiled schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum ProgramKey {
    /// Forward NTT over the coefficient region based at `base`.
    Forward { base: u16 },
    /// Inverse NTT (with its final scaling constant, in Montgomery form)
    /// over the region based at `base`.
    Inverse { base: u16, scale_mont: u64 },
    /// Pointwise products `a_j ← â_j · b̂_j · R⁻¹` over two regions.
    Pointwise { a_base: u16, b_base: u16 },
}

/// The BP-NTT accelerator instance.
///
/// # Example
///
/// ```
/// use bpntt_core::{BpNtt, BpNttConfig};
/// use bpntt_ntt::NttParams;
///
/// // Four 8-bit lanes of an 8-point NTT on a tiny 16×32 array.
/// let cfg = BpNttConfig::new(16, 32, 8, NttParams::new(8, 97)?)?;
/// let mut acc = BpNtt::new(cfg)?;
/// let polys = vec![vec![1u64, 2, 3, 4, 5, 6, 7, 8]; 4];
/// acc.load_batch(&polys)?;
/// acc.forward()?;
/// acc.inverse()?;
/// assert_eq!(acc.read_batch(4)?, polys); // roundtrip
/// # Ok::<(), bpntt_core::BpNttError>(())
/// ```
#[derive(Debug)]
pub struct BpNtt {
    config: BpNttConfig,
    twiddles: TwiddleTable,
    mont: MontCtx,
    kernels: Kernels,
    ctl: Controller,
    programs: HashMap<ProgramKey, Arc<CompiledProgram>>,
}

/// Emits complete NTT schedules into any [`InstrSink`]: a live controller
/// (the uncached path) or a recorder (program compilation). Borrows only
/// the engine's read-only state so the controller can be the sink.
struct Emitter<'a> {
    kernels: &'a Kernels,
    layout: &'a Layout,
    twiddles: &'a TwiddleTable,
    mont: &'a MontCtx,
    n: usize,
}

impl<'a> Emitter<'a> {
    /// Builds the emitter from the engine's read-only state. Takes the
    /// fields individually (not `&BpNtt`) so the borrows stay disjoint
    /// from the controller — an emitter can drive a sink that mutably
    /// borrows `self.ctl`.
    fn of(
        kernels: &'a Kernels,
        config: &'a BpNttConfig,
        twiddles: &'a TwiddleTable,
        mont: &'a MontCtx,
    ) -> Self {
        Emitter {
            kernels,
            layout: config.layout(),
            twiddles,
            mont,
            n: config.params().n(),
        }
    }

    fn forward_region<S: InstrSink>(&self, sink: &mut S, base: usize) -> Result<(), BpNttError> {
        let layout = self.layout;
        let n = self.n;
        if !layout.is_multi_tile() {
            // One polynomial per tile: every lane shares the compile-time
            // twiddle schedule (the multiplier lives in the control flow).
            let mut k = 0usize;
            let mut len = n / 2;
            while len > 0 {
                let mut idx = 0;
                while idx < n {
                    k += 1;
                    let z = self.mont.to_mont(self.twiddles.zetas()[k]);
                    for j in idx..idx + len {
                        let lo = RowAddr((base + j) as u16);
                        let hi = RowAddr((base + j + len) as u16);
                        self.kernels.ct_butterfly_const(sink, lo, hi, z)?;
                    }
                    idx += 2 * len;
                }
                len /= 2;
            }
            return Ok(());
        }
        // Multi-tile: one polynomial spans tiles; twiddles differ per tile
        // and are delivered through the twiddle row (data-driven path).
        let cpt = layout.coeffs_per_tile();
        let mut len = n / 2;
        while len > 0 {
            if len >= cpt {
                let d = len / cpt;
                for r in 0..cpt {
                    self.load_twiddle_row(sink, len, r, false)?;
                    self.cross_tile_ct(sink, r, d)?;
                }
            } else {
                let mut idx = 0;
                while idx < cpt {
                    self.load_twiddle_row(sink, len, idx, false)?;
                    for r in idx..idx + len {
                        let lo = layout.offset_row(r);
                        let hi = layout.offset_row(r + len);
                        self.kernels.ct_butterfly_data(sink, lo, hi)?;
                    }
                    idx += 2 * len;
                }
            }
            len /= 2;
        }
        Ok(())
    }

    fn inverse_region<S: InstrSink>(
        &self,
        sink: &mut S,
        base: usize,
        scale_mont: u64,
    ) -> Result<(), BpNttError> {
        let layout = self.layout;
        let n = self.n;
        if !layout.is_multi_tile() {
            let mut len = 1;
            while len < n {
                let k_base = n / (2 * len);
                let mut idx = 0;
                let mut b = 0;
                while idx < n {
                    let zi = self.mont.to_mont(self.twiddles.inv_zetas()[k_base + b]);
                    for j in idx..idx + len {
                        let lo = RowAddr((base + j) as u16);
                        let hi = RowAddr((base + j + len) as u16);
                        self.kernels.gs_butterfly_const(sink, lo, hi, zi)?;
                    }
                    idx += 2 * len;
                    b += 1;
                }
                len *= 2;
            }
            for j in 0..n {
                self.kernels
                    .scale_const(sink, RowAddr((base + j) as u16), scale_mont)?;
            }
            return Ok(());
        }
        let cpt = layout.coeffs_per_tile();
        let mut len = 1;
        while len < n {
            if len >= cpt {
                let d = len / cpt;
                for r in 0..cpt {
                    self.load_twiddle_row(sink, len, r, true)?;
                    self.cross_tile_gs(sink, r, d)?;
                }
            } else {
                let mut idx = 0;
                while idx < cpt {
                    self.load_twiddle_row(sink, len, idx, true)?;
                    for r in idx..idx + len {
                        let lo = layout.offset_row(r);
                        let hi = layout.offset_row(r + len);
                        self.kernels.gs_butterfly_data(sink, lo, hi)?;
                    }
                    idx += 2 * len;
                }
            }
            len *= 2;
        }
        for r in 0..cpt {
            self.kernels
                .scale_const(sink, layout.offset_row(r), scale_mont)?;
        }
        Ok(())
    }

    /// Fills the twiddle row: tile `t` receives the (Montgomery-scaled)
    /// twiddle of the butterfly block that its coefficient at offset `r`
    /// belongs to at stage `len`. The row image depends only on the
    /// parameters and layout, so it records as a compile-time constant.
    fn load_twiddle_row<S: InstrSink>(
        &self,
        sink: &mut S,
        len: usize,
        r: usize,
        inverse: bool,
    ) -> Result<(), BpNttError> {
        let layout = self.layout;
        let tw_row = layout
            .rowmap()
            .twiddle
            .expect("multi-tile layouts have a twiddle row");
        let bw = layout.bitwidth();
        let cpt = layout.coeffs_per_tile();
        let tpp = layout.tiles_per_poly();
        let k_base = self.n / (2 * len);
        let mut row = BitRow::zero(layout.active_cols());
        for t in 0..layout.n_tiles() {
            let g = t % tpp;
            let j = g * cpt + r;
            let block = j / (2 * len);
            let k = k_base + block;
            let z = if inverse {
                self.twiddles.inv_zetas()[k]
            } else {
                self.twiddles.zetas()[k]
            };
            row.set_tile_word(t, bw, self.mont.to_mont(z));
        }
        sink.load_row(tw_row, &row)?;
        Ok(())
    }

    /// Cross-tile Cooley–Tukey butterfly on coefficient row `r`: partners
    /// sit `d` tiles apart in the *same* physical row, so the partner word
    /// is staged through `d·w` one-bit shifts — the Fig. 8(b) overhead.
    fn cross_tile_ct<S: InstrSink>(
        &self,
        sink: &mut S,
        r: usize,
        d: usize,
    ) -> Result<(), BpNttError> {
        let rm = *self.layout.rowmap();
        let scratch = rm.scratch.expect("multi-tile layouts have a scratch row");
        let row_r = self.layout.offset_row(r);
        let stride_log2 = d.trailing_zeros() as u8;
        // Stage partner words: tile t sees tile t+d's coefficient.
        self.kernels
            .move_tiles(sink, scratch, row_r, d, ShiftDir::Right)?;
        // t = ζ · partner (valid in the low-half tiles).
        self.kernels
            .modmul_data(sink, scratch, rm.twiddle.expect("twiddle row"))?;
        self.kernels.finish_modmul(sink)?;
        // new_hi = a[lo] − t (computed everywhere, consumed from low tiles).
        self.kernels.sub_mod(sink, scratch, row_r, rm.sum, None)?;
        // a[lo] ← a[lo] + t, only in the low-half tiles.
        self.kernels
            .add_mod(sink, row_r, row_r, rm.sum, Some((stride_log2, false)))?;
        // Ship new_hi to the high-half tiles.
        self.kernels
            .move_tiles(sink, scratch, scratch, d, ShiftDir::Left)?;
        sink.emit(Instruction::MaskTiles {
            stride_log2,
            phase: true,
        })?;
        sink.emit(Instruction::Unary {
            dst: row_r,
            src: scratch,
            kind: UnaryKind::Copy,
            pred: PredMode::Always,
        })?;
        sink.emit(Instruction::MaskAll)?;
        Ok(())
    }

    /// Cross-tile Gentleman–Sande butterfly on coefficient row `r`.
    fn cross_tile_gs<S: InstrSink>(
        &self,
        sink: &mut S,
        r: usize,
        d: usize,
    ) -> Result<(), BpNttError> {
        let rm = *self.layout.rowmap();
        let scratch = rm.scratch.expect("multi-tile layouts have a scratch row");
        let row_r = self.layout.offset_row(r);
        let stride_log2 = d.trailing_zeros() as u8;
        self.kernels
            .move_tiles(sink, scratch, row_r, d, ShiftDir::Right)?;
        // Sum ← u − v; a[lo] ← u + v (low tiles only).
        self.kernels.sub_mod(sink, rm.sum, row_r, scratch, None)?;
        self.kernels
            .add_mod(sink, row_r, row_r, scratch, Some((stride_log2, false)))?;
        // hi ← ζ⁻¹ (u − v), staged through scratch.
        sink.emit(Instruction::Unary {
            dst: scratch,
            src: rm.sum,
            kind: UnaryKind::Copy,
            pred: PredMode::Always,
        })?;
        self.kernels
            .modmul_data(sink, scratch, rm.twiddle.expect("twiddle row"))?;
        self.kernels.finish_modmul(sink)?;
        sink.emit(Instruction::Unary {
            dst: scratch,
            src: rm.sum,
            kind: UnaryKind::Copy,
            pred: PredMode::Always,
        })?;
        self.kernels
            .move_tiles(sink, scratch, scratch, d, ShiftDir::Left)?;
        sink.emit(Instruction::MaskTiles {
            stride_log2,
            phase: true,
        })?;
        sink.emit(Instruction::Unary {
            dst: row_r,
            src: scratch,
            kind: UnaryKind::Copy,
            pred: PredMode::Always,
        })?;
        sink.emit(Instruction::MaskAll)?;
        Ok(())
    }

    /// Pointwise products: `a_j ← â_j · b̂_j · R⁻¹` for every coefficient
    /// row of the two operand regions.
    fn pointwise<S: InstrSink>(
        &self,
        sink: &mut S,
        a_base: usize,
        b_base: usize,
    ) -> Result<(), BpNttError> {
        for j in 0..self.n {
            let a_row = RowAddr((a_base + j) as u16);
            let b_row = RowAddr((b_base + j) as u16);
            self.kernels.modmul_data(sink, a_row, b_row)?;
            self.kernels.finish_modmul(sink)?;
            sink.emit(Instruction::Unary {
                dst: a_row,
                src: self.layout.rowmap().sum,
                kind: UnaryKind::Copy,
                pred: PredMode::Always,
            })?;
        }
        Ok(())
    }

    /// Emits the schedule identified by `key`.
    fn emit_key<S: InstrSink>(&self, sink: &mut S, key: ProgramKey) -> Result<(), BpNttError> {
        match key {
            ProgramKey::Forward { base } => self.forward_region(sink, usize::from(base)),
            ProgramKey::Inverse { base, scale_mont } => {
                self.inverse_region(sink, usize::from(base), scale_mont)
            }
            ProgramKey::Pointwise { a_base, b_base } => {
                self.pointwise(sink, usize::from(a_base), usize::from(b_base))
            }
        }
    }
}

impl BpNtt {
    /// Builds the accelerator: allocates the (simulated) array, installs
    /// the constant rows (`M` and `2^w − M`), and precomputes twiddles.
    ///
    /// # Errors
    ///
    /// Propagates configuration and simulator construction failures.
    pub fn new(config: BpNttConfig) -> Result<Self, BpNttError> {
        let layout = config.layout().clone();
        let q = config.params().modulus();
        let bw = config.bitwidth();
        let array = SramArray::new(config.rows(), layout.active_cols())?;
        let mut ctl = Controller::new(array, bw)?;
        let mont = MontCtx::new(q, bw as u32)?;
        let kernels = Kernels::new(*layout.rowmap(), q, bw);
        let twiddles = TwiddleTable::new(config.params());
        // Install the constant rows (uncosted one-time setup would be
        // unfair: count them as ordinary row loads).
        let n_tiles = layout.n_tiles();
        let mut m_row = BitRow::zero(layout.active_cols());
        let mut comp_row = BitRow::zero(layout.active_cols());
        let mask = if bw == 64 { u64::MAX } else { (1u64 << bw) - 1 };
        for t in 0..n_tiles {
            m_row.set_tile_word(t, bw, q);
            comp_row.set_tile_word(t, bw, q.wrapping_neg() & mask);
        }
        ctl.load_data_row(layout.rowmap().modulus.index(), m_row);
        ctl.load_data_row(layout.rowmap().comp_modulus.index(), comp_row);
        Ok(BpNtt {
            config,
            twiddles,
            mont,
            kernels,
            ctl,
            programs: HashMap::new(),
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &BpNttConfig {
        &self.config
    }

    /// Accumulated simulator statistics.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        self.ctl.stats()
    }

    /// Resets the statistics (array contents are untouched). Also clears
    /// the fast-path coverage counters.
    pub fn reset_stats(&mut self) {
        self.ctl.reset_stats();
    }

    /// Word-engine fast-path coverage telemetry accumulated since the
    /// last [`Self::reset_stats`]: how many fused chains/loops/superops
    /// actually executed, and which of them ran register-resident. The
    /// observable for "the fast path silently stopped firing".
    #[must_use]
    pub fn fastpath_stats(&self) -> &FastPathStats {
        self.ctl.fastpath_stats()
    }

    /// Replaces the timing model (for sensitivity studies). Invalidates
    /// the compiled-program cache: programs embed precomputed costs.
    pub fn set_timing_model(&mut self, t: bpntt_sram::TimingModel) {
        self.ctl.set_timing_model(t);
        self.programs.clear();
    }

    /// Number of schedules currently compiled and cached.
    #[must_use]
    pub fn cached_programs(&self) -> usize {
        self.programs.len()
    }

    /// Uncosted debug view of one physical array row (delegates to the
    /// controller; used by equivalence tests to compare *all* state, not
    /// just the coefficient region).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn peek_row(&self, r: usize) -> &BitRow {
        self.ctl.peek_row(r)
    }

    fn n(&self) -> usize {
        self.config.params().n()
    }

    fn q(&self) -> u64 {
        self.config.params().modulus()
    }

    /// Returns the compiled program for `key`, tracing and compiling it on
    /// first use.
    pub(crate) fn program(&mut self, key: ProgramKey) -> Result<Arc<CompiledProgram>, BpNttError> {
        if let Some(p) = self.programs.get(&key) {
            return Ok(Arc::clone(p));
        }
        let mut rec = Recorder::new();
        Emitter::of(&self.kernels, &self.config, &self.twiddles, &self.mont)
            .emit_key(&mut rec, key)?;
        let compiled = Arc::new(rec.finish().compile(&self.ctl)?);
        self.programs.insert(key, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// Installs an externally compiled program (used by
    /// [`ShardedBpNtt`](crate::ShardedBpNtt) to share one compilation
    /// across identically configured shards).
    pub(crate) fn install_program(&mut self, key: ProgramKey, prog: Arc<CompiledProgram>) {
        self.programs.insert(key, prog);
    }

    /// The key of the standalone forward-NTT program (coefficient region
    /// based at row 0). Named accessor so batch warm-up paths
    /// ([`ShardedBpNtt`](crate::ShardedBpNtt), the service dispatcher)
    /// never select a program by its position inside
    /// [`Self::transform_program_keys`] — a reordering there cannot
    /// silently warm the wrong schedule.
    pub(crate) fn forward_program_key(&self) -> ProgramKey {
        ProgramKey::Forward { base: 0 }
    }

    /// The four program keys [`Self::polymul`] replays, in execution order.
    pub(crate) fn polymul_program_keys(&self) -> [ProgramKey; 4] {
        let n = self.n() as u16;
        let n_inv_r2 = self.mont.to_mont(mul_mod(
            self.config.params().n_inv(),
            self.mont.r_mod_m(),
            self.q(),
        ));
        [
            ProgramKey::Forward { base: 0 },
            ProgramKey::Forward { base: n },
            ProgramKey::Pointwise {
                a_base: 0,
                b_base: n,
            },
            ProgramKey::Inverse {
                base: 0,
                scale_mont: n_inv_r2,
            },
        ]
    }

    /// The program keys of a forward + inverse roundtrip.
    ///
    /// Ordering invariant: the forward key comes first and equals
    /// [`Self::forward_program_key`] (debug-asserted); callers that need
    /// only the forward schedule should use the named accessor instead of
    /// indexing into this array.
    pub(crate) fn transform_program_keys(&self) -> [ProgramKey; 2] {
        let scale = self.mont.to_mont(self.config.params().n_inv());
        let keys = [
            self.forward_program_key(),
            ProgramKey::Inverse {
                base: 0,
                scale_mont: scale,
            },
        ];
        debug_assert!(
            matches!(keys[0], ProgramKey::Forward { base: 0 }),
            "transform_program_keys must keep the forward key first"
        );
        keys
    }

    /// Every compiled program currently cached, as `(key, Arc)` pairs (the
    /// service layer harvests these into its cross-tenant program cache).
    pub(crate) fn export_programs(&self) -> Vec<(ProgramKey, Arc<CompiledProgram>)> {
        self.programs
            .iter()
            .map(|(k, p)| (*k, Arc::clone(p)))
            .collect()
    }

    /// The compiled forward-NTT program for this configuration (compiling
    /// it on first use). Exposed for benchmarks and sharding.
    ///
    /// # Errors
    ///
    /// Propagates trace/compile failures.
    pub fn compiled_forward(&mut self) -> Result<Arc<CompiledProgram>, BpNttError> {
        self.program(ProgramKey::Forward { base: 0 })
    }

    /// The compiled inverse-NTT program (with the standard `N⁻¹` scaling).
    ///
    /// # Errors
    ///
    /// Propagates trace/compile failures.
    pub fn compiled_inverse(&mut self) -> Result<Arc<CompiledProgram>, BpNttError> {
        let scale = self.mont.to_mont(self.config.params().n_inv());
        self.program(ProgramKey::Inverse {
            base: 0,
            scale_mont: scale,
        })
    }

    /// Loads `polys` (one polynomial per lane, natural order) into the
    /// array starting at coefficient row 0. Unused lanes are zeroed.
    ///
    /// # Errors
    ///
    /// Rejects oversized batches, wrong lengths, and unreduced
    /// coefficients.
    pub fn load_batch(&mut self, polys: &[Vec<u64>]) -> Result<(), BpNttError> {
        self.load_batch_at(0, polys)
    }

    /// Loads a batch with coefficient rows based at `base` (used by
    /// [`Self::polymul`] to hold two operands).
    fn load_batch_at(&mut self, base: usize, polys: &[Vec<u64>]) -> Result<(), BpNttError> {
        let layout = self.config.layout().clone();
        let n = self.n();
        let q = self.q();
        if polys.len() > layout.lanes() {
            return Err(BpNttError::BatchTooLarge {
                batch: polys.len(),
                lanes: layout.lanes(),
            });
        }
        for (lane, p) in polys.iter().enumerate() {
            if p.len() != n {
                return Err(BpNttError::WrongLength {
                    expected: n,
                    actual: p.len(),
                });
            }
            if let Some((index, &value)) = p.iter().enumerate().find(|(_, &v)| v >= q) {
                return Err(BpNttError::Unreduced { lane, index, value });
            }
        }
        let bw = layout.bitwidth();
        let cpt = layout.coeffs_per_tile();
        let tpp = layout.tiles_per_poly();
        for r in 0..cpt {
            let mut row = BitRow::zero(layout.active_cols());
            for t in 0..layout.n_tiles() {
                let lane = t / tpp;
                let g = t % tpp;
                let j = g * cpt + r;
                let v = if lane < polys.len() && j < n {
                    polys[lane][j]
                } else {
                    0
                };
                row.set_tile_word(t, bw, v);
            }
            self.ctl.load_data_row(base + r, row);
        }
        Ok(())
    }

    /// Reads `batch` polynomials back out of the array (coefficient rows
    /// based at row 0).
    ///
    /// # Errors
    ///
    /// Rejects `batch` larger than the lane count.
    pub fn read_batch(&mut self, batch: usize) -> Result<Vec<Vec<u64>>, BpNttError> {
        self.read_batch_at(0, batch)
    }

    fn read_batch_at(&mut self, base: usize, batch: usize) -> Result<Vec<Vec<u64>>, BpNttError> {
        let layout = self.config.layout().clone();
        if batch > layout.lanes() {
            return Err(BpNttError::BatchTooLarge {
                batch,
                lanes: layout.lanes(),
            });
        }
        let n = self.n();
        let bw = layout.bitwidth();
        let cpt = layout.coeffs_per_tile();
        let tpp = layout.tiles_per_poly();
        let mut out = vec![vec![0u64; n]; batch];
        for r in 0..cpt {
            let row = self.ctl.read_data_row(base + r);
            for (lane, poly) in out.iter_mut().enumerate() {
                for g in 0..tpp {
                    let j = g * cpt + r;
                    if j < n {
                        poly[j] = row.tile_word(lane * tpp + g, bw);
                    }
                }
            }
        }
        Ok(out)
    }

    // ---- schedules ---------------------------------------------------------

    /// Runs the in-place forward NTT (paper Algorithm 1) on the loaded
    /// batch: natural order in, bit-reversed order out. Replays the cached
    /// compiled program (tracing it on first call).
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn forward(&mut self) -> Result<(), BpNttError> {
        let prog = self.program(ProgramKey::Forward { base: 0 })?;
        self.ctl.run_compiled(&prog)?;
        Ok(())
    }

    /// Forward NTT through per-call code generation (no program cache),
    /// with the emitted stream executed through the same fused
    /// word-engine executors replay uses ([`FusedSink`]). Produces
    /// bit-identical rows and [`Stats`] to [`Self::forward`] *and* to
    /// [`Self::forward_uncached_generic`]; kept as the replay-equivalence
    /// baseline and for benchmarking the compile-once win.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn forward_uncached(&mut self) -> Result<(), BpNttError> {
        let em = Emitter::of(&self.kernels, &self.config, &self.twiddles, &self.mont);
        let mut sink = FusedSink::new(&mut self.ctl);
        em.forward_region(&mut sink, 0)?;
        sink.finish()?;
        Ok(())
    }

    /// Forward NTT through per-call code generation with strictly
    /// per-instruction execution — no fused executors anywhere. The
    /// original emission semantics, kept as the ground-truth baseline the
    /// equivalence proptests pin both replay and fused emission against,
    /// and as the denominator of the replay-speedup trajectory.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn forward_uncached_generic(&mut self) -> Result<(), BpNttError> {
        let em = Emitter::of(&self.kernels, &self.config, &self.twiddles, &self.mont);
        em.forward_region(&mut self.ctl, 0)
    }

    /// Runs the in-place inverse NTT: bit-reversed order in, natural order
    /// out, including the final `N⁻¹` scaling. Replays the cached compiled
    /// program (tracing it on first call).
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn inverse(&mut self) -> Result<(), BpNttError> {
        let scale = self.mont.to_mont(self.config.params().n_inv());
        let prog = self.program(ProgramKey::Inverse {
            base: 0,
            scale_mont: scale,
        })?;
        self.ctl.run_compiled(&prog)?;
        Ok(())
    }

    /// Inverse NTT through per-call code generation with fused execution
    /// (no program cache); see [`Self::forward_uncached`].
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn inverse_uncached(&mut self) -> Result<(), BpNttError> {
        let scale = self.mont.to_mont(self.config.params().n_inv());
        let em = Emitter::of(&self.kernels, &self.config, &self.twiddles, &self.mont);
        let mut sink = FusedSink::new(&mut self.ctl);
        em.inverse_region(&mut sink, 0, scale)?;
        sink.finish()?;
        Ok(())
    }

    /// Inverse NTT through strictly per-instruction code generation; see
    /// [`Self::forward_uncached_generic`].
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn inverse_uncached_generic(&mut self) -> Result<(), BpNttError> {
        let scale = self.mont.to_mont(self.config.params().n_inv());
        let em = Emitter::of(&self.kernels, &self.config, &self.twiddles, &self.mont);
        em.inverse_region(&mut self.ctl, 0, scale)
    }

    /// Full negacyclic polynomial multiplication on the accelerator:
    /// loads `a` and `b` batches, transforms both, multiplies pointwise
    /// (data-driven multiplier), inverse-transforms, and returns the
    /// products. All four compute phases replay cached compiled programs.
    ///
    /// Requires a single-tile layout with room for both operands
    /// (`2N + 6` rows).
    ///
    /// # Errors
    ///
    /// [`BpNttError::CapacityExceeded`] when the operands do not fit;
    /// otherwise propagates load/validation/simulator failures.
    pub fn polymul(&mut self, a: &[Vec<u64>], b: &[Vec<u64>]) -> Result<Vec<Vec<u64>>, BpNttError> {
        let layout = self.config.layout().clone();
        let n = self.n();
        if layout.is_multi_tile() || 2 * n + layout.reserved_rows() > self.config.rows() {
            return Err(BpNttError::CapacityExceeded {
                n: 2 * n,
                capacity: self.config.rows().saturating_sub(layout.reserved_rows()),
            });
        }
        let batch = a.len().max(b.len());
        self.load_batch_at(0, a)?;
        self.load_batch_at(n, b)?;
        let fwd_a = self.program(ProgramKey::Forward { base: 0 })?;
        let fwd_b = self.program(ProgramKey::Forward { base: n as u16 })?;
        // Pointwise: c_j = â_j · b̂_j · R⁻¹ (the stray R⁻¹ is absorbed by
        // the inverse transform's scaling constant below).
        let pointwise = self.program(ProgramKey::Pointwise {
            a_base: 0,
            b_base: n as u16,
        })?;
        // Scale constant n⁻¹·R² : output = x · n⁻¹ · R, cancelling the R⁻¹
        // introduced by the pointwise step.
        let q = self.q();
        let n_inv_r2 = self.mont.to_mont(mul_mod(
            self.config.params().n_inv(),
            self.mont.r_mod_m(),
            q,
        ));
        let inv = self.program(ProgramKey::Inverse {
            base: 0,
            scale_mont: n_inv_r2,
        })?;
        self.ctl.run_compiled(&fwd_a)?;
        self.ctl.run_compiled(&fwd_b)?;
        self.ctl.run_compiled(&pointwise)?;
        self.ctl.run_compiled(&inv)?;
        self.read_batch_at(0, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpntt_ntt::forward::ntt_in_place;
    use bpntt_ntt::inverse::intt_in_place;
    use bpntt_ntt::polymul::polymul_schoolbook;
    use bpntt_ntt::NttParams;

    fn pseudo(n: usize, q: u64, seed: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % q
            })
            .collect()
    }

    #[test]
    fn single_tile_forward_matches_reference() {
        let params = NttParams::new(8, 97).unwrap();
        let cfg = BpNttConfig::new(16, 32, 8, params.clone()).unwrap();
        let mut acc = BpNtt::new(cfg).unwrap();
        let lanes = acc.config().layout().lanes();
        assert_eq!(lanes, 4);
        let polys: Vec<Vec<u64>> = (0..lanes as u64).map(|s| pseudo(8, 97, s + 1)).collect();
        acc.load_batch(&polys).unwrap();
        acc.forward().unwrap();
        let got = acc.read_batch(lanes).unwrap();
        let t = TwiddleTable::new(&params);
        for (lane, p) in polys.iter().enumerate() {
            let mut expect = p.clone();
            ntt_in_place(&params, &t, &mut expect).unwrap();
            assert_eq!(got[lane], expect, "lane {lane}");
        }
    }

    #[test]
    fn single_tile_roundtrip() {
        let params = NttParams::new(16, 193).unwrap();
        let cfg = BpNttConfig::new(32, 64, 9, params).unwrap(); // 7 lanes of 9-bit tiles
        let mut acc = BpNtt::new(cfg).unwrap();
        let lanes = acc.config().layout().lanes();
        let polys: Vec<Vec<u64>> = (0..lanes as u64).map(|s| pseudo(16, 193, s + 9)).collect();
        acc.load_batch(&polys).unwrap();
        acc.forward().unwrap();
        acc.inverse().unwrap();
        assert_eq!(acc.read_batch(lanes).unwrap(), polys);
    }

    #[test]
    fn inverse_matches_reference() {
        let params = NttParams::new(8, 97).unwrap();
        let cfg = BpNttConfig::new(16, 32, 8, params.clone()).unwrap();
        let mut acc = BpNtt::new(cfg).unwrap();
        let polys = vec![pseudo(8, 97, 5), pseudo(8, 97, 6)];
        acc.load_batch(&polys).unwrap();
        acc.inverse().unwrap();
        let got = acc.read_batch(2).unwrap();
        let t = TwiddleTable::new(&params);
        for (lane, p) in polys.iter().enumerate() {
            let mut expect = p.clone();
            intt_in_place(&params, &t, &mut expect).unwrap();
            assert_eq!(got[lane], expect, "lane {lane}");
        }
    }

    #[test]
    fn multi_tile_forward_matches_reference() {
        // 16-point polynomial over 8 coefficients/tile → 2 tiles per
        // polynomial, 2 lanes on a 4-tile array.
        let params = NttParams::new(16, 97).unwrap();
        let cfg = BpNttConfig::new(16, 32, 8, params.clone()).unwrap();
        assert!(cfg.layout().is_multi_tile());
        assert_eq!(cfg.layout().coeffs_per_tile(), 8);
        assert_eq!(cfg.layout().lanes(), 2);
        let mut acc = BpNtt::new(cfg).unwrap();
        let polys = vec![pseudo(16, 97, 11), pseudo(16, 97, 22)];
        acc.load_batch(&polys).unwrap();
        acc.forward().unwrap();
        let got = acc.read_batch(2).unwrap();
        let t = TwiddleTable::new(&params);
        for (lane, p) in polys.iter().enumerate() {
            let mut expect = p.clone();
            ntt_in_place(&params, &t, &mut expect).unwrap();
            assert_eq!(got[lane], expect, "lane {lane}");
        }
    }

    #[test]
    fn multi_tile_roundtrip_deeper() {
        // 32-point over 8 coefficients/tile → 4 tiles per polynomial
        // (q = 193 ≡ 1 mod 64, fitting 9-bit words with headroom).
        let params = NttParams::new(32, 193).unwrap();
        let cfg = BpNttConfig::new(16, 72, 9, params).unwrap();
        assert_eq!(cfg.layout().tiles_per_poly(), 4);
        let mut acc = BpNtt::new(cfg).unwrap();
        let polys = vec![pseudo(32, 97, 31), pseudo(32, 97, 32)];
        acc.load_batch(&polys).unwrap();
        acc.forward().unwrap();
        acc.inverse().unwrap();
        assert_eq!(acc.read_batch(2).unwrap(), polys);
    }

    #[test]
    fn polymul_matches_schoolbook() {
        let params = NttParams::new(8, 97).unwrap();
        let cfg = BpNttConfig::new(32, 32, 8, params.clone()).unwrap(); // 2·8+6 ≤ 32 rows
        let mut acc = BpNtt::new(cfg).unwrap();
        let a = vec![pseudo(8, 97, 100), pseudo(8, 97, 101)];
        let b = vec![pseudo(8, 97, 200), pseudo(8, 97, 201)];
        let got = acc.polymul(&a, &b).unwrap();
        for lane in 0..2 {
            let expect = polymul_schoolbook(&params, &a[lane], &b[lane]).unwrap();
            assert_eq!(got[lane], expect, "lane {lane}");
        }
        assert_eq!(acc.cached_programs(), 4, "fwd×2 + pointwise + inverse");
    }

    #[test]
    fn load_validation() {
        let params = NttParams::new(8, 97).unwrap();
        let cfg = BpNttConfig::new(16, 32, 8, params).unwrap();
        let mut acc = BpNtt::new(cfg).unwrap();
        assert!(matches!(
            acc.load_batch(&vec![vec![0u64; 8]; 5]),
            Err(BpNttError::BatchTooLarge { .. })
        ));
        assert!(matches!(
            acc.load_batch(&[vec![0u64; 7]]),
            Err(BpNttError::WrongLength { .. })
        ));
        assert!(matches!(
            acc.load_batch(&[vec![97u64; 8]]),
            Err(BpNttError::Unreduced { .. })
        ));
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let params = NttParams::new(8, 97).unwrap();
        let cfg = BpNttConfig::new(16, 32, 8, params).unwrap();
        let mut acc = BpNtt::new(cfg).unwrap();
        acc.load_batch(&[pseudo(8, 97, 1)]).unwrap();
        acc.reset_stats();
        acc.forward().unwrap();
        let s = *acc.stats();
        assert!(s.cycles > 0);
        assert!(s.counts.binary > 0);
        assert!(s.energy_pj > 0.0);
        acc.reset_stats();
        assert_eq!(acc.stats().cycles, 0);
    }

    #[test]
    fn cached_replay_matches_uncached_emission() {
        // Same data, three engines: replay, fused emission, and strictly
        // per-instruction emission — bit-identical outputs and
        // bit-identical statistics (including the f64 energy) across all
        // three.
        for (n, q, rows, cols, bw) in [
            (8usize, 97u64, 16usize, 32usize, 8usize),
            (16, 97, 16, 32, 8),
        ] {
            let params = NttParams::new(n, q).unwrap();
            let mk =
                || BpNtt::new(BpNttConfig::new(rows, cols, bw, params.clone()).unwrap()).unwrap();
            let lanes = mk().config().layout().lanes();
            let polys: Vec<Vec<u64>> = (0..lanes as u64).map(|s| pseudo(n, q, s + 3)).collect();

            let mut replayed = mk();
            replayed.load_batch(&polys).unwrap();
            replayed.reset_stats();
            replayed.forward().unwrap();
            replayed.inverse().unwrap();

            let mut emitted = mk();
            emitted.load_batch(&polys).unwrap();
            emitted.reset_stats();
            emitted.forward_uncached().unwrap();
            emitted.inverse_uncached().unwrap();

            let mut generic = mk();
            generic.load_batch(&polys).unwrap();
            generic.reset_stats();
            generic.forward_uncached_generic().unwrap();
            generic.inverse_uncached_generic().unwrap();

            // Snapshot stats before read_batch (reads are costed).
            let (rs, es, gs) = (*replayed.stats(), *emitted.stats(), *generic.stats());
            let out_e = emitted.read_batch(lanes).unwrap();
            assert_eq!(replayed.read_batch(lanes).unwrap(), out_e, "n={n}");
            assert_eq!(out_e, generic.read_batch(lanes).unwrap(), "n={n} (generic)");
            assert_eq!(rs.cycles, es.cycles, "n={n}");
            assert_eq!(rs.counts, es.counts, "n={n}");
            assert_eq!(rs.row_loads, es.row_loads, "n={n}");
            assert_eq!(rs.energy_pj.to_bits(), es.energy_pj.to_bits(), "n={n}");
            assert_eq!(es.cycles, gs.cycles, "n={n} (generic)");
            assert_eq!(es.counts, gs.counts, "n={n} (generic)");
            assert_eq!(
                es.energy_pj.to_bits(),
                gs.energy_pj.to_bits(),
                "n={n} (generic)"
            );
            // The fused paths fired, the generic baseline never does.
            assert!(emitted.fastpath_stats().hits() > 0, "n={n}");
            assert_eq!(generic.fastpath_stats().hits(), 0, "n={n}");
        }
    }

    #[test]
    fn program_cache_fills_and_invalidates() {
        let params = NttParams::new(8, 97).unwrap();
        let cfg = BpNttConfig::new(16, 32, 8, params).unwrap();
        let mut acc = BpNtt::new(cfg).unwrap();
        assert_eq!(acc.cached_programs(), 0);
        acc.load_batch(&[pseudo(8, 97, 1)]).unwrap();
        acc.forward().unwrap();
        assert_eq!(acc.cached_programs(), 1);
        acc.forward().unwrap();
        assert_eq!(acc.cached_programs(), 1, "second call hits the cache");
        acc.inverse().unwrap();
        assert_eq!(acc.cached_programs(), 2);
        acc.set_timing_model(bpntt_sram::TimingModel::conservative());
        assert_eq!(acc.cached_programs(), 0, "stale costs are dropped");
        acc.forward().unwrap();
        assert_eq!(acc.cached_programs(), 1, "recompiled under the new model");
    }
}
