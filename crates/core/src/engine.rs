//! The BP-NTT batch execution engine.
//!
//! Ties the tile [`Layout`](crate::layout::Layout), the
//! [`Kernels`](crate::kernels::Kernels) code generator, and the SRAM
//! [`Controller`] together into the accelerator the paper evaluates:
//! load a batch of polynomials (one per lane), run the in-place forward or
//! inverse NTT schedule entirely inside the array, and read the batch
//! back. All lanes execute the same instruction stream — the SIMD
//! parallelism across tiles is where BP-NTT's throughput comes from.
//!
//! # Compile once, replay many
//!
//! The instruction stream of a schedule depends only on the configuration
//! (`NttParams` + `Layout` + cost models) — never on the loaded data. The
//! engine therefore *traces* each schedule once through a
//! [`Recorder`](bpntt_sram::Recorder) into a compiled program and replays
//! it on every subsequent call ([`BpNtt::forward`], [`BpNtt::inverse`],
//! [`BpNtt::polymul`]); replay skips code generation, twiddle Montgomery
//! conversions, per-instruction validation, and cost-model evaluation,
//! while producing bit-identical array contents and bit-identical
//! [`Stats`] to direct emission
//! (see [`BpNtt::forward_mode`] with [`ExecMode::FusedEmit`]). The
//! compiled stream runs almost entirely as fused word-engine superops —
//! multiplier chains, resolution loops, and the butterfly epilogues
//! (`CompiledProgram::fused_epilogues` counts the latter) — which the
//! `bpntt-sram` word-engine executes through runtime-dispatched AVX2
//! kernels with a bit-identical scalar fallback, register-resident for
//! rows up to four 256-bit chunks (1024 columns). The compiled programs
//! are shared — [`ShardedBpNtt`](crate::ShardedBpNtt) clones them across
//! shards behind an `Arc`.
//!
//! Every schedule executes under an explicit [`ExecMode`]: `Replay`
//! (compiled programs, the production path), `FusedEmit` (per-call code
//! generation streamed through a [`FusedSink`] into the same fused
//! word-engine executors), or `Generic` (strictly per-instruction
//! emission — the ground truth the equivalence proptests pin the other
//! two against, and the denominator of the replay-speedup trajectory).
//! The former `forward`/`forward_uncached`/`forward_uncached_generic`
//! triplicate collapsed into [`BpNtt::forward_mode`] /
//! [`BpNtt::inverse_mode`]; the deprecated `*_uncached` shim names were
//! removed with the backend HAL (see the README migration notes).
//! [`BpNtt::fastpath_stats`] reports which strategy actually executed.
//!
//! # Backends
//!
//! `BpNtt` is the execution core of both [`crate::backend`]
//! implementations: [`SimBackend`](crate::backend::SimBackend) runs it
//! with full per-instruction cost accounting (the paper's simulated
//! accelerator), while [`NativeBackend`](crate::backend::NativeBackend)
//! runs the *same* compiled programs with accounting disabled in the
//! controller — rows, fault injection, and verification behave
//! identically, [`Stats`] stays frozen, and the only honest metric is
//! wall clock.
//!
//! # Pipelines
//!
//! Whole workloads — the negacyclic product the paper's Table 3 scores,
//! NTT-domain-cached multiply-accumulate chains, scale-and-inverse —
//! compile and execute as one [`PipelineSpec`] op-graph through
//! [`BpNtt::run_pipeline`]: operands load once, every segment runs
//! in-SRAM back to back, results read once. See the
//! [`pipeline`](crate::pipeline) module docs for the spec/compile/cache
//! contract; [`BpNtt::polymul`] is a thin wrapper over the canned
//! polymul spec.

use std::collections::HashMap;
use std::sync::Arc;

use crate::config::BpNttConfig;
use crate::error::BpNttError;
use crate::kernels::Kernels;
use crate::layout::Layout;
use crate::pipeline::{
    CompiledPipeline, ConfigFingerprint, ExecMode, PipeOp, PipelineSegment, PipelineSpec,
};
use crate::verify::{Verifier, VerifyPolicy};
use bpntt_modmath::montgomery::MontCtx;
use bpntt_modmath::zq::mul_mod;
use bpntt_ntt::TwiddleTable;
use bpntt_sram::{
    BitRow, CompiledProgram, Controller, FastPathStats, FaultPlan, FaultStats, FusedSink,
    InstrSink, Instruction, PredMode, Recorder, RowAddr, ShiftDir, SramArray, Stats, UnaryKind,
};

/// Cache key for one compiled schedule. Public because the
/// [`NttBackend`](crate::backend::NttBackend) trait moves compiled
/// programs across the backend seam (`export_programs` /
/// `install_program`); construct values only through engine compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProgramKey {
    /// Forward NTT over the coefficient region based at `base`.
    Forward {
        /// First row of the coefficient region.
        base: u16,
    },
    /// Inverse NTT (with its final scaling constant, in Montgomery form)
    /// over the region based at `base`.
    Inverse {
        /// First row of the coefficient region.
        base: u16,
        /// The folded final scaling constant, in Montgomery form.
        scale_mont: u64,
    },
    /// Pointwise products `a_j ← â_j · b̂_j · R⁻¹` over two regions.
    Pointwise {
        /// First row of the destination (and left operand) region.
        a_base: u16,
        /// First row of the right operand region.
        b_base: u16,
    },
    /// Constant scaling `a_j ← a_j · c` over one region (`factor_mont` is
    /// `c·R mod q`). Emitted for [`PipeOp::ScaleBy`](crate::PipeOp) and
    /// for pipeline Montgomery-debt compensation segments.
    Scale {
        /// First row of the scaled region.
        base: u16,
        /// The scaling constant `c·R mod q`.
        factor_mont: u64,
    },
}

/// The BP-NTT accelerator instance.
///
/// # Example
///
/// ```
/// use bpntt_core::{BpNtt, BpNttConfig};
/// use bpntt_ntt::NttParams;
///
/// // Four 8-bit lanes of an 8-point NTT on a tiny 16×32 array.
/// let cfg = BpNttConfig::new(16, 32, 8, NttParams::new(8, 97)?)?;
/// let mut acc = BpNtt::new(cfg)?;
/// let polys = vec![vec![1u64, 2, 3, 4, 5, 6, 7, 8]; 4];
/// acc.load_batch(&polys)?;
/// acc.forward()?;
/// acc.inverse()?;
/// assert_eq!(acc.read_batch(4)?, polys); // roundtrip
/// # Ok::<(), bpntt_core::BpNttError>(())
/// ```
#[derive(Debug)]
pub struct BpNtt {
    config: BpNttConfig,
    twiddles: TwiddleTable,
    mont: MontCtx,
    kernels: Kernels,
    ctl: Controller,
    programs: HashMap<ProgramKey, Arc<CompiledProgram>>,
    pipelines: HashMap<PipelineSpec, Arc<CompiledPipeline>>,
    /// How pipeline outputs are checked before being returned (the
    /// *detect* rung of the recovery ladder; default [`VerifyPolicy::Off`]).
    verify: VerifyPolicy,
    /// Lazily built software verifier (one reference transform at
    /// construction); present once an active policy has been set.
    verifier: Option<Verifier>,
    /// Seed stream for spot-check sampling: bumped per verified run so a
    /// retry probes fresh points.
    verify_nonce: u64,
    /// Wall-clock seconds spent verifying since the last
    /// [`Self::take_verify_secs`].
    verify_secs: f64,
}

/// Emits complete NTT schedules into any [`InstrSink`]: a live controller
/// (the uncached path) or a recorder (program compilation). Borrows only
/// the engine's read-only state so the controller can be the sink.
struct Emitter<'a> {
    kernels: &'a Kernels,
    layout: &'a Layout,
    twiddles: &'a TwiddleTable,
    mont: &'a MontCtx,
    n: usize,
}

impl<'a> Emitter<'a> {
    /// Builds the emitter from the engine's read-only state. Takes the
    /// fields individually (not `&BpNtt`) so the borrows stay disjoint
    /// from the controller — an emitter can drive a sink that mutably
    /// borrows `self.ctl`.
    fn of(
        kernels: &'a Kernels,
        config: &'a BpNttConfig,
        twiddles: &'a TwiddleTable,
        mont: &'a MontCtx,
    ) -> Self {
        Emitter {
            kernels,
            layout: config.layout(),
            twiddles,
            mont,
            n: config.params().n(),
        }
    }

    fn forward_region<S: InstrSink>(&self, sink: &mut S, base: usize) -> Result<(), BpNttError> {
        let layout = self.layout;
        let n = self.n;
        if !layout.is_multi_tile() {
            // One polynomial per tile: every lane shares the compile-time
            // twiddle schedule (the multiplier lives in the control flow).
            let mut k = 0usize;
            let mut len = n / 2;
            while len > 0 {
                let mut idx = 0;
                while idx < n {
                    k += 1;
                    let z = self.mont.to_mont(self.twiddles.zetas()[k]);
                    for j in idx..idx + len {
                        let lo = RowAddr((base + j) as u16);
                        let hi = RowAddr((base + j + len) as u16);
                        self.kernels.ct_butterfly_const(sink, lo, hi, z)?;
                    }
                    idx += 2 * len;
                }
                len /= 2;
            }
            return Ok(());
        }
        // Multi-tile: one polynomial spans tiles; twiddles differ per tile
        // and are delivered through the twiddle row (data-driven path).
        let cpt = layout.coeffs_per_tile();
        let mut len = n / 2;
        while len > 0 {
            if len >= cpt {
                let d = len / cpt;
                for r in 0..cpt {
                    self.load_twiddle_row(sink, len, r, false)?;
                    self.cross_tile_ct(sink, r, d)?;
                }
            } else {
                let mut idx = 0;
                while idx < cpt {
                    self.load_twiddle_row(sink, len, idx, false)?;
                    for r in idx..idx + len {
                        let lo = layout.offset_row(r);
                        let hi = layout.offset_row(r + len);
                        self.kernels.ct_butterfly_data(sink, lo, hi)?;
                    }
                    idx += 2 * len;
                }
            }
            len /= 2;
        }
        Ok(())
    }

    fn inverse_region<S: InstrSink>(
        &self,
        sink: &mut S,
        base: usize,
        scale_mont: u64,
    ) -> Result<(), BpNttError> {
        let layout = self.layout;
        let n = self.n;
        if !layout.is_multi_tile() {
            let mut len = 1;
            while len < n {
                let k_base = n / (2 * len);
                let mut idx = 0;
                let mut b = 0;
                while idx < n {
                    let zi = self.mont.to_mont(self.twiddles.inv_zetas()[k_base + b]);
                    for j in idx..idx + len {
                        let lo = RowAddr((base + j) as u16);
                        let hi = RowAddr((base + j + len) as u16);
                        self.kernels.gs_butterfly_const(sink, lo, hi, zi)?;
                    }
                    idx += 2 * len;
                    b += 1;
                }
                len *= 2;
            }
            for j in 0..n {
                self.kernels
                    .scale_const(sink, RowAddr((base + j) as u16), scale_mont)?;
            }
            return Ok(());
        }
        let cpt = layout.coeffs_per_tile();
        let mut len = 1;
        while len < n {
            if len >= cpt {
                let d = len / cpt;
                for r in 0..cpt {
                    self.load_twiddle_row(sink, len, r, true)?;
                    self.cross_tile_gs(sink, r, d)?;
                }
            } else {
                let mut idx = 0;
                while idx < cpt {
                    self.load_twiddle_row(sink, len, idx, true)?;
                    for r in idx..idx + len {
                        let lo = layout.offset_row(r);
                        let hi = layout.offset_row(r + len);
                        self.kernels.gs_butterfly_data(sink, lo, hi)?;
                    }
                    idx += 2 * len;
                }
            }
            len *= 2;
        }
        for r in 0..cpt {
            self.kernels
                .scale_const(sink, layout.offset_row(r), scale_mont)?;
        }
        Ok(())
    }

    /// Fills the twiddle row: tile `t` receives the (Montgomery-scaled)
    /// twiddle of the butterfly block that its coefficient at offset `r`
    /// belongs to at stage `len`. The row image depends only on the
    /// parameters and layout, so it records as a compile-time constant.
    fn load_twiddle_row<S: InstrSink>(
        &self,
        sink: &mut S,
        len: usize,
        r: usize,
        inverse: bool,
    ) -> Result<(), BpNttError> {
        let layout = self.layout;
        let tw_row = layout
            .rowmap()
            .twiddle
            .expect("multi-tile layouts have a twiddle row");
        let bw = layout.bitwidth();
        let cpt = layout.coeffs_per_tile();
        let tpp = layout.tiles_per_poly();
        let k_base = self.n / (2 * len);
        let mut row = BitRow::zero(layout.active_cols());
        for t in 0..layout.n_tiles() {
            let g = t % tpp;
            let j = g * cpt + r;
            let block = j / (2 * len);
            let k = k_base + block;
            let z = if inverse {
                self.twiddles.inv_zetas()[k]
            } else {
                self.twiddles.zetas()[k]
            };
            row.set_tile_word(t, bw, self.mont.to_mont(z));
        }
        sink.load_row(tw_row, &row)?;
        Ok(())
    }

    /// Cross-tile Cooley–Tukey butterfly on coefficient row `r`: partners
    /// sit `d` tiles apart in the *same* physical row, so the partner word
    /// is staged through `d·w` one-bit shifts — the Fig. 8(b) overhead.
    fn cross_tile_ct<S: InstrSink>(
        &self,
        sink: &mut S,
        r: usize,
        d: usize,
    ) -> Result<(), BpNttError> {
        let rm = *self.layout.rowmap();
        let scratch = rm.scratch.expect("multi-tile layouts have a scratch row");
        let row_r = self.layout.offset_row(r);
        let stride_log2 = d.trailing_zeros() as u8;
        // Stage partner words: tile t sees tile t+d's coefficient.
        self.kernels
            .move_tiles(sink, scratch, row_r, d, ShiftDir::Right)?;
        // t = ζ · partner (valid in the low-half tiles).
        self.kernels
            .modmul_data(sink, scratch, rm.twiddle.expect("twiddle row"))?;
        self.kernels.finish_modmul(sink)?;
        // new_hi = a[lo] − t (computed everywhere, consumed from low tiles).
        self.kernels.sub_mod(sink, scratch, row_r, rm.sum, None)?;
        // a[lo] ← a[lo] + t, only in the low-half tiles.
        self.kernels
            .add_mod(sink, row_r, row_r, rm.sum, Some((stride_log2, false)))?;
        // Ship new_hi to the high-half tiles.
        self.kernels
            .move_tiles(sink, scratch, scratch, d, ShiftDir::Left)?;
        sink.emit(Instruction::MaskTiles {
            stride_log2,
            phase: true,
        })?;
        sink.emit(Instruction::Unary {
            dst: row_r,
            src: scratch,
            kind: UnaryKind::Copy,
            pred: PredMode::Always,
        })?;
        sink.emit(Instruction::MaskAll)?;
        Ok(())
    }

    /// Cross-tile Gentleman–Sande butterfly on coefficient row `r`.
    fn cross_tile_gs<S: InstrSink>(
        &self,
        sink: &mut S,
        r: usize,
        d: usize,
    ) -> Result<(), BpNttError> {
        let rm = *self.layout.rowmap();
        let scratch = rm.scratch.expect("multi-tile layouts have a scratch row");
        let row_r = self.layout.offset_row(r);
        let stride_log2 = d.trailing_zeros() as u8;
        self.kernels
            .move_tiles(sink, scratch, row_r, d, ShiftDir::Right)?;
        // Sum ← u − v; a[lo] ← u + v (low tiles only).
        self.kernels.sub_mod(sink, rm.sum, row_r, scratch, None)?;
        self.kernels
            .add_mod(sink, row_r, row_r, scratch, Some((stride_log2, false)))?;
        // hi ← ζ⁻¹ (u − v), staged through scratch.
        sink.emit(Instruction::Unary {
            dst: scratch,
            src: rm.sum,
            kind: UnaryKind::Copy,
            pred: PredMode::Always,
        })?;
        self.kernels
            .modmul_data(sink, scratch, rm.twiddle.expect("twiddle row"))?;
        self.kernels.finish_modmul(sink)?;
        sink.emit(Instruction::Unary {
            dst: scratch,
            src: rm.sum,
            kind: UnaryKind::Copy,
            pred: PredMode::Always,
        })?;
        self.kernels
            .move_tiles(sink, scratch, scratch, d, ShiftDir::Left)?;
        sink.emit(Instruction::MaskTiles {
            stride_log2,
            phase: true,
        })?;
        sink.emit(Instruction::Unary {
            dst: row_r,
            src: scratch,
            kind: UnaryKind::Copy,
            pred: PredMode::Always,
        })?;
        sink.emit(Instruction::MaskAll)?;
        Ok(())
    }

    /// Pointwise products: `a_j ← â_j · b̂_j · R⁻¹` for every coefficient
    /// row of the two operand regions.
    fn pointwise<S: InstrSink>(
        &self,
        sink: &mut S,
        a_base: usize,
        b_base: usize,
    ) -> Result<(), BpNttError> {
        for j in 0..self.n {
            let a_row = RowAddr((a_base + j) as u16);
            let b_row = RowAddr((b_base + j) as u16);
            self.kernels.modmul_data(sink, a_row, b_row)?;
            self.kernels.finish_modmul(sink)?;
            sink.emit(Instruction::Unary {
                dst: a_row,
                src: self.layout.rowmap().sum,
                kind: UnaryKind::Copy,
                pred: PredMode::Always,
            })?;
        }
        Ok(())
    }

    /// Constant scaling `a_j ← a_j · c` (with `c` in Montgomery form)
    /// over every coefficient row of one region.
    fn scale_region<S: InstrSink>(
        &self,
        sink: &mut S,
        base: usize,
        factor_mont: u64,
    ) -> Result<(), BpNttError> {
        if self.layout.is_multi_tile() {
            for r in 0..self.layout.coeffs_per_tile() {
                self.kernels
                    .scale_const(sink, self.layout.offset_row(r), factor_mont)?;
            }
            return Ok(());
        }
        for j in 0..self.n {
            self.kernels
                .scale_const(sink, RowAddr((base + j) as u16), factor_mont)?;
        }
        Ok(())
    }

    /// Emits the schedule identified by `key`.
    fn emit_key<S: InstrSink>(&self, sink: &mut S, key: ProgramKey) -> Result<(), BpNttError> {
        match key {
            ProgramKey::Forward { base } => self.forward_region(sink, usize::from(base)),
            ProgramKey::Inverse { base, scale_mont } => {
                self.inverse_region(sink, usize::from(base), scale_mont)
            }
            ProgramKey::Pointwise { a_base, b_base } => {
                self.pointwise(sink, usize::from(a_base), usize::from(b_base))
            }
            ProgramKey::Scale { base, factor_mont } => {
                self.scale_region(sink, usize::from(base), factor_mont)
            }
        }
    }
}

impl BpNtt {
    /// Builds the accelerator: allocates the (simulated) array, installs
    /// the constant rows (`M` and `2^w − M`), and precomputes twiddles.
    ///
    /// # Errors
    ///
    /// Propagates configuration and simulator construction failures.
    pub fn new(config: BpNttConfig) -> Result<Self, BpNttError> {
        Self::new_inner(config, true)
    }

    /// Builds the engine with cost accounting disabled in the controller:
    /// the [`NativeBackend`](crate::backend::NativeBackend) constructor.
    /// Rows, fault hooks, and verification behave identically; [`Stats`]
    /// stays zero for the engine's whole lifetime (including the
    /// constant-row setup below).
    pub(crate) fn new_native(config: BpNttConfig) -> Result<Self, BpNttError> {
        Self::new_inner(config, false)
    }

    fn new_inner(config: BpNttConfig, costed: bool) -> Result<Self, BpNttError> {
        let layout = config.layout().clone();
        let q = config.params().modulus();
        let bw = config.bitwidth();
        let array = SramArray::new(config.rows(), layout.active_cols())?;
        let mut ctl = Controller::new(array, bw)?;
        ctl.set_cost_accounting(costed);
        let mont = MontCtx::new(q, bw as u32)?;
        let kernels = Kernels::new(*layout.rowmap(), q, bw);
        let twiddles = TwiddleTable::new(config.params());
        // Install the constant rows (uncosted one-time setup would be
        // unfair: count them as ordinary row loads).
        let n_tiles = layout.n_tiles();
        let mut m_row = BitRow::zero(layout.active_cols());
        let mut comp_row = BitRow::zero(layout.active_cols());
        let mask = if bw == 64 { u64::MAX } else { (1u64 << bw) - 1 };
        for t in 0..n_tiles {
            m_row.set_tile_word(t, bw, q);
            comp_row.set_tile_word(t, bw, q.wrapping_neg() & mask);
        }
        ctl.load_data_row(layout.rowmap().modulus.index(), m_row);
        ctl.load_data_row(layout.rowmap().comp_modulus.index(), comp_row);
        Ok(BpNtt {
            config,
            twiddles,
            mont,
            kernels,
            ctl,
            programs: HashMap::new(),
            pipelines: HashMap::new(),
            verify: VerifyPolicy::Off,
            verifier: None,
            verify_nonce: 0,
            verify_secs: 0.0,
        })
    }

    /// Sets the output [`VerifyPolicy`] applied by
    /// [`Self::run_pipeline`] / [`Self::run_compiled_pipeline`]. An
    /// active policy builds the software [`Verifier`] once, up front.
    /// Verification never touches the simulator or its [`Stats`] — the
    /// replay≡emission bit-identity contract is unaffected.
    pub fn set_verify_policy(&mut self, policy: VerifyPolicy) {
        self.verify = policy;
        if policy.is_active() && self.verifier.is_none() {
            self.verifier = Some(Verifier::new(self.config.params()));
        }
    }

    /// The current output verification policy.
    #[must_use]
    pub fn verify_policy(&self) -> VerifyPolicy {
        self.verify
    }

    /// This engine's software verifier (built on demand): the reference
    /// model behind [`VerifyPolicy::Full`] and the recovery ladder's
    /// software fallback.
    pub fn verifier(&mut self) -> &Verifier {
        if self.verifier.is_none() {
            self.verifier = Some(Verifier::new(self.config.params()));
        }
        self.verifier.as_ref().expect("just built")
    }

    /// Installs a fault-injection [`FaultPlan`] on the underlying SRAM
    /// controller (see [`bpntt_sram::fault`]).
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.ctl.install_fault_plan(plan);
    }

    /// Removes any installed fault plan, returning its injection
    /// counters.
    pub fn clear_fault_plan(&mut self) -> FaultStats {
        self.ctl.clear_fault_plan()
    }

    /// Injection counters of the installed fault plan, if any.
    #[must_use]
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.ctl.fault_stats()
    }

    /// Returns and zeroes the wall-clock seconds spent verifying outputs
    /// since the last call (harvested per-chunk by the sharded engine
    /// into `verify_ms` telemetry).
    pub fn take_verify_secs(&mut self) -> f64 {
        std::mem::take(&mut self.verify_secs)
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &BpNttConfig {
        &self.config
    }

    /// Accumulated simulator statistics. With cost accounting disabled
    /// (the native backend), this stays frozen at zero.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        self.ctl.stats()
    }

    /// Whether the underlying controller runs with cost accounting
    /// (`true` for the simulated backend, `false` for native direct
    /// execution).
    #[must_use]
    pub fn cost_accounting(&self) -> bool {
        self.ctl.cost_accounting()
    }

    /// Resets the statistics (array contents are untouched). Also clears
    /// the fast-path coverage counters.
    pub fn reset_stats(&mut self) {
        self.ctl.reset_stats();
    }

    /// Word-engine fast-path coverage telemetry accumulated since the
    /// last [`Self::reset_stats`]: how many fused chains/loops/superops
    /// actually executed, and which of them ran register-resident. The
    /// observable for "the fast path silently stopped firing".
    #[must_use]
    pub fn fastpath_stats(&self) -> &FastPathStats {
        self.ctl.fastpath_stats()
    }

    /// Replaces the timing model (for sensitivity studies). Invalidates
    /// the compiled-program and compiled-pipeline caches: programs embed
    /// precomputed costs.
    pub fn set_timing_model(&mut self, t: bpntt_sram::TimingModel) {
        self.ctl.set_timing_model(t);
        self.programs.clear();
        self.pipelines.clear();
    }

    /// Number of schedules currently compiled and cached.
    #[must_use]
    pub fn cached_programs(&self) -> usize {
        self.programs.len()
    }

    /// Number of pipelines currently compiled and cached.
    #[must_use]
    pub fn cached_pipelines(&self) -> usize {
        self.pipelines.len()
    }

    /// Uncosted debug view of one physical array row (delegates to the
    /// controller; used by equivalence tests to compare *all* state, not
    /// just the coefficient region).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn peek_row(&self, r: usize) -> &BitRow {
        self.ctl.peek_row(r)
    }

    fn n(&self) -> usize {
        self.config.params().n()
    }

    fn q(&self) -> u64 {
        self.config.params().modulus()
    }

    /// Returns the compiled program for `key`, tracing and compiling it on
    /// first use.
    pub(crate) fn program(&mut self, key: ProgramKey) -> Result<Arc<CompiledProgram>, BpNttError> {
        if let Some(p) = self.programs.get(&key) {
            return Ok(Arc::clone(p));
        }
        let mut rec = Recorder::new();
        Emitter::of(&self.kernels, &self.config, &self.twiddles, &self.mont)
            .emit_key(&mut rec, key)?;
        let compiled = Arc::new(rec.finish().compile(&self.ctl)?);
        self.programs.insert(key, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// Installs an externally compiled program (used by
    /// [`ShardedBpNtt`](crate::ShardedBpNtt) to share one compilation
    /// across identically configured shards).
    pub(crate) fn install_program(&mut self, key: ProgramKey, prog: Arc<CompiledProgram>) {
        self.programs.insert(key, prog);
    }

    /// The key of the standalone forward-NTT program (coefficient region
    /// based at row 0) — the schedule [`Self::forward_mode`] runs.
    /// (Named-key warm-up arrays for batch paths are gone: shards and
    /// tenants now warm whole [`PipelineSpec`]s through
    /// [`Self::compile_pipeline`], whose segment keys are derived, not
    /// hand-listed.)
    pub(crate) fn forward_program_key(&self) -> ProgramKey {
        ProgramKey::Forward { base: 0 }
    }

    /// Every compiled program currently cached, as `(key, Arc)` pairs (the
    /// service layer harvests these into its cross-tenant program cache).
    pub(crate) fn export_programs(&self) -> Vec<(ProgramKey, Arc<CompiledProgram>)> {
        self.programs
            .iter()
            .map(|(k, p)| (*k, Arc::clone(p)))
            .collect()
    }

    /// The compiled forward-NTT program for this configuration (compiling
    /// it on first use). Exposed for benchmarks and sharding.
    ///
    /// # Errors
    ///
    /// Propagates trace/compile failures.
    pub fn compiled_forward(&mut self) -> Result<Arc<CompiledProgram>, BpNttError> {
        self.program(ProgramKey::Forward { base: 0 })
    }

    /// The compiled inverse-NTT program (with the standard `N⁻¹` scaling).
    ///
    /// # Errors
    ///
    /// Propagates trace/compile failures.
    pub fn compiled_inverse(&mut self) -> Result<Arc<CompiledProgram>, BpNttError> {
        let scale = self.mont.to_mont(self.config.params().n_inv());
        self.program(ProgramKey::Inverse {
            base: 0,
            scale_mont: scale,
        })
    }

    /// Loads `polys` (one polynomial per lane, natural order) into the
    /// array starting at coefficient row 0. Unused lanes are zeroed.
    ///
    /// # Errors
    ///
    /// Rejects oversized batches, wrong lengths, and unreduced
    /// coefficients.
    pub fn load_batch(&mut self, polys: &[Vec<u64>]) -> Result<(), BpNttError> {
        self.load_batch_at(0, polys)
    }

    /// Loads a batch with coefficient rows based at `base` (used by
    /// [`Self::polymul`] to hold two operands).
    fn load_batch_at(&mut self, base: usize, polys: &[Vec<u64>]) -> Result<(), BpNttError> {
        let layout = self.config.layout().clone();
        let n = self.n();
        let q = self.q();
        if polys.len() > layout.lanes() {
            return Err(BpNttError::BatchTooLarge {
                batch: polys.len(),
                lanes: layout.lanes(),
            });
        }
        for (lane, p) in polys.iter().enumerate() {
            if p.len() != n {
                return Err(BpNttError::WrongLength {
                    expected: n,
                    actual: p.len(),
                });
            }
            if let Some((index, &value)) = p.iter().enumerate().find(|(_, &v)| v >= q) {
                return Err(BpNttError::Unreduced { lane, index, value });
            }
        }
        let bw = layout.bitwidth();
        let cpt = layout.coeffs_per_tile();
        let tpp = layout.tiles_per_poly();
        for r in 0..cpt {
            let mut row = BitRow::zero(layout.active_cols());
            for t in 0..layout.n_tiles() {
                let lane = t / tpp;
                let g = t % tpp;
                let j = g * cpt + r;
                let v = if lane < polys.len() && j < n {
                    polys[lane][j]
                } else {
                    0
                };
                row.set_tile_word(t, bw, v);
            }
            self.ctl.load_data_row(base + r, row);
        }
        Ok(())
    }

    /// Reads `batch` polynomials back out of the array (coefficient rows
    /// based at row 0).
    ///
    /// # Errors
    ///
    /// Rejects `batch` larger than the lane count.
    pub fn read_batch(&mut self, batch: usize) -> Result<Vec<Vec<u64>>, BpNttError> {
        self.read_batch_at(0, batch)
    }

    fn read_batch_at(&mut self, base: usize, batch: usize) -> Result<Vec<Vec<u64>>, BpNttError> {
        let layout = self.config.layout().clone();
        if batch > layout.lanes() {
            return Err(BpNttError::BatchTooLarge {
                batch,
                lanes: layout.lanes(),
            });
        }
        let n = self.n();
        let bw = layout.bitwidth();
        let cpt = layout.coeffs_per_tile();
        let tpp = layout.tiles_per_poly();
        let mut out = vec![vec![0u64; n]; batch];
        for r in 0..cpt {
            let row = self.ctl.read_data_row(base + r);
            for (lane, poly) in out.iter_mut().enumerate() {
                for g in 0..tpp {
                    let j = g * cpt + r;
                    if j < n {
                        poly[j] = row.tile_word(lane * tpp + g, bw);
                    }
                }
            }
        }
        Ok(out)
    }

    // ---- pipelines ---------------------------------------------------------

    /// `R^d mod q` — the compensation constant for `d` accumulated
    /// Montgomery debts (see the [`pipeline`](crate::pipeline) docs).
    fn r_pow(&self, d: u32) -> u64 {
        let q = self.q();
        let mut acc = 1 % q;
        for _ in 0..d {
            acc = mul_mod(acc, self.mont.r_mod_m(), q);
        }
        acc
    }

    /// Compiles (or fetches from the per-engine cache) the pipeline for
    /// `spec`: validates the op-graph against this configuration, folds
    /// the Montgomery-debt bookkeeping into the constant-scaling
    /// segments, and lowers each op to a compiled program shared through
    /// the existing program cache. See the
    /// [`pipeline`](crate::pipeline) module docs for the cache-key and
    /// segment-boundary contract.
    ///
    /// # Errors
    ///
    /// [`BpNttError::InvalidPipeline`] for graph defects,
    /// [`BpNttError::CapacityExceeded`] when the referenced slots do not
    /// fit this layout; otherwise trace/compile failures.
    pub fn compile_pipeline(
        &mut self,
        spec: &PipelineSpec,
    ) -> Result<Arc<CompiledPipeline>, BpNttError> {
        if let Some(p) = self.pipelines.get(spec) {
            return Ok(Arc::clone(p));
        }
        spec.check(self.config.layout(), self.q())?;
        let n = self.n();
        let base = |slot: u8| (usize::from(slot) * n) as u16;
        let mut debt = vec![0u32; spec.slots()];
        let mut keys: Vec<ProgramKey> = Vec::with_capacity(spec.ops().len() + 1);
        for &op in spec.ops() {
            match op {
                PipeOp::Forward { slot } => keys.push(ProgramKey::Forward { base: base(slot) }),
                PipeOp::Inverse { slot } => {
                    let d = std::mem::take(&mut debt[usize::from(slot)]);
                    let scale = mul_mod(self.config.params().n_inv(), self.r_pow(d), self.q());
                    keys.push(ProgramKey::Inverse {
                        base: base(slot),
                        scale_mont: self.mont.to_mont(scale),
                    });
                }
                PipeOp::Pointwise { dst, src } => {
                    debt[usize::from(dst)] += debt[usize::from(src)] + 1;
                    keys.push(ProgramKey::Pointwise {
                        a_base: base(dst),
                        b_base: base(src),
                    });
                }
                PipeOp::ScaleBy { slot, factor } => {
                    let d = std::mem::take(&mut debt[usize::from(slot)]);
                    let c = mul_mod(factor, self.r_pow(d), self.q());
                    keys.push(ProgramKey::Scale {
                        base: base(slot),
                        factor_mont: self.mont.to_mont(c),
                    });
                }
            }
        }
        // Residual debt on the output slot gets one appended compensation
        // segment, so pipeline outputs always live in the plain domain.
        if let Some(out) = spec.output_slot() {
            let d = debt[usize::from(out)];
            if d > 0 {
                keys.push(ProgramKey::Scale {
                    base: base(out),
                    factor_mont: self.mont.to_mont(self.r_pow(d)),
                });
            }
        }
        let mut segments = Vec::with_capacity(keys.len());
        for key in keys {
            segments.push(PipelineSegment {
                key,
                program: self.program(key)?,
            });
        }
        let pipe = Arc::new(CompiledPipeline {
            spec: spec.clone(),
            segments,
            fingerprint: ConfigFingerprint::of(&self.config),
        });
        self.pipelines.insert(spec.clone(), Arc::clone(&pipe));
        Ok(pipe)
    }

    /// Installs an externally compiled pipeline (and its segment
    /// programs) into this engine's caches — the sharded/service share
    /// path: one compilation, every shard and every identically
    /// configured tenant replays it.
    pub(crate) fn install_pipeline(&mut self, pipe: &Arc<CompiledPipeline>) {
        for (key, prog) in pipe.export_segments() {
            self.programs.insert(key, prog);
        }
        self.pipelines.insert(pipe.spec().clone(), Arc::clone(pipe));
    }

    /// Whether `spec` is already compiled in this engine's cache.
    pub(crate) fn has_pipeline(&self, spec: &PipelineSpec) -> bool {
        self.pipelines.contains_key(spec)
    }

    /// Runs one schedule under an execution mode: replay the cached
    /// compiled program, emit through the fused executors, or emit
    /// strictly per-instruction.
    fn run_key(&mut self, key: ProgramKey, mode: ExecMode) -> Result<(), BpNttError> {
        match mode {
            ExecMode::Replay => {
                let prog = self.program(key)?;
                self.ctl.run_compiled(&prog)?;
                Ok(())
            }
            ExecMode::FusedEmit => {
                let em = Emitter::of(&self.kernels, &self.config, &self.twiddles, &self.mont);
                let mut sink = FusedSink::new(&mut self.ctl);
                em.emit_key(&mut sink, key)?;
                sink.finish()?;
                Ok(())
            }
            ExecMode::Generic => {
                let em = Emitter::of(&self.kernels, &self.config, &self.twiddles, &self.mont);
                em.emit_key(&mut self.ctl, key)
            }
        }
    }

    /// Runs one compiled segment; replay uses the segment's own `Arc` so
    /// the hot path never touches the cache map.
    fn run_segment(&mut self, seg: &PipelineSegment, mode: ExecMode) -> Result<(), BpNttError> {
        if let ExecMode::Replay = mode {
            self.ctl.run_compiled(&seg.program)?;
            return Ok(());
        }
        self.run_key(seg.key, mode)
    }

    /// Compiles `spec` (cached) and executes it on `inputs`: one batch
    /// per declared input slot, loaded once before the first segment; the
    /// whole op-graph then runs in-SRAM with **no intermediate
    /// `load_batch`/`read_batch` round-trips**, and the output slot is
    /// read once at the end. The batch size is the largest input batch;
    /// loading a slot zeroes its lanes beyond the supplied batch (the
    /// same discipline as [`Self::load_batch`]), while slots *not*
    /// declared as inputs are left untouched — that is where a resident
    /// spectrum survives between pipelines. A spec with no inputs reads
    /// back every lane.
    ///
    /// # Errors
    ///
    /// Compilation failures (see [`Self::compile_pipeline`]),
    /// [`BpNttError::InvalidPipeline`] when `inputs` does not match the
    /// spec's declared input slots, and load/validation/simulator
    /// failures.
    pub fn run_pipeline(
        &mut self,
        spec: &PipelineSpec,
        mode: ExecMode,
        inputs: &[&[Vec<u64>]],
    ) -> Result<Vec<Vec<u64>>, BpNttError> {
        let pipe = self.compile_pipeline(spec)?;
        self.run_compiled_pipeline(&pipe, mode, inputs)
    }

    /// Executes an already compiled pipeline (the sharded hot path); see
    /// [`Self::run_pipeline`].
    ///
    /// # Errors
    ///
    /// As [`Self::run_pipeline`], minus compilation; additionally
    /// [`BpNttError::InvalidPipeline`] when the pipeline was compiled
    /// for a different configuration (compiled programs embed absolute
    /// row addresses and tile geometry, so they are only valid on an
    /// identically configured engine).
    pub fn run_compiled_pipeline(
        &mut self,
        pipe: &CompiledPipeline,
        mode: ExecMode,
        inputs: &[&[Vec<u64>]],
    ) -> Result<Vec<Vec<u64>>, BpNttError> {
        let fp = ConfigFingerprint::of(&self.config);
        if pipe.fingerprint != fp {
            return Err(BpNttError::InvalidPipeline {
                reason: format!(
                    "pipeline was compiled for a different configuration \
                     ({}x{} cols, {}-bit, n={}, q={}) than this engine \
                     ({}x{} cols, {}-bit, n={}, q={})",
                    pipe.fingerprint.rows,
                    pipe.fingerprint.cols,
                    pipe.fingerprint.bitwidth,
                    pipe.fingerprint.n,
                    pipe.fingerprint.q,
                    fp.rows,
                    fp.cols,
                    fp.bitwidth,
                    fp.n,
                    fp.q
                ),
            });
        }
        let spec = pipe.spec();
        if inputs.len() != spec.input_slots().len() {
            return Err(BpNttError::InvalidPipeline {
                reason: format!(
                    "spec declares {} input slot(s) but {} batch(es) were supplied",
                    spec.input_slots().len(),
                    inputs.len()
                ),
            });
        }
        let n = pipe.n();
        let mut batch = 0usize;
        for (&slot, polys) in spec.input_slots().iter().zip(inputs) {
            batch = batch.max(polys.len());
            self.load_batch_at(usize::from(slot) * n, polys)?;
        }
        if inputs.is_empty() {
            batch = self.config.layout().lanes();
        }
        for seg in &pipe.segments {
            self.run_segment(seg, mode)?;
        }
        let out = match spec.output_slot() {
            Some(slot) => self.read_batch_at(usize::from(slot) * n, batch)?,
            None => Vec::new(),
        };
        if self.verify.is_active() && spec.output_slot().is_some() {
            let t0 = std::time::Instant::now();
            let seed = self.verify_nonce;
            self.verify_nonce = self.verify_nonce.wrapping_add(1);
            let verifier = self.verifier.as_ref().expect("built when policy was set");
            let res = verifier.check(spec, inputs, &out, self.verify, seed);
            self.verify_secs += t0.elapsed().as_secs_f64();
            res?;
        }
        Ok(out)
    }

    // ---- schedules ---------------------------------------------------------

    /// Runs the in-place forward NTT (paper Algorithm 1) on the loaded
    /// batch: natural order in, bit-reversed order out. Replays the cached
    /// compiled program (tracing it on first call); equivalent to
    /// [`Self::forward_mode`] with [`ExecMode::Replay`].
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn forward(&mut self) -> Result<(), BpNttError> {
        self.forward_mode(ExecMode::Replay)
    }

    /// Forward NTT under an explicit [`ExecMode`] — the single
    /// implementation behind the former `forward` /
    /// `forward_uncached` / `forward_uncached_generic` triplicate.
    /// All three modes produce bit-identical rows and bit-identical
    /// [`Stats`] (enforced by the equivalence proptests); they differ
    /// only in how the instruction stream is produced and executed.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn forward_mode(&mut self, mode: ExecMode) -> Result<(), BpNttError> {
        self.run_key(self.forward_program_key(), mode)
    }

    /// Runs the in-place inverse NTT: bit-reversed order in, natural order
    /// out, including the final `N⁻¹` scaling. Replays the cached compiled
    /// program (tracing it on first call); equivalent to
    /// [`Self::inverse_mode`] with [`ExecMode::Replay`].
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn inverse(&mut self) -> Result<(), BpNttError> {
        self.inverse_mode(ExecMode::Replay)
    }

    /// Inverse NTT under an explicit [`ExecMode`]; see
    /// [`Self::forward_mode`].
    ///
    /// # Errors
    ///
    /// Propagates simulator faults.
    pub fn inverse_mode(&mut self, mode: ExecMode) -> Result<(), BpNttError> {
        let scale = self.mont.to_mont(self.config.params().n_inv());
        self.run_key(
            ProgramKey::Inverse {
                base: 0,
                scale_mont: scale,
            },
            mode,
        )
    }

    /// Full negacyclic polynomial multiplication on the accelerator:
    /// a thin wrapper over [`Self::run_pipeline`] with the canned
    /// [`PipelineSpec::polymul`] graph (forward both operands, pointwise
    /// with the data-driven multiplier, debt-folded scaled inverse),
    /// replaying cached compiled programs.
    ///
    /// Requires a single-tile layout with room for both operands
    /// (`2N + 6` rows).
    ///
    /// # Errors
    ///
    /// [`BpNttError::CapacityExceeded`] when the operands do not fit;
    /// otherwise propagates load/validation/simulator failures.
    pub fn polymul(&mut self, a: &[Vec<u64>], b: &[Vec<u64>]) -> Result<Vec<Vec<u64>>, BpNttError> {
        self.run_pipeline(&PipelineSpec::polymul(), ExecMode::Replay, &[a, b])
    }

    /// The retained pre-pipeline `polymul` implementation: loads both
    /// operands, derives the four program keys by hand (including the
    /// `n⁻¹·R²` inverse-scale constant that cancels the pointwise step's
    /// `R⁻¹`), and replays them back to back. Kept verbatim as the
    /// ground truth the pipeline≡legacy equivalence proptests pin
    /// [`Self::run_pipeline`] against, and as the baseline of the
    /// `pipeline_polymul_ms` bench column — not part of the supported
    /// API surface.
    ///
    /// # Errors
    ///
    /// As [`Self::polymul`].
    #[doc(hidden)]
    pub fn polymul_legacy(
        &mut self,
        a: &[Vec<u64>],
        b: &[Vec<u64>],
    ) -> Result<Vec<Vec<u64>>, BpNttError> {
        let layout = self.config.layout().clone();
        let n = self.n();
        if layout.is_multi_tile() || 2 * n + layout.reserved_rows() > self.config.rows() {
            return Err(BpNttError::CapacityExceeded {
                n: 2 * n,
                capacity: self.config.rows().saturating_sub(layout.reserved_rows()),
            });
        }
        let batch = a.len().max(b.len());
        self.load_batch_at(0, a)?;
        self.load_batch_at(n, b)?;
        let fwd_a = self.program(ProgramKey::Forward { base: 0 })?;
        let fwd_b = self.program(ProgramKey::Forward { base: n as u16 })?;
        // Pointwise: c_j = â_j · b̂_j · R⁻¹ (the stray R⁻¹ is absorbed by
        // the inverse transform's scaling constant below).
        let pointwise = self.program(ProgramKey::Pointwise {
            a_base: 0,
            b_base: n as u16,
        })?;
        // Scale constant n⁻¹·R² : output = x · n⁻¹ · R, cancelling the R⁻¹
        // introduced by the pointwise step.
        let q = self.q();
        let n_inv_r2 = self.mont.to_mont(mul_mod(
            self.config.params().n_inv(),
            self.mont.r_mod_m(),
            q,
        ));
        let inv = self.program(ProgramKey::Inverse {
            base: 0,
            scale_mont: n_inv_r2,
        })?;
        self.ctl.run_compiled(&fwd_a)?;
        self.ctl.run_compiled(&fwd_b)?;
        self.ctl.run_compiled(&pointwise)?;
        self.ctl.run_compiled(&inv)?;
        self.read_batch_at(0, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpntt_ntt::forward::ntt_in_place;
    use bpntt_ntt::inverse::intt_in_place;
    use bpntt_ntt::polymul::polymul_schoolbook;
    use bpntt_ntt::NttParams;

    fn pseudo(n: usize, q: u64, seed: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % q
            })
            .collect()
    }

    #[test]
    fn single_tile_forward_matches_reference() {
        let params = NttParams::new(8, 97).unwrap();
        let cfg = BpNttConfig::new(16, 32, 8, params.clone()).unwrap();
        let mut acc = BpNtt::new(cfg).unwrap();
        let lanes = acc.config().layout().lanes();
        assert_eq!(lanes, 4);
        let polys: Vec<Vec<u64>> = (0..lanes as u64).map(|s| pseudo(8, 97, s + 1)).collect();
        acc.load_batch(&polys).unwrap();
        acc.forward().unwrap();
        let got = acc.read_batch(lanes).unwrap();
        let t = TwiddleTable::new(&params);
        for (lane, p) in polys.iter().enumerate() {
            let mut expect = p.clone();
            ntt_in_place(&params, &t, &mut expect).unwrap();
            assert_eq!(got[lane], expect, "lane {lane}");
        }
    }

    #[test]
    fn single_tile_roundtrip() {
        let params = NttParams::new(16, 193).unwrap();
        let cfg = BpNttConfig::new(32, 64, 9, params).unwrap(); // 7 lanes of 9-bit tiles
        let mut acc = BpNtt::new(cfg).unwrap();
        let lanes = acc.config().layout().lanes();
        let polys: Vec<Vec<u64>> = (0..lanes as u64).map(|s| pseudo(16, 193, s + 9)).collect();
        acc.load_batch(&polys).unwrap();
        acc.forward().unwrap();
        acc.inverse().unwrap();
        assert_eq!(acc.read_batch(lanes).unwrap(), polys);
    }

    #[test]
    fn inverse_matches_reference() {
        let params = NttParams::new(8, 97).unwrap();
        let cfg = BpNttConfig::new(16, 32, 8, params.clone()).unwrap();
        let mut acc = BpNtt::new(cfg).unwrap();
        let polys = vec![pseudo(8, 97, 5), pseudo(8, 97, 6)];
        acc.load_batch(&polys).unwrap();
        acc.inverse().unwrap();
        let got = acc.read_batch(2).unwrap();
        let t = TwiddleTable::new(&params);
        for (lane, p) in polys.iter().enumerate() {
            let mut expect = p.clone();
            intt_in_place(&params, &t, &mut expect).unwrap();
            assert_eq!(got[lane], expect, "lane {lane}");
        }
    }

    #[test]
    fn multi_tile_forward_matches_reference() {
        // 16-point polynomial over 8 coefficients/tile → 2 tiles per
        // polynomial, 2 lanes on a 4-tile array.
        let params = NttParams::new(16, 97).unwrap();
        let cfg = BpNttConfig::new(16, 32, 8, params.clone()).unwrap();
        assert!(cfg.layout().is_multi_tile());
        assert_eq!(cfg.layout().coeffs_per_tile(), 8);
        assert_eq!(cfg.layout().lanes(), 2);
        let mut acc = BpNtt::new(cfg).unwrap();
        let polys = vec![pseudo(16, 97, 11), pseudo(16, 97, 22)];
        acc.load_batch(&polys).unwrap();
        acc.forward().unwrap();
        let got = acc.read_batch(2).unwrap();
        let t = TwiddleTable::new(&params);
        for (lane, p) in polys.iter().enumerate() {
            let mut expect = p.clone();
            ntt_in_place(&params, &t, &mut expect).unwrap();
            assert_eq!(got[lane], expect, "lane {lane}");
        }
    }

    #[test]
    fn multi_tile_roundtrip_deeper() {
        // 32-point over 8 coefficients/tile → 4 tiles per polynomial
        // (q = 193 ≡ 1 mod 64, fitting 9-bit words with headroom).
        let params = NttParams::new(32, 193).unwrap();
        let cfg = BpNttConfig::new(16, 72, 9, params).unwrap();
        assert_eq!(cfg.layout().tiles_per_poly(), 4);
        let mut acc = BpNtt::new(cfg).unwrap();
        let polys = vec![pseudo(32, 97, 31), pseudo(32, 97, 32)];
        acc.load_batch(&polys).unwrap();
        acc.forward().unwrap();
        acc.inverse().unwrap();
        assert_eq!(acc.read_batch(2).unwrap(), polys);
    }

    #[test]
    fn polymul_matches_schoolbook() {
        let params = NttParams::new(8, 97).unwrap();
        let cfg = BpNttConfig::new(32, 32, 8, params.clone()).unwrap(); // 2·8+6 ≤ 32 rows
        let mut acc = BpNtt::new(cfg).unwrap();
        let a = vec![pseudo(8, 97, 100), pseudo(8, 97, 101)];
        let b = vec![pseudo(8, 97, 200), pseudo(8, 97, 201)];
        let got = acc.polymul(&a, &b).unwrap();
        for lane in 0..2 {
            let expect = polymul_schoolbook(&params, &a[lane], &b[lane]).unwrap();
            assert_eq!(got[lane], expect, "lane {lane}");
        }
        assert_eq!(acc.cached_programs(), 4, "fwd×2 + pointwise + inverse");
    }

    #[test]
    fn load_validation() {
        let params = NttParams::new(8, 97).unwrap();
        let cfg = BpNttConfig::new(16, 32, 8, params).unwrap();
        let mut acc = BpNtt::new(cfg).unwrap();
        assert!(matches!(
            acc.load_batch(&vec![vec![0u64; 8]; 5]),
            Err(BpNttError::BatchTooLarge { .. })
        ));
        assert!(matches!(
            acc.load_batch(&[vec![0u64; 7]]),
            Err(BpNttError::WrongLength { .. })
        ));
        assert!(matches!(
            acc.load_batch(&[vec![97u64; 8]]),
            Err(BpNttError::Unreduced { .. })
        ));
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let params = NttParams::new(8, 97).unwrap();
        let cfg = BpNttConfig::new(16, 32, 8, params).unwrap();
        let mut acc = BpNtt::new(cfg).unwrap();
        acc.load_batch(&[pseudo(8, 97, 1)]).unwrap();
        acc.reset_stats();
        acc.forward().unwrap();
        let s = *acc.stats();
        assert!(s.cycles > 0);
        assert!(s.counts.binary > 0);
        assert!(s.energy_pj > 0.0);
        acc.reset_stats();
        assert_eq!(acc.stats().cycles, 0);
    }

    #[test]
    fn cached_replay_matches_uncached_emission() {
        // Same data, three engines: replay, fused emission, and strictly
        // per-instruction emission — bit-identical outputs and
        // bit-identical statistics (including the f64 energy) across all
        // three.
        for (n, q, rows, cols, bw) in [
            (8usize, 97u64, 16usize, 32usize, 8usize),
            (16, 97, 16, 32, 8),
        ] {
            let params = NttParams::new(n, q).unwrap();
            let mk =
                || BpNtt::new(BpNttConfig::new(rows, cols, bw, params.clone()).unwrap()).unwrap();
            let lanes = mk().config().layout().lanes();
            let polys: Vec<Vec<u64>> = (0..lanes as u64).map(|s| pseudo(n, q, s + 3)).collect();

            let mut replayed = mk();
            replayed.load_batch(&polys).unwrap();
            replayed.reset_stats();
            replayed.forward().unwrap();
            replayed.inverse().unwrap();

            let mut emitted = mk();
            emitted.load_batch(&polys).unwrap();
            emitted.reset_stats();
            emitted.forward_mode(ExecMode::FusedEmit).unwrap();
            emitted.inverse_mode(ExecMode::FusedEmit).unwrap();

            let mut generic = mk();
            generic.load_batch(&polys).unwrap();
            generic.reset_stats();
            generic.forward_mode(ExecMode::Generic).unwrap();
            generic.inverse_mode(ExecMode::Generic).unwrap();

            // Snapshot stats before read_batch (reads are costed).
            let (rs, es, gs) = (*replayed.stats(), *emitted.stats(), *generic.stats());
            let out_e = emitted.read_batch(lanes).unwrap();
            assert_eq!(replayed.read_batch(lanes).unwrap(), out_e, "n={n}");
            assert_eq!(out_e, generic.read_batch(lanes).unwrap(), "n={n} (generic)");
            assert_eq!(rs.cycles, es.cycles, "n={n}");
            assert_eq!(rs.counts, es.counts, "n={n}");
            assert_eq!(rs.row_loads, es.row_loads, "n={n}");
            assert_eq!(rs.energy_pj.to_bits(), es.energy_pj.to_bits(), "n={n}");
            assert_eq!(es.cycles, gs.cycles, "n={n} (generic)");
            assert_eq!(es.counts, gs.counts, "n={n} (generic)");
            assert_eq!(
                es.energy_pj.to_bits(),
                gs.energy_pj.to_bits(),
                "n={n} (generic)"
            );
            // The fused paths fired, the generic baseline never does.
            assert!(emitted.fastpath_stats().hits() > 0, "n={n}");
            assert_eq!(generic.fastpath_stats().hits(), 0, "n={n}");
        }
    }

    #[test]
    fn pipeline_polymul_matches_legacy_bit_for_bit() {
        // The canned polymul spec compiles to the exact four programs the
        // retained legacy implementation replays: rows and Stats
        // (including the f64 energy order) are bit-identical.
        let params = NttParams::new(8, 97).unwrap();
        let cfg = BpNttConfig::new(32, 32, 8, params).unwrap();
        let a = vec![pseudo(8, 97, 400), pseudo(8, 97, 401)];
        let b = vec![pseudo(8, 97, 500)];

        let mut legacy = BpNtt::new(cfg.clone()).unwrap();
        legacy.reset_stats();
        let legacy_out = legacy.polymul_legacy(&a, &b).unwrap();
        let ls = *legacy.stats();

        for mode in ExecMode::ALL {
            let mut piped = BpNtt::new(cfg.clone()).unwrap();
            piped.reset_stats();
            let piped_out = piped
                .run_pipeline(&PipelineSpec::polymul(), mode, &[&a, &b])
                .unwrap();
            assert_eq!(piped_out, legacy_out, "{mode:?}");
            let ps = *piped.stats();
            assert_eq!(ps.cycles, ls.cycles, "{mode:?}");
            assert_eq!(ps.counts, ls.counts, "{mode:?}");
            assert_eq!(ps.row_loads, ls.row_loads, "{mode:?}");
            assert_eq!(
                ps.energy_pj.to_bits(),
                ls.energy_pj.to_bits(),
                "{mode:?} energy order"
            );
        }
        // And the public polymul entry point is the same pipeline.
        let mut public = BpNtt::new(cfg).unwrap();
        public.reset_stats();
        assert_eq!(public.polymul(&a, &b).unwrap(), legacy_out);
        assert_eq!(public.stats().cycles, ls.cycles);
        assert_eq!(public.cached_pipelines(), 1);
        assert_eq!(public.cached_programs(), 4, "fwd×2 + pointwise + inverse");
    }

    #[test]
    fn pipeline_debt_compensation_keeps_outputs_plain() {
        // Pointwise with no following inverse: the compiler must append
        // one R^debt compensation segment so the output is the plain
        // NTT-domain product â·b̂ (not â·b̂·R⁻¹).
        let params = NttParams::new(8, 97).unwrap();
        let cfg = BpNttConfig::new(32, 32, 8, params.clone()).unwrap();
        let a = vec![pseudo(8, 97, 600)];
        let b = vec![pseudo(8, 97, 601)];
        let spec = PipelineSpec::new()
            .input(0)
            .input(1)
            .forward(0)
            .forward(1)
            .pointwise(0, 1)
            .output(0);
        let mut acc = BpNtt::new(cfg).unwrap();
        let pipe = acc.compile_pipeline(&spec).unwrap();
        assert_eq!(pipe.segments(), 4, "3 ops + 1 appended compensation");
        let got = acc
            .run_pipeline(&spec, ExecMode::Replay, &[&a, &b])
            .unwrap();
        let t = TwiddleTable::new(&params);
        let (mut ea, mut eb) = (a[0].clone(), b[0].clone());
        ntt_in_place(&params, &t, &mut ea).unwrap();
        ntt_in_place(&params, &t, &mut eb).unwrap();
        let expect: Vec<u64> = ea
            .iter()
            .zip(&eb)
            .map(|(&x, &y)| mul_mod(x, y, 97))
            .collect();
        assert_eq!(got[0], expect);
    }

    #[test]
    fn pipeline_scale_by_and_spectral_polymul() {
        let params = NttParams::new(8, 97).unwrap();
        let cfg = BpNttConfig::new(32, 32, 8, params.clone()).unwrap();
        let a = vec![pseudo(8, 97, 700)];
        // ScaleBy alone: out = 3·a.
        let spec = PipelineSpec::new().input(0).scale_by(0, 3).output(0);
        let mut acc = BpNtt::new(cfg.clone()).unwrap();
        let got = acc.run_pipeline(&spec, ExecMode::Replay, &[&a]).unwrap();
        let expect: Vec<u64> = a[0].iter().map(|&x| (x * 3) % 97).collect();
        assert_eq!(got[0], expect);

        // NTT-domain caching: transform b once (resident, no output),
        // then run pointwise+inverse products against the cached
        // spectrum — one fewer operand load and two fewer transforms per
        // product than legacy polymul.
        let b = vec![pseudo(8, 97, 701)];
        let cache_spec = PipelineSpec::new().input(1).forward(1);
        let mac_spec = PipelineSpec::new()
            .input(0)
            .forward(0)
            .pointwise(0, 1)
            .inverse(0)
            .output(0);
        let mut mac = BpNtt::new(cfg).unwrap();
        assert!(mac
            .run_pipeline(&cache_spec, ExecMode::Replay, &[&b])
            .unwrap()
            .is_empty());
        for seed in [710u64, 711, 712] {
            let ai = vec![pseudo(8, 97, seed)];
            let got = mac
                .run_pipeline(&mac_spec, ExecMode::Replay, &[&ai])
                .unwrap();
            let expect = polymul_schoolbook(&params, &ai[0], &b[0]).unwrap();
            assert_eq!(got[0], expect, "seed {seed}");
        }
    }

    #[test]
    fn pipeline_saves_load_read_roundtrips() {
        // A two-stage graph in one pipeline (load once, fwd + inv, read
        // once) vs the same workload composed from fixed op shapes
        // (read the spectrum back, reload it, inverse): the pipeline does
        // at least one fewer load and one fewer read round-trip per lane.
        let params = NttParams::new(8, 97).unwrap();
        let cfg = BpNttConfig::new(32, 32, 8, params).unwrap();
        let lanes = cfg.layout().lanes();
        let polys: Vec<Vec<u64>> = (0..lanes as u64).map(|s| pseudo(8, 97, s + 800)).collect();

        let mut piped = BpNtt::new(cfg.clone()).unwrap();
        piped.reset_stats();
        let piped_out = piped
            .run_pipeline(&PipelineSpec::roundtrip(), ExecMode::Replay, &[&polys])
            .unwrap();
        let ps = *piped.stats();

        let mut fixed = BpNtt::new(cfg).unwrap();
        fixed.reset_stats();
        fixed.load_batch(&polys).unwrap();
        fixed.forward().unwrap();
        let spectra = fixed.read_batch(lanes).unwrap();
        fixed.load_batch(&spectra).unwrap();
        fixed.inverse().unwrap();
        let fixed_out = fixed.read_batch(lanes).unwrap();
        let fs = *fixed.stats();

        assert_eq!(piped_out, fixed_out);
        let n = 8u64;
        assert!(
            ps.row_loads + n <= fs.row_loads,
            "pipeline must save ≥ one load round-trip per lane ({} vs {})",
            ps.row_loads,
            fs.row_loads
        );
        assert!(
            ps.row_stores <= fs.row_stores,
            "pipeline must not add stores"
        );
    }

    #[test]
    fn compiled_pipeline_rejects_foreign_engines() {
        // Compiled programs embed absolute row addresses: a pipeline
        // compiled on one configuration must be rejected (typed error,
        // not a panic or silent corruption) on any other.
        let params = NttParams::new(8, 97).unwrap();
        let tall = BpNttConfig::new(32, 32, 8, params.clone()).unwrap();
        let short = BpNttConfig::new(22, 32, 8, params).unwrap();
        let mut compiler = BpNtt::new(tall).unwrap();
        let pipe = compiler.compile_pipeline(&PipelineSpec::polymul()).unwrap();
        let a = vec![pseudo(8, 97, 1)];
        let mut other = BpNtt::new(short).unwrap();
        assert!(matches!(
            other.run_compiled_pipeline(&pipe, ExecMode::Replay, &[&a, &a]),
            Err(BpNttError::InvalidPipeline { .. })
        ));
    }

    #[test]
    fn pipeline_validation_is_typed() {
        let params = NttParams::new(8, 97).unwrap();
        let cfg = BpNttConfig::new(16, 32, 8, params).unwrap(); // one slot only
        let mut acc = BpNtt::new(cfg).unwrap();
        assert!(matches!(
            acc.run_pipeline(&PipelineSpec::polymul(), ExecMode::Replay, &[&[], &[]]),
            Err(BpNttError::CapacityExceeded { .. })
        ));
        assert!(matches!(
            acc.run_pipeline(&PipelineSpec::new().output(0), ExecMode::Replay, &[]),
            Err(BpNttError::InvalidPipeline { .. })
        ));
        // Batch count must match declared inputs.
        assert!(matches!(
            acc.run_pipeline(&PipelineSpec::forward_ntt(), ExecMode::Replay, &[]),
            Err(BpNttError::InvalidPipeline { .. })
        ));
    }

    #[test]
    fn program_cache_fills_and_invalidates() {
        let params = NttParams::new(8, 97).unwrap();
        let cfg = BpNttConfig::new(16, 32, 8, params).unwrap();
        let mut acc = BpNtt::new(cfg).unwrap();
        assert_eq!(acc.cached_programs(), 0);
        acc.load_batch(&[pseudo(8, 97, 1)]).unwrap();
        acc.forward().unwrap();
        assert_eq!(acc.cached_programs(), 1);
        acc.forward().unwrap();
        assert_eq!(acc.cached_programs(), 1, "second call hits the cache");
        acc.inverse().unwrap();
        assert_eq!(acc.cached_programs(), 2);
        acc.set_timing_model(bpntt_sram::TimingModel::conservative());
        assert_eq!(acc.cached_programs(), 0, "stale costs are dropped");
        acc.forward().unwrap();
        assert_eq!(acc.cached_programs(), 1, "recompiled under the new model");
    }
}
