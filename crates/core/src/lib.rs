//! The BP-NTT accelerator: bit-parallel in-SRAM number-theoretic transform.
//!
//! This crate is the reproduction of the BP-NTT paper's primary
//! contribution. It maps the Cooley–Tukey NTT (and its Gentleman–Sande
//! inverse) onto the in-SRAM computing substrate simulated by
//! [`bpntt_sram`], using:
//!
//! * a **tile-based data layout** ([`layout`]) in which every coefficient
//!   of a polynomial shares one tile's bitlines, so butterflies pick
//!   operands by row address — the paper's *implicit, costless shift*;
//! * **bit-parallel Montgomery modular multiplication** ([`kernels`],
//!   paper Algorithm 2): a carry-save formulation needing only AND/XOR/OR
//!   and one-bit shifts, with the multiplier folded into the instruction
//!   stream (compile-time twiddles) or streamed per tile from a row
//!   (pointwise products, multi-tile twiddles);
//! * a **batch engine** ([`engine`]) that runs one instruction stream over
//!   all tiles, computing up to `⌊cols / bitwidth⌋` independent NTTs at
//!   once, or one large NTT spanning several tiles (with explicit
//!   cross-tile shift costs, reproducing the scaling behaviour of the
//!   paper's Fig. 8(b)).
//!
//! # Example
//!
//! ```
//! use bpntt_core::{BpNtt, BpNttConfig};
//!
//! // The paper's design point: 16 parallel 256-point NTTs, 16-bit words.
//! let cfg = BpNttConfig::paper_256pt_16bit()?;
//! let mut acc = BpNtt::new(cfg)?;
//! let q = acc.config().params().modulus();
//! let polys: Vec<Vec<u64>> = (0..16)
//!     .map(|lane| (0..256).map(|j| (lane * 4099 + j * 7) as u64 % q).collect())
//!     .collect();
//! acc.load_batch(&polys)?;
//! acc.forward()?;
//! let spectra = acc.read_batch(16)?;
//! assert_eq!(spectra.len(), 16);
//! # Ok::<(), bpntt_core::BpNttError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod bank;
pub mod config;
pub mod engine;
pub mod error;
pub mod health;
pub mod kernels;
pub mod layout;
pub mod metrics;
pub mod pipeline;
pub mod rns;
pub mod service;
pub mod sharded;
pub mod verify;

pub use backend::{new_backend, BackendKind, BackendStats, NativeBackend, NttBackend, SimBackend};
pub use config::BpNttConfig;
pub use engine::BpNtt;
pub use error::BpNttError;
pub use health::{
    HealthCounters, HealthMonitor, HealthOptions, HealthTransition, ShardHealthState,
};
pub use kernels::Kernels;
pub use layout::{Layout, RowMap};
pub use metrics::{PerfReport, ServiceMetrics, TenantMetrics};
pub use pipeline::{CompiledPipeline, ExecMode, PipeOp, PipelineSpec};
pub use rns::{RnsContext, RnsPlanCache, RnsWaveReport};
pub use service::{
    NttService, PipelineRequest, RateLimit, RnsHandle, RnsRequest, RnsResult, RnsTicket,
    ServiceOptions, TenantId, Ticket,
};
pub use sharded::{RecoveryOptions, RecoveryReport, ScrubReport, ShardedBpNtt};
pub use verify::{Verifier, VerifyPolicy};

// The fault-injection surface of the SRAM layer, re-exported so chaos
// drills and the service's chaos knob need only this crate.
pub use bpntt_sram::{FaultPlan, FaultStats};

// The RNS vocabulary types, re-exported so `submit_rns` callers need
// only this crate.
pub use bpntt_rns::{BigUint, RnsBasis, RnsError};
