//! Accelerator configuration and validation.

use crate::error::BpNttError;
use crate::layout::Layout;
use bpntt_ntt::NttParams;
use bpntt_sram::geometry::ArrayGeometry;

/// A validated BP-NTT accelerator configuration.
///
/// Ties together the array geometry, the coefficient bit width (= tile
/// width), and the NTT parameter set. The paper's flexibility claim is that
/// all three are free knobs of the *same* hardware; this struct is where
/// the legal combinations are enforced:
///
/// * `bitwidth ∈ 2..=64` with at least one tile fitting the array;
/// * `q < 2^(bitwidth−1)` — one bit of headroom, required by the packing
///   observations of Algorithm 2 and by the MSB-based sign tests of the
///   in-place modular add/subtract (`DESIGN.md` D6);
/// * the polynomial fits the tile layout (see [`Layout`]).
///
/// # Example
///
/// ```
/// use bpntt_core::BpNttConfig;
///
/// // The paper's headline configuration: 256×256 array, 16-bit words,
/// // 256-point NTT modulo the 14-bit Falcon prime.
/// let cfg = BpNttConfig::paper_256pt_16bit()?;
/// assert_eq!(cfg.layout().lanes(), 16); // 16 NTTs in parallel
/// # Ok::<(), bpntt_core::BpNttError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BpNttConfig {
    rows: usize,
    cols: usize,
    bitwidth: usize,
    params: NttParams,
    layout: Layout,
}

impl BpNttConfig {
    /// Builds and validates a configuration.
    ///
    /// # Errors
    ///
    /// Any violated constraint documented on the type, wrapped in
    /// [`BpNttError`].
    pub fn new(
        rows: usize,
        cols: usize,
        bitwidth: usize,
        params: NttParams,
    ) -> Result<Self, BpNttError> {
        if !(2..=64).contains(&bitwidth) {
            return Err(BpNttError::InvalidBitwidth { bitwidth });
        }
        if cols < bitwidth {
            return Err(BpNttError::ArrayTooNarrow { cols, bitwidth });
        }
        let q = params.modulus();
        if bitwidth < 64 && q >= 1u64 << (bitwidth - 1) {
            return Err(BpNttError::NoHeadroom { q, bitwidth });
        }
        let layout = Layout::new(rows, cols, bitwidth, params.n())?;
        Ok(BpNttConfig {
            rows,
            cols,
            bitwidth,
            params,
            layout,
        })
    }

    /// The paper's Table I design point: a 256×256 data array **plus the
    /// six intermediate rows** (the paper's own accounting under Fig. 8(a):
    /// "a 256×256 BP-NTT design plus 6 rows for intermediate data" — 262
    /// wordlines total), 16-bit coefficients, 256-point NTT with modulus
    /// 12289 (the 14-bit prime shared with the MeNTT/ASIC baselines).
    /// Yields 16 parallel lanes, matching Table I's 258.6 kNTT/s at
    /// 61.9 µs = 16 NTTs per batch.
    ///
    /// # Errors
    ///
    /// Never fails in practice.
    pub fn paper_256pt_16bit() -> Result<Self, BpNttError> {
        Self::new(262, 256, 16, NttParams::dac_256_14bit()?)
    }

    /// The paper's 14-bit variant of the Table I point: 18 tiles of 14 bits
    /// in 256 columns (4 columns unused), modulus 7681 — the original
    /// Kyber prime, the largest common 13-bit choice that leaves the
    /// headroom bit free inside 14-bit words.
    ///
    /// # Errors
    ///
    /// Never fails in practice.
    pub fn paper_256pt_14bit() -> Result<Self, BpNttError> {
        Self::new(262, 256, 14, NttParams::new(256, 7681)?)
    }

    /// Array height in rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Physical array width in columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Coefficient (tile) width in bits.
    #[must_use]
    pub fn bitwidth(&self) -> usize {
        self.bitwidth
    }

    /// The NTT parameter set.
    #[must_use]
    pub fn params(&self) -> &NttParams {
        &self.params
    }

    /// The derived tile layout.
    #[must_use]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The physical geometry for the area/frequency models.
    #[must_use]
    pub fn geometry(&self) -> ArrayGeometry {
        ArrayGeometry {
            rows: self.rows,
            cols: self.cols,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_points_validate() {
        let c16 = BpNttConfig::paper_256pt_16bit().unwrap();
        assert_eq!(c16.layout().n_tiles(), 16);
        assert_eq!(c16.layout().lanes(), 16);
        assert!(!c16.layout().is_multi_tile());
        let c14 = BpNttConfig::paper_256pt_14bit().unwrap();
        assert_eq!(c14.layout().n_tiles(), 18, "⌊256/14⌋ tiles");
        assert_eq!(c14.layout().active_cols(), 252);
        assert_eq!(c14.layout().lanes(), 18);
        // A bare 256-row array cannot hold 256 coefficients + 6
        // intermediates in one tile: the layout falls back to spanning two
        // tiles (the paper's "excess coefficients in adjacent tiles").
        let spill = BpNttConfig::new(256, 256, 16, NttParams::dac_256_14bit().unwrap()).unwrap();
        assert!(spill.layout().is_multi_tile());
        assert_eq!(spill.layout().lanes(), 8);
    }

    #[test]
    fn headroom_is_enforced() {
        // q = 12289 is a 14-bit prime: it fits 15-bit words (one spare
        // bit) but must be rejected in 14-bit words.
        let p = NttParams::dac_256_14bit().unwrap();
        assert!(BpNttConfig::new(256, 256, 15, p.clone()).is_ok());
        assert!(matches!(
            BpNttConfig::new(256, 256, 14, p),
            Err(BpNttError::NoHeadroom { .. })
        ));
        // q = 7681 (13-bit) is the largest common choice for 14-bit words.
        let p = NttParams::new(256, 7681).unwrap();
        assert!(BpNttConfig::new(256, 256, 14, p).is_ok());
    }

    #[test]
    fn geometry_limits() {
        let p = NttParams::new(16, 97).unwrap();
        assert!(matches!(
            BpNttConfig::new(256, 4, 8, p.clone()),
            Err(BpNttError::ArrayTooNarrow { .. })
        ));
        assert!(matches!(
            BpNttConfig::new(256, 256, 1, p.clone()),
            Err(BpNttError::InvalidBitwidth { .. })
        ));
        assert!(matches!(
            BpNttConfig::new(256, 256, 65, p),
            Err(BpNttError::InvalidBitwidth { .. })
        ));
    }
}
