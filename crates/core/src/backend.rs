//! The backend HAL: one execution seam, many engines.
//!
//! [`NttBackend`] is the single trait through which every layer above the
//! engine — [`ShardedBpNtt`](crate::ShardedBpNtt) waves, the
//! [`NttService`](crate::NttService) multi-tenant front-end, benches and
//! drills — compiles and executes pipeline op-graphs. Two implementations
//! ship today:
//!
//! * [`SimBackend`] — the paper's simulated accelerator: every
//!   instruction is cost-accounted (cycles, energy, instruction mix) by
//!   the SRAM controller, producing the bit-identical [`Stats`] the
//!   equivalence proptests pin. This is the default everywhere and is
//!   behaviorally identical to the pre-HAL `BpNtt` stack.
//! * [`NativeBackend`] — direct execution: the *same* compiled programs
//!   replay through the same fused word-engine executors with cost
//!   accounting disabled in the controller, so the per-instruction
//!   cost-table reads and energy accumulation vanish from the hot loop.
//!   No `Stats`, no energy model — the only honest metric is wall clock,
//!   which is exactly the "fast as the hardware allows" number the
//!   ROADMAP north-star asks for. Rows are bit-identical to the
//!   simulator's (enforced by the backend-equivalence proptests), and
//!   fault injection keeps firing at the same instruction indices: the
//!   controller maintains a native instruction clock whose increments
//!   mirror the costed instruction count exactly, so chaos drills and the
//!   recovery ladder behave identically on both backends.
//!
//! # What is shared, what is not
//!
//! Compiled artifacts ([`CompiledProgram`], [`CompiledPipeline`]) are
//! backend-independent: both backends keep the default timing/energy
//! models at compile time, so a program compiled on one replays
//! bit-identically on the other (`export_programs` / `install_program`
//! move them across the seam). The service layer still keys its
//! cross-tenant artifact cache by [`BackendKind`] — deliberately, so a
//! future backend whose compilation *does* diverge (a GPU lowering, a
//! cost-model experiment) slots in without corrupting another backend's
//! cache.
//!
//! # How a GPU backend would slot in
//!
//! Implement [`NttBackend`] for a type that uploads the compiled segment
//! streams (or a lowered form of them) to the device, executes per-lane
//! batches there, and reads rows back; `execute` returns wall clock in
//! [`BackendStats`] with `sim: None`, exactly like [`NativeBackend`].
//! The sharded and service layers need no changes — per-tenant backend
//! selection ([`crate::ServiceOptions::backend`],
//! [`crate::NttService::add_tenant_with_backend`]) and the
//! backend-keyed pipeline cache already route around engine-specific
//! state, and the recovery ladder only needs `execute` to fail typed and
//! the verifier hook to exist.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Instant;

use crate::config::BpNttConfig;
use crate::engine::{BpNtt, ProgramKey};
use crate::error::BpNttError;
use crate::pipeline::{CompiledPipeline, ExecMode, PipelineSpec};
use crate::verify::{Verifier, VerifyPolicy};
use bpntt_sram::{CompiledProgram, FastPathStats, FaultPlan, FaultStats, Stats};

/// Which execution engine a backend is (the service's cache key
/// dimension and the bench/CI matrix axis).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BackendKind {
    /// The cost-accounted SRAM simulator (the paper's accelerator model).
    #[default]
    Sim,
    /// Direct CPU execution of the same compiled programs with cost
    /// accounting compiled out — wall clock only.
    Native,
}

impl BackendKind {
    /// Every kind, in matrix order.
    pub const ALL: [BackendKind; 2] = [BackendKind::Sim, BackendKind::Native];

    /// Stable lowercase name (`"sim"` / `"native"`), the CLI/JSON/CI
    /// spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Native => "native",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sim" => Ok(BackendKind::Sim),
            "native" => Ok(BackendKind::Native),
            other => Err(format!(
                "unknown backend kind {other:?} (expected sim|native)"
            )),
        }
    }
}

/// What one [`NttBackend::execute`] call cost.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BackendStats {
    /// Wall-clock seconds of the call (load + compute + read-back,
    /// including any verification the active policy performed).
    pub wall_secs: f64,
    /// The simulator's cumulative cost accounting *after* the call —
    /// `Some` only on [`SimBackend`] (reset the backend's stats before
    /// the call for a per-call reading). `None` on backends that do not
    /// model cost, which is the point of [`NativeBackend`].
    pub sim: Option<Stats>,
}

/// The execution seam: compile pipeline op-graphs once, execute them on
/// batches, and expose the capability surfaces the upper layers need
/// (artifact sharing, verification, fault injection, telemetry). All
/// methods are infallible passthroughs unless documented otherwise; see
/// [`BpNtt`] for the semantics each default implementation inherits.
///
/// The trait is object-safe — the sharded and service layers hold
/// `Box<dyn NttBackend>` — and `Send` so shard workers can run on scoped
/// threads.
pub trait NttBackend: Send + fmt::Debug {
    /// Which engine this is.
    fn kind(&self) -> BackendKind;

    /// The configuration the backend was provisioned with.
    fn config(&self) -> &BpNttConfig;

    /// Compiles (and caches) the pipeline for `spec`.
    ///
    /// # Errors
    ///
    /// See [`BpNtt::compile_pipeline`].
    fn compile(&mut self, spec: &PipelineSpec) -> Result<Arc<CompiledPipeline>, BpNttError>;

    /// Executes an already compiled pipeline on one batch, returning the
    /// output rows and what the call cost. Rows are bit-identical across
    /// backends for the same compiled pipeline, mode, and inputs.
    ///
    /// # Errors
    ///
    /// See [`BpNtt::run_compiled_pipeline`].
    fn execute(
        &mut self,
        pipe: &CompiledPipeline,
        mode: ExecMode,
        inputs: &[&[Vec<u64>]],
    ) -> Result<(Vec<Vec<u64>>, BackendStats), BpNttError>;

    /// Installs an externally compiled pipeline (and its segment
    /// programs) into this backend's caches.
    fn install_pipeline(&mut self, pipe: &Arc<CompiledPipeline>);

    /// Whether `spec` is already compiled in this backend's cache.
    fn has_pipeline(&self, spec: &PipelineSpec) -> bool;

    /// Every compiled program this backend holds (the service layer's
    /// cross-tenant share path).
    fn export_programs(&self) -> Vec<(ProgramKey, Arc<CompiledProgram>)>;

    /// Installs one externally compiled program.
    fn install_program(&mut self, key: ProgramKey, prog: Arc<CompiledProgram>);

    /// Number of compiled programs in the cache.
    fn cached_programs(&self) -> usize;

    /// Number of compiled pipelines in the cache.
    fn cached_pipelines(&self) -> usize;

    /// Sets the output-verification policy (the ladder's detect rung).
    fn set_verify_policy(&mut self, policy: VerifyPolicy);

    /// The software reference verifier (built lazily; the degrade rung
    /// clones it for fallback recomputation).
    fn verifier(&mut self) -> &Verifier;

    /// Drains the wall-clock seconds spent verifying since the last call.
    fn take_verify_secs(&mut self) -> f64;

    /// Installs a fault-injection plan (chaos drills; see
    /// [`FaultPlan`]). Faults fire at the same instruction indices on
    /// every backend.
    fn install_fault_plan(&mut self, plan: FaultPlan);

    /// Removes the fault plan, returning injection counters.
    fn clear_fault_plan(&mut self) -> FaultStats;

    /// Injection counters of the active plan, if one is installed.
    fn fault_stats(&self) -> Option<FaultStats>;

    /// The simulator's cumulative cost accounting — `Some` only on
    /// backends that model cost ([`SimBackend`]); `None` on
    /// [`NativeBackend`], whose controller keeps `Stats` frozen at zero.
    fn sim_stats(&self) -> Option<Stats>;

    /// Resets cost accounting (and the native instruction clock).
    fn reset_stats(&mut self);

    /// Fast-path coverage telemetry: which execution strategy (fused
    /// superops vs generic) actually ran. Live on both backends — the
    /// native backend dispatches through the same matchers.
    fn fastpath_stats(&self) -> &FastPathStats;
}

/// The cost-accounted SRAM-simulator backend (the paper's accelerator
/// model); wraps [`BpNtt`] unchanged — `Stats` stays bit-identical to
/// the pre-HAL stack.
#[derive(Debug)]
pub struct SimBackend {
    engine: BpNtt,
}

impl SimBackend {
    /// Provisions a simulator backend.
    ///
    /// # Errors
    ///
    /// See [`BpNtt::new`].
    pub fn new(config: BpNttConfig) -> Result<Self, BpNttError> {
        Ok(SimBackend {
            engine: BpNtt::new(config)?,
        })
    }

    /// The underlying engine (simulator-specific surfaces: `peek_row`,
    /// timing-model swaps, direct `load_batch`/`read_batch`).
    #[must_use]
    pub fn engine(&self) -> &BpNtt {
        &self.engine
    }

    /// Mutable access to the underlying engine.
    pub fn engine_mut(&mut self) -> &mut BpNtt {
        &mut self.engine
    }
}

/// The native direct-execution CPU backend: replays the same compiled
/// programs through the same fused word-engine executors with cost
/// accounting disabled — no per-instruction `Stats`, no energy model,
/// wall clock only. Rows and fault-injection behavior are bit-identical
/// to [`SimBackend`].
#[derive(Debug)]
pub struct NativeBackend {
    engine: BpNtt,
}

impl NativeBackend {
    /// Provisions a native backend (cost accounting is disabled in the
    /// controller before any row is touched, so `Stats` stays zero for
    /// the backend's whole life).
    ///
    /// # Errors
    ///
    /// See [`BpNtt::new`].
    pub fn new(config: BpNttConfig) -> Result<Self, BpNttError> {
        Ok(NativeBackend {
            engine: BpNtt::new_native(config)?,
        })
    }

    /// The underlying engine.
    #[must_use]
    pub fn engine(&self) -> &BpNtt {
        &self.engine
    }

    /// Mutable access to the underlying engine.
    pub fn engine_mut(&mut self) -> &mut BpNtt {
        &mut self.engine
    }
}

/// Provisions a backend of the requested kind — the single construction
/// seam the sharded and service layers use.
///
/// # Errors
///
/// Propagates engine construction failures (see [`BpNtt::new`]).
pub fn new_backend(
    kind: BackendKind,
    config: &BpNttConfig,
) -> Result<Box<dyn NttBackend>, BpNttError> {
    Ok(match kind {
        BackendKind::Sim => Box::new(SimBackend::new(config.clone())?),
        BackendKind::Native => Box::new(NativeBackend::new(config.clone())?),
    })
}

/// Shared passthrough plumbing: both backends delegate to [`BpNtt`];
/// they differ only in construction (cost accounting on/off) and in what
/// [`NttBackend::execute`] reports.
macro_rules! delegate_backend {
    ($ty:ty, $kind:expr, $sim_stats:expr) => {
        impl NttBackend for $ty {
            fn kind(&self) -> BackendKind {
                $kind
            }

            fn config(&self) -> &BpNttConfig {
                self.engine.config()
            }

            fn compile(
                &mut self,
                spec: &PipelineSpec,
            ) -> Result<Arc<CompiledPipeline>, BpNttError> {
                self.engine.compile_pipeline(spec)
            }

            fn execute(
                &mut self,
                pipe: &CompiledPipeline,
                mode: ExecMode,
                inputs: &[&[Vec<u64>]],
            ) -> Result<(Vec<Vec<u64>>, BackendStats), BpNttError> {
                let t = Instant::now();
                let rows = self.engine.run_compiled_pipeline(pipe, mode, inputs)?;
                let stats = BackendStats {
                    wall_secs: t.elapsed().as_secs_f64(),
                    sim: ($sim_stats)(&self.engine),
                };
                Ok((rows, stats))
            }

            fn install_pipeline(&mut self, pipe: &Arc<CompiledPipeline>) {
                self.engine.install_pipeline(pipe);
            }

            fn has_pipeline(&self, spec: &PipelineSpec) -> bool {
                self.engine.has_pipeline(spec)
            }

            fn export_programs(&self) -> Vec<(ProgramKey, Arc<CompiledProgram>)> {
                self.engine.export_programs()
            }

            fn install_program(&mut self, key: ProgramKey, prog: Arc<CompiledProgram>) {
                self.engine.install_program(key, prog);
            }

            fn cached_programs(&self) -> usize {
                self.engine.cached_programs()
            }

            fn cached_pipelines(&self) -> usize {
                self.engine.cached_pipelines()
            }

            fn set_verify_policy(&mut self, policy: VerifyPolicy) {
                self.engine.set_verify_policy(policy);
            }

            fn verifier(&mut self) -> &Verifier {
                self.engine.verifier()
            }

            fn take_verify_secs(&mut self) -> f64 {
                self.engine.take_verify_secs()
            }

            fn install_fault_plan(&mut self, plan: FaultPlan) {
                self.engine.install_fault_plan(plan);
            }

            fn clear_fault_plan(&mut self) -> FaultStats {
                self.engine.clear_fault_plan()
            }

            fn fault_stats(&self) -> Option<FaultStats> {
                self.engine.fault_stats()
            }

            fn sim_stats(&self) -> Option<Stats> {
                ($sim_stats)(&self.engine)
            }

            fn reset_stats(&mut self) {
                self.engine.reset_stats();
            }

            fn fastpath_stats(&self) -> &FastPathStats {
                self.engine.fastpath_stats()
            }
        }
    };
}

delegate_backend!(SimBackend, BackendKind::Sim, |e: &BpNtt| Some(*e.stats()));
delegate_backend!(NativeBackend, BackendKind::Native, |_: &BpNtt| None);

#[cfg(test)]
mod tests {
    use super::*;
    use bpntt_ntt::NttParams;

    fn pseudo(n: usize, q: u64, seed: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % q
            })
            .collect()
    }

    fn config() -> BpNttConfig {
        BpNttConfig::new(32, 32, 8, NttParams::new(8, 97).unwrap()).unwrap()
    }

    #[test]
    fn kind_round_trips_through_str() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.as_str().parse::<BackendKind>().unwrap(), kind);
        }
        assert!("gpu".parse::<BackendKind>().is_err());
    }

    #[test]
    fn native_rows_match_sim_and_stats_stay_frozen() {
        let a: Vec<Vec<u64>> = (0..2).map(|s| pseudo(8, 97, s + 10)).collect();
        let b: Vec<Vec<u64>> = (0..2).map(|s| pseudo(8, 97, s + 20)).collect();
        let spec = PipelineSpec::polymul();

        let mut sim = new_backend(BackendKind::Sim, &config()).unwrap();
        let pipe = sim.compile(&spec).unwrap();
        let (sim_rows, sim_cost) = sim.execute(&pipe, ExecMode::Replay, &[&a, &b]).unwrap();
        assert!(sim_cost.sim.is_some_and(|s| s.cycles > 0));
        assert!(sim.sim_stats().is_some());

        let mut native = NativeBackend::new(config()).unwrap();
        // Compiled artifacts cross the seam unchanged.
        native.install_pipeline(&pipe);
        assert!(native.has_pipeline(&spec));
        let (native_rows, native_cost) =
            native.execute(&pipe, ExecMode::Replay, &[&a, &b]).unwrap();
        assert_eq!(native_rows, sim_rows);
        assert!(native_cost.wall_secs > 0.0);
        assert_eq!(native_cost.sim, None);
        assert_eq!(native.sim_stats(), None);
        // The native engine's controller froze Stats at zero.
        assert_eq!(native.engine_mut().stats().cycles, 0);
        assert_eq!(native.engine_mut().stats().energy_pj, 0.0);
    }

    #[test]
    fn native_compiles_identical_artifacts() {
        // Compiling on the native backend (instead of importing) yields
        // the same programs: both keep default cost models at compile
        // time.
        let spec = PipelineSpec::roundtrip();
        let mut sim = SimBackend::new(config()).unwrap();
        let mut native = NativeBackend::new(config()).unwrap();
        let ps = sim.compile(&spec).unwrap();
        let pn = native.compile(&spec).unwrap();
        assert_eq!(ps.spec(), pn.spec());
        let polys: Vec<Vec<u64>> = (0..3).map(|s| pseudo(8, 97, s + 40)).collect();
        // Cross-execute: sim's pipeline on native and vice versa.
        let (r1, _) = native.execute(&ps, ExecMode::Replay, &[&polys]).unwrap();
        let (r2, _) = sim.execute(&pn, ExecMode::Replay, &[&polys]).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1, polys);
    }

    #[test]
    fn native_fault_clock_matches_sim() {
        // A transient at a fixed instruction index corrupts both
        // backends identically — the native instruction clock mirrors
        // the costed count exactly.
        let spec = PipelineSpec::forward_ntt();
        let polys: Vec<Vec<u64>> = (0..2).map(|s| pseudo(8, 97, s + 70)).collect();
        let run = |kind: BackendKind, plan: Option<FaultPlan>| {
            let mut be = new_backend(kind, &config()).unwrap();
            let pipe = be.compile(&spec).unwrap();
            if let Some(p) = plan {
                be.install_fault_plan(p);
            }
            let (rows, _) = be.execute(&pipe, ExecMode::Replay, &[&polys]).unwrap();
            (rows, be.clear_fault_plan())
        };
        let plan = || FaultPlan::seeded(11).transient_at(900, 1, 2);
        let (clean, _) = run(BackendKind::Sim, None);
        let (sim_rows, sim_faults) = run(BackendKind::Sim, Some(plan()));
        let (native_rows, native_faults) = run(BackendKind::Native, Some(plan()));
        assert_eq!(sim_faults.transients, 1, "the injected transient fired");
        assert_eq!(native_faults.transients, 1);
        assert_eq!(native_rows, sim_rows, "identical corruption on both");
        assert_ne!(sim_rows, clean, "the fault actually corrupted output");
    }
}
