//! A request-queue service over [`ShardedBpNtt`]: concurrent clients
//! submit single NTT requests, a dispatcher thread coalesces them into
//! full waves and fans them out across shards.
//!
//! The paper's scaling argument is that one instruction stream drives
//! hundreds of 0.063 mm² arrays; the sharded engine is that argument in
//! software, but server-side NTT workloads (HE ciphertext limbs, batch
//! signature verification) arrive as *streams of small requests*, not
//! pre-assembled batches. [`NttService`] closes the gap:
//!
//! * **Submission API** — every request is a pipeline:
//!   [`NttService::submit_pipeline`] takes a [`PipelineRequest`] (an
//!   arbitrary [`PipelineSpec`] op-graph plus one polynomial per
//!   declared input slot), validates it eagerly against the tenant's
//!   parameters — input count, lengths against `params.n`, coefficient
//!   reduction, slot capacity — so a malformed request fails its own
//!   submission with a typed [`BpNttError`] instead of failing inside
//!   the dispatcher thread, and returns a [`Ticket`]: a completion
//!   handle that is also a [`std::future::Future`] (waker wiring on the
//!   completion slot), so it `.await`s from any executor; `Ticket::wait`
//!   blocks and `Ticket::try_wait` polls for synchronous callers.
//!   [`NttService::submit_forward`] / [`NttService::submit_polymul`] are
//!   canned specs ([`PipelineSpec::forward_ntt`] /
//!   [`PipelineSpec::polymul`]) over the same path.
//! * **Wave coalescing** — a dispatcher thread drains the queue in
//!   batches: it waits (up to `coalesce_window`) for enough requests to
//!   fill every lane of every shard, then executes one
//!   [`ShardedBpNtt::run_pipeline_batch`] call per
//!   `(tenant, spec, mode)` group — the whole op-graph runs per lane
//!   with no intermediate load/read round-trips. Inside the engine the
//!   chunks are **work-stolen** across shards, so a slow shard claims
//!   fewer chunks instead of stalling the wave.
//! * **Backpressure** — the queue is bounded; when it is full,
//!   submission fails fast with [`BpNttError::Overloaded`] instead of
//!   buffering without limit.
//! * **Deadlines** — each request may carry a queueing deadline
//!   ([`PipelineRequest::with_deadline`], or
//!   [`ServiceOptions::default_deadline`] for all). The dispatcher never
//!   coalesces past the earliest queued deadline, and a request that
//!   expires before dispatch resolves its ticket to
//!   [`BpNttError::DeadlineExpired`] — it fails typed, it never blocks a
//!   wave or its caller.
//! * **Fault tolerance** — [`ServiceOptions::verify`] applies a
//!   [`VerifyPolicy`] to every chunk of every wave and arms the
//!   detect → retry → quarantine → degrade ladder
//!   ([`RecoveryOptions`](crate::RecoveryOptions)) on each tenant
//!   engine, so a verified service completes every accepted request with
//!   a correct answer even while [`ServiceOptions::fault_plan`] injects
//!   SRAM faults. Ladder activity surfaces in [`ServiceMetrics`]
//!   (`faults_detected`, `retries`, `quarantined_shards`,
//!   `fallback_polys`, `verify_ms`).
//! * **Tenants and the caches** — each tenant registers a
//!   [`BpNttConfig`]; the dispatcher keeps one sharded engine per tenant
//!   plus two cross-tenant caches: compiled programs keyed by
//!   `(params, layout)` and compiled pipelines keyed by
//!   `(params, layout, spec)`, so a second tenant with an identical
//!   configuration installs `Arc`-shared artifacts instead of
//!   recompiling, and a novel spec compiles once per configuration, not
//!   once per tenant.
//! * **Metrics** — [`NttService::metrics`] snapshots queue depth, wave
//!   occupancy, throughput, and per-shard wall-clock percentiles as a
//!   [`ServiceMetrics`], exportable as JSON.
//!
//! # Example
//!
//! ```
//! use bpntt_core::{BpNttConfig, NttService, ServiceOptions};
//! use bpntt_ntt::NttParams;
//!
//! let cfg = BpNttConfig::new(32, 32, 8, NttParams::new(8, 97)?)?;
//! let service = NttService::start(&cfg, ServiceOptions::default())?;
//! let poly: Vec<u64> = (0..8).map(|j| (j * 13) as u64 % 97).collect();
//! let ticket = service.submit_forward(poly)?;
//! let spectrum = ticket.wait()?;
//! assert_eq!(spectrum.len(), 8);
//! let m = service.shutdown();
//! assert_eq!(m.completed, 1);
//! # Ok::<(), bpntt_core::BpNttError>(())
//! ```

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::backend::BackendKind;
use crate::config::BpNttConfig;
use crate::engine::ProgramKey;
use crate::error::BpNttError;
use crate::health::{HealthCounters, HealthOptions};
use crate::layout::Layout;
use crate::metrics::{percentile, ServiceMetrics, TenantMetrics};
use crate::pipeline::{CompiledPipeline, ExecMode, PipelineSpec};
use crate::sharded::{RecoveryOptions, ShardedBpNtt};
use crate::verify::VerifyPolicy;
use bpntt_rns::{BigUint, RnsBasis};
use bpntt_sram::{CompiledProgram, FaultPlan};

/// How many recent per-shard wall-clock samples the percentile window
/// keeps (a ring buffer; old samples fall off).
const SHARD_SAMPLE_WINDOW: usize = 4096;

/// Per-tenant token-bucket admission limit
/// ([`ServiceOptions::rate_limit`]). Each tenant gets its own bucket:
/// `burst` tokens to start, refilled at `requests_per_sec`, one token
/// per submission. An empty bucket rejects the submission typed with
/// [`BpNttError::RateLimited`] carrying a `retry_after_ms` refill
/// estimate — a per-tenant admission decision, independent of global
/// queue pressure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained refill rate, in requests per second.
    pub requests_per_sec: f64,
    /// Bucket capacity: how far a tenant may burst above the sustained
    /// rate.
    pub burst: f64,
}

/// Tuning knobs for [`NttService::start`].
#[derive(Debug, Clone)]
pub struct ServiceOptions {
    /// Arrays provisioned per tenant engine.
    pub shards: usize,
    /// Bounded queue capacity; a full queue rejects submissions with
    /// [`BpNttError::Overloaded`].
    pub max_queue: usize,
    /// How long the dispatcher waits for more requests before running a
    /// partially filled wave. Zero dispatches immediately (lowest
    /// latency, worst occupancy).
    pub coalesce_window: Duration,
    /// Output verification applied by every tenant engine to every
    /// chunk ([`VerifyPolicy::Off`] by default). An active policy also
    /// arms the software-reference fallback, so a verified service never
    /// returns a corrupted polynomial: a chunk that cannot be recovered
    /// on the array is recomputed in software.
    pub verify: VerifyPolicy,
    /// Extra attempts a shard gives a failing chunk before quarantining
    /// itself (the recovery ladder's retry rung).
    pub retry_budget: usize,
    /// Deadline applied to every request that does not carry its own
    /// ([`PipelineRequest::with_deadline`]). A request still queued when
    /// its deadline passes fails typed with
    /// [`BpNttError::DeadlineExpired`] instead of occupying a wave.
    pub default_deadline: Option<Duration>,
    /// Chaos knob: a fault plan installed on every tenant engine
    /// (reseeded per shard). Combine with an active [`Self::verify`]
    /// policy so injected corruption is detected and recovered rather
    /// than returned.
    pub fault_plan: Option<FaultPlan>,
    /// Per-tenant token-bucket admission limit; `None` (the default)
    /// admits on queue capacity alone.
    pub rate_limit: Option<RateLimit>,
    /// Queue-depth load shedding: submissions shed typed
    /// ([`BpNttError::Overloaded`] with a `retry_after_ms` hint) once the
    /// fair queue holds `shed_threshold × max_queue` requests or more.
    /// `1.0` (the default) sheds only at capacity — the historical
    /// bounded-queue behavior; lower values shed earlier, keeping
    /// headroom for latency-sensitive tenants. Shedding is tenant-fair:
    /// past the threshold, only tenants at or above their fair share
    /// (`shed_at / registered tenants`, at least one slot) of the queue
    /// shed, and below-share tenants may still be admitted into the
    /// `shed_at..max_queue` headroom — so set `shed_threshold < 1.0`
    /// whenever multi-tenant admission fairness matters.
    pub shed_threshold: f64,
    /// Deficit-round-robin quantum in bytes: how much operand payload
    /// each tenant with queued work may drain per round. Smaller quanta
    /// interleave tenants more finely; the quantum should cover at least
    /// one typical request (`8 × n × input_slots` bytes) or a tenant
    /// needs several rounds to release its head request.
    pub drr_quantum: u64,
    /// Execution backend for tenants registered without an explicit
    /// kind ([`NttService::start`]'s default tenant and
    /// [`NttService::add_tenant`]): the cost-accounted simulator by
    /// default. Individual tenants override it through
    /// [`NttService::add_tenant_with_backend`] — one process can serve
    /// simulated and native tenants side by side.
    pub backend: BackendKind,
    /// Arms the self-healing subsystem: a background **scrubber** thread
    /// that runs known-answer probes against quarantined shards (and
    /// patrols idle healthy ones) so a shard whose fault burst has
    /// passed reintegrates automatically through the
    /// quarantined → probing → canary → healthy ladder, plus a
    /// **watchdog** thread that respawns a panicked dispatcher or
    /// scrubber (failing requests queued at the crash typed with
    /// [`BpNttError::DispatcherRestarted`]). `None` (the default)
    /// disables both — quarantines then last until
    /// [`ShardedBpNtt::lift_quarantine`] is called, the pre-existing
    /// behavior.
    pub health: Option<HealthOptions>,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            shards: 2,
            max_queue: 1024,
            coalesce_window: Duration::from_millis(2),
            verify: VerifyPolicy::Off,
            retry_budget: 0,
            default_deadline: None,
            fault_plan: None,
            rate_limit: None,
            shed_threshold: 1.0,
            drr_quantum: 4096,
            backend: BackendKind::Sim,
            health: None,
        }
    }
}

/// Identifies one registered tenant (a `(params, layout)` configuration
/// with its own sharded engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(u32);

impl TenantId {
    /// The raw id (as reported in [`BpNttError::UnknownTenant`]).
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Reconstructs a tenant id from its raw value — the inverse of
    /// [`Self::raw`], used by front-ends that carry tenant ids over a
    /// wire. An id that was never registered with the target service
    /// fails its submission typed with [`BpNttError::UnknownTenant`];
    /// nothing else distinguishes a forged id from a stale one.
    #[must_use]
    pub fn from_raw(raw: u32) -> Self {
        TenantId(raw)
    }
}

/// Shared completion slot behind one [`Ticket`]: the dispatcher's send
/// side stores the result, wakes a parked [`Ticket::wait`] through the
/// condvar, and wakes a pending async task through the registered waker.
#[derive(Debug, Default)]
struct Completion {
    state: Mutex<CompletionState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct CompletionState {
    result: Option<Result<Vec<u64>, BpNttError>>,
    waker: Option<std::task::Waker>,
    /// Set when the send side is gone (result delivered, or dispatcher
    /// exited without answering).
    sender_gone: bool,
    /// Set by [`Ticket::cancel`] or the ticket's drop: the waiter is
    /// gone, so the dispatcher sheds the request instead of executing it
    /// (and an all-cancelled wave group aborts mid-flight).
    cancelled: bool,
    /// Set when a local [`Ticket::wait_timeout`] observed the request
    /// deadline pass: the ticket already resolved to `DeadlineExpired`,
    /// so a late wave result is discarded rather than delivered twice.
    expired: bool,
}

impl CompletionState {
    /// Takes the terminal outcome, if any: the result (at most once), or
    /// `ServiceShutdown` once the sender is gone.
    fn take_outcome(&mut self) -> Option<Result<Vec<u64>, BpNttError>> {
        if self.expired {
            // The local deadline already resolved this ticket; a result
            // that arrived late is discarded, and the slot reads as
            // spent.
            self.result = None;
            return self.sender_gone.then_some(Err(BpNttError::ServiceShutdown));
        }
        match self.result.take() {
            Some(r) => Some(r),
            None if self.sender_gone => Some(Err(BpNttError::ServiceShutdown)),
            None => None,
        }
    }
}

/// The dispatcher-held send side of one ticket. Dropping it without
/// [`TicketSender::send`] (dispatcher exit) resolves the ticket to
/// [`BpNttError::ServiceShutdown`].
#[derive(Debug)]
struct TicketSender(Arc<Completion>);

impl TicketSender {
    fn send(self, r: Result<Vec<u64>, BpNttError>) {
        self.0.state.lock().expect("ticket state poisoned").result = Some(r);
        // Drop wakes both kinds of waiters.
    }

    /// Whether the receiving ticket was cancelled (dropped, explicitly
    /// cancelled, or locally expired) — the dispatcher's shed probe.
    fn is_cancelled(&self) -> bool {
        self.0
            .state
            .lock()
            .expect("ticket state poisoned")
            .cancelled
    }
}

impl Drop for TicketSender {
    fn drop(&mut self) {
        let waker = {
            let mut st = self.0.state.lock().expect("ticket state poisoned");
            st.sender_gone = true;
            st.waker.take()
        };
        self.0.cv.notify_all();
        if let Some(w) = waker {
            w.wake();
        }
    }
}

/// Completion handle for one submitted request.
///
/// The result arrives through a dedicated completion slot once the
/// dispatcher's wave completes, and is yielded **at most once**: after
/// [`Ticket::try_wait`], [`Ticket::wait_timeout`], or an `.await` has
/// returned the result, later polls of the same ticket report
/// [`BpNttError::ServiceShutdown`] (the slot is spent), not the result
/// again. Dropping the ticket **cancels** the request: a request still
/// queued is shed typed ([`BpNttError::Cancelled`]) instead of spending
/// a lane, and a wave whose every waiter is gone aborts mid-flight — the
/// behavior a disconnecting network client needs. Use [`Ticket::cancel`]
/// to cancel while keeping the handle.
///
/// `Ticket` implements [`std::future::Future`] (waker wiring on the
/// completion slot), so it can be `.await`ed from any executor; the
/// blocking [`Ticket::wait`] and polling [`Ticket::try_wait`] styles
/// remain for synchronous callers.
#[derive(Debug)]
pub struct Ticket {
    completion: Arc<Completion>,
    /// The request's absolute queueing deadline, mirrored from the
    /// [`Request`] so local waits clamp against it
    /// ([`Self::wait_timeout`]).
    deadline: Option<Instant>,
}

impl Ticket {
    /// Creates the connected `(ticket, sender)` pair.
    fn channel(deadline: Option<Instant>) -> (Ticket, TicketSender) {
        let completion = Arc::new(Completion::default());
        (
            Ticket {
                completion: Arc::clone(&completion),
                deadline,
            },
            TicketSender(completion),
        )
    }

    /// Cancels the request without consuming the handle: if it has not
    /// started executing, the dispatcher sheds it
    /// ([`BpNttError::Cancelled`]) instead of spending a wave lane; a
    /// mid-flight wave aborts once every request in its group is
    /// cancelled. A result that was already delivered stays readable —
    /// cancellation is advisory, not retroactive. Dropping the ticket
    /// cancels implicitly.
    pub fn cancel(&self) {
        self.completion
            .state
            .lock()
            .expect("ticket state poisoned")
            .cancelled = true;
    }

    /// Blocks until the result is ready.
    ///
    /// # Errors
    ///
    /// The request's own failure, or [`BpNttError::ServiceShutdown`] if
    /// the dispatcher exited without answering.
    pub fn wait(self) -> Result<Vec<u64>, BpNttError> {
        let mut st = self.completion.state.lock().expect("ticket state poisoned");
        loop {
            if let Some(outcome) = st.take_outcome() {
                return outcome;
            }
            st = self.completion.cv.wait(st).expect("ticket state poisoned");
        }
    }

    /// Non-blocking poll: `None` while the request is still in flight.
    /// One synchronous integration point — or just `.await` the ticket.
    pub fn try_wait(&self) -> Option<Result<Vec<u64>, BpNttError>> {
        self.completion
            .state
            .lock()
            .expect("ticket state poisoned")
            .take_outcome()
    }

    /// Blocks up to `timeout`, clamped against the request's own
    /// deadline; `None` on a plain timeout. A wait that reaches the
    /// *deadline* with no result resolves typed —
    /// `Some(Err(`[`BpNttError::DeadlineExpired`]`))` — instead of making
    /// the caller poll past its own deadline, and marks the ticket
    /// cancelled so the dispatcher sheds the request rather than
    /// computing a result nobody will read.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Vec<u64>, BpNttError>> {
        let mut until = Instant::now() + timeout;
        if let Some(d) = self.deadline {
            until = until.min(d);
        }
        let mut st = self.completion.state.lock().expect("ticket state poisoned");
        loop {
            if let Some(outcome) = st.take_outcome() {
                return Some(outcome);
            }
            let now = Instant::now();
            if now >= until {
                if let Some(d) = self.deadline {
                    if now >= d {
                        st.expired = true;
                        st.cancelled = true;
                        let late_ms = now.saturating_duration_since(d).as_millis() as u64;
                        return Some(Err(BpNttError::DeadlineExpired { late_ms }));
                    }
                }
                return None;
            }
            let (guard, _) = self
                .completion
                .cv
                .wait_timeout(st, until - now)
                .expect("ticket state poisoned");
            st = guard;
        }
    }
}

impl Drop for Ticket {
    fn drop(&mut self) {
        // The waiter is gone: let the dispatcher shed the request (or
        // abort an all-cancelled wave) instead of computing into a slot
        // nobody reads. Harmless after delivery — the flag is only
        // consulted for work not yet resolved.
        self.cancel();
    }
}

impl std::future::Future for Ticket {
    type Output = Result<Vec<u64>, BpNttError>;

    fn poll(
        self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<Self::Output> {
        let mut st = self.completion.state.lock().expect("ticket state poisoned");
        if let Some(outcome) = st.take_outcome() {
            return std::task::Poll::Ready(outcome);
        }
        // Keep only the latest waker (`Waker::will_wake` avoids a clone
        // when the same task polls repeatedly).
        match &mut st.waker {
            Some(w) if w.will_wake(cx.waker()) => {}
            slot => *slot = Some(cx.waker().clone()),
        }
        std::task::Poll::Pending
    }
}

type Reply<T> = mpsc::Sender<Result<T, BpNttError>>;

/// One pipeline execution request: the spec, its input polynomials (one
/// per declared input slot, in declaration order), the execution mode,
/// and the target tenant. Built with [`PipelineRequest::new`] and the
/// `with_*` builders; `submit_forward`/`submit_polymul` construct canned
/// instances internally.
#[derive(Debug, Clone)]
pub struct PipelineRequest {
    /// Target tenant; `None` routes to the service's default tenant.
    pub tenant: Option<TenantId>,
    /// The op-graph to execute. Must declare an output slot — a service
    /// request's result *is* the output read-back.
    pub spec: PipelineSpec,
    /// Execution mode (defaults to [`ExecMode::Replay`], the production
    /// path; the emit modes exist for equivalence auditing).
    pub mode: ExecMode,
    /// One polynomial per input slot the spec declares.
    pub inputs: Vec<Vec<u64>>,
    /// Per-request deadline, measured from submission. `None` inherits
    /// [`ServiceOptions::default_deadline`]. A request still queued when
    /// the deadline passes resolves its ticket to
    /// [`BpNttError::DeadlineExpired`] instead of joining a wave.
    pub deadline: Option<Duration>,
}

impl PipelineRequest {
    /// A replay-mode request for the default tenant.
    #[must_use]
    pub fn new(spec: PipelineSpec, inputs: Vec<Vec<u64>>) -> Self {
        PipelineRequest {
            tenant: None,
            spec,
            mode: ExecMode::Replay,
            inputs,
            deadline: None,
        }
    }

    /// Routes the request to a specific tenant.
    #[must_use]
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = Some(tenant);
        self
    }

    /// Overrides the execution mode.
    #[must_use]
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Bounds how long this request may wait in the queue.
    /// `Duration::ZERO` expires the request on the dispatcher's first
    /// look — useful for probing.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// A registered RNS tenant group ([`NttService::add_rns_tenant`]): one
/// limb tenant per residue prime of the basis, all sharing one array
/// geometry. Cheap to clone (the basis is shared behind an [`Arc`]).
#[derive(Debug, Clone)]
pub struct RnsHandle {
    basis: Arc<RnsBasis>,
    limbs: Vec<TenantId>,
}

impl RnsHandle {
    /// The residue basis this group decomposes against.
    #[must_use]
    pub fn basis(&self) -> &Arc<RnsBasis> {
        &self.basis
    }

    /// The per-limb tenant ids, in basis prime order. Useful for
    /// steering per-limb chaos (fault plans) or reading per-tenant
    /// metric slices.
    #[must_use]
    pub fn limb_tenants(&self) -> &[TenantId] {
        &self.limbs
    }

    /// Number of residue limbs (tenants) in the group.
    #[must_use]
    pub fn limbs(&self) -> usize {
        self.limbs.len()
    }
}

/// One big-modulus pipeline request ([`NttService::submit_rns`]): the
/// op-graph runs once per residue limb over the limb decomposition of
/// the big-integer inputs, and the limb outputs CRT-reconstruct into
/// coefficients mod `Q`.
#[derive(Debug, Clone)]
pub struct RnsRequest {
    /// The op-graph to execute on every limb. Must declare an output
    /// slot and at least one input slot, like any service pipeline.
    pub spec: PipelineSpec,
    /// Execution mode (defaults to [`ExecMode::Replay`]).
    pub mode: ExecMode,
    /// One big-integer polynomial per input slot, each of the basis
    /// degree `n` with coefficients reduced mod `Q`.
    pub inputs: Vec<Vec<BigUint>>,
    /// Per-request deadline, as [`PipelineRequest::deadline`]. Applies
    /// to every limb of the group.
    pub deadline: Option<Duration>,
}

impl RnsRequest {
    /// A replay-mode request.
    #[must_use]
    pub fn new(spec: PipelineSpec, inputs: Vec<Vec<BigUint>>) -> Self {
        RnsRequest {
            spec,
            mode: ExecMode::Replay,
            inputs,
            deadline: None,
        }
    }

    /// A negacyclic polynomial multiplication `a ⊛ b mod (x^n + 1, Q)`
    /// — the canned [`PipelineSpec::polymul`] per limb.
    #[must_use]
    pub fn polymul(a: Vec<BigUint>, b: Vec<BigUint>) -> Self {
        Self::new(PipelineSpec::polymul(), vec![a, b])
    }

    /// Overrides the execution mode.
    #[must_use]
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Bounds how long the limb group may wait in the queue.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// A claim on an in-flight RNS limb group: one [`Ticket`] per limb plus
/// the basis to CRT-reconstruct the limb outputs.
#[derive(Debug)]
pub struct RnsTicket {
    tickets: Vec<Ticket>,
    basis: Arc<RnsBasis>,
}

impl RnsTicket {
    /// Number of limb tickets in the group.
    #[must_use]
    pub fn limbs(&self) -> usize {
        self.tickets.len()
    }

    /// Cancels every limb of the group (best-effort, as
    /// [`Ticket::cancel`]).
    pub fn cancel(&self) {
        for t in &self.tickets {
            t.cancel();
        }
    }

    /// Blocks until every limb resolves, then CRT-reconstructs the
    /// big-integer result.
    ///
    /// # Errors
    ///
    /// The first limb failure (in limb order) — a limb that fails
    /// recovery fails its ticket exactly as a single-prime request
    /// would — or an [`BpNttError::Rns`] reconstruction defect.
    pub fn wait(self) -> Result<RnsResult, BpNttError> {
        let mut limbs = Vec::with_capacity(self.tickets.len());
        for t in self.tickets {
            limbs.push(t.wait()?);
        }
        let coefficients = self.basis.reconstruct_poly(&limbs)?;
        Ok(RnsResult {
            limbs,
            coefficients,
        })
    }
}

/// A completed RNS request: the raw per-limb residue outputs and their
/// CRT reconstruction mod `Q`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnsResult {
    /// Limb-major residue outputs: `limbs[i][k]` is output coefficient
    /// `k` mod `q_i`, in basis prime order.
    pub limbs: Vec<Vec<u64>>,
    /// The reconstructed output polynomial, coefficients in `0..Q`.
    pub coefficients: Vec<BigUint>,
}

/// One queued (validated) request. Control requests (tenant
/// registration) travel on a separate lane so data-plane coalescing
/// never delays them.
struct Request {
    tenant: TenantId,
    spec: PipelineSpec,
    mode: ExecMode,
    inputs: Vec<Vec<u64>>,
    reply: TicketSender,
    /// Absolute expiry instant (resolved at submission from the
    /// request's own deadline or the service default).
    deadline: Option<Instant>,
    /// Deficit-round-robin cost: operand payload bytes (8 per
    /// coefficient, floored so even tiny requests spend deficit).
    cost: u64,
    /// Part of an RNS limb group ([`NttService::submit_rns`]): the
    /// dispatcher fans the wave's RNS groups out concurrently (one
    /// engine per limb tenant) instead of running them back to back.
    rns: bool,
}

enum Control {
    AddTenant {
        config: Box<BpNttConfig>,
        backend: BackendKind,
        reply: Reply<TenantId>,
    },
    /// Scrubber tick: run one scrub pass over every tenant engine and
    /// publish the harvested health counters. At most one is queued at
    /// a time — ticks never pile up behind a slow wave.
    Scrub,
    /// Test-only: panic the dispatcher mid-loop, exercising the
    /// watchdog respawn path.
    #[cfg(test)]
    Crash,
}

/// What submit-side validation needs to know about a tenant without
/// touching the dispatcher-owned engine: the NTT parameters and the
/// layout every spec is checked against.
#[derive(Debug, Clone)]
struct TenantInfo {
    n: usize,
    q: u64,
    layout: Layout,
}

/// Deficit-round-robin fair queue keyed by tenant: one sub-queue per
/// tenant with pending work, a ring of those tenants in round order, and
/// a byte-weighted deficit per tenant. Each round the tenant at the ring
/// head gains `quantum` bytes of deficit and releases queued requests
/// while its deficit covers their operand cost; an exhausted deficit
/// rotates the ring. A zipf-hot tenant therefore drains at the same
/// byte rate as everyone else once the queue contends — it can saturate
/// idle capacity, never starve a peer.
struct FairQueue {
    sub: HashMap<TenantId, VecDeque<Request>>,
    /// Tenants with queued requests, in round order.
    ring: VecDeque<TenantId>,
    deficit: HashMap<TenantId, u64>,
    quantum: u64,
    len: usize,
}

impl FairQueue {
    fn new(quantum: u64) -> Self {
        FairQueue {
            sub: HashMap::new(),
            ring: VecDeque::new(),
            deficit: HashMap::new(),
            quantum: quantum.max(1),
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn push(&mut self, req: Request) {
        let q = self.sub.entry(req.tenant).or_default();
        if q.is_empty() {
            // (Re-)entering the ring starts from a clean deficit: credit
            // does not accrue while a tenant has nothing queued.
            self.ring.push_back(req.tenant);
            self.deficit.insert(req.tenant, 0);
        }
        q.push_back(req);
        self.len += 1;
    }

    fn earliest_deadline(&self) -> Option<Instant> {
        self.sub.values().flatten().filter_map(|r| r.deadline).min()
    }

    /// Per-tenant queued depths, for the metrics snapshot.
    fn depths(&self) -> HashMap<TenantId, usize> {
        self.sub.iter().map(|(t, q)| (*t, q.len())).collect()
    }

    /// One tenant's queued depth, for fair-share admission.
    fn depth_of(&self, tenant: TenantId) -> usize {
        self.sub.get(&tenant).map_or(0, VecDeque::len)
    }

    /// One DRR drain of up to `max` requests into `out`. The ring head
    /// gains `quantum` deficit per visit and releases requests while the
    /// deficit covers their cost; an emptied tenant leaves the ring, an
    /// exhausted one rotates behind its peers.
    fn drain_round(&mut self, max: usize, out: &mut Vec<Request>) {
        while out.len() < max && self.len > 0 {
            let Some(&tenant) = self.ring.front() else {
                break;
            };
            let deficit = self.deficit.entry(tenant).or_insert(0);
            *deficit = deficit.saturating_add(self.quantum);
            let q = self
                .sub
                .get_mut(&tenant)
                .expect("ring tenant has a sub-queue");
            while out.len() < max {
                let Some(head) = q.front() else { break };
                if head.cost > *deficit {
                    break;
                }
                *deficit -= head.cost;
                out.push(q.pop_front().expect("front() was Some"));
                self.len -= 1;
            }
            if q.is_empty() {
                self.ring.pop_front();
                self.sub.remove(&tenant);
                self.deficit.remove(&tenant);
            } else if out.len() < max {
                // Deficit exhausted with work left: next tenant's turn.
                self.ring.rotate_left(1);
            }
        }
    }

    /// Removes every queued request that already expired or whose ticket
    /// was cancelled, so dead work sheds typed before it costs a wave
    /// lane (or blocks a live request behind it in the sub-queue).
    fn remove_dead(&mut self, now: Instant) -> Vec<Request> {
        let mut dead = Vec::new();
        for q in self.sub.values_mut() {
            let mut keep = VecDeque::with_capacity(q.len());
            while let Some(r) = q.pop_front() {
                let expired = r.deadline.is_some_and(|d| d <= now);
                if expired || r.reply.is_cancelled() {
                    dead.push(r);
                } else {
                    keep.push_back(r);
                }
            }
            *q = keep;
        }
        if !dead.is_empty() {
            self.len -= dead.len();
            let emptied: Vec<TenantId> = self
                .sub
                .iter()
                .filter(|(_, q)| q.is_empty())
                .map(|(t, _)| *t)
                .collect();
            for t in &emptied {
                self.sub.remove(t);
                self.deficit.remove(t);
            }
            self.ring.retain(|t| !emptied.contains(t));
        }
        dead
    }

    /// Empties the whole queue (shutdown paths; fairness no longer
    /// matters when every drained request fails typed).
    fn drain_all(&mut self) -> Vec<Request> {
        let mut out = Vec::with_capacity(self.len);
        for (_, q) in self.sub.drain() {
            out.extend(q);
        }
        self.ring.clear();
        self.deficit.clear();
        self.len = 0;
        out
    }
}

/// Queue state guarded by the service mutex.
struct QueueState {
    queue: FairQueue,
    control: VecDeque<Control>,
    shutdown: bool,
    /// With `shutdown`: fail queued requests typed instead of draining
    /// them through waves ([`NttService::shutdown_now`]).
    abort: bool,
}

/// One tenant's token bucket ([`RateLimit`] admission state).
struct TokenBucket {
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// Refills for elapsed time, then takes one token — or reports how
    /// many milliseconds until one is available.
    fn admit(&mut self, limit: RateLimit, now: Instant) -> Result<(), u64> {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * limit.requests_per_sec).min(limit.burst.max(1.0));
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            return Ok(());
        }
        let need = 1.0 - self.tokens;
        let ms = if limit.requests_per_sec > 0.0 {
            (need / limit.requests_per_sec * 1e3).ceil() as u64
        } else {
            // A zero-rate limit never refills; report a long, finite
            // back-off instead of dividing by zero.
            60_000
        };
        Err(ms.max(1))
    }
}

/// Dispatcher-side counters behind their own lock (snapshots never block
/// the queue).
#[derive(Default)]
struct MetricsState {
    peak_queue_depth: usize,
    submitted: u64,
    rejected: u64,
    completed: u64,
    failed: u64,
    waves: u64,
    wave_polys: u64,
    occupancy_sum: f64,
    busy_secs: f64,
    shard_secs: VecDeque<f64>,
    program_cache_entries: usize,
    program_cache_hits: u64,
    pipeline_cache_entries: usize,
    pipeline_cache_hits: u64,
    faults_detected: u64,
    retries: u64,
    quarantined_shards: u64,
    fallback_polys: u64,
    deadline_expired: u64,
    verify_secs: f64,
    rate_limited: u64,
    cancelled: u64,
    /// Aggregated [`HealthCounters`] across tenant engines (absolute —
    /// re-harvested after every wave and scrub pass, not accumulated).
    health: HealthCounters,
    /// Dispatcher/scrubber threads the watchdog respawned.
    respawns: u64,
    /// Default tenant's per-shard health codes, refreshed with the
    /// counters.
    shard_health: Vec<u8>,
    /// EWMA of the dispatcher's recent drain rate (requests per second),
    /// the basis of the `retry_after_ms` back-off hints.
    drain_rate: f64,
    /// Big-modulus requests accepted through `submit_rns` (one per
    /// group, however many limbs it decomposed into).
    rns_requests: u64,
    /// Limb sub-requests those RNS groups expanded to.
    rns_limbs: u64,
    /// Concurrent RNS fan-out rounds the dispatcher executed.
    rns_fanout_waves: u64,
    /// Occupancy accumulator over those rounds: busy lanes across every
    /// engine of the round / the round's total lane capacity.
    rns_fanout_occupancy_sum: f64,
    per_tenant: HashMap<u32, TenantCounters>,
}

impl MetricsState {
    fn tenant(&mut self, t: TenantId) -> &mut TenantCounters {
        self.per_tenant.entry(t.0).or_default()
    }
}

/// Dispatcher-side per-tenant counters (the mutable backing of
/// [`TenantMetrics`]; `queued` is snapshotted from the fair queue).
#[derive(Default, Clone, Copy)]
struct TenantCounters {
    submitted: u64,
    shed: u64,
    completed: u64,
    failed: u64,
    deadline_expired: u64,
    cancelled: u64,
    bytes: u64,
}

/// `retry_after_ms` hint: how long until the dispatcher has likely
/// drained `depth` requests at its recent rate. Never zero; clamped so a
/// cold or stalled estimate cannot tell clients "never retry".
fn retry_hint(drain_rate: f64, depth: usize) -> u64 {
    if drain_rate > 1e-9 {
        ((((depth + 1) as f64) / drain_rate * 1e3).ceil() as u64).clamp(1, 30_000)
    } else {
        50
    }
}

struct Shared {
    state: Mutex<QueueState>,
    cv: Condvar,
    tenants: Mutex<HashMap<TenantId, TenantInfo>>,
    metrics: Mutex<MetricsState>,
    /// Per-tenant token buckets (populated lazily on first submission).
    buckets: Mutex<HashMap<TenantId, TokenBucket>>,
    max_queue: usize,
    coalesce_window: Duration,
    default_deadline: Option<Duration>,
    recovery: RecoveryOptions,
    fault_plan: Option<FaultPlan>,
    rate_limit: Option<RateLimit>,
    shed_threshold: f64,
    /// Backend kind for tenants registered without an explicit one.
    backend: BackendKind,
    /// Self-healing knobs; `Some` arms the scrubber and watchdog.
    health: Option<HealthOptions>,
    /// Shards per tenant engine (the dispatcher needs it to rebuild
    /// engines after a watchdog respawn).
    shards: usize,
    /// The dispatcher's join handle, held shared so the watchdog can
    /// detect its death and replace it.
    dispatcher: Mutex<Option<JoinHandle<()>>>,
    /// The scrubber's join handle, supervised the same way.
    scrubber: Mutex<Option<JoinHandle<()>>>,
    /// Every registered tenant's full configuration, in registration
    /// order — what a respawned dispatcher needs to rebuild each engine
    /// under its original id.
    registry: Mutex<Vec<(TenantId, BpNttConfig, BackendKind)>>,
}

/// Cross-tenant compiled-program cache key: two tenants share programs
/// exactly when their `(backend, params, layout)` agree (the layout is
/// fully determined by rows/cols/bitwidth/n, and every engine uses the
/// default timing model, so equal keys imply bit-identical programs and
/// costs). The pipeline cache extends this to
/// `(backend, params, layout, spec)`: one [`ProgramCacheKey`] maps to
/// the compiled pipelines of every spec seen for that configuration.
///
/// Today's two backends compile identical artifacts (both keep the
/// default cost models), so the `backend` dimension costs one duplicate
/// compile when the same configuration is registered on both kinds —
/// paid deliberately, so a backend whose compilation diverges (a GPU
/// lowering, a cost-model experiment) can never poison another backend's
/// cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ProgramCacheKey {
    backend: BackendKind,
    n: usize,
    q: u64,
    rows: usize,
    cols: usize,
    bitwidth: usize,
}

impl ProgramCacheKey {
    fn of(config: &BpNttConfig, backend: BackendKind) -> Self {
        ProgramCacheKey {
            backend,
            n: config.params().n(),
            q: config.params().modulus(),
            rows: config.rows(),
            cols: config.cols(),
            bitwidth: config.bitwidth(),
        }
    }
}

/// The async-capable request-queue service over per-tenant
/// [`ShardedBpNtt`] engines. See the [module docs](self) for the design
/// and an example.
///
/// All submission methods take `&self`, so one service instance can be
/// shared across client threads (e.g. behind an `Arc` or borrowed into
/// `std::thread::scope`). Dropping the service shuts the dispatcher down
/// after it drains the queue.
#[derive(Debug)]
pub struct NttService {
    shared: Arc<Shared>,
    /// The watchdog's handle (only under [`ServiceOptions::health`]).
    /// The dispatcher and scrubber handles live in [`Shared`], where the
    /// watchdog can replace them.
    watchdog: Option<JoinHandle<()>>,
    default_tenant: TenantId,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("max_queue", &self.max_queue)
            .field("coalesce_window", &self.coalesce_window)
            .finish_non_exhaustive()
    }
}

impl NttService {
    /// Starts the dispatcher and registers `config` as the default
    /// tenant (its programs are compiled now, not on the first request).
    ///
    /// # Errors
    ///
    /// [`BpNttError::InvalidShardCount`] for zero shards; otherwise
    /// whatever tenant registration reports (engine construction or
    /// program compilation failures).
    pub fn start(config: &BpNttConfig, opts: ServiceOptions) -> Result<Self, BpNttError> {
        if opts.shards == 0 {
            return Err(BpNttError::InvalidShardCount { shards: 0 });
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: FairQueue::new(opts.drr_quantum),
                control: VecDeque::new(),
                shutdown: false,
                abort: false,
            }),
            cv: Condvar::new(),
            tenants: Mutex::new(HashMap::new()),
            metrics: Mutex::new(MetricsState::default()),
            buckets: Mutex::new(HashMap::new()),
            max_queue: opts.max_queue,
            coalesce_window: opts.coalesce_window,
            default_deadline: opts.default_deadline,
            recovery: RecoveryOptions {
                verify: opts.verify,
                retry_budget: opts.retry_budget,
                // An active ladder always keeps its last rung: the whole
                // point of verifying service output is never returning a
                // corrupted polynomial, and the software reference is
                // what guarantees an answer once the array is distrusted.
                software_fallback: opts.verify.is_active() || opts.retry_budget > 0,
            },
            fault_plan: opts.fault_plan.clone(),
            rate_limit: opts.rate_limit,
            shed_threshold: opts.shed_threshold,
            backend: opts.backend,
            health: opts.health,
            shards: opts.shards,
            dispatcher: Mutex::new(None),
            scrubber: Mutex::new(None),
            registry: Mutex::new(Vec::new()),
        });
        *shared
            .dispatcher
            .lock()
            .expect("dispatcher handle poisoned") = Some(spawn_dispatcher(&shared));
        let mut watchdog = None;
        if let Some(h) = opts.health {
            *shared.scrubber.lock().expect("scrubber handle poisoned") =
                Some(spawn_scrubber(&shared, h));
            watchdog = Some(spawn_watchdog(&shared));
        }
        let mut service = NttService {
            shared,
            watchdog,
            default_tenant: TenantId(0),
        };
        service.default_tenant = service.add_tenant(config)?;
        Ok(service)
    }

    /// Registers another tenant configuration on the service's default
    /// backend ([`ServiceOptions::backend`]), building its sharded
    /// engine and warming its programs (from the cross-tenant cache when
    /// an identical `(backend, params, layout)` is already registered).
    ///
    /// # Errors
    ///
    /// Engine construction / program compilation failures, or
    /// [`BpNttError::ServiceShutdown`] after shutdown.
    pub fn add_tenant(&self, config: &BpNttConfig) -> Result<TenantId, BpNttError> {
        self.add_tenant_with_backend(config, self.shared.backend)
    }

    /// Registers a tenant on an explicit execution backend — tenants on
    /// different backends coexist in one service (each tenant's sharded
    /// engine is homogeneous; the compiled-artifact cache is keyed by
    /// backend kind, so kinds never share cache entries).
    ///
    /// # Errors
    ///
    /// As [`Self::add_tenant`].
    pub fn add_tenant_with_backend(
        &self,
        config: &BpNttConfig,
        backend: BackendKind,
    ) -> Result<TenantId, BpNttError> {
        let (tx, rx) = mpsc::channel();
        {
            let mut st = self.shared.state.lock().expect("service state poisoned");
            if st.shutdown {
                return Err(BpNttError::ServiceShutdown);
            }
            st.control.push_back(Control::AddTenant {
                config: Box::new(config.clone()),
                backend,
                reply: tx,
            });
        }
        self.shared.cv.notify_all();
        rx.recv().unwrap_or(Err(BpNttError::ServiceShutdown))
    }

    /// The tenant registered by [`Self::start`].
    #[must_use]
    pub fn default_tenant(&self) -> TenantId {
        self.default_tenant
    }

    /// Submits one forward NTT for the default tenant.
    ///
    /// # Errors
    ///
    /// Validation failures ([`BpNttError::WrongLength`] /
    /// [`BpNttError::Unreduced`]), [`BpNttError::Overloaded`] under
    /// backpressure, [`BpNttError::ServiceShutdown`] after shutdown.
    pub fn submit_forward(&self, poly: Vec<u64>) -> Result<Ticket, BpNttError> {
        self.submit_forward_as(self.default_tenant, poly)
    }

    /// Submits one forward NTT for a specific tenant — the canned
    /// [`PipelineSpec::forward_ntt`] over [`Self::submit_pipeline`].
    ///
    /// # Errors
    ///
    /// As [`Self::submit_forward`], plus [`BpNttError::UnknownTenant`].
    pub fn submit_forward_as(
        &self,
        tenant: TenantId,
        poly: Vec<u64>,
    ) -> Result<Ticket, BpNttError> {
        self.submit_pipeline(
            PipelineRequest::new(PipelineSpec::forward_ntt(), vec![poly]).with_tenant(tenant),
        )
    }

    /// Submits one negacyclic polynomial multiplication (`a ⊛ b`) for
    /// the default tenant — the canned [`PipelineSpec::polymul`] over
    /// [`Self::submit_pipeline`].
    ///
    /// # Errors
    ///
    /// As [`Self::submit_forward`], plus
    /// [`BpNttError::CapacityExceeded`] when the tenant's layout cannot
    /// host two operands on one tile.
    pub fn submit_polymul(&self, a: Vec<u64>, b: Vec<u64>) -> Result<Ticket, BpNttError> {
        self.submit_polymul_as(self.default_tenant, a, b)
    }

    /// Submits one polynomial multiplication for a specific tenant.
    ///
    /// # Errors
    ///
    /// As [`Self::submit_polymul`], plus [`BpNttError::UnknownTenant`].
    pub fn submit_polymul_as(
        &self,
        tenant: TenantId,
        a: Vec<u64>,
        b: Vec<u64>,
    ) -> Result<Ticket, BpNttError> {
        self.submit_pipeline(
            PipelineRequest::new(PipelineSpec::polymul(), vec![a, b]).with_tenant(tenant),
        )
    }

    /// Submits one pipeline op-graph execution. The request is validated
    /// **at submit time** against the tenant's registered parameters —
    /// spec sanity and slot capacity ([`PipelineSpec::check`]), an
    /// output-slot requirement, input count against the spec's declared
    /// input slots, and every polynomial's length (`params.n`) and
    /// coefficient reduction — so a malformed request fails here with a
    /// typed error instead of poisoning the coalesced wave it would have
    /// joined. Requests coalesce into waves per `(tenant, spec, mode)`
    /// group; identical specs from different clients batch into one
    /// sharded pipeline call.
    ///
    /// # Errors
    ///
    /// [`BpNttError::UnknownTenant`], [`BpNttError::InvalidPipeline`]
    /// (graph defects, missing output, input-count mismatch),
    /// [`BpNttError::CapacityExceeded`], [`BpNttError::WrongLength`] /
    /// [`BpNttError::Unreduced`] per polynomial,
    /// [`BpNttError::Overloaded`] under backpressure, and
    /// [`BpNttError::ServiceShutdown`] after shutdown.
    pub fn submit_pipeline(&self, req: PipelineRequest) -> Result<Ticket, BpNttError> {
        let PipelineRequest {
            tenant,
            spec,
            mode,
            inputs,
            deadline,
        } = req;
        let tenant = tenant.unwrap_or(self.default_tenant);
        let info = self.tenant_info(tenant)?;
        spec.check(&info.layout, info.q)?;
        if spec.output_slot().is_none() {
            return Err(BpNttError::InvalidPipeline {
                reason: "service pipelines must declare an output slot".into(),
            });
        }
        if spec.input_slots().is_empty() {
            // Resident (no-input) graphs are an engine-level feature; the
            // sharded work-stealing dispatcher has no stable chunk→shard
            // assignment for on-array state to survive between requests.
            return Err(BpNttError::InvalidPipeline {
                reason: "service pipelines must declare at least one input slot".into(),
            });
        }
        if inputs.len() != spec.input_slots().len() {
            return Err(BpNttError::InvalidPipeline {
                reason: format!(
                    "spec declares {} input slot(s) but {} polynomial(s) were supplied",
                    spec.input_slots().len(),
                    inputs.len()
                ),
            });
        }
        for poly in &inputs {
            validate_poly(&info, poly)?;
        }
        let deadline = deadline
            .or(self.shared.default_deadline)
            .map(|d| Instant::now() + d);
        let (ticket, reply) = Ticket::channel(deadline);
        let cost = inputs
            .iter()
            .map(|p| p.len() as u64 * 8)
            .sum::<u64>()
            .max(64);
        self.enqueue(Request {
            tenant,
            spec,
            mode,
            inputs,
            reply,
            deadline,
            cost,
            rns: false,
        })?;
        Ok(ticket)
    }

    /// Registers an RNS tenant group on the service's default backend:
    /// one limb tenant per residue prime of `basis`, all with the same
    /// array geometry (`rows × cols`, `bitwidth`-bit words). Limb
    /// tenants share compiled artifacts through the ordinary
    /// cross-tenant cache when their `(backend, params, layout)` keys
    /// collide (e.g. two RNS groups over the same basis).
    ///
    /// # Errors
    ///
    /// Per-limb configuration failures ([`BpNttError::NoHeadroom`] when
    /// a basis prime does not fit `bitwidth`-bit words,
    /// [`BpNttError::CapacityExceeded`], ...), plus everything
    /// [`Self::add_tenant`] can return.
    pub fn add_rns_tenant(
        &self,
        rows: usize,
        cols: usize,
        bitwidth: usize,
        basis: &Arc<RnsBasis>,
    ) -> Result<RnsHandle, BpNttError> {
        self.add_rns_tenant_with_backend(rows, cols, bitwidth, basis, self.shared.backend)
    }

    /// Registers an RNS tenant group on an explicit execution backend —
    /// see [`Self::add_rns_tenant`].
    ///
    /// # Errors
    ///
    /// As [`Self::add_rns_tenant`].
    pub fn add_rns_tenant_with_backend(
        &self,
        rows: usize,
        cols: usize,
        bitwidth: usize,
        basis: &Arc<RnsBasis>,
        backend: BackendKind,
    ) -> Result<RnsHandle, BpNttError> {
        let mut limbs = Vec::with_capacity(basis.limbs());
        for params in basis.params() {
            let config = BpNttConfig::new(rows, cols, bitwidth, params.clone())?;
            limbs.push(self.add_tenant_with_backend(&config, backend)?);
        }
        Ok(RnsHandle {
            basis: Arc::clone(basis),
            limbs,
        })
    }

    /// Submits one big-modulus pipeline execution over an RNS tenant
    /// group. The big-integer inputs decompose into one residue
    /// polynomial per limb at submit time (validating degree and
    /// reduction mod `Q`); the limb requests enqueue **atomically** as
    /// one wave-coherent group, so the dispatcher picks them up in the
    /// same wave and fans them out concurrently across the limb
    /// tenants' engines. The returned [`RnsTicket`] resolves to the
    /// per-limb outputs plus their CRT reconstruction.
    ///
    /// Fault tolerance is per limb: a corrupted limb walks the ordinary
    /// detect → retry → quarantine → degrade ladder on its own engine
    /// and heals (or fails) before reconstruction ever sees it.
    ///
    /// # Errors
    ///
    /// [`BpNttError::InvalidPipeline`] (graph defects, missing output,
    /// input-count mismatch), [`BpNttError::Rns`] (wrong degree /
    /// unreduced coefficients), [`BpNttError::UnknownTenant`] for a
    /// stale handle, [`BpNttError::Overloaded`] /
    /// [`BpNttError::RateLimited`] under backpressure (the whole group
    /// is admitted or shed — never a partial limb set), and
    /// [`BpNttError::ServiceShutdown`] after shutdown.
    pub fn submit_rns(&self, handle: &RnsHandle, req: RnsRequest) -> Result<RnsTicket, BpNttError> {
        let RnsRequest {
            spec,
            mode,
            inputs,
            deadline,
        } = req;
        let basis = &handle.basis;
        if spec.output_slot().is_none() {
            return Err(BpNttError::InvalidPipeline {
                reason: "service pipelines must declare an output slot".into(),
            });
        }
        if spec.input_slots().is_empty() {
            return Err(BpNttError::InvalidPipeline {
                reason: "service pipelines must declare at least one input slot".into(),
            });
        }
        if inputs.len() != spec.input_slots().len() {
            return Err(BpNttError::InvalidPipeline {
                reason: format!(
                    "spec declares {} input slot(s) but {} polynomial(s) were supplied",
                    spec.input_slots().len(),
                    inputs.len()
                ),
            });
        }
        // The spec must hold under every limb modulus (scale factors
        // etc. are checked against each q_i) and the shared layout.
        for &tenant in &handle.limbs {
            let info = self.tenant_info(tenant)?;
            spec.check(&info.layout, info.q)?;
        }
        // Decompose slot-by-slot into limb-major residues; this is also
        // where degree and mod-Q reduction are enforced.
        let mut limb_inputs: Vec<Vec<Vec<u64>>> =
            vec![Vec::with_capacity(inputs.len()); handle.limbs.len()];
        for poly in &inputs {
            for (limb, residues) in basis.decompose_poly(poly)?.into_iter().enumerate() {
                limb_inputs[limb].push(residues);
            }
        }
        let deadline = deadline
            .or(self.shared.default_deadline)
            .map(|d| Instant::now() + d);
        let mut tickets = Vec::with_capacity(handle.limbs.len());
        let mut requests = Vec::with_capacity(handle.limbs.len());
        for (&tenant, inputs) in handle.limbs.iter().zip(limb_inputs) {
            let (ticket, reply) = Ticket::channel(deadline);
            let cost = inputs
                .iter()
                .map(|p| p.len() as u64 * 8)
                .sum::<u64>()
                .max(64);
            requests.push(Request {
                tenant,
                spec: spec.clone(),
                mode,
                inputs,
                reply,
                deadline,
                cost,
                rns: true,
            });
            tickets.push(ticket);
        }
        self.enqueue_rns_group(requests)?;
        Ok(RnsTicket {
            tickets,
            basis: Arc::clone(basis),
        })
    }

    /// Snapshots the service counters.
    #[must_use]
    pub fn metrics(&self) -> ServiceMetrics {
        let (queue_depth, tenant_depths) = {
            let st = self.shared.state.lock().expect("service state poisoned");
            (st.queue.len(), st.queue.depths())
        };
        let tenants = self
            .shared
            .tenants
            .lock()
            .expect("tenant map poisoned")
            .len();
        let m = self.shared.metrics.lock().expect("metrics poisoned");
        // Per-tenant slices: every tenant the counters have seen (a
        // registered tenant is seeded at registration), sorted by id.
        let mut ids: Vec<u32> = m.per_tenant.keys().copied().collect();
        ids.sort_unstable();
        let per_tenant: Vec<TenantMetrics> = ids
            .into_iter()
            .map(|id| {
                let c = m.per_tenant.get(&id).copied().unwrap_or_default();
                TenantMetrics {
                    tenant: id,
                    submitted: c.submitted,
                    queued: tenant_depths.get(&TenantId(id)).copied().unwrap_or(0),
                    shed: c.shed,
                    completed: c.completed,
                    failed: c.failed,
                    deadline_expired: c.deadline_expired,
                    cancelled: c.cancelled,
                    bytes: c.bytes,
                }
            })
            .collect();
        let mut sorted: Vec<f64> = m.shard_secs.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("shard secs are finite"));
        ServiceMetrics {
            queue_depth,
            peak_queue_depth: m.peak_queue_depth,
            queue_capacity: self.shared.max_queue,
            submitted: m.submitted,
            rejected: m.rejected,
            completed: m.completed,
            failed: m.failed,
            waves: m.waves,
            wave_polys: m.wave_polys,
            wave_occupancy: if m.waves == 0 {
                0.0
            } else {
                m.occupancy_sum / m.waves as f64
            },
            busy_secs: m.busy_secs,
            polys_per_sec: if m.busy_secs > 0.0 {
                m.wave_polys as f64 / m.busy_secs
            } else {
                0.0
            },
            shard_secs_p50: percentile(&sorted, 0.50),
            shard_secs_p90: percentile(&sorted, 0.90),
            shard_secs_max: sorted.last().copied().unwrap_or(0.0),
            program_cache_entries: m.program_cache_entries,
            program_cache_hits: m.program_cache_hits,
            pipeline_cache_entries: m.pipeline_cache_entries,
            pipeline_cache_hits: m.pipeline_cache_hits,
            faults_detected: m.faults_detected,
            retries: m.retries,
            quarantined_shards: m.quarantined_shards,
            fallback_polys: m.fallback_polys,
            deadline_expired: m.deadline_expired,
            verify_ms: m.verify_secs * 1e3,
            rate_limited: m.rate_limited,
            cancelled: m.cancelled,
            rns_requests: m.rns_requests,
            rns_limbs: m.rns_limbs,
            rns_fanout_waves: m.rns_fanout_waves,
            rns_fanout_occupancy: if m.rns_fanout_waves == 0 {
                0.0
            } else {
                m.rns_fanout_occupancy_sum / m.rns_fanout_waves as f64
            },
            probes_run: m.health.probes_run,
            probes_passed: m.health.probes_passed,
            reintegrations: m.health.reintegrations,
            canary_demotions: m.health.canary_demotions,
            patrol_probes: m.health.patrol_probes,
            patrol_quarantines: m.health.patrol_quarantines,
            respawns: m.respawns,
            shard_health: m.shard_health.clone(),
            tenants,
            per_tenant,
        }
    }

    /// Shuts the dispatcher down after it drains every queued request
    /// (drain mode), and returns the final metrics snapshot. Results
    /// already produced remain readable from their tickets.
    #[must_use = "the final metrics snapshot is the service's exit report"]
    pub fn shutdown(mut self) -> ServiceMetrics {
        self.shutdown_inner();
        self.metrics()
    }

    /// Shuts down **now**: the wave currently executing completes (and
    /// its tickets resolve normally), but requests still queued fail
    /// typed with [`BpNttError::ServiceShutdown`] instead of draining
    /// through waves — no blocked [`Ticket::wait`] hangs, no queued work
    /// executes. Returns the final metrics snapshot.
    #[must_use = "the final metrics snapshot is the service's exit report"]
    pub fn shutdown_now(mut self) -> ServiceMetrics {
        {
            let mut st = self.shared.state.lock().expect("service state poisoned");
            st.shutdown = true;
            st.abort = true;
        }
        self.shared.cv.notify_all();
        self.join_threads();
        self.metrics()
    }

    fn shutdown_inner(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("service state poisoned");
            st.shutdown = true;
        }
        self.shared.cv.notify_all();
        self.join_threads();
    }

    /// Joins every service thread after the shutdown flag is up. The
    /// watchdog goes first, so no respawn can race the joins below; all
    /// joins tolerate a panicked thread (this runs from Drop, where a
    /// second panic would abort the process and swallow the original
    /// panic message — outstanding tickets already observe the failure
    /// typed).
    fn join_threads(&mut self) {
        if let Some(handle) = self.watchdog.take() {
            let _ = handle.join();
        }
        let dispatcher = self
            .shared
            .dispatcher
            .lock()
            .expect("dispatcher handle poisoned")
            .take();
        if let Some(handle) = dispatcher {
            let _ = handle.join();
        }
        let scrubber = self
            .shared
            .scrubber
            .lock()
            .expect("scrubber handle poisoned")
            .take();
        if let Some(handle) = scrubber {
            let _ = handle.join();
        }
    }

    /// Test-only: make the dispatcher panic on its next control pop,
    /// exercising the drain guard and the watchdog respawn path.
    #[cfg(test)]
    fn crash_dispatcher(&self) {
        let mut st = self.shared.state.lock().expect("service state poisoned");
        st.control.push_back(Control::Crash);
        drop(st);
        self.shared.cv.notify_all();
    }

    fn tenant_info(&self, tenant: TenantId) -> Result<TenantInfo, BpNttError> {
        self.shared
            .tenants
            .lock()
            .expect("tenant map poisoned")
            .get(&tenant)
            .cloned()
            .ok_or(BpNttError::UnknownTenant { tenant: tenant.0 })
    }

    fn enqueue(&self, req: Request) -> Result<(), BpNttError> {
        let tenant = req.tenant;
        let cost = req.cost;
        // Token-bucket admission runs before queue-depth shedding: a
        // rate-limited tenant is told to back off even when the queue has
        // room, so its burst cannot crowd the shared queue.
        if let Some(limit) = self.shared.rate_limit {
            let now = Instant::now();
            let verdict = {
                let mut buckets = self.shared.buckets.lock().expect("rate buckets poisoned");
                buckets
                    .entry(tenant)
                    .or_insert_with(|| TokenBucket {
                        tokens: limit.burst.max(1.0),
                        last: now,
                    })
                    .admit(limit, now)
            };
            if let Err(retry_after_ms) = verdict {
                let mut m = self.shared.metrics.lock().expect("metrics poisoned");
                m.rejected += 1;
                m.rate_limited += 1;
                m.tenant(tenant).shed += 1;
                return Err(BpNttError::RateLimited {
                    tenant: tenant.0,
                    retry_after_ms,
                });
            }
        }
        let registered = self.shared.tenants.lock().expect("tenants poisoned").len();
        {
            let mut st = self.shared.state.lock().expect("service state poisoned");
            if st.shutdown {
                return Err(BpNttError::ServiceShutdown);
            }
            // Load shedding: the configured threshold of the bounded
            // queue (1.0 = the historical full-queue backpressure).
            // Admission is *tenant-fair*: past the threshold, only
            // tenants at or above their fair share of the congested
            // queue shed; a below-share tenant may still use the
            // `shed_at..max_queue` headroom, so a flooding hot tenant
            // cannot crowd everyone else out of admission (it can still
            // starve itself — its own slots are the ones full).
            let shed_at = ((self.shared.shed_threshold * self.shared.max_queue as f64).floor()
                as usize)
                .min(self.shared.max_queue);
            let fair_share = (shed_at / registered.max(1)).max(1);
            let depth = st.queue.len();
            if depth >= self.shared.max_queue
                || (depth >= shed_at && st.queue.depth_of(tenant) >= fair_share)
            {
                drop(st);
                let mut m = self.shared.metrics.lock().expect("metrics poisoned");
                let retry_after_ms = retry_hint(m.drain_rate, depth);
                m.rejected += 1;
                m.tenant(tenant).shed += 1;
                return Err(BpNttError::Overloaded {
                    depth,
                    capacity: self.shared.max_queue,
                    retry_after_ms,
                });
            }
            st.queue.push(req);
            // Count the submission before the state lock drops: once it
            // does, the dispatcher may complete the request, and a
            // snapshot must never show completed > submitted. (Metrics
            // nests inside state here; nothing locks them the other way
            // round.)
            let depth = st.queue.len();
            let mut m = self.shared.metrics.lock().expect("metrics poisoned");
            m.submitted += 1;
            m.peak_queue_depth = m.peak_queue_depth.max(depth);
            let tc = m.tenant(tenant);
            tc.submitted += 1;
            tc.bytes += cost;
        }
        self.shared.cv.notify_all();
        Ok(())
    }

    /// Enqueues an RNS limb group atomically: every limb request is
    /// admitted or the whole group is shed — a partially-admitted group
    /// would leave the client's [`RnsTicket`] waiting on limbs that
    /// never ran. The group spends **one** rate-limit token (on the
    /// lead limb's bucket): an RNS submission is one logical request,
    /// however many limbs it fans into.
    fn enqueue_rns_group(&self, reqs: Vec<Request>) -> Result<(), BpNttError> {
        let limbs = reqs.len();
        let lead = reqs[0].tenant;
        if let Some(limit) = self.shared.rate_limit {
            let now = Instant::now();
            let verdict = {
                let mut buckets = self.shared.buckets.lock().expect("rate buckets poisoned");
                buckets
                    .entry(lead)
                    .or_insert_with(|| TokenBucket {
                        tokens: limit.burst.max(1.0),
                        last: now,
                    })
                    .admit(limit, now)
            };
            if let Err(retry_after_ms) = verdict {
                let mut m = self.shared.metrics.lock().expect("metrics poisoned");
                m.rejected += 1;
                m.rate_limited += 1;
                m.tenant(lead).shed += 1;
                return Err(BpNttError::RateLimited {
                    tenant: lead.0,
                    retry_after_ms,
                });
            }
        }
        let registered = self.shared.tenants.lock().expect("tenants poisoned").len();
        {
            let mut st = self.shared.state.lock().expect("service state poisoned");
            if st.shutdown {
                return Err(BpNttError::ServiceShutdown);
            }
            let shed_at = ((self.shared.shed_threshold * self.shared.max_queue as f64).floor()
                as usize)
                .min(self.shared.max_queue);
            let fair_share = (shed_at / registered.max(1)).max(1);
            let depth = st.queue.len();
            if depth + limbs > self.shared.max_queue
                || (depth >= shed_at && st.queue.depth_of(lead) >= fair_share)
            {
                drop(st);
                let mut m = self.shared.metrics.lock().expect("metrics poisoned");
                let retry_after_ms = retry_hint(m.drain_rate, depth);
                m.rejected += 1;
                m.tenant(lead).shed += 1;
                return Err(BpNttError::Overloaded {
                    depth,
                    capacity: self.shared.max_queue,
                    retry_after_ms,
                });
            }
            let costs: Vec<(TenantId, u64)> = reqs.iter().map(|r| (r.tenant, r.cost)).collect();
            for req in reqs {
                st.queue.push(req);
            }
            let depth = st.queue.len();
            let mut m = self.shared.metrics.lock().expect("metrics poisoned");
            m.submitted += limbs as u64;
            m.rns_requests += 1;
            m.rns_limbs += limbs as u64;
            m.peak_queue_depth = m.peak_queue_depth.max(depth);
            for (tenant, cost) in costs {
                let tc = m.tenant(tenant);
                tc.submitted += 1;
                tc.bytes += cost;
            }
        }
        self.shared.cv.notify_all();
        Ok(())
    }
}

impl Drop for NttService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Rejects wrong-length and unreduced polynomials at submission time, so
/// a malformed request fails its own submission instead of poisoning the
/// coalesced wave it would have joined.
fn validate_poly(info: &TenantInfo, poly: &[u64]) -> Result<(), BpNttError> {
    if poly.len() != info.n {
        return Err(BpNttError::WrongLength {
            expected: info.n,
            actual: poly.len(),
        });
    }
    if let Some((index, &value)) = poly.iter().enumerate().find(|(_, &v)| v >= info.q) {
        return Err(BpNttError::Unreduced {
            lane: 0,
            index,
            value,
        });
    }
    Ok(())
}

fn tenant_info_of(config: &BpNttConfig) -> TenantInfo {
    TenantInfo {
        n: config.params().n(),
        q: config.params().modulus(),
        layout: config.layout().clone(),
    }
}

/// One registered tenant's dispatcher-side state: the sharded engine and
/// the `(params, layout)` key its artifacts are cached under.
struct TenantEngine {
    engine: ShardedBpNtt,
    key: ProgramCacheKey,
}

/// One `(tenant, spec, mode)` group of a drained wave, executed as a
/// single sharded pipeline call. `slots` is slot-major: one batch per
/// input slot the spec declares.
struct WaveGroup {
    tenant: TenantId,
    spec: PipelineSpec,
    mode: ExecMode,
    slots: Vec<Vec<Vec<u64>>>,
    replies: Vec<TicketSender>,
    /// Any member request was an RNS limb: the group joins the wave's
    /// concurrent RNS fan-out rounds instead of the serial pass.
    rns: bool,
}

/// Both cross-tenant caches: programs keyed by `(params, layout)` and
/// compiled pipelines keyed by `(params, layout, spec)` (a nested map:
/// configuration → spec → pipeline).
#[derive(Default)]
struct SharedArtifacts {
    programs: HashMap<ProgramCacheKey, Vec<(ProgramKey, Arc<CompiledProgram>)>>,
    pipelines: HashMap<ProgramCacheKey, HashMap<PipelineSpec, Arc<CompiledPipeline>>>,
}

impl SharedArtifacts {
    fn pipeline_entries(&self) -> usize {
        self.pipelines.values().map(HashMap::len).sum()
    }
}

/// Dispatcher drop guard: however the dispatcher thread exits — normal
/// drain-mode shutdown (queue already empty), abort-mode shutdown (queue
/// deliberately left populated), or a panic unwinding out of a wave —
/// every request still queued resolves typed. This is the guarantee
/// that a blocked [`Ticket::wait`] can never hang forever on a dead
/// dispatcher.
///
/// The flavor depends on supervision: an unsupervised exit (or any
/// clean shutdown) marks the service shut down and fails the queue with
/// [`BpNttError::ServiceShutdown`]; a **panic under an armed watchdog**
/// fails the queue with [`BpNttError::DispatcherRestarted`] and leaves
/// the shutdown flag alone, so the respawned dispatcher keeps serving
/// new submissions.
struct QueueDrainGuard<'a>(&'a Shared);

impl Drop for QueueDrainGuard<'_> {
    fn drop(&mut self) {
        let respawning = std::thread::panicking() && self.0.health.is_some();
        let drained: Vec<Request> = {
            // A panic while holding the state lock poisons it; the
            // senders inside are then unreachable, but so is the queue —
            // nothing more can be done from here.
            let Ok(mut st) = self.0.state.lock() else {
                return;
            };
            if !respawning {
                st.shutdown = true;
            }
            st.queue.drain_all()
        };
        if drained.is_empty() {
            return;
        }
        if let Ok(mut m) = self.0.metrics.lock() {
            m.failed += drained.len() as u64;
            for r in &drained {
                m.tenant(r.tenant).failed += 1;
            }
        }
        let err = if respawning {
            BpNttError::DispatcherRestarted
        } else {
            BpNttError::ServiceShutdown
        };
        for req in drained {
            req.reply.send(Err(err.clone()));
        }
    }
}

fn spawn_dispatcher(shared: &Arc<Shared>) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name("bpntt-service-dispatcher".into())
        .spawn(move || dispatcher_loop(&shared))
        .expect("spawn service dispatcher")
}

/// The scrubber thread: on every tick, enqueue one [`Control::Scrub`]
/// for the dispatcher (which owns the tenant engines) and wake it. The
/// tick is the finer of the probe and patrol intervals; a deadline (not
/// a plain `wait_timeout` restart) keeps submission-notify traffic from
/// starving the tick.
fn spawn_scrubber(shared: &Arc<Shared>, opts: HealthOptions) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    let tick = opts
        .probe_interval
        .min(opts.patrol_interval)
        .max(Duration::from_millis(1));
    std::thread::Builder::new()
        .name("bpntt-service-scrubber".into())
        .spawn(move || scrubber_loop(&shared, tick))
        .expect("spawn service scrubber")
}

fn scrubber_loop(shared: &Shared, tick: Duration) {
    let mut next = Instant::now() + tick;
    loop {
        {
            let mut st = shared.state.lock().expect("service state poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                let now = Instant::now();
                if now >= next {
                    break;
                }
                let (guard, _) = shared
                    .cv
                    .wait_timeout(st, next - now)
                    .expect("service state poisoned");
                st = guard;
            }
            if !st.control.iter().any(|c| matches!(c, Control::Scrub)) {
                st.control.push_back(Control::Scrub);
            }
        }
        shared.cv.notify_all();
        next = Instant::now() + tick;
    }
}

/// How often the watchdog checks its wards' pulses.
const WATCHDOG_TICK: Duration = Duration::from_millis(10);

fn spawn_watchdog(shared: &Arc<Shared>) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name("bpntt-service-watchdog".into())
        .spawn(move || watchdog_loop(&shared))
        .expect("spawn service watchdog")
}

fn watchdog_loop(shared: &Arc<Shared>) {
    loop {
        {
            let st = shared.state.lock().expect("service state poisoned");
            if st.shutdown {
                return;
            }
            let (st, _) = shared
                .cv
                .wait_timeout(st, WATCHDOG_TICK)
                .expect("service state poisoned");
            if st.shutdown {
                return;
            }
        }
        if !revive(shared, &shared.dispatcher, spawn_dispatcher) {
            return;
        }
        let spawn_scrub = |shared: &Arc<Shared>| {
            let opts = shared.health.expect("watchdog only runs supervised");
            spawn_scrubber(shared, opts)
        };
        if !revive(shared, &shared.scrubber, spawn_scrub) {
            return;
        }
    }
}

/// Respawns one supervised thread if it died. Returns `false` when the
/// service turned out to be shutting down (the watchdog should exit).
fn revive(
    shared: &Arc<Shared>,
    slot: &Mutex<Option<JoinHandle<()>>>,
    spawn: impl Fn(&Arc<Shared>) -> JoinHandle<()>,
) -> bool {
    let dead = slot
        .lock()
        .expect("thread handle poisoned")
        .as_ref()
        .is_some_and(JoinHandle::is_finished);
    if !dead {
        return true;
    }
    // Join outside the handle lock (the handle is finished, so this
    // cannot block meaningfully) to collect the panic payload.
    let handle = slot.lock().expect("thread handle poisoned").take();
    if let Some(h) = handle {
        let _ = h.join();
    }
    // A thread that exited because the service is shutting down must
    // stay down.
    if shared
        .state
        .lock()
        .expect("service state poisoned")
        .shutdown
    {
        return false;
    }
    shared.metrics.lock().expect("metrics poisoned").respawns += 1;
    *slot.lock().expect("thread handle poisoned") = Some(spawn(shared));
    shared.cv.notify_all();
    true
}

/// Harvests every tenant engine's health counters (absolute sums) and
/// the default tenant's per-shard health states into the metrics
/// snapshot.
fn harvest_health(shared: &Shared, engines: &HashMap<TenantId, TenantEngine>) {
    let mut totals = HealthCounters::default();
    for te in engines.values() {
        let c = te.engine.health_counters();
        totals.probes_run += c.probes_run;
        totals.probes_passed += c.probes_passed;
        totals.reintegrations += c.reintegrations;
        totals.canary_demotions += c.canary_demotions;
        totals.patrol_probes += c.patrol_probes;
        totals.patrol_quarantines += c.patrol_quarantines;
    }
    let shard_health: Vec<u8> = engines
        .get(&TenantId(0))
        .map(|te| {
            te.engine
                .shard_health()
                .iter()
                .map(|s| s.as_code())
                .collect()
        })
        .unwrap_or_default();
    let mut m = shared.metrics.lock().expect("metrics poisoned");
    m.health = totals;
    m.shard_health = shard_health;
}

fn dispatcher_loop(shared: &Shared) {
    let shards = shared.shards;
    let _guard = QueueDrainGuard(shared);
    let mut engines: HashMap<TenantId, TenantEngine> = HashMap::new();
    let mut cache = SharedArtifacts::default();
    // Rebuild every registered tenant's engine under its original id —
    // a no-op on first spawn (empty registry), the recovery path after
    // a watchdog respawn. A tenant whose engine fails to rebuild stays
    // registered; its waves fail typed with `UnknownTenant`.
    let mut next_tenant: u32 = 0;
    let registry: Vec<(TenantId, BpNttConfig, BackendKind)> =
        shared.registry.lock().expect("registry poisoned").clone();
    for (id, config, backend) in &registry {
        next_tenant = next_tenant.max(id.0 + 1);
        if let Ok(te) = build_engine(shared, config, *backend, shards, &mut cache) {
            engines.insert(*id, te);
        }
    }
    loop {
        enum Action {
            Control(Control),
            Work,
            Exit,
        }
        let action = {
            let mut st = shared.state.lock().expect("service state poisoned");
            loop {
                if let Some(ctrl) = st.control.pop_front() {
                    break Action::Control(ctrl);
                }
                if st.shutdown && st.abort {
                    // Immediate shutdown: the drop guard fails whatever
                    // is still queued, typed.
                    break Action::Exit;
                }
                if !st.queue.is_empty() {
                    break Action::Work;
                }
                if st.shutdown {
                    break Action::Exit;
                }
                st = shared.cv.wait(st).expect("service state poisoned");
            }
        };
        match action {
            Action::Exit => break,
            Action::Control(Control::AddTenant {
                config,
                backend,
                reply,
            }) => {
                let result = register_tenant(
                    shared,
                    &config,
                    backend,
                    shards,
                    &mut engines,
                    &mut cache,
                    &mut next_tenant,
                );
                let _ = reply.send(result);
            }
            Action::Control(Control::Scrub) => {
                for te in engines.values_mut() {
                    let _ = te.engine.scrub_pass();
                }
                harvest_health(shared, &engines);
            }
            #[cfg(test)]
            Action::Control(Control::Crash) => {
                panic!("dispatcher crash requested (test control)");
            }
            Action::Work => {
                // Coalesce: wait (bounded) until the queue could fill
                // every lane of the widest tenant engine, then drain one
                // fair round of at most that many requests — a wave's
                // worth, deficit-round-robin across tenants, so a deep
                // hot-tenant backlog cannot monopolize the next wave.
                let target = engines
                    .values()
                    .map(|t| t.engine.lanes_total())
                    .max()
                    .unwrap_or(1)
                    .min(shared.max_queue.max(1));
                let (dead, drained) = {
                    let mut st = shared.state.lock().expect("service state poisoned");
                    // Shed dead work (expired deadlines, cancelled
                    // tickets) from the whole queue first, so it neither
                    // joins this wave nor blocks live requests behind it.
                    let dead = st.queue.remove_dead(Instant::now());
                    let deadline = Instant::now() + shared.coalesce_window;
                    while !st.shutdown && st.control.is_empty() && st.queue.len() < target {
                        // Never coalesce past the earliest per-request
                        // deadline: a tight-deadline request would expire
                        // while the dispatcher idles waiting for company.
                        let cutoff = st
                            .queue
                            .earliest_deadline()
                            .map_or(deadline, |d| d.min(deadline));
                        let remaining = cutoff.saturating_duration_since(Instant::now());
                        if remaining.is_zero() {
                            break;
                        }
                        let (guard, _) = shared
                            .cv
                            .wait_timeout(st, remaining)
                            .expect("service state poisoned");
                        st = guard;
                    }
                    let mut drained = Vec::new();
                    if !st.abort {
                        st.queue.drain_round(target.max(1), &mut drained);
                    }
                    (dead, drained)
                };
                resolve_dead(shared, dead);
                if !drained.is_empty() {
                    execute_wave(shared, &mut engines, &mut cache, drained);
                }
            }
        }
    }
}

/// Resolves requests [`FairQueue::remove_dead`] shed: expired ones fail
/// typed with their lateness, cancelled ones with
/// [`BpNttError::Cancelled`] (nobody reads it — the count is the
/// observable).
fn resolve_dead(shared: &Shared, dead: Vec<Request>) {
    if dead.is_empty() {
        return;
    }
    let now = Instant::now();
    for req in dead {
        let expired = req.deadline.filter(|&d| d <= now);
        {
            let mut m = shared.metrics.lock().expect("metrics poisoned");
            if expired.is_some() {
                m.failed += 1;
                m.deadline_expired += 1;
                let tc = m.tenant(req.tenant);
                tc.failed += 1;
                tc.deadline_expired += 1;
            } else {
                m.cancelled += 1;
                m.tenant(req.tenant).cancelled += 1;
            }
        }
        match expired {
            Some(d) => {
                let late_ms = now.saturating_duration_since(d).as_millis() as u64;
                req.reply.send(Err(BpNttError::DeadlineExpired { late_ms }));
            }
            None => req.reply.send(Err(BpNttError::Cancelled)),
        }
    }
}

fn register_tenant(
    shared: &Shared,
    config: &BpNttConfig,
    backend: BackendKind,
    shards: usize,
    engines: &mut HashMap<TenantId, TenantEngine>,
    cache: &mut SharedArtifacts,
    next_tenant: &mut u32,
) -> Result<TenantId, BpNttError> {
    let info = tenant_info_of(config);
    let te = build_engine(shared, config, backend, shards, cache)?;
    let id = TenantId(*next_tenant);
    *next_tenant += 1;
    shared
        .tenants
        .lock()
        .expect("tenant map poisoned")
        .insert(id, info);
    // Record the full configuration so a watchdog-respawned dispatcher
    // can rebuild this engine under the same id.
    shared
        .registry
        .lock()
        .expect("registry poisoned")
        .push((id, config.clone(), backend));
    // Seed the per-tenant metrics slice so a registered-but-idle tenant
    // appears (zeroed) in every snapshot.
    let _ = shared.metrics.lock().expect("metrics poisoned").tenant(id);
    engines.insert(id, te);
    Ok(id)
}

/// Builds one tenant's sharded engine: recovery ladder, fault plan, and
/// health options applied, programs and pipelines imported from the
/// cross-tenant cache (or compiled and published on a miss).
fn build_engine(
    shared: &Shared,
    config: &BpNttConfig,
    backend: BackendKind,
    shards: usize,
    cache: &mut SharedArtifacts,
) -> Result<TenantEngine, BpNttError> {
    let mut engine = ShardedBpNtt::with_backend(config, shards, backend)?;
    if shared.recovery.is_active() {
        engine.set_recovery(shared.recovery);
    }
    if let Some(plan) = &shared.fault_plan {
        engine.install_fault_plan(plan);
    }
    if let Some(h) = shared.health {
        engine.set_health_options(h);
    }
    let key = ProgramCacheKey::of(config, backend);
    if let Some(progs) = cache.programs.get(&key) {
        engine.import_programs(progs);
        // Identical configuration: every compiled pipeline of that
        // configuration installs too.
        if let Some(pipes) = cache.pipelines.get(&key) {
            for pipe in pipes.values() {
                engine.import_pipeline(pipe);
            }
        }
        let mut m = shared.metrics.lock().expect("metrics poisoned");
        m.program_cache_hits += 1;
        m.pipeline_cache_hits += 1;
    } else {
        // Warm the canned specs every tenant is expected to run;
        // polymul only when two operand slots fit the layout.
        let mut warmed = vec![
            engine.warm_pipeline(&PipelineSpec::forward_ntt())?,
            engine.warm_pipeline(&PipelineSpec::roundtrip())?,
        ];
        if PipelineSpec::polymul()
            .check(config.layout(), config.params().modulus())
            .is_ok()
        {
            warmed.push(engine.warm_pipeline(&PipelineSpec::polymul())?);
        }
        cache.programs.insert(key, engine.export_programs());
        let by_spec = cache.pipelines.entry(key).or_default();
        for pipe in warmed {
            by_spec.insert(pipe.spec().clone(), pipe);
        }
        let mut m = shared.metrics.lock().expect("metrics poisoned");
        m.program_cache_entries = cache.programs.len();
        m.pipeline_cache_entries = cache.pipeline_entries();
    }
    Ok(TenantEngine { engine, key })
}

/// Executes one drained wave: requests are grouped by
/// `(tenant, spec, mode)` preserving submission order inside each group,
/// each group runs as **one** sharded pipeline call (the whole op-graph
/// per lane, operands loaded once, one read-back), and every ticket
/// receives its own result (or the group's error). Novel specs resolve
/// through the cross-tenant `(params, layout, spec)` pipeline cache —
/// import on a hit, compile-and-publish on a miss.
fn execute_wave(
    shared: &Shared,
    engines: &mut HashMap<TenantId, TenantEngine>,
    cache: &mut SharedArtifacts,
    drained: Vec<Request>,
) {
    let mut groups: Vec<WaveGroup> = Vec::new();
    let mut index: HashMap<(TenantId, PipelineSpec, ExecMode), usize> = HashMap::new();
    let now = Instant::now();
    for req in drained {
        let Request {
            tenant,
            spec,
            mode,
            inputs,
            reply,
            deadline,
            cost: _,
            rns,
        } = req;
        if let Some(d) = deadline {
            // Expired in the queue: fail typed before the request costs
            // a lane. Deadlines bound queueing, not execution — only
            // cancellation (below) can abort a running wave.
            if d <= now {
                let late_ms = now.saturating_duration_since(d).as_millis() as u64;
                {
                    let mut m = shared.metrics.lock().expect("metrics poisoned");
                    m.failed += 1;
                    m.deadline_expired += 1;
                    let tc = m.tenant(tenant);
                    tc.failed += 1;
                    tc.deadline_expired += 1;
                }
                reply.send(Err(BpNttError::DeadlineExpired { late_ms }));
                continue;
            }
        }
        if reply.is_cancelled() {
            // The waiter disconnected between drain and execution: shed
            // instead of spending a lane on an unread result.
            {
                let mut m = shared.metrics.lock().expect("metrics poisoned");
                m.cancelled += 1;
                m.tenant(tenant).cancelled += 1;
            }
            reply.send(Err(BpNttError::Cancelled));
            continue;
        }
        let slot = *index
            .entry((tenant, spec.clone(), mode))
            .or_insert_with(|| {
                groups.push(WaveGroup {
                    tenant,
                    slots: vec![Vec::new(); spec.input_slots().len()],
                    spec,
                    mode,
                    replies: Vec::new(),
                    rns: false,
                });
                groups.len() - 1
            });
        let g = &mut groups[slot];
        g.rns |= rns;
        debug_assert_eq!(inputs.len(), g.slots.len(), "validated at submission");
        for (slot_batch, poly) in g.slots.iter_mut().zip(inputs) {
            slot_batch.push(poly);
        }
        g.replies.push(reply);
    }
    // Partition: plain groups run back to back (the historical serial
    // pass); RNS limb groups fan out concurrently in rounds of distinct
    // tenants — the limbs of one big-modulus request live on independent
    // engines, so they can share the wall-clock window instead of
    // queueing behind each other.
    let (rns_groups, serial): (Vec<WaveGroup>, Vec<WaveGroup>) =
        groups.into_iter().partition(|g| g.rns);
    for group in serial {
        let Some(te) = engines.get_mut(&group.tenant) else {
            fail_unknown_tenant(shared, group);
            continue;
        };
        match resolve_pipeline(shared, te, cache, &group.spec) {
            Ok(()) => run_group(shared, &mut te.engine, group),
            Err(e) => fail_group(shared, group, &e),
        }
    }
    // RNS fan-out: resolve every group's pipeline first (the cache needs
    // exclusive access), then execute rounds of groups with pairwise
    // distinct tenants — scoped threads over disjoint engines. Two
    // groups on the same limb tenant land in different rounds.
    let mut ready: Vec<WaveGroup> = Vec::new();
    for group in rns_groups {
        let Some(te) = engines.get_mut(&group.tenant) else {
            fail_unknown_tenant(shared, group);
            continue;
        };
        match resolve_pipeline(shared, te, cache, &group.spec) {
            Ok(()) => ready.push(group),
            Err(e) => fail_group(shared, group, &e),
        }
    }
    while !ready.is_empty() {
        let mut seen: HashSet<TenantId> = HashSet::new();
        let mut round: Vec<WaveGroup> = Vec::new();
        let mut rest: Vec<WaveGroup> = Vec::new();
        for g in ready {
            if seen.insert(g.tenant) {
                round.push(g);
            } else {
                rest.push(g);
            }
        }
        ready = rest;
        // Pair each group with its engine in one mutable pass — tenants
        // in a round are distinct, so the borrows are disjoint.
        let mut by_tenant: HashMap<TenantId, &mut TenantEngine> = engines
            .iter_mut()
            .filter(|(id, _)| seen.contains(id))
            .map(|(id, te)| (*id, te))
            .collect();
        let pairs: Vec<(&mut TenantEngine, WaveGroup)> = round
            .into_iter()
            .map(|g| {
                let te = by_tenant.remove(&g.tenant).expect("engine resolved above");
                (te, g)
            })
            .collect();
        // Fan-out accounting before the spawn: how full this concurrent
        // window is across every participating engine's lanes.
        let cap_sum: usize = pairs
            .iter()
            .map(|(te, _)| te.engine.lanes_total().max(1))
            .sum();
        let busy_sum: usize = pairs
            .iter()
            .map(|(te, g)| g.replies.len().min(te.engine.lanes_total().max(1)))
            .sum();
        {
            let mut m = shared.metrics.lock().expect("metrics poisoned");
            m.rns_fanout_waves += 1;
            m.rns_fanout_occupancy_sum += (busy_sum as f64 / cap_sum.max(1) as f64).min(1.0);
        }
        std::thread::scope(|scope| {
            for (te, group) in pairs {
                scope.spawn(move || run_group(shared, &mut te.engine, group));
            }
        });
    }
    // Waves move the health machine too (faults scored, quarantines,
    // canary credit): refresh the published counters and shard states.
    harvest_health(shared, engines);
}

/// Fails every ticket of a group whose tenant has no engine.
/// Unreachable in practice — submission validates tenants — but still
/// counted as failures so `submitted == completed + failed` holds.
fn fail_unknown_tenant(shared: &Shared, group: WaveGroup) {
    {
        let mut m = shared.metrics.lock().expect("metrics poisoned");
        m.failed += group.replies.len() as u64;
    }
    for reply in group.replies {
        reply.send(Err(BpNttError::UnknownTenant {
            tenant: group.tenant.0,
        }));
    }
}

/// Fails every ticket of a group with one shared (pre-execution) error.
fn fail_group(shared: &Shared, group: WaveGroup, e: &BpNttError) {
    {
        let mut m = shared.metrics.lock().expect("metrics poisoned");
        m.failed += group.replies.len() as u64;
    }
    for reply in group.replies {
        reply.send(Err(e.clone()));
    }
}

/// Resolves a spec's compiled pipeline through the cross-tenant cache
/// before the timed engine call: a spec another tenant of this
/// configuration already compiled imports in O(segments); a genuinely
/// novel spec compiles once here and is published for everyone.
fn resolve_pipeline(
    shared: &Shared,
    te: &mut TenantEngine,
    cache: &mut SharedArtifacts,
    spec: &PipelineSpec,
) -> Result<(), BpNttError> {
    if te.engine.has_pipeline(spec) {
        return Ok(());
    }
    let cached = cache
        .pipelines
        .get(&te.key)
        .and_then(|by_spec| by_spec.get(spec))
        .cloned();
    if let Some(pipe) = cached {
        te.engine.import_pipeline(&pipe);
        let mut m = shared.metrics.lock().expect("metrics poisoned");
        m.pipeline_cache_hits += 1;
    } else {
        let pipe = te.engine.warm_pipeline(spec)?;
        cache
            .pipelines
            .entry(te.key)
            .or_default()
            .insert(spec.clone(), pipe);
        // Publish any newly traced segment programs too.
        cache.programs.insert(te.key, te.engine.export_programs());
        let mut m = shared.metrics.lock().expect("metrics poisoned");
        m.pipeline_cache_entries = cache.pipeline_entries();
    }
    Ok(())
}

/// Runs one resolved group as a single sharded pipeline call and
/// resolves every ticket — the timed leg of both the serial pass and
/// the concurrent RNS rounds (engines are disjoint there, so this runs
/// on scoped threads; all counters live behind the metrics lock).
fn run_group(shared: &Shared, engine: &mut ShardedBpNtt, group: WaveGroup) {
    let capacity = engine.lanes_total().max(1);
    let batch = group.replies.len();
    let slot_refs: Vec<&[Vec<u64>]> = group.slots.iter().map(Vec::as_slice).collect();
    // A group whose every waiter disconnects mid-wave aborts: the
    // workers stop claiming chunks and the call returns `Cancelled`.
    let replies = &group.replies;
    let all_cancelled = move || replies.iter().all(TicketSender::is_cancelled);
    let t = Instant::now();
    let result =
        engine.run_pipeline_batch_cancellable(&group.spec, group.mode, &slot_refs, &all_cancelled);
    let elapsed = t.elapsed().as_secs_f64();
    {
        let mut m = shared.metrics.lock().expect("metrics poisoned");
        m.waves += 1;
        m.wave_polys += batch as u64;
        m.occupancy_sum += (batch as f64 / capacity as f64).min(1.0);
        m.busy_secs += elapsed;
        // Drain-rate EWMA: the basis of retry_after_ms hints handed
        // to shed clients.
        let rate = batch as f64 / elapsed.max(1e-6);
        m.drain_rate = if m.drain_rate == 0.0 {
            rate
        } else {
            0.2 * rate + 0.8 * m.drain_rate
        };
        for &s in engine.last_wave_shard_secs() {
            if m.shard_secs.len() == SHARD_SAMPLE_WINDOW {
                m.shard_secs.pop_front();
            }
            m.shard_secs.push_back(s);
        }
        // Harvest what the recovery ladder did during this wave.
        let rep = engine.last_recovery();
        m.faults_detected += rep.faults_detected;
        m.retries += rep.retries;
        m.fallback_polys += rep.fallback_polys;
        m.verify_secs += rep.verify_secs;
        // Quarantine is a level, not a count: report the high-water
        // mark across waves and tenant engines.
        m.quarantined_shards = m.quarantined_shards.max(rep.quarantined_shards);
        match &result {
            Ok(_) => {
                m.completed += batch as u64;
                m.tenant(group.tenant).completed += batch as u64;
            }
            Err(BpNttError::Cancelled) => {
                m.cancelled += batch as u64;
                m.tenant(group.tenant).cancelled += batch as u64;
            }
            Err(_) => {
                m.failed += batch as u64;
                m.tenant(group.tenant).failed += batch as u64;
            }
        }
    }
    match result {
        Ok(outs) => {
            debug_assert_eq!(outs.len(), group.replies.len());
            for (reply, out) in group.replies.into_iter().zip(outs) {
                reply.send(Ok(out));
            }
        }
        Err(e) => {
            for reply in group.replies {
                reply.send(Err(e.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpntt_ntt::forward::ntt_in_place;
    use bpntt_ntt::{NttParams, Polynomial, TwiddleTable};

    fn config8() -> BpNttConfig {
        BpNttConfig::new(32, 32, 8, NttParams::new(8, 97).unwrap()).unwrap()
    }

    fn pseudo(n: usize, q: u64, seed: u64) -> Vec<u64> {
        Polynomial::pseudo_random(&NttParams::new(n, q).unwrap(), seed).into_coeffs()
    }

    #[test]
    fn forward_submission_round_trips() {
        let service = NttService::start(&config8(), ServiceOptions::default()).unwrap();
        let params = NttParams::new(8, 97).unwrap();
        let t = TwiddleTable::new(&params);
        let tickets: Vec<(Vec<u64>, Ticket)> = (0..10)
            .map(|s| {
                let p = pseudo(8, 97, s + 1);
                let ticket = service.submit_forward(p.clone()).unwrap();
                (p, ticket)
            })
            .collect();
        for (p, ticket) in tickets {
            let mut expect = p;
            ntt_in_place(&params, &t, &mut expect).unwrap();
            assert_eq!(ticket.wait().unwrap(), expect);
        }
        let m = service.shutdown();
        assert_eq!(m.completed, 10);
        assert_eq!(m.failed, 0);
        assert!(m.waves >= 1);
        assert!(m.polys_per_sec > 0.0);
    }

    #[test]
    fn submission_validates_before_enqueue() {
        let service = NttService::start(&config8(), ServiceOptions::default()).unwrap();
        assert!(matches!(
            service.submit_forward(vec![0; 7]),
            Err(BpNttError::WrongLength {
                expected: 8,
                actual: 7
            })
        ));
        assert!(matches!(
            service.submit_forward(vec![97; 8]),
            Err(BpNttError::Unreduced { value: 97, .. })
        ));
        assert!(matches!(
            service.submit_forward_as(TenantId(99), vec![0; 8]),
            Err(BpNttError::UnknownTenant { tenant: 99 })
        ));
        let m = service.shutdown();
        assert_eq!(m.submitted, 0, "invalid requests never enter the queue");
    }

    #[test]
    fn zero_capacity_queue_rejects_with_overloaded() {
        let service = NttService::start(
            &config8(),
            ServiceOptions {
                max_queue: 0,
                ..ServiceOptions::default()
            },
        )
        .unwrap();
        match service.submit_forward(pseudo(8, 97, 1)) {
            Err(BpNttError::Overloaded {
                depth: 0,
                capacity: 0,
                retry_after_ms,
            }) => assert!(retry_after_ms >= 1, "back-off hint must be nonzero"),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        let m = service.shutdown();
        assert_eq!(m.rejected, 1);
    }

    #[test]
    fn rate_limit_sheds_typed_with_retry_hint() {
        let service = NttService::start(
            &config8(),
            ServiceOptions {
                rate_limit: Some(RateLimit {
                    requests_per_sec: 0.001, // effectively no refill mid-test
                    burst: 2.0,
                }),
                ..ServiceOptions::default()
            },
        )
        .unwrap();
        let a = service.submit_forward(pseudo(8, 97, 1)).unwrap();
        let b = service.submit_forward(pseudo(8, 97, 2)).unwrap();
        match service.submit_forward(pseudo(8, 97, 3)) {
            Err(BpNttError::RateLimited {
                tenant: 0,
                retry_after_ms,
            }) => assert!(retry_after_ms >= 1),
            other => panic!("expected RateLimited, got {other:?}"),
        }
        assert!(a.wait().is_ok());
        assert!(b.wait().is_ok());
        let m = service.shutdown();
        assert_eq!(m.rate_limited, 1);
        assert_eq!(m.rejected, 1);
        assert_eq!(m.completed, 2);
        let t0 = &m.per_tenant[0];
        assert_eq!(t0.tenant, 0);
        assert_eq!(t0.submitted, 2);
        assert_eq!(t0.shed, 1);
        assert_eq!(t0.completed, 2);
        assert!(t0.bytes >= 2 * 64);
    }

    #[test]
    fn shutdown_now_fails_queued_typed_and_unblocks_waiters() {
        // Regression: a request still queued at shutdown must resolve a
        // blocked `Ticket::wait` with a typed ServiceShutdown, never hang.
        let service = NttService::start(
            &config8(),
            ServiceOptions {
                // Long window so the requests are still queued when the
                // abort lands.
                coalesce_window: Duration::from_secs(30),
                ..ServiceOptions::default()
            },
        )
        .unwrap();
        let blocked = service.submit_forward(pseudo(8, 97, 1)).unwrap();
        let queued = service.submit_forward(pseudo(8, 97, 2)).unwrap();
        let waiter = std::thread::spawn(move || blocked.wait());
        // Give the waiter time to actually park in wait().
        std::thread::sleep(Duration::from_millis(50));
        let m = service.shutdown_now();
        assert!(matches!(
            waiter.join().unwrap(),
            Err(BpNttError::ServiceShutdown)
        ));
        assert!(matches!(queued.wait(), Err(BpNttError::ServiceShutdown)));
        assert_eq!(m.completed, 0, "abort mode must not execute queued work");
        assert_eq!(m.failed, 2);
    }

    #[test]
    fn dropped_ticket_cancels_queued_request() {
        let service = NttService::start(
            &config8(),
            ServiceOptions {
                coalesce_window: Duration::from_secs(30),
                ..ServiceOptions::default()
            },
        )
        .unwrap();
        let doomed = service.submit_forward(pseudo(8, 97, 1)).unwrap();
        drop(doomed); // client disconnected
        let fine = service.submit_forward(pseudo(8, 97, 2)).unwrap();
        // Drain-mode shutdown: the live request completes, the cancelled
        // one is shed without costing a lane.
        let m = service.shutdown();
        assert!(fine.wait().is_ok());
        assert_eq!(m.completed, 1);
        assert_eq!(m.cancelled, 1);
        assert_eq!(m.per_tenant[0].cancelled, 1);
    }

    #[test]
    fn wait_timeout_clamps_to_request_deadline() {
        // Regression: a caller could wait far past its own deadline
        // before learning of DeadlineExpired. Channel-level check: the
        // sender stays unanswered, so only the deadline clamp can end
        // this wait — a broken clamp would run the full 60 s.
        let deadline = Instant::now() + Duration::from_millis(30);
        let (ticket, sender) = Ticket::channel(Some(deadline));
        let t = Instant::now();
        let got = ticket.wait_timeout(Duration::from_secs(60));
        let waited = t.elapsed();
        assert!(matches!(got, Some(Err(BpNttError::DeadlineExpired { .. }))));
        assert!(
            waited < Duration::from_secs(10),
            "wait_timeout must clamp to the 30ms deadline, waited {waited:?}"
        );
        assert!(
            sender.is_cancelled(),
            "local expiry must mark the request shed-able"
        );
        // A result arriving after the local expiry is discarded — the
        // slot is spent and never yields a success.
        sender.send(Ok(vec![1]));
        match ticket.try_wait() {
            None | Some(Err(_)) => {}
            Some(Ok(_)) => panic!("spent ticket must not deliver a late result"),
        }
        // And a *plain* timeout (no deadline) still reports None.
        let (plain, _keep) = Ticket::channel(None);
        assert!(plain.wait_timeout(Duration::from_millis(5)).is_none());
    }

    #[test]
    fn fair_queue_interleaves_tenants_per_round() {
        // Direct DRR check: tenant 0 floods 6 requests, tenant 1 queues
        // 2; with one quantum covering one request, a 4-request round
        // takes 2 from each instead of 4 from the flooder.
        let mk = |tenant: u32, seed: u64| {
            let (_t, reply) = Ticket::channel(None);
            Request {
                tenant: TenantId(tenant),
                spec: PipelineSpec::forward_ntt(),
                mode: ExecMode::Replay,
                inputs: vec![pseudo(8, 97, seed)],
                reply,
                deadline: None,
                cost: 64,
                rns: false,
            }
        };
        let mut q = FairQueue::new(64);
        for s in 0..6 {
            q.push(mk(0, s + 1));
        }
        for s in 0..2 {
            q.push(mk(1, s + 10));
        }
        assert_eq!(q.len(), 8);
        let mut round = Vec::new();
        q.drain_round(4, &mut round);
        let hot = round.iter().filter(|r| r.tenant == TenantId(0)).count();
        let cold = round.iter().filter(|r| r.tenant == TenantId(1)).count();
        assert_eq!((hot, cold), (2, 2), "DRR must interleave the tenants");
        // Tenant 1 empties out; the rest of the backlog belongs to 0.
        let mut rest = Vec::new();
        q.drain_round(10, &mut rest);
        assert_eq!(rest.len(), 4);
        assert!(rest.iter().all(|r| r.tenant == TenantId(0)));
        assert!(q.is_empty());
    }

    #[test]
    fn fair_service_completes_all_tenants_under_hot_flood() {
        // End-to-end: a hot tenant floods, a cold tenant trickles; both
        // complete everything and the per-tenant slices account for it.
        let service = NttService::start(&config8(), ServiceOptions::default()).unwrap();
        let cold = service.add_tenant(&config8()).unwrap();
        let mut tickets = Vec::new();
        for s in 0..40 {
            tickets.push(service.submit_forward(pseudo(8, 97, s + 1)).unwrap());
        }
        for s in 0..4 {
            tickets.push(
                service
                    .submit_forward_as(cold, pseudo(8, 97, s + 100))
                    .unwrap(),
            );
        }
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        let m = service.shutdown();
        assert_eq!(m.completed, 44);
        assert_eq!(m.per_tenant.len(), 2);
        assert_eq!(m.per_tenant[0].completed, 40);
        assert_eq!(m.per_tenant[1].completed, 4);
        assert_eq!(m.per_tenant[1].tenant, cold.raw());
    }

    #[test]
    fn polymul_capacity_is_checked_at_submit() {
        // 16 rows cannot host 2·8 + 6: polymul must be rejected eagerly.
        let tight = BpNttConfig::new(16, 32, 8, NttParams::new(8, 97).unwrap()).unwrap();
        let service = NttService::start(&tight, ServiceOptions::default()).unwrap();
        assert!(matches!(
            service.submit_polymul(pseudo(8, 97, 1), pseudo(8, 97, 2)),
            Err(BpNttError::CapacityExceeded { .. })
        ));
        // Forward still works on the same tenant.
        let ticket = service.submit_forward(pseudo(8, 97, 3)).unwrap();
        assert_eq!(ticket.wait().unwrap().len(), 8);
    }

    #[test]
    fn zero_deadline_expires_typed_without_blocking() {
        let service = NttService::start(
            &config8(),
            ServiceOptions {
                coalesce_window: Duration::from_millis(20),
                ..ServiceOptions::default()
            },
        )
        .unwrap();
        let doomed = service
            .submit_pipeline(
                PipelineRequest::new(PipelineSpec::forward_ntt(), vec![pseudo(8, 97, 1)])
                    .with_deadline(Duration::ZERO),
            )
            .unwrap();
        // A generous-deadline companion still completes in the same wave.
        let fine = service
            .submit_pipeline(
                PipelineRequest::new(PipelineSpec::forward_ntt(), vec![pseudo(8, 97, 2)])
                    .with_deadline(Duration::from_secs(30)),
            )
            .unwrap();
        assert!(matches!(
            doomed.wait(),
            Err(BpNttError::DeadlineExpired { .. })
        ));
        assert_eq!(fine.wait().unwrap().len(), 8);
        let m = service.shutdown();
        assert_eq!(m.deadline_expired, 1);
        assert_eq!(m.failed, 1);
        assert_eq!(m.completed, 1);
    }

    #[test]
    fn chaos_plan_with_verification_completes_all_requests_correctly() {
        let plan = FaultPlan::seeded(0xD15EA5E).transient_rate(1e-4);
        let service = NttService::start(
            &config8(),
            ServiceOptions {
                shards: 2,
                verify: VerifyPolicy::Full,
                retry_budget: 2,
                fault_plan: Some(plan),
                ..ServiceOptions::default()
            },
        )
        .unwrap();
        let params = NttParams::new(8, 97).unwrap();
        let t = TwiddleTable::new(&params);
        let tickets: Vec<(Vec<u64>, Ticket)> = (0..48)
            .map(|s| {
                let p = pseudo(8, 97, s + 1);
                let ticket = service.submit_forward(p.clone()).unwrap();
                (p, ticket)
            })
            .collect();
        for (p, ticket) in tickets {
            let mut expect = p;
            ntt_in_place(&params, &t, &mut expect).unwrap();
            assert_eq!(
                ticket.wait().unwrap(),
                expect,
                "no corrupted result escapes"
            );
        }
        let m = service.shutdown();
        assert_eq!(m.completed, 48, "every request completes despite faults");
        assert_eq!(m.failed, 0);
        assert!(m.verify_ms > 0.0, "verification time was accounted");
        let json = m.to_json();
        assert!(json.contains("\"faults_detected\""));
        assert!(json.contains("\"verify_ms\""));
    }

    #[test]
    fn shutdown_drains_pending_requests() {
        let service = NttService::start(
            &config8(),
            ServiceOptions {
                // A long window so requests are still queued at shutdown.
                coalesce_window: Duration::from_secs(5),
                ..ServiceOptions::default()
            },
        )
        .unwrap();
        let tickets: Vec<Ticket> = (0..3)
            .map(|s| service.submit_forward(pseudo(8, 97, s + 40)).unwrap())
            .collect();
        let m = service.shutdown();
        assert_eq!(m.completed, 3, "shutdown must drain the queue first");
        for ticket in tickets {
            assert!(ticket.wait().is_ok());
        }
    }

    /// A minimal single-future executor: polls with a parker-backed
    /// waker, parking the thread between wakes. Exercises the real waker
    /// path — `poll` must register the waker and the dispatcher's send
    /// must wake it, or this blocks forever (caught by the spin guard).
    fn block_on<F: std::future::Future>(fut: F) -> F::Output {
        use std::task::{Context, Poll, Wake, Waker};

        struct ThreadWaker(std::thread::Thread);
        impl Wake for ThreadWaker {
            fn wake(self: std::sync::Arc<Self>) {
                self.0.unpark();
            }
        }

        let waker = Waker::from(std::sync::Arc::new(ThreadWaker(std::thread::current())));
        let mut cx = Context::from_waker(&waker);
        let mut fut = std::pin::pin!(fut);
        let mut polls = 0u32;
        loop {
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(v) => return v,
                Poll::Pending => {
                    polls += 1;
                    assert!(polls < 10_000, "future never completed");
                    // Park with a timeout so a lost wake fails the spin
                    // guard instead of hanging the suite.
                    std::thread::park_timeout(Duration::from_millis(10));
                }
            }
        }
    }

    #[test]
    fn tickets_are_futures() {
        let service = NttService::start(&config8(), ServiceOptions::default()).unwrap();
        let params = NttParams::new(8, 97).unwrap();
        let t = TwiddleTable::new(&params);

        // Single await resolves to the transform.
        let poly = pseudo(8, 97, 77);
        let ticket = service.submit_forward(poly.clone()).unwrap();
        let mut expect = poly;
        ntt_in_place(&params, &t, &mut expect).unwrap();
        assert_eq!(block_on(ticket).unwrap(), expect);

        // An async block awaiting several tickets sequentially.
        let pairs: Vec<(Vec<u64>, Ticket)> = (0..4)
            .map(|s| {
                let p = pseudo(8, 97, 200 + s);
                let ticket = service.submit_forward(p.clone()).unwrap();
                (p, ticket)
            })
            .collect();
        let results = block_on(async {
            let mut done = Vec::new();
            for (p, ticket) in pairs {
                done.push((p, ticket.await));
            }
            done
        });
        for (p, got) in results {
            let mut expect = p;
            ntt_in_place(&params, &t, &mut expect).unwrap();
            assert_eq!(got.unwrap(), expect);
        }
        let m = service.shutdown();
        assert_eq!(m.failed, 0);
    }

    #[test]
    fn awaiting_after_shutdown_reports_shutdown() {
        // A ticket that was already answered before shutdown still
        // resolves; polling a spent ticket reports ServiceShutdown.
        let service = NttService::start(&config8(), ServiceOptions::default()).unwrap();
        let ticket = service.submit_forward(pseudo(8, 97, 5)).unwrap();
        let _ = service.shutdown();
        let mut ticket = ticket;
        let first = block_on(&mut ticket);
        assert!(first.is_ok(), "drained result still readable");
        let second = block_on(&mut ticket);
        assert!(matches!(second, Err(BpNttError::ServiceShutdown)));
    }

    #[test]
    fn scrubber_reintegrates_burst_quarantined_shards_unattended() {
        // The tentpole drill at the service layer: a windowed dead-row
        // burst corrupts the first wave on both shards (quarantine +
        // software fallback), then the background scrubber probes,
        // canaries, and reintegrates them with NO manual lift — tenant
        // traffic keeps completing reference-exact throughout, and the
        // whole transition is visible in the metrics exports.
        let params = NttParams::new(8, 97).unwrap();
        let t = TwiddleTable::new(&params);
        let polys: Vec<Vec<u64>> = (0..24).map(|s| pseudo(8, 97, s + 500)).collect();
        let expect: Vec<Vec<u64>> = polys
            .iter()
            .map(|p| {
                let mut e = p.clone();
                ntt_in_place(&params, &t, &mut e).unwrap();
                e
            })
            .collect();
        // Calibrate the burst window to one chunk's worth of
        // instructions (the clock is mode- and backend-independent).
        let mut probe = ShardedBpNtt::new(&config8(), 1).unwrap();
        probe.forward_batch(&polys[..4]).unwrap();
        let chunk_instrs = probe.stats().counts.total();
        assert!(chunk_instrs > 0);

        let service = NttService::start(
            &config8(),
            ServiceOptions {
                shards: 2,
                verify: VerifyPolicy::Full,
                fault_plan: Some(
                    FaultPlan::seeded(3)
                        .dead_row(2)
                        .active_between(0, chunk_instrs),
                ),
                health: Some(HealthOptions::aggressive()),
                coalesce_window: Duration::from_millis(5),
                ..ServiceOptions::default()
            },
        )
        .unwrap();
        // Keep waves flowing until the scrubber has walked both shards
        // back to healthy (canary promotion needs claimed clean waves).
        let mut healed = false;
        for _round in 0..40 {
            let tickets: Vec<Ticket> = polys
                .iter()
                .map(|p| service.submit_forward(p.clone()).unwrap())
                .collect();
            for (ticket, e) in tickets.into_iter().zip(&expect) {
                assert_eq!(
                    &ticket.wait().unwrap(),
                    e,
                    "no corruption escapes mid-drill"
                );
            }
            let m = service.metrics();
            if m.reintegrations >= 2 && m.shard_health.iter().all(|&s| s == 0) {
                healed = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            healed,
            "scrubber never reintegrated the burst-faulted shards"
        );
        let m = service.shutdown();
        assert_eq!(m.failed, 0);
        assert!(m.probes_run >= 2, "scrubber probed the benched shards");
        assert!(m.probes_passed >= 2);
        assert!(m.reintegrations >= 2);
        assert!(m.fallback_polys >= 1, "burst wave answered by fallback");
        // Observability: the transition shows up in both exports.
        let json = m.to_json();
        assert!(json.contains("\"health\": {\"probes_run\""));
        assert!(json.contains("\"reintegrations\""));
        assert!(m
            .to_prometheus()
            .contains("bpntt_shard_health_state{shard=\"0\"} 0"));
    }

    #[test]
    fn watchdog_respawns_crashed_dispatcher_and_fails_queued_typed() {
        let service = NttService::start(
            &config8(),
            ServiceOptions {
                health: Some(HealthOptions::aggressive()),
                ..ServiceOptions::default()
            },
        )
        .unwrap();
        let warm = service.submit_forward(pseudo(8, 97, 1)).unwrap();
        assert!(warm.wait().is_ok());
        // Queue a request and the crash control under one lock: the
        // dispatcher pops controls before work, so it panics with the
        // request still queued — the drain guard must fail it typed
        // without marking the service shut down.
        let doomed = {
            let (ticket, reply) = Ticket::channel(None);
            let mut st = service.shared.state.lock().unwrap();
            st.queue.push(Request {
                tenant: service.default_tenant,
                spec: PipelineSpec::forward_ntt(),
                mode: ExecMode::Replay,
                inputs: vec![pseudo(8, 97, 2)],
                reply,
                deadline: None,
                cost: 64,
                rns: false,
            });
            st.control.push_back(Control::Crash);
            drop(st);
            service.shared.cv.notify_all();
            ticket
        };
        assert!(matches!(
            doomed.wait(),
            Err(BpNttError::DispatcherRestarted)
        ));
        // The watchdog notices within a few ticks and respawns.
        let mut respawned = false;
        for _ in 0..500 {
            if service.metrics().respawns >= 1 {
                respawned = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(respawned, "watchdog never respawned the dispatcher");
        // The respawned dispatcher rebuilt the tenant engine from the
        // registry and keeps serving under the original tenant id.
        let after = service.submit_forward(pseudo(8, 97, 3)).unwrap();
        assert_eq!(after.wait().unwrap().len(), 8);
        let m = service.shutdown();
        assert!(m.respawns >= 1);
        assert_eq!(m.completed, 2);
        assert_eq!(m.failed, 1, "the queued request failed typed, once");
    }

    #[test]
    fn unsupervised_crash_stays_down_typed() {
        // Without a watchdog, a dispatcher panic keeps the historical
        // contract: the service marks itself shut down and every later
        // submission fails typed.
        let service = NttService::start(&config8(), ServiceOptions::default()).unwrap();
        service.crash_dispatcher();
        let mut down = false;
        for _ in 0..500 {
            if matches!(
                service.submit_forward(pseudo(8, 97, 1)),
                Err(BpNttError::ServiceShutdown)
            ) {
                down = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(down, "unsupervised crash must shut the service down");
        let m = service.shutdown();
        assert_eq!(m.respawns, 0);
    }

    #[test]
    fn tickets_poll_without_blocking() {
        let service = NttService::start(&config8(), ServiceOptions::default()).unwrap();
        let ticket = service.submit_forward(pseudo(8, 97, 9)).unwrap();
        // Poll until completion — exercises the async-integration path.
        let mut spins = 0u64;
        let result = loop {
            if let Some(r) = ticket.try_wait() {
                break r;
            }
            spins += 1;
            assert!(spins < 1_000_000, "service never completed the request");
            std::thread::yield_now();
        };
        assert_eq!(result.unwrap().len(), 8);
    }

    /// 14-bit NTT-friendly primes valid for n up to 512.
    const RNS_P: [u64; 3] = [12289, 13313, 15361];

    fn rns_basis64() -> Arc<RnsBasis> {
        Arc::new(RnsBasis::new(64, &RNS_P).unwrap())
    }

    /// A deterministic degree-n polynomial with coefficients spread over
    /// the full multi-limb range `0..Q`.
    fn big_poly(basis: &RnsBasis, seed: u64) -> Vec<BigUint> {
        (0..basis.n())
            .map(|k| {
                let lo = seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add((k as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
                let hi = lo.rotate_left(23) ^ (k as u64);
                BigUint::from_limbs(vec![lo, hi]).rem(basis.modulus())
            })
            .collect()
    }

    #[test]
    fn rns_polymul_reconstructs_exactly() {
        let service = NttService::start(&config8(), ServiceOptions::default()).unwrap();
        let basis = rns_basis64();
        let handle = service.add_rns_tenant(140, 128, 16, &basis).unwrap();
        assert_eq!(handle.limbs(), 3);
        let a = big_poly(&basis, 1);
        let b = big_poly(&basis, 2);
        let expect = bpntt_rns::reference::negacyclic_polymul_basis(&a, &b, &basis).unwrap();
        let ticket = service
            .submit_rns(&handle, RnsRequest::polymul(a, b))
            .unwrap();
        let result = ticket.wait().unwrap();
        assert_eq!(result.limbs.len(), 3);
        assert_eq!(result.coefficients, expect);
        // Each raw limb output is the reference reduced mod that prime.
        for (limb, &q) in basis.primes().iter().enumerate() {
            for (k, c) in expect.iter().enumerate() {
                assert_eq!(result.limbs[limb][k], c.rem_u64(q));
            }
        }
        let m = service.shutdown();
        assert_eq!(m.rns_requests, 1);
        assert_eq!(m.rns_limbs, 3);
        assert!(m.rns_fanout_waves >= 1, "limb group never fanned out");
        assert!(m.rns_fanout_occupancy > 0.0);
        assert_eq!(m.completed, 3, "three limb requests completed");
    }

    #[test]
    fn rns_submission_validates_before_enqueue() {
        let service = NttService::start(&config8(), ServiceOptions::default()).unwrap();
        let basis = rns_basis64();
        let handle = service.add_rns_tenant(140, 128, 16, &basis).unwrap();
        let a = big_poly(&basis, 3);
        let b = big_poly(&basis, 4);
        // Input-count mismatch against the spec's declared slots.
        assert!(matches!(
            service.submit_rns(
                &handle,
                RnsRequest::new(PipelineSpec::polymul(), vec![a.clone()]),
            ),
            Err(BpNttError::InvalidPipeline { .. })
        ));
        // Wrong degree.
        assert!(matches!(
            service.submit_rns(&handle, RnsRequest::polymul(a[..63].to_vec(), b.clone())),
            Err(BpNttError::Rns(bpntt_rns::RnsError::WrongLength { .. }))
        ));
        // Unreduced coefficient (≥ Q).
        let mut bad = a.clone();
        bad[5] = basis.modulus().clone();
        assert!(matches!(
            service.submit_rns(&handle, RnsRequest::polymul(bad, b)),
            Err(BpNttError::Rns(bpntt_rns::RnsError::Unreduced { index: 5 }))
        ));
        let m = service.shutdown();
        assert_eq!(m.submitted, 0, "invalid RNS requests never enter the queue");
        assert_eq!(m.rns_requests, 0);
    }

    #[test]
    fn rns_group_admits_all_limbs_or_sheds_whole() {
        // Queue of 2 cannot hold a 3-limb group: the submission sheds as
        // one unit — no partial limb set is ever admitted.
        let service = NttService::start(
            &config8(),
            ServiceOptions {
                max_queue: 2,
                ..ServiceOptions::default()
            },
        )
        .unwrap();
        let basis = rns_basis64();
        let handle = service.add_rns_tenant(140, 128, 16, &basis).unwrap();
        let a = big_poly(&basis, 5);
        let b = big_poly(&basis, 6);
        match service.submit_rns(&handle, RnsRequest::polymul(a, b)) {
            Err(BpNttError::Overloaded { capacity: 2, .. }) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        let m = service.shutdown();
        assert_eq!(m.submitted, 0, "no limb of a shed group is enqueued");
        assert_eq!(m.rejected, 1, "the group sheds once, not per limb");
        assert_eq!(m.rns_requests, 0);
    }

    #[test]
    fn rns_group_spends_one_rate_limit_token() {
        let service = NttService::start(
            &config8(),
            ServiceOptions {
                rate_limit: Some(RateLimit {
                    requests_per_sec: 0.001,
                    burst: 2.0,
                }),
                ..ServiceOptions::default()
            },
        )
        .unwrap();
        let basis = rns_basis64();
        let handle = service.add_rns_tenant(140, 128, 16, &basis).unwrap();
        // Two whole groups fit the burst of 2 — a group is one logical
        // request, not three.
        let t1 = service
            .submit_rns(
                &handle,
                RnsRequest::polymul(big_poly(&basis, 7), big_poly(&basis, 8)),
            )
            .unwrap();
        let t2 = service
            .submit_rns(
                &handle,
                RnsRequest::polymul(big_poly(&basis, 9), big_poly(&basis, 10)),
            )
            .unwrap();
        // The third group exhausts the lead limb's bucket.
        assert!(matches!(
            service.submit_rns(
                &handle,
                RnsRequest::polymul(big_poly(&basis, 11), big_poly(&basis, 12)),
            ),
            Err(BpNttError::RateLimited { .. })
        ));
        assert!(t1.wait().is_ok());
        assert!(t2.wait().is_ok());
        let m = service.shutdown();
        assert_eq!(m.rns_requests, 2);
        assert_eq!(m.rate_limited, 1);
    }

    #[test]
    fn rns_limb_groups_share_compiled_artifacts() {
        // A second RNS group over the same basis and geometry hits the
        // cross-tenant artifact cache for every limb.
        let service = NttService::start(&config8(), ServiceOptions::default()).unwrap();
        let basis = rns_basis64();
        let h1 = service.add_rns_tenant(140, 128, 16, &basis).unwrap();
        let before = service.metrics();
        let h2 = service.add_rns_tenant(140, 128, 16, &basis).unwrap();
        let after = service.metrics();
        assert_eq!(
            after.pipeline_cache_hits - before.pipeline_cache_hits,
            basis.limbs() as u64,
            "every limb of the second group must reuse compiled plans"
        );
        // Both groups still compute correctly.
        let a = big_poly(&basis, 13);
        let b = big_poly(&basis, 14);
        let expect = bpntt_rns::reference::negacyclic_polymul_basis(&a, &b, &basis).unwrap();
        for h in [&h1, &h2] {
            let got = service
                .submit_rns(h, RnsRequest::polymul(a.clone(), b.clone()))
                .unwrap()
                .wait()
                .unwrap();
            assert_eq!(got.coefficients, expect);
        }
        let _ = service.shutdown();
    }

    #[test]
    fn rns_limb_fault_heals_before_reconstruction() {
        // A service-wide fault plan corrupts rows on every limb engine;
        // the per-limb recovery ladder (verify + retry) must heal each
        // limb before CRT reconstruction ever sees a corrupted residue.
        let service = NttService::start(
            &config8(),
            ServiceOptions {
                fault_plan: Some(FaultPlan::seeded(0xC0FFEE).transient_rate(1e-4)),
                verify: VerifyPolicy::Full,
                retry_budget: 2,
                ..ServiceOptions::default()
            },
        )
        .unwrap();
        let basis = rns_basis64();
        let handle = service.add_rns_tenant(140, 128, 16, &basis).unwrap();
        let a = big_poly(&basis, 15);
        let b = big_poly(&basis, 16);
        let expect = bpntt_rns::reference::negacyclic_polymul_basis(&a, &b, &basis).unwrap();
        let got = service
            .submit_rns(&handle, RnsRequest::polymul(a, b))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(
            got.coefficients, expect,
            "reconstruction must be exact despite injected limb faults"
        );
        let _ = service.shutdown();
    }
}
