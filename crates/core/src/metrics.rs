//! Performance metrics: the paper's Table I units ([`PerfReport`]) and
//! the request-queue service's exportable snapshot ([`ServiceMetrics`]).

use bpntt_sram::geometry::{AreaModel, ArrayGeometry, FrequencyModel};
use bpntt_sram::Stats;
use std::fmt;
use std::fmt::Write as _;

/// A Table-I-style performance report for one accelerator run.
///
/// Conventions follow the paper: *latency* is the wall-clock time of one
/// batch (all lanes run in SIMD), *throughput* counts every NTT in the
/// batch, *energy* is the whole-array energy of the batch, and the two
/// efficiency metrics are throughput per mm² and throughput per milliwatt
/// (equivalently kNTT per mJ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfReport {
    /// Array geometry the run used.
    pub geometry: ArrayGeometry,
    /// Clock frequency from the frequency model (Hz).
    pub f_hz: f64,
    /// Simulated compute cycles for the batch.
    pub cycles: u64,
    /// Independent NTTs in the batch (lanes actually used).
    pub batch: usize,
    /// Batch latency in seconds.
    pub latency_s: f64,
    /// Throughput in NTT/s.
    pub throughput: f64,
    /// Whole-array batch energy in nanojoules.
    pub energy_nj: f64,
    /// Energy attributable to one NTT (nJ).
    pub energy_per_ntt_nj: f64,
    /// Average power in watts.
    pub power_w: f64,
    /// Array area in mm² (including the compute modifications).
    pub area_mm2: f64,
    /// Throughput per area, kNTT/s/mm².
    pub tput_per_area: f64,
    /// Throughput per power, kNTT/mJ (= kNTT/s per mW).
    pub tput_per_power: f64,
}

impl PerfReport {
    /// Derives a report from simulator statistics.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero or the stats carry no cycles.
    #[must_use]
    pub fn from_stats(
        stats: &Stats,
        batch: usize,
        geometry: ArrayGeometry,
        area: &AreaModel,
        freq: &FrequencyModel,
    ) -> Self {
        assert!(batch > 0, "batch must be nonzero");
        assert!(stats.cycles > 0, "run produced no cycles");
        let f_hz = freq.f_max_hz(geometry);
        let latency_s = stats.cycles as f64 / f_hz;
        let throughput = batch as f64 / latency_s;
        let energy_nj = stats.energy_nj();
        let power_w = energy_nj * 1e-9 / latency_s;
        let area_mm2 = area.breakdown(geometry).total_mm2();
        PerfReport {
            geometry,
            f_hz,
            cycles: stats.cycles,
            batch,
            latency_s,
            throughput,
            energy_nj,
            energy_per_ntt_nj: energy_nj / batch as f64,
            power_w,
            area_mm2,
            tput_per_area: throughput / 1e3 / area_mm2,
            tput_per_power: throughput / 1e3 / (power_w * 1e3),
        }
    }

    /// Latency in microseconds (the paper's unit).
    #[must_use]
    pub fn latency_us(&self) -> f64 {
        self.latency_s * 1e6
    }

    /// Throughput in kNTT/s (the paper's unit).
    #[must_use]
    pub fn throughput_kntt_s(&self) -> f64 {
        self.throughput / 1e3
    }
}

impl fmt::Display for PerfReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "array:        {}×{} @ {:.2} GHz",
            self.geometry.rows,
            self.geometry.cols,
            self.f_hz / 1e9
        )?;
        writeln!(
            f,
            "batch:        {} NTTs in {} cycles",
            self.batch, self.cycles
        )?;
        writeln!(f, "latency:      {:.2} µs", self.latency_us())?;
        writeln!(f, "throughput:   {:.1} kNTT/s", self.throughput_kntt_s())?;
        writeln!(
            f,
            "energy:       {:.1} nJ/batch ({:.2} nJ/NTT)",
            self.energy_nj, self.energy_per_ntt_nj
        )?;
        writeln!(f, "power:        {:.3} mW", self.power_w * 1e3)?;
        writeln!(f, "area:         {:.4} mm²", self.area_mm2)?;
        writeln!(f, "tput/area:    {:.1} kNTT/s/mm²", self.tput_per_area)?;
        write!(f, "tput/power:   {:.1} kNTT/mJ", self.tput_per_power)
    }
}

/// Per-tenant slice of the service counters: how one tenant's traffic
/// fared through admission, the fair queue, and the waves. The fairness
/// observable — a starved tenant shows up as a low completed/submitted
/// ratio or a ballooning `queued` next to its peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantMetrics {
    /// The tenant's raw id.
    pub tenant: u32,
    /// Requests accepted into this tenant's fair sub-queue.
    pub submitted: u64,
    /// Requests currently queued for this tenant.
    pub queued: usize,
    /// Requests shed at admission (queue overload or token-bucket rate
    /// limit) with a typed retry hint.
    pub shed: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests completed with an error (including deadline expiry).
    pub failed: u64,
    /// Requests that expired in the queue
    /// ([`DeadlineExpired`](crate::BpNttError::DeadlineExpired)).
    pub deadline_expired: u64,
    /// Requests dropped because their ticket was cancelled before
    /// execution ([`Cancelled`](crate::BpNttError::Cancelled)).
    pub cancelled: u64,
    /// Operand payload bytes accepted into the queue (the deficit
    /// round-robin cost unit: 8 bytes per input coefficient).
    pub bytes: u64,
}

impl TenantMetrics {
    fn to_json(self) -> String {
        format!(
            "{{\"tenant\": {}, \"submitted\": {}, \"queued\": {}, \"shed\": {}, \
             \"completed\": {}, \"failed\": {}, \"deadline_expired\": {}, \
             \"cancelled\": {}, \"bytes\": {}}}",
            self.tenant,
            self.submitted,
            self.queued,
            self.shed,
            self.completed,
            self.failed,
            self.deadline_expired,
            self.cancelled,
            self.bytes
        )
    }
}

/// A point-in-time snapshot of the request-queue service
/// ([`NttService`](crate::NttService)): queue pressure, wave coalescing
/// efficiency, throughput, per-shard wall-clock percentiles, and the
/// cross-tenant compiled-program cache. Exportable as JSON for scrapers
/// and the `bench_service` trajectory file, and as Prometheus text
/// format ([`Self::to_prometheus`]) for pull-based monitoring.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMetrics {
    /// Requests queued right now.
    pub queue_depth: usize,
    /// High-water mark of the queue depth since start.
    pub peak_queue_depth: usize,
    /// The bounded queue's capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests rejected with [`Overloaded`](crate::BpNttError::Overloaded).
    pub rejected: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests completed with an error.
    pub failed: u64,
    /// Coalesced waves dispatched to the sharded engines.
    pub waves: u64,
    /// Polynomial results produced through waves (a polymul pair counts
    /// once: one result).
    pub wave_polys: u64,
    /// Mean wave fill: polynomials per wave relative to the serving
    /// engine's `lanes_total` capacity, capped at 1 per wave.
    pub wave_occupancy: f64,
    /// Wall-clock seconds the dispatcher spent inside engine calls.
    pub busy_secs: f64,
    /// Results per second of dispatcher busy time (`wave_polys /
    /// busy_secs`).
    pub polys_per_sec: f64,
    /// Median of the recent per-shard wall-clock samples (seconds).
    pub shard_secs_p50: f64,
    /// 90th percentile of the recent per-shard samples (seconds).
    pub shard_secs_p90: f64,
    /// Maximum of the recent per-shard samples (seconds).
    pub shard_secs_max: f64,
    /// Distinct `(params, layout)` entries in the compiled-program cache.
    pub program_cache_entries: usize,
    /// Tenant registrations served from the cache without recompiling.
    pub program_cache_hits: u64,
    /// Distinct `(params, layout, spec)` entries in the cross-tenant
    /// compiled-pipeline cache.
    pub pipeline_cache_entries: usize,
    /// Pipeline resolutions served from the cache without recompiling
    /// (tenant registrations with an identical configuration, plus novel
    /// specs imported into a second tenant's engine).
    pub pipeline_cache_hits: u64,
    /// Chunk attempts the recovery ladder failed on detection
    /// (verification mismatch, simulator error, or contained panic),
    /// summed across tenant engines.
    pub faults_detected: u64,
    /// Chunk re-executions the ladder performed (same shard or
    /// re-dispatched after quarantine).
    pub retries: u64,
    /// High-water mark of simultaneously quarantined shards on any one
    /// tenant engine.
    pub quarantined_shards: u64,
    /// Polynomials answered by the software reference fallback (the
    /// ladder's last rung).
    pub fallback_polys: u64,
    /// Requests that expired in the queue and failed typed with
    /// [`DeadlineExpired`](crate::BpNttError::DeadlineExpired).
    pub deadline_expired: u64,
    /// Wall-clock milliseconds spent verifying outputs
    /// ([`VerifyPolicy`](crate::VerifyPolicy) overhead).
    pub verify_ms: f64,
    /// Requests rejected by a per-tenant token bucket
    /// ([`RateLimited`](crate::BpNttError::RateLimited)); a subset of
    /// [`Self::rejected`].
    pub rate_limited: u64,
    /// Requests dropped before execution because their ticket was
    /// cancelled (e.g. a disconnected network client).
    pub cancelled: u64,
    /// Big-modulus requests accepted through
    /// [`submit_rns`](crate::NttService::submit_rns) (one per group,
    /// however many limbs it decomposed into).
    pub rns_requests: u64,
    /// Limb sub-requests those RNS groups expanded to.
    pub rns_limbs: u64,
    /// Concurrent RNS fan-out rounds the dispatcher executed (each round
    /// runs several limb engines in one wall-clock window).
    pub rns_fanout_waves: u64,
    /// Mean occupancy of those rounds: busy lanes across every engine of
    /// the round over the round's total lane capacity.
    pub rns_fanout_occupancy: f64,
    /// Known-answer probes the scrubber executed against benched shards,
    /// summed across tenant engines.
    pub probes_run: u64,
    /// Probes whose output matched the precomputed reference exactly.
    pub probes_passed: u64,
    /// Quarantined shards returned to full service through the
    /// probe → canary → clean-wave ladder.
    pub reintegrations: u64,
    /// Canary shards demoted back to quarantine by a failed wave.
    pub canary_demotions: u64,
    /// Patrol probes run against healthy shards between waves.
    pub patrol_probes: u64,
    /// Healthy shards a patrol probe caught corrupting (benched before
    /// any tenant traffic reached them).
    pub patrol_quarantines: u64,
    /// Dispatcher or scrubber threads the watchdog respawned after a
    /// panic.
    pub respawns: u64,
    /// Per-shard health state of the default tenant's engine
    /// (0 healthy, 1 canary, 2 probing, 3 quarantined), refreshed by
    /// waves and scrub passes. Empty until the first wave or scrub.
    pub shard_health: Vec<u8>,
    /// Registered tenants.
    pub tenants: usize,
    /// Per-tenant counter slices, sorted by tenant id. Tenants with no
    /// traffic yet still appear (zeroed) once registered.
    pub per_tenant: Vec<TenantMetrics>,
}

impl ServiceMetrics {
    /// Renders the snapshot as a self-contained JSON object (no trailing
    /// newline), with the same hand-rolled discipline as the bench
    /// writers — the workspace builds offline, so no serde.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"queue_depth\": {}, \"peak_queue_depth\": {}, \"queue_capacity\": {}, ",
            self.queue_depth, self.peak_queue_depth, self.queue_capacity
        );
        let _ = write!(
            s,
            "\"submitted\": {}, \"rejected\": {}, \"completed\": {}, \"failed\": {}, ",
            self.submitted, self.rejected, self.completed, self.failed
        );
        let _ = write!(
            s,
            "\"waves\": {}, \"wave_polys\": {}, \"wave_occupancy\": {:.4}, ",
            self.waves, self.wave_polys, self.wave_occupancy
        );
        let _ = write!(
            s,
            "\"busy_secs\": {:.6}, \"polys_per_sec\": {:.1}, ",
            self.busy_secs, self.polys_per_sec
        );
        let _ = write!(
            s,
            "\"shard_ms_p50\": {:.4}, \"shard_ms_p90\": {:.4}, \"shard_ms_max\": {:.4}, ",
            self.shard_secs_p50 * 1e3,
            self.shard_secs_p90 * 1e3,
            self.shard_secs_max * 1e3
        );
        let _ = write!(
            s,
            "\"program_cache_entries\": {}, \"program_cache_hits\": {}, ",
            self.program_cache_entries, self.program_cache_hits
        );
        let _ = write!(
            s,
            "\"pipeline_cache_entries\": {}, \"pipeline_cache_hits\": {}, ",
            self.pipeline_cache_entries, self.pipeline_cache_hits
        );
        let _ = write!(
            s,
            "\"faults_detected\": {}, \"retries\": {}, \"quarantined_shards\": {}, ",
            self.faults_detected, self.retries, self.quarantined_shards
        );
        let _ = write!(
            s,
            "\"fallback_polys\": {}, \"deadline_expired\": {}, \"verify_ms\": {:.4}, ",
            self.fallback_polys, self.deadline_expired, self.verify_ms
        );
        let _ = write!(
            s,
            "\"rate_limited\": {}, \"cancelled\": {}, ",
            self.rate_limited, self.cancelled
        );
        let _ = write!(
            s,
            "\"rns_requests\": {}, \"rns_limbs\": {}, \"rns_fanout_waves\": {}, \
             \"rns_fanout_occupancy\": {:.4}, ",
            self.rns_requests, self.rns_limbs, self.rns_fanout_waves, self.rns_fanout_occupancy
        );
        let _ = write!(
            s,
            "\"health\": {{\"probes_run\": {}, \"probes_passed\": {}, \
             \"reintegrations\": {}, \"canary_demotions\": {}, \
             \"patrol_probes\": {}, \"patrol_quarantines\": {}, \
             \"respawns\": {}, \"shard_states\": [",
            self.probes_run,
            self.probes_passed,
            self.reintegrations,
            self.canary_demotions,
            self.patrol_probes,
            self.patrol_quarantines,
            self.respawns
        );
        for (i, st) in self.shard_health.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{st}");
        }
        s.push_str("]}, ");
        let _ = write!(s, "\"tenants\": {}, \"per_tenant\": [", self.tenants);
        for (i, t) in self.per_tenant.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&t.to_json());
        }
        s.push_str("]}");
        s
    }

    /// Renders the snapshot in Prometheus text exposition format (one
    /// `# TYPE` line per family, `bpntt_` prefix, per-tenant families
    /// labelled `{tenant="<id>"}`). Values agree exactly with
    /// [`Self::to_json`] — the parity is pinned by a test.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut s = String::new();
        let mut gauge = |name: &str, help: &str, v: f64| {
            let _ = writeln!(s, "# HELP bpntt_{name} {help}");
            let _ = writeln!(s, "# TYPE bpntt_{name} gauge");
            if v.fract() == 0.0 && v.abs() < 9e15 {
                let _ = writeln!(s, "bpntt_{name} {}", v as i64);
            } else {
                let _ = writeln!(s, "bpntt_{name} {v}");
            }
        };
        gauge(
            "queue_depth",
            "Requests queued right now",
            self.queue_depth as f64,
        );
        gauge(
            "peak_queue_depth",
            "High-water mark of the queue depth",
            self.peak_queue_depth as f64,
        );
        gauge(
            "queue_capacity",
            "Bounded queue capacity",
            self.queue_capacity as f64,
        );
        gauge(
            "submitted_total",
            "Requests accepted",
            self.submitted as f64,
        );
        gauge(
            "rejected_total",
            "Requests shed at admission",
            self.rejected as f64,
        );
        gauge(
            "rate_limited_total",
            "Requests rejected by a tenant token bucket",
            self.rate_limited as f64,
        );
        gauge(
            "completed_total",
            "Requests completed successfully",
            self.completed as f64,
        );
        gauge(
            "failed_total",
            "Requests completed with an error",
            self.failed as f64,
        );
        gauge(
            "cancelled_total",
            "Requests dropped after ticket cancellation",
            self.cancelled as f64,
        );
        gauge(
            "waves_total",
            "Coalesced waves dispatched",
            self.waves as f64,
        );
        gauge(
            "wave_polys_total",
            "Polynomial results produced through waves",
            self.wave_polys as f64,
        );
        gauge(
            "wave_occupancy",
            "Mean wave fill ratio",
            self.wave_occupancy,
        );
        gauge(
            "busy_seconds_total",
            "Dispatcher wall-clock inside engine calls",
            self.busy_secs,
        );
        gauge(
            "polys_per_sec",
            "Results per busy second",
            self.polys_per_sec,
        );
        gauge(
            "shard_seconds_p50",
            "Median recent per-shard wall-clock",
            self.shard_secs_p50,
        );
        gauge(
            "shard_seconds_p90",
            "P90 recent per-shard wall-clock",
            self.shard_secs_p90,
        );
        gauge(
            "shard_seconds_max",
            "Max recent per-shard wall-clock",
            self.shard_secs_max,
        );
        gauge(
            "program_cache_entries",
            "Distinct compiled-program cache entries",
            self.program_cache_entries as f64,
        );
        gauge(
            "program_cache_hits_total",
            "Program cache hits",
            self.program_cache_hits as f64,
        );
        gauge(
            "pipeline_cache_entries",
            "Distinct compiled-pipeline cache entries",
            self.pipeline_cache_entries as f64,
        );
        gauge(
            "pipeline_cache_hits_total",
            "Pipeline cache hits",
            self.pipeline_cache_hits as f64,
        );
        gauge(
            "faults_detected_total",
            "Chunk attempts failed on detection",
            self.faults_detected as f64,
        );
        gauge(
            "retries_total",
            "Chunk re-executions by the recovery ladder",
            self.retries as f64,
        );
        gauge(
            "quarantined_shards",
            "High-water mark of quarantined shards",
            self.quarantined_shards as f64,
        );
        gauge(
            "fallback_polys_total",
            "Polynomials answered by the software fallback",
            self.fallback_polys as f64,
        );
        gauge(
            "deadline_expired_total",
            "Requests expired in the queue",
            self.deadline_expired as f64,
        );
        gauge(
            "verify_milliseconds_total",
            "Wall-clock spent verifying outputs",
            self.verify_ms,
        );
        gauge(
            "rns_requests_total",
            "Big-modulus requests accepted through submit_rns",
            self.rns_requests as f64,
        );
        gauge(
            "rns_limbs_total",
            "Limb sub-requests RNS groups expanded to",
            self.rns_limbs as f64,
        );
        gauge(
            "rns_fanout_waves_total",
            "Concurrent RNS fan-out rounds executed",
            self.rns_fanout_waves as f64,
        );
        gauge(
            "rns_fanout_occupancy",
            "Mean lane occupancy of RNS fan-out rounds",
            self.rns_fanout_occupancy,
        );
        gauge(
            "health_probes_total",
            "Known-answer probes run by the scrubber",
            self.probes_run as f64,
        );
        gauge(
            "health_probes_passed_total",
            "Probes that matched the reference exactly",
            self.probes_passed as f64,
        );
        gauge(
            "health_reintegrations_total",
            "Quarantined shards returned to full service",
            self.reintegrations as f64,
        );
        gauge(
            "health_canary_demotions_total",
            "Canary shards demoted back to quarantine",
            self.canary_demotions as f64,
        );
        gauge(
            "health_patrol_probes_total",
            "Patrol probes run against healthy shards",
            self.patrol_probes as f64,
        );
        gauge(
            "health_patrol_quarantines_total",
            "Healthy shards benched by a failed patrol probe",
            self.patrol_quarantines as f64,
        );
        gauge(
            "respawns_total",
            "Service threads respawned by the watchdog",
            self.respawns as f64,
        );
        gauge("tenants", "Registered tenants", self.tenants as f64);
        // Per-shard health of the default tenant, one labelled sample
        // per shard (0 healthy, 1 canary, 2 probing, 3 quarantined).
        let _ = writeln!(
            s,
            "# HELP bpntt_shard_health_state Default-tenant shard health \
             (0 healthy, 1 canary, 2 probing, 3 quarantined)"
        );
        let _ = writeln!(s, "# TYPE bpntt_shard_health_state gauge");
        for (i, st) in self.shard_health.iter().enumerate() {
            let _ = writeln!(s, "bpntt_shard_health_state{{shard=\"{i}\"}} {st}");
        }
        // Per-tenant families: one TYPE line each, then one labelled
        // sample per tenant.
        type TenantField = fn(&TenantMetrics) -> u64;
        let families: [(&str, &str, TenantField); 7] = [
            (
                "tenant_submitted_total",
                "Requests accepted per tenant",
                |t| t.submitted,
            ),
            (
                "tenant_queued",
                "Requests currently queued per tenant",
                |t| t.queued as u64,
            ),
            (
                "tenant_shed_total",
                "Requests shed at admission per tenant",
                |t| t.shed,
            ),
            (
                "tenant_completed_total",
                "Requests completed per tenant",
                |t| t.completed,
            ),
            ("tenant_failed_total", "Requests failed per tenant", |t| {
                t.failed
            }),
            (
                "tenant_deadline_expired_total",
                "Requests expired in queue per tenant",
                |t| t.deadline_expired,
            ),
            (
                "tenant_bytes_total",
                "Operand bytes accepted per tenant",
                |t| t.bytes,
            ),
        ];
        for (name, help, get) in families {
            let _ = writeln!(s, "# HELP bpntt_{name} {help}");
            let _ = writeln!(s, "# TYPE bpntt_{name} gauge");
            for t in &self.per_tenant {
                let _ = writeln!(s, "bpntt_{name}{{tenant=\"{}\"}} {}", t.tenant, get(t));
            }
        }
        let _ = writeln!(
            s,
            "# HELP bpntt_tenant_cancelled_total Requests cancelled per tenant"
        );
        let _ = writeln!(s, "# TYPE bpntt_tenant_cancelled_total gauge");
        for t in &self.per_tenant {
            let _ = writeln!(
                s,
                "bpntt_tenant_cancelled_total{{tenant=\"{}\"}} {}",
                t.tenant, t.cancelled
            );
        }
        s
    }
}

/// Nearest-rank percentile of an **ascending-sorted** slice; 0.0 when
/// empty. `p` in `[0, 1]`.
pub(crate) fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 0.5), 3.0);
        assert_eq!(percentile(&xs, 1.0), 5.0);
        assert_eq!(percentile(&[7.0], 0.9), 7.0);
    }

    #[test]
    fn service_metrics_render_as_json() {
        let m = ServiceMetrics {
            queue_depth: 1,
            peak_queue_depth: 9,
            queue_capacity: 128,
            submitted: 40,
            rejected: 2,
            completed: 37,
            failed: 1,
            waves: 5,
            wave_polys: 38,
            wave_occupancy: 0.95,
            busy_secs: 0.5,
            polys_per_sec: 76.0,
            shard_secs_p50: 0.001,
            shard_secs_p90: 0.002,
            shard_secs_max: 0.003,
            program_cache_entries: 2,
            program_cache_hits: 1,
            pipeline_cache_entries: 5,
            pipeline_cache_hits: 4,
            faults_detected: 6,
            retries: 4,
            quarantined_shards: 1,
            fallback_polys: 2,
            deadline_expired: 3,
            verify_ms: 1.25,
            rate_limited: 2,
            cancelled: 1,
            rns_requests: 4,
            rns_limbs: 12,
            rns_fanout_waves: 4,
            rns_fanout_occupancy: 0.5,
            probes_run: 12,
            probes_passed: 10,
            reintegrations: 2,
            canary_demotions: 1,
            patrol_probes: 7,
            patrol_quarantines: 1,
            respawns: 1,
            shard_health: vec![0, 1, 3],
            tenants: 3,
            per_tenant: vec![
                TenantMetrics {
                    tenant: 0,
                    submitted: 30,
                    queued: 1,
                    shed: 2,
                    completed: 28,
                    failed: 1,
                    deadline_expired: 3,
                    cancelled: 1,
                    bytes: 15_360,
                },
                TenantMetrics {
                    tenant: 7,
                    submitted: 10,
                    completed: 9,
                    ..TenantMetrics::default()
                },
            ],
        };
        let json = m.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"queue_depth\": 1",
            "\"peak_queue_depth\": 9",
            "\"rejected\": 2",
            "\"waves\": 5",
            "\"wave_occupancy\": 0.9500",
            "\"polys_per_sec\": 76.0",
            "\"shard_ms_p90\": 2.0000",
            "\"program_cache_hits\": 1",
            "\"pipeline_cache_entries\": 5",
            "\"pipeline_cache_hits\": 4",
            "\"faults_detected\": 6",
            "\"retries\": 4",
            "\"quarantined_shards\": 1",
            "\"fallback_polys\": 2",
            "\"deadline_expired\": 3",
            "\"verify_ms\": 1.2500",
            "\"rate_limited\": 2",
            "\"cancelled\": 1",
            "\"rns_requests\": 4",
            "\"rns_limbs\": 12",
            "\"rns_fanout_waves\": 4",
            "\"rns_fanout_occupancy\": 0.5000",
            "\"health\": {\"probes_run\": 12, \"probes_passed\": 10",
            "\"reintegrations\": 2",
            "\"canary_demotions\": 1",
            "\"patrol_probes\": 7",
            "\"patrol_quarantines\": 1",
            "\"respawns\": 1",
            "\"shard_states\": [0, 1, 3]",
            "\"tenants\": 3",
            "\"per_tenant\": [{\"tenant\": 0,",
            "\"bytes\": 15360",
            "{\"tenant\": 7, \"submitted\": 10,",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    /// The JSON and Prometheus exports must agree on every shared value —
    /// a scraper watching one and a dashboard watching the other see the
    /// same service.
    #[test]
    fn json_and_prometheus_exports_agree() {
        let m = ServiceMetrics {
            queue_depth: 4,
            peak_queue_depth: 11,
            queue_capacity: 64,
            submitted: 123,
            rejected: 5,
            completed: 110,
            failed: 4,
            waves: 17,
            wave_polys: 120,
            wave_occupancy: 0.75,
            busy_secs: 1.5,
            polys_per_sec: 80.0,
            shard_secs_p50: 0.002,
            shard_secs_p90: 0.004,
            shard_secs_max: 0.006,
            program_cache_entries: 1,
            program_cache_hits: 2,
            pipeline_cache_entries: 3,
            pipeline_cache_hits: 6,
            faults_detected: 9,
            retries: 8,
            quarantined_shards: 1,
            fallback_polys: 2,
            deadline_expired: 4,
            verify_ms: 3.5,
            rate_limited: 3,
            cancelled: 2,
            rns_requests: 5,
            rns_limbs: 15,
            rns_fanout_waves: 5,
            rns_fanout_occupancy: 0.6,
            probes_run: 20,
            probes_passed: 18,
            reintegrations: 3,
            canary_demotions: 1,
            patrol_probes: 9,
            patrol_quarantines: 2,
            respawns: 1,
            shard_health: vec![0, 3],
            tenants: 2,
            per_tenant: vec![
                TenantMetrics {
                    tenant: 1,
                    submitted: 100,
                    queued: 3,
                    shed: 4,
                    completed: 90,
                    failed: 3,
                    deadline_expired: 3,
                    cancelled: 2,
                    bytes: 51_200,
                },
                TenantMetrics {
                    tenant: 2,
                    submitted: 23,
                    queued: 1,
                    shed: 1,
                    completed: 20,
                    failed: 1,
                    deadline_expired: 1,
                    cancelled: 0,
                    bytes: 11_776,
                },
            ],
        };
        let json = m.to_json();
        let prom = m.to_prometheus();
        // Pull a scalar out of each export and compare.
        let json_val = |key: &str| -> u64 {
            let pat = format!("\"{key}\": ");
            let at = json
                .find(&pat)
                .unwrap_or_else(|| panic!("no {key} in json"));
            let rest = &json[at + pat.len()..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse().unwrap()
        };
        let prom_val = |sample: &str| -> u64 {
            let line = prom
                .lines()
                .find(|l| l.starts_with(sample) && l[sample.len()..].starts_with(' '))
                .unwrap_or_else(|| panic!("no sample {sample} in prometheus export"));
            line[sample.len() + 1..].parse().unwrap()
        };
        for (jk, pk) in [
            ("queue_depth", "bpntt_queue_depth"),
            ("submitted", "bpntt_submitted_total"),
            ("rejected", "bpntt_rejected_total"),
            ("rate_limited", "bpntt_rate_limited_total"),
            ("completed", "bpntt_completed_total"),
            ("failed", "bpntt_failed_total"),
            ("cancelled", "bpntt_cancelled_total"),
            ("waves", "bpntt_waves_total"),
            ("rns_requests", "bpntt_rns_requests_total"),
            ("rns_limbs", "bpntt_rns_limbs_total"),
            ("rns_fanout_waves", "bpntt_rns_fanout_waves_total"),
            ("faults_detected", "bpntt_faults_detected_total"),
            ("deadline_expired", "bpntt_deadline_expired_total"),
            ("probes_run", "bpntt_health_probes_total"),
            ("probes_passed", "bpntt_health_probes_passed_total"),
            ("reintegrations", "bpntt_health_reintegrations_total"),
            ("canary_demotions", "bpntt_health_canary_demotions_total"),
            ("patrol_probes", "bpntt_health_patrol_probes_total"),
            (
                "patrol_quarantines",
                "bpntt_health_patrol_quarantines_total",
            ),
            ("respawns", "bpntt_respawns_total"),
            ("tenants", "bpntt_tenants"),
        ] {
            assert_eq!(json_val(jk), prom_val(pk), "mismatch on {jk}");
        }
        // Per-shard health parity: each JSON shard_states entry matches
        // its labelled Prometheus sample.
        for (i, st) in m.shard_health.iter().enumerate() {
            assert_eq!(
                prom_val(&format!("bpntt_shard_health_state{{shard=\"{i}\"}}")),
                u64::from(*st)
            );
        }
        // Per-tenant parity: each tenant's JSON slice matches its
        // labelled Prometheus samples.
        for t in &m.per_tenant {
            let label = |fam: &str| format!("bpntt_{fam}{{tenant=\"{}\"}}", t.tenant);
            assert_eq!(prom_val(&label("tenant_submitted_total")), t.submitted);
            assert_eq!(prom_val(&label("tenant_queued")), t.queued as u64);
            assert_eq!(prom_val(&label("tenant_shed_total")), t.shed);
            assert_eq!(prom_val(&label("tenant_completed_total")), t.completed);
            assert_eq!(prom_val(&label("tenant_failed_total")), t.failed);
            assert_eq!(
                prom_val(&label("tenant_deadline_expired_total")),
                t.deadline_expired
            );
            assert_eq!(prom_val(&label("tenant_cancelled_total")), t.cancelled);
            assert_eq!(prom_val(&label("tenant_bytes_total")), t.bytes);
            let slice = t.to_json();
            assert!(json.contains(&slice), "json lacks tenant slice {slice}");
        }
    }

    #[test]
    fn unit_conversions_are_consistent() {
        let stats = Stats {
            cycles: 380_000,
            energy_pj: 69_400.0,
            ..Default::default()
        };
        let geom = ArrayGeometry::paper_256x256();
        let r = PerfReport::from_stats(
            &stats,
            16,
            geom,
            &AreaModel::cmos_45nm(),
            &FrequencyModel::cmos_45nm(),
        );
        // 380k cycles at ~3.8 GHz ≈ 100 µs.
        assert!((r.latency_us() - 100.0).abs() < 2.0);
        // throughput = batch / latency.
        assert!((r.throughput - 16.0 / r.latency_s).abs() < 1e-6);
        // TP(kNTT/mJ) = 1 / (energy per NTT in mJ) / 1000.
        let tp_expect = 1.0 / (r.energy_per_ntt_nj * 1e-6) / 1e3;
        assert!((r.tput_per_power - tp_expect).abs() / tp_expect < 1e-9);
        assert!(r.tput_per_area > 0.0);
    }

    #[test]
    #[should_panic(expected = "batch must be nonzero")]
    fn zero_batch_rejected() {
        let stats = Stats {
            cycles: 1,
            ..Default::default()
        };
        let _ = PerfReport::from_stats(
            &stats,
            0,
            ArrayGeometry::paper_256x256(),
            &AreaModel::cmos_45nm(),
            &FrequencyModel::cmos_45nm(),
        );
    }
}
