//! Performance metrics: the paper's Table I units ([`PerfReport`]) and
//! the request-queue service's exportable snapshot ([`ServiceMetrics`]).

use bpntt_sram::geometry::{AreaModel, ArrayGeometry, FrequencyModel};
use bpntt_sram::Stats;
use std::fmt;
use std::fmt::Write as _;

/// A Table-I-style performance report for one accelerator run.
///
/// Conventions follow the paper: *latency* is the wall-clock time of one
/// batch (all lanes run in SIMD), *throughput* counts every NTT in the
/// batch, *energy* is the whole-array energy of the batch, and the two
/// efficiency metrics are throughput per mm² and throughput per milliwatt
/// (equivalently kNTT per mJ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfReport {
    /// Array geometry the run used.
    pub geometry: ArrayGeometry,
    /// Clock frequency from the frequency model (Hz).
    pub f_hz: f64,
    /// Simulated compute cycles for the batch.
    pub cycles: u64,
    /// Independent NTTs in the batch (lanes actually used).
    pub batch: usize,
    /// Batch latency in seconds.
    pub latency_s: f64,
    /// Throughput in NTT/s.
    pub throughput: f64,
    /// Whole-array batch energy in nanojoules.
    pub energy_nj: f64,
    /// Energy attributable to one NTT (nJ).
    pub energy_per_ntt_nj: f64,
    /// Average power in watts.
    pub power_w: f64,
    /// Array area in mm² (including the compute modifications).
    pub area_mm2: f64,
    /// Throughput per area, kNTT/s/mm².
    pub tput_per_area: f64,
    /// Throughput per power, kNTT/mJ (= kNTT/s per mW).
    pub tput_per_power: f64,
}

impl PerfReport {
    /// Derives a report from simulator statistics.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero or the stats carry no cycles.
    #[must_use]
    pub fn from_stats(
        stats: &Stats,
        batch: usize,
        geometry: ArrayGeometry,
        area: &AreaModel,
        freq: &FrequencyModel,
    ) -> Self {
        assert!(batch > 0, "batch must be nonzero");
        assert!(stats.cycles > 0, "run produced no cycles");
        let f_hz = freq.f_max_hz(geometry);
        let latency_s = stats.cycles as f64 / f_hz;
        let throughput = batch as f64 / latency_s;
        let energy_nj = stats.energy_nj();
        let power_w = energy_nj * 1e-9 / latency_s;
        let area_mm2 = area.breakdown(geometry).total_mm2();
        PerfReport {
            geometry,
            f_hz,
            cycles: stats.cycles,
            batch,
            latency_s,
            throughput,
            energy_nj,
            energy_per_ntt_nj: energy_nj / batch as f64,
            power_w,
            area_mm2,
            tput_per_area: throughput / 1e3 / area_mm2,
            tput_per_power: throughput / 1e3 / (power_w * 1e3),
        }
    }

    /// Latency in microseconds (the paper's unit).
    #[must_use]
    pub fn latency_us(&self) -> f64 {
        self.latency_s * 1e6
    }

    /// Throughput in kNTT/s (the paper's unit).
    #[must_use]
    pub fn throughput_kntt_s(&self) -> f64 {
        self.throughput / 1e3
    }
}

impl fmt::Display for PerfReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "array:        {}×{} @ {:.2} GHz",
            self.geometry.rows,
            self.geometry.cols,
            self.f_hz / 1e9
        )?;
        writeln!(
            f,
            "batch:        {} NTTs in {} cycles",
            self.batch, self.cycles
        )?;
        writeln!(f, "latency:      {:.2} µs", self.latency_us())?;
        writeln!(f, "throughput:   {:.1} kNTT/s", self.throughput_kntt_s())?;
        writeln!(
            f,
            "energy:       {:.1} nJ/batch ({:.2} nJ/NTT)",
            self.energy_nj, self.energy_per_ntt_nj
        )?;
        writeln!(f, "power:        {:.3} mW", self.power_w * 1e3)?;
        writeln!(f, "area:         {:.4} mm²", self.area_mm2)?;
        writeln!(f, "tput/area:    {:.1} kNTT/s/mm²", self.tput_per_area)?;
        write!(f, "tput/power:   {:.1} kNTT/mJ", self.tput_per_power)
    }
}

/// A point-in-time snapshot of the request-queue service
/// ([`NttService`](crate::NttService)): queue pressure, wave coalescing
/// efficiency, throughput, per-shard wall-clock percentiles, and the
/// cross-tenant compiled-program cache. Exportable as JSON for scrapers
/// and the `bench_service` trajectory file.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMetrics {
    /// Requests queued right now.
    pub queue_depth: usize,
    /// High-water mark of the queue depth since start.
    pub peak_queue_depth: usize,
    /// The bounded queue's capacity (backpressure threshold).
    pub queue_capacity: usize,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests rejected with [`Overloaded`](crate::BpNttError::Overloaded).
    pub rejected: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests completed with an error.
    pub failed: u64,
    /// Coalesced waves dispatched to the sharded engines.
    pub waves: u64,
    /// Polynomial results produced through waves (a polymul pair counts
    /// once: one result).
    pub wave_polys: u64,
    /// Mean wave fill: polynomials per wave relative to the serving
    /// engine's `lanes_total` capacity, capped at 1 per wave.
    pub wave_occupancy: f64,
    /// Wall-clock seconds the dispatcher spent inside engine calls.
    pub busy_secs: f64,
    /// Results per second of dispatcher busy time (`wave_polys /
    /// busy_secs`).
    pub polys_per_sec: f64,
    /// Median of the recent per-shard wall-clock samples (seconds).
    pub shard_secs_p50: f64,
    /// 90th percentile of the recent per-shard samples (seconds).
    pub shard_secs_p90: f64,
    /// Maximum of the recent per-shard samples (seconds).
    pub shard_secs_max: f64,
    /// Distinct `(params, layout)` entries in the compiled-program cache.
    pub program_cache_entries: usize,
    /// Tenant registrations served from the cache without recompiling.
    pub program_cache_hits: u64,
    /// Distinct `(params, layout, spec)` entries in the cross-tenant
    /// compiled-pipeline cache.
    pub pipeline_cache_entries: usize,
    /// Pipeline resolutions served from the cache without recompiling
    /// (tenant registrations with an identical configuration, plus novel
    /// specs imported into a second tenant's engine).
    pub pipeline_cache_hits: u64,
    /// Chunk attempts the recovery ladder failed on detection
    /// (verification mismatch, simulator error, or contained panic),
    /// summed across tenant engines.
    pub faults_detected: u64,
    /// Chunk re-executions the ladder performed (same shard or
    /// re-dispatched after quarantine).
    pub retries: u64,
    /// High-water mark of simultaneously quarantined shards on any one
    /// tenant engine.
    pub quarantined_shards: u64,
    /// Polynomials answered by the software reference fallback (the
    /// ladder's last rung).
    pub fallback_polys: u64,
    /// Requests that expired in the queue and failed typed with
    /// [`DeadlineExpired`](crate::BpNttError::DeadlineExpired).
    pub deadline_expired: u64,
    /// Wall-clock milliseconds spent verifying outputs
    /// ([`VerifyPolicy`](crate::VerifyPolicy) overhead).
    pub verify_ms: f64,
    /// Registered tenants.
    pub tenants: usize,
}

impl ServiceMetrics {
    /// Renders the snapshot as a self-contained JSON object (no trailing
    /// newline), with the same hand-rolled discipline as the bench
    /// writers — the workspace builds offline, so no serde.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let _ = write!(
            s,
            "\"queue_depth\": {}, \"peak_queue_depth\": {}, \"queue_capacity\": {}, ",
            self.queue_depth, self.peak_queue_depth, self.queue_capacity
        );
        let _ = write!(
            s,
            "\"submitted\": {}, \"rejected\": {}, \"completed\": {}, \"failed\": {}, ",
            self.submitted, self.rejected, self.completed, self.failed
        );
        let _ = write!(
            s,
            "\"waves\": {}, \"wave_polys\": {}, \"wave_occupancy\": {:.4}, ",
            self.waves, self.wave_polys, self.wave_occupancy
        );
        let _ = write!(
            s,
            "\"busy_secs\": {:.6}, \"polys_per_sec\": {:.1}, ",
            self.busy_secs, self.polys_per_sec
        );
        let _ = write!(
            s,
            "\"shard_ms_p50\": {:.4}, \"shard_ms_p90\": {:.4}, \"shard_ms_max\": {:.4}, ",
            self.shard_secs_p50 * 1e3,
            self.shard_secs_p90 * 1e3,
            self.shard_secs_max * 1e3
        );
        let _ = write!(
            s,
            "\"program_cache_entries\": {}, \"program_cache_hits\": {}, ",
            self.program_cache_entries, self.program_cache_hits
        );
        let _ = write!(
            s,
            "\"pipeline_cache_entries\": {}, \"pipeline_cache_hits\": {}, ",
            self.pipeline_cache_entries, self.pipeline_cache_hits
        );
        let _ = write!(
            s,
            "\"faults_detected\": {}, \"retries\": {}, \"quarantined_shards\": {}, ",
            self.faults_detected, self.retries, self.quarantined_shards
        );
        let _ = write!(
            s,
            "\"fallback_polys\": {}, \"deadline_expired\": {}, \"verify_ms\": {:.4}, ",
            self.fallback_polys, self.deadline_expired, self.verify_ms
        );
        let _ = write!(s, "\"tenants\": {}}}", self.tenants);
        s
    }
}

/// Nearest-rank percentile of an **ascending-sorted** slice; 0.0 when
/// empty. `p` in `[0, 1]`.
pub(crate) fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 0.5), 3.0);
        assert_eq!(percentile(&xs, 1.0), 5.0);
        assert_eq!(percentile(&[7.0], 0.9), 7.0);
    }

    #[test]
    fn service_metrics_render_as_json() {
        let m = ServiceMetrics {
            queue_depth: 1,
            peak_queue_depth: 9,
            queue_capacity: 128,
            submitted: 40,
            rejected: 2,
            completed: 37,
            failed: 1,
            waves: 5,
            wave_polys: 38,
            wave_occupancy: 0.95,
            busy_secs: 0.5,
            polys_per_sec: 76.0,
            shard_secs_p50: 0.001,
            shard_secs_p90: 0.002,
            shard_secs_max: 0.003,
            program_cache_entries: 2,
            program_cache_hits: 1,
            pipeline_cache_entries: 5,
            pipeline_cache_hits: 4,
            faults_detected: 6,
            retries: 4,
            quarantined_shards: 1,
            fallback_polys: 2,
            deadline_expired: 3,
            verify_ms: 1.25,
            tenants: 3,
        };
        let json = m.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"queue_depth\": 1",
            "\"peak_queue_depth\": 9",
            "\"rejected\": 2",
            "\"waves\": 5",
            "\"wave_occupancy\": 0.9500",
            "\"polys_per_sec\": 76.0",
            "\"shard_ms_p90\": 2.0000",
            "\"program_cache_hits\": 1",
            "\"pipeline_cache_entries\": 5",
            "\"pipeline_cache_hits\": 4",
            "\"faults_detected\": 6",
            "\"retries\": 4",
            "\"quarantined_shards\": 1",
            "\"fallback_polys\": 2",
            "\"deadline_expired\": 3",
            "\"verify_ms\": 1.2500",
            "\"tenants\": 3",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn unit_conversions_are_consistent() {
        let stats = Stats {
            cycles: 380_000,
            energy_pj: 69_400.0,
            ..Default::default()
        };
        let geom = ArrayGeometry::paper_256x256();
        let r = PerfReport::from_stats(
            &stats,
            16,
            geom,
            &AreaModel::cmos_45nm(),
            &FrequencyModel::cmos_45nm(),
        );
        // 380k cycles at ~3.8 GHz ≈ 100 µs.
        assert!((r.latency_us() - 100.0).abs() < 2.0);
        // throughput = batch / latency.
        assert!((r.throughput - 16.0 / r.latency_s).abs() < 1e-6);
        // TP(kNTT/mJ) = 1 / (energy per NTT in mJ) / 1000.
        let tp_expect = 1.0 / (r.energy_per_ntt_nj * 1e-6) / 1e3;
        assert!((r.tput_per_power - tp_expect).abs() / tp_expect < 1e-9);
        assert!(r.tput_per_area > 0.0);
    }

    #[test]
    #[should_panic(expected = "batch must be nonzero")]
    fn zero_batch_rejected() {
        let stats = Stats {
            cycles: 1,
            ..Default::default()
        };
        let _ = PerfReport::from_stats(
            &stats,
            0,
            ArrayGeometry::paper_256x256(),
            &AreaModel::cmos_45nm(),
            &FrequencyModel::cmos_45nm(),
        );
    }
}
