//! Performance metrics in the units of the paper's Table I.

use bpntt_sram::geometry::{AreaModel, ArrayGeometry, FrequencyModel};
use bpntt_sram::Stats;
use std::fmt;

/// A Table-I-style performance report for one accelerator run.
///
/// Conventions follow the paper: *latency* is the wall-clock time of one
/// batch (all lanes run in SIMD), *throughput* counts every NTT in the
/// batch, *energy* is the whole-array energy of the batch, and the two
/// efficiency metrics are throughput per mm² and throughput per milliwatt
/// (equivalently kNTT per mJ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfReport {
    /// Array geometry the run used.
    pub geometry: ArrayGeometry,
    /// Clock frequency from the frequency model (Hz).
    pub f_hz: f64,
    /// Simulated compute cycles for the batch.
    pub cycles: u64,
    /// Independent NTTs in the batch (lanes actually used).
    pub batch: usize,
    /// Batch latency in seconds.
    pub latency_s: f64,
    /// Throughput in NTT/s.
    pub throughput: f64,
    /// Whole-array batch energy in nanojoules.
    pub energy_nj: f64,
    /// Energy attributable to one NTT (nJ).
    pub energy_per_ntt_nj: f64,
    /// Average power in watts.
    pub power_w: f64,
    /// Array area in mm² (including the compute modifications).
    pub area_mm2: f64,
    /// Throughput per area, kNTT/s/mm².
    pub tput_per_area: f64,
    /// Throughput per power, kNTT/mJ (= kNTT/s per mW).
    pub tput_per_power: f64,
}

impl PerfReport {
    /// Derives a report from simulator statistics.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero or the stats carry no cycles.
    #[must_use]
    pub fn from_stats(
        stats: &Stats,
        batch: usize,
        geometry: ArrayGeometry,
        area: &AreaModel,
        freq: &FrequencyModel,
    ) -> Self {
        assert!(batch > 0, "batch must be nonzero");
        assert!(stats.cycles > 0, "run produced no cycles");
        let f_hz = freq.f_max_hz(geometry);
        let latency_s = stats.cycles as f64 / f_hz;
        let throughput = batch as f64 / latency_s;
        let energy_nj = stats.energy_nj();
        let power_w = energy_nj * 1e-9 / latency_s;
        let area_mm2 = area.breakdown(geometry).total_mm2();
        PerfReport {
            geometry,
            f_hz,
            cycles: stats.cycles,
            batch,
            latency_s,
            throughput,
            energy_nj,
            energy_per_ntt_nj: energy_nj / batch as f64,
            power_w,
            area_mm2,
            tput_per_area: throughput / 1e3 / area_mm2,
            tput_per_power: throughput / 1e3 / (power_w * 1e3),
        }
    }

    /// Latency in microseconds (the paper's unit).
    #[must_use]
    pub fn latency_us(&self) -> f64 {
        self.latency_s * 1e6
    }

    /// Throughput in kNTT/s (the paper's unit).
    #[must_use]
    pub fn throughput_kntt_s(&self) -> f64 {
        self.throughput / 1e3
    }
}

impl fmt::Display for PerfReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "array:        {}×{} @ {:.2} GHz",
            self.geometry.rows,
            self.geometry.cols,
            self.f_hz / 1e9
        )?;
        writeln!(
            f,
            "batch:        {} NTTs in {} cycles",
            self.batch, self.cycles
        )?;
        writeln!(f, "latency:      {:.2} µs", self.latency_us())?;
        writeln!(f, "throughput:   {:.1} kNTT/s", self.throughput_kntt_s())?;
        writeln!(
            f,
            "energy:       {:.1} nJ/batch ({:.2} nJ/NTT)",
            self.energy_nj, self.energy_per_ntt_nj
        )?;
        writeln!(f, "power:        {:.3} mW", self.power_w * 1e3)?;
        writeln!(f, "area:         {:.4} mm²", self.area_mm2)?;
        writeln!(f, "tput/area:    {:.1} kNTT/s/mm²", self.tput_per_area)?;
        write!(f, "tput/power:   {:.1} kNTT/mJ", self.tput_per_power)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_are_consistent() {
        let stats = Stats {
            cycles: 380_000,
            energy_pj: 69_400.0,
            ..Default::default()
        };
        let geom = ArrayGeometry::paper_256x256();
        let r = PerfReport::from_stats(
            &stats,
            16,
            geom,
            &AreaModel::cmos_45nm(),
            &FrequencyModel::cmos_45nm(),
        );
        // 380k cycles at ~3.8 GHz ≈ 100 µs.
        assert!((r.latency_us() - 100.0).abs() < 2.0);
        // throughput = batch / latency.
        assert!((r.throughput - 16.0 / r.latency_s).abs() < 1e-6);
        // TP(kNTT/mJ) = 1 / (energy per NTT in mJ) / 1000.
        let tp_expect = 1.0 / (r.energy_per_ntt_nj * 1e-6) / 1e3;
        assert!((r.tput_per_power - tp_expect).abs() / tp_expect < 1e-9);
        assert!(r.tput_per_area > 0.0);
    }

    #[test]
    #[should_panic(expected = "batch must be nonzero")]
    fn zero_batch_rejected() {
        let stats = Stats {
            cycles: 1,
            ..Default::default()
        };
        let _ = PerfReport::from_stats(
            &stats,
            0,
            ArrayGeometry::paper_256x256(),
            &AreaModel::cmos_45nm(),
            &FrequencyModel::cmos_45nm(),
        );
    }
}
