//! End-to-end output verification for pipeline runs.
//!
//! The simulator computes inside SRAM arrays, exactly the substrate where
//! transient upsets and stuck cells corrupt results silently; this module
//! is the *detect* rung of the recovery ladder. A [`VerifyPolicy`] chooses
//! how much to pay for detection:
//!
//! * [`VerifyPolicy::Range`] — every output coefficient must be `< q`.
//!   O(N) compares per lane; catches most high-bit flips for pennies but
//!   misses corruption that lands inside the legal range.
//! * [`VerifyPolicy::SpotCheck`] — Freivalds-style random-point checks
//!   *plus* whole-output moment identities. An NTT output at index `i`
//!   equals the input polynomial evaluated at the root power `r_i` (with
//!   `r_i^n ≡ −1` in the negacyclic ring), so one O(N) Horner evaluation
//!   checks one output point against the untransformed input — versus
//!   O(N log N) to recompute the transform. The same identity gives a
//!   product check for polynomial multiplication
//!   (`c(r_i) = a(r_i)·b(r_i)`) and a spectral check for NTT-domain
//!   pipelines.
//!
//!   Point sampling alone has a blind spot this module explicitly
//!   closes: the difference between a corrupted output and the truth,
//!   evaluated at the points `r_i`, is exactly the *spectrum* of the
//!   error — and faults that strike while the pipeline is in the NTT
//!   domain produce errors that are **sparse in that spectrum**, hence
//!   zero at all but a few of the `n` sample points. (No better points
//!   exist: every `r` with `r^n = −1` in `Z_q` already is an NTT sample
//!   point.) So every recognized shape also gets two **moment**
//!   identities — O(N) functionals `Σ t^i·(…)` at two frozen points
//!   `t₁, t₂` that weigh *all* coefficients (for products, the host-side
//!   spectra supply the right-hand side at O(N log N)). A single
//!   corrupted coefficient or spectral index shifts a moment by
//!   `δ·t^k ≢ 0` and is caught with certainty; a random multi-point
//!   error escapes only if both frozen points are roots of the error
//!   polynomial, probability ≈ `((n−1)/q)²` per lane. Specs without a
//!   closed-form identity compare against a full software recomputation
//!   of the lane. Residual escapes never survive a retry with a fresh
//!   seed plus the ladder's terminal full-reference fallback.
//! * [`VerifyPolicy::Full`] — recompute every lane with the software
//!   reference NTT and compare exactly. The most expensive and the only
//!   policy with zero escape probability in a single pass.
//!
//! Failures surface as [`BpNttError::IntegrityFailure`], which the
//! sharded engine's retry/quarantine/fallback ladder consumes
//! (see [`crate::ShardedBpNtt`]). The [`Verifier`] also exposes the
//! software reference execution of a whole pipeline
//! ([`Verifier::software_outputs`]) — the ladder's terminal *degrade*
//! rung, guaranteeing a correct answer even on a hopelessly faulty array.

use crate::error::BpNttError;
use crate::pipeline::{PipeOp, PipelineSpec};
use bpntt_modmath::zq::{add_mod, mul_mod, pow_mod};
use bpntt_ntt::{forward::ntt_in_place, inverse::intt_in_place, NttParams, TwiddleTable};

/// How aggressively pipeline outputs are checked before being returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyPolicy {
    /// No verification (the default): outputs are trusted as-is.
    #[default]
    Off,
    /// Assert every output coefficient is reduced (`< q`).
    Range,
    /// Freivalds-style random-point evaluation (`points` checked points
    /// per lane, each O(N)) plus two whole-output moment identities per
    /// lane; see the [module docs](self) for the escape probability.
    SpotCheck {
        /// Points checked per output lane (0 behaves like `Off`).
        points: usize,
    },
    /// Full comparison against the software reference transform.
    Full,
}

impl VerifyPolicy {
    /// Whether this policy performs any checking at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        !matches!(
            self,
            VerifyPolicy::Off | VerifyPolicy::SpotCheck { points: 0 }
        )
    }
}

/// Checks pipeline outputs against the inputs they were computed from.
///
/// Holds the parameter set, a software twiddle table, and the evaluation
/// points `r_i` (the root power the transform evaluates at output index
/// `i`, extracted convention-independently by transforming `x` — the
/// transform of `e_1` at index `i` *is* `r_i`).
#[derive(Debug, Clone)]
pub struct Verifier {
    params: NttParams,
    twiddles: TwiddleTable,
    /// `eval_points[i]` = the point the forward transform evaluates at
    /// output index `i`, in this library's output ordering.
    eval_points: Vec<u64>,
    /// Powers `t₁^i` of the first frozen Freivalds point — the weight
    /// vector of the O(N) whole-output *moment* check
    /// `Σ_i t^i·out[i] = Σ_j w_j·in[j]`.
    t_pows: Vec<u64>,
    /// `w_j = Σ_i t₁^i·r_i^j`: the moment weights of the input side,
    /// precomputed once (O(N²) at construction).
    moment_w: Vec<u64>,
    /// Powers of the second frozen point `t₂ ≠ t₁`. Requiring both
    /// moment functionals to match squares the escape probability of a
    /// random multi-coefficient error (each functional vanishes only if
    /// its point is a root of the degree-`< n` error polynomial).
    t2_pows: Vec<u64>,
    /// Input-side moment weights at the second frozen point.
    moment_w2: Vec<u64>,
}

/// Splitmix-style seed scrambler so consecutive nonces give unrelated
/// streams.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Small xorshift stream for lane/point sampling (never zero-seeded).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(mix(seed) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Horner evaluation of `poly` at `r` modulo `q`.
fn eval_at(poly: &[u64], r: u64, q: u64) -> u64 {
    let mut acc = 0u64;
    for &c in poly.iter().rev() {
        acc = add_mod(mul_mod(acc, r, q), c % q, q);
    }
    acc
}

/// The zero polynomial a slot's lanes beyond its supplied batch hold
/// (`load_batch_at` zeroes them).
fn lane_or_zero<'a>(batch: &'a [Vec<u64>], lane: usize, zero: &'a [u64]) -> &'a [u64] {
    batch.get(lane).map_or(zero, Vec::as_slice)
}

impl Verifier {
    /// Builds a verifier for one parameter set (one software transform of
    /// `x` to extract the evaluation points).
    #[must_use]
    pub fn new(params: &NttParams) -> Self {
        let twiddles = TwiddleTable::new(params);
        let mut e1 = vec![0u64; params.n()];
        if params.n() > 1 {
            e1[1] = 1;
        }
        ntt_in_place(params, &twiddles, &mut e1).expect("transforming x never fails");
        let n = params.n();
        let q = params.modulus();
        // Freeze two distinct Freivalds points per verifier. Against
        // random faults (not an adversary) fixed points are sound: a
        // single-coefficient corruption δ·x^k shifts each moment by
        // δ·t^k ≢ 0 (q prime keeps every power of t nonzero), and a
        // multi-coefficient error escapes only if *both* points happen
        // to be roots of the error polynomial.
        let span = q.saturating_sub(3).max(1);
        let t = 2 + mix(q ^ (n as u64)) % span;
        let mut t2 = 2 + mix(q ^ (n as u64) ^ 0xa5a5_a5a5_a5a5_a5a5) % span;
        if t2 == t {
            t2 = 2 + (t - 2 + 1) % span;
        }
        let tables = |t: u64| {
            let mut t_pows = vec![0u64; n];
            let mut acc = 1u64;
            for p in &mut t_pows {
                *p = acc;
                acc = mul_mod(acc, t, q);
            }
            let mut moment_w = vec![0u64; n];
            for (j, w) in moment_w.iter_mut().enumerate() {
                let mut s = 0u64;
                for (i, &ti) in t_pows.iter().enumerate() {
                    // r_i^j by repeated squaring is overkill for one table
                    // build; Horner-free accumulation keeps it O(N²) total.
                    s = add_mod(s, mul_mod(ti, pow_mod(e1[i], j as u64, q), q), q);
                }
                *w = s;
            }
            (t_pows, moment_w)
        };
        let (t_pows, moment_w) = tables(t);
        let (t2_pows, moment_w2) = tables(t2);
        Verifier {
            params: params.clone(),
            twiddles,
            eval_points: e1,
            t_pows,
            moment_w,
            t2_pows,
            moment_w2,
        }
    }

    /// Dot product `Σ weights[i]·values[i] mod q`.
    fn dot(&self, weights: &[u64], values: &[u64]) -> u64 {
        let q = self.params.modulus();
        weights
            .iter()
            .zip(values)
            .fold(0u64, |acc, (&w, &v)| add_mod(acc, mul_mod(w, v % q, q), q))
    }

    /// The evaluation point behind output index `i`.
    #[must_use]
    pub fn eval_point(&self, i: usize) -> u64 {
        self.eval_points[i]
    }

    /// Runs `spec` in plain software for one lane: `inputs` holds one
    /// polynomial per declared input slot, in spec order. Returns the
    /// output lane, or `None` for output-less specs.
    ///
    /// # Errors
    ///
    /// Propagates reference-transform failures (wrong-length lanes).
    pub fn software_lane(
        &self,
        spec: &PipelineSpec,
        inputs: &[&[u64]],
    ) -> Result<Option<Vec<u64>>, BpNttError> {
        let n = self.params.n();
        let q = self.params.modulus();
        let n_slots = spec.slots();
        let mut slots: Vec<Vec<u64>> = vec![vec![0u64; n]; n_slots];
        for (&s, lane) in spec.input_slots().iter().zip(inputs) {
            slots[usize::from(s)] = lane.to_vec();
        }
        for op in spec.ops() {
            match *op {
                PipeOp::Forward { slot } => {
                    ntt_in_place(&self.params, &self.twiddles, &mut slots[usize::from(slot)])?;
                }
                PipeOp::Inverse { slot } => {
                    intt_in_place(&self.params, &self.twiddles, &mut slots[usize::from(slot)])?;
                }
                PipeOp::Pointwise { dst, src } => {
                    let (d, s) = (usize::from(dst), usize::from(src));
                    let src_lane = slots[s].clone();
                    for (c, &m) in slots[d].iter_mut().zip(&src_lane) {
                        *c = mul_mod(*c, m, q);
                    }
                }
                PipeOp::ScaleBy { slot, factor } => {
                    for c in &mut slots[usize::from(slot)] {
                        *c = mul_mod(*c, factor, q);
                    }
                }
            }
        }
        Ok(spec
            .output_slot()
            .map(|s| std::mem::take(&mut slots[usize::from(s)])))
    }

    /// Runs `spec` in plain software for a whole batch — the recovery
    /// ladder's terminal fallback. `inputs` holds one batch per declared
    /// input slot; lanes beyond a slot's batch are the zero polynomial
    /// (mirroring the engine's load discipline), and the output batch is
    /// as long as the largest input batch.
    ///
    /// # Errors
    ///
    /// Propagates reference-transform failures.
    pub fn software_outputs(
        &self,
        spec: &PipelineSpec,
        inputs: &[&[Vec<u64>]],
    ) -> Result<Vec<Vec<u64>>, BpNttError> {
        let batch = inputs.iter().map(|b| b.len()).max().unwrap_or(0);
        let zero = vec![0u64; self.params.n()];
        let mut out = Vec::with_capacity(batch);
        for lane in 0..batch {
            let lane_inputs: Vec<&[u64]> = inputs
                .iter()
                .map(|b| lane_or_zero(b, lane, &zero))
                .collect();
            match self.software_lane(spec, &lane_inputs)? {
                Some(o) => out.push(o),
                None => return Ok(Vec::new()),
            }
        }
        Ok(out)
    }

    /// Checks `outputs` (one lane per entry) of a pipeline run of `spec`
    /// on `inputs` under `policy`. `seed` drives the spot-check sampling;
    /// vary it between retries so a repeated check probes fresh points.
    ///
    /// # Errors
    ///
    /// [`BpNttError::IntegrityFailure`] naming the output slot and the
    /// first mismatching lane/coefficient when a check fails.
    pub fn check(
        &self,
        spec: &PipelineSpec,
        inputs: &[&[Vec<u64>]],
        outputs: &[Vec<u64>],
        policy: VerifyPolicy,
        seed: u64,
    ) -> Result<(), BpNttError> {
        let Some(out_slot) = spec.output_slot() else {
            return Ok(());
        };
        let slot = usize::from(out_slot);
        let q = self.params.modulus();
        let n = self.params.n();
        match policy {
            VerifyPolicy::Off => Ok(()),
            VerifyPolicy::Range => {
                for (lane, out) in outputs.iter().enumerate() {
                    if let Some(i) = out.iter().position(|&c| c >= q) {
                        return Err(BpNttError::IntegrityFailure {
                            slot,
                            detail: format!(
                                "range check: lane {lane} coefficient {i} is {} ≥ q = {q}",
                                out[i]
                            ),
                        });
                    }
                }
                Ok(())
            }
            VerifyPolicy::SpotCheck { points } if points > 0 => {
                // Range discipline is part of every stronger policy: a
                // point identity holds mod q even for unreduced outputs.
                self.check(spec, inputs, outputs, VerifyPolicy::Range, seed)?;
                let shape = Self::classify(spec);
                let mut rng = Rng::new(seed);
                let zero = vec![0u64; n];
                for (lane, out) in outputs.iter().enumerate() {
                    let lane_inputs: Vec<&[u64]> = inputs
                        .iter()
                        .map(|b| lane_or_zero(b, lane, &zero))
                        .collect();
                    // Whole-output moment identities — every coefficient
                    // weighed, at two frozen points. Sampled points alone
                    // miss spectrally sparse corruption (see module docs);
                    // these O(N) functionals catch any single corrupted
                    // coefficient or spectral index with certainty. For
                    // product shapes, host NTTs of the inputs supply the
                    // expected spectrum `p̂_i = â_i·b̂_i`, and
                    // `Σ_j w_j·c_j = Σ_i t^i·p̂_i` closes the identity.
                    let moments: Option<[(u64, u64); 2]> = match shape {
                        SpecShape::Forward => Some([
                            (
                                self.dot(&self.t_pows, out),
                                self.dot(&self.moment_w, lane_inputs[0]),
                            ),
                            (
                                self.dot(&self.t2_pows, out),
                                self.dot(&self.moment_w2, lane_inputs[0]),
                            ),
                        ]),
                        SpecShape::Roundtrip => Some([
                            (
                                self.dot(&self.t_pows, out),
                                self.dot(&self.t_pows, lane_inputs[0]),
                            ),
                            (
                                self.dot(&self.t2_pows, out),
                                self.dot(&self.t2_pows, lane_inputs[0]),
                            ),
                        ]),
                        SpecShape::Polymul | SpecShape::PolymulSpectral => {
                            let spectrum = |lane: &[u64]| -> Result<Vec<u64>, BpNttError> {
                                let mut v: Vec<u64> = lane.iter().map(|&c| c % q).collect();
                                v.resize(n, 0);
                                if matches!(shape, SpecShape::Polymul) {
                                    ntt_in_place(&self.params, &self.twiddles, &mut v)?;
                                }
                                Ok(v)
                            };
                            let ahat = spectrum(lane_inputs[0])?;
                            let bhat = spectrum(lane_inputs[1])?;
                            let phat: Vec<u64> = ahat
                                .iter()
                                .zip(&bhat)
                                .map(|(&x, &y)| mul_mod(x, y, q))
                                .collect();
                            Some([
                                (self.dot(&self.moment_w, out), self.dot(&self.t_pows, &phat)),
                                (
                                    self.dot(&self.moment_w2, out),
                                    self.dot(&self.t2_pows, &phat),
                                ),
                            ])
                        }
                        SpecShape::General => None,
                    };
                    if let Some(pairs) = moments {
                        for (k, (got, want)) in pairs.into_iter().enumerate() {
                            if got != want {
                                return Err(BpNttError::IntegrityFailure {
                                    slot,
                                    detail: format!(
                                        "moment spot check: lane {lane} functional {k} \
                                         is {got}, expected {want}"
                                    ),
                                });
                            }
                        }
                        for _ in 0..points.min(n) {
                            let i = rng.below(n);
                            self.spot_check_point(&shape, &lane_inputs, out, lane, i, slot)?;
                        }
                    } else {
                        // No closed-form identity, and sampling a software
                        // reference that already cost O(N log N) to build
                        // leaves detection on the table — compare it whole.
                        let reference = self
                            .software_lane(spec, &lane_inputs)?
                            .expect("spec has an output slot");
                        if let Some(i) = (0..n).find(|&i| out.get(i) != Some(&reference[i])) {
                            return Err(BpNttError::IntegrityFailure {
                                slot,
                                detail: format!(
                                    "reference spot check: lane {lane} coefficient {i} \
                                     is {:?}, reference {}",
                                    out.get(i),
                                    reference[i]
                                ),
                            });
                        }
                    }
                }
                Ok(())
            }
            VerifyPolicy::SpotCheck { .. } => Ok(()),
            VerifyPolicy::Full => {
                let zero = vec![0u64; n];
                for (lane, out) in outputs.iter().enumerate() {
                    let lane_inputs: Vec<&[u64]> = inputs
                        .iter()
                        .map(|b| lane_or_zero(b, lane, &zero))
                        .collect();
                    let reference = self
                        .software_lane(spec, &lane_inputs)?
                        .expect("spec has an output slot");
                    if let Some(i) = (0..n).find(|&i| out.get(i) != Some(&reference[i])) {
                        return Err(BpNttError::IntegrityFailure {
                            slot,
                            detail: format!(
                                "full check: lane {lane} coefficient {i} is {:?}, reference {}",
                                out.get(i),
                                reference[i]
                            ),
                        });
                    }
                }
                Ok(())
            }
        }
    }

    /// One random-point identity check of output index `i` of one lane.
    ///
    /// Only called for the recognized spec shapes with an O(N)
    /// closed-form identity; [`SpecShape::General`] lanes are compared
    /// whole against the software reference instead.
    fn spot_check_point(
        &self,
        shape: &SpecShape,
        lane_inputs: &[&[u64]],
        out: &[u64],
        lane: usize,
        i: usize,
        slot: usize,
    ) -> Result<(), BpNttError> {
        let q = self.params.modulus();
        let fail = |kind: &str, got: u64, want: u64| BpNttError::IntegrityFailure {
            slot,
            detail: format!("{kind} spot check: lane {lane} point {i} is {got}, expected {want}"),
        };
        let r = self.eval_points[i];
        let got = out.get(i).copied().unwrap_or(u64::MAX);
        match shape {
            SpecShape::Forward => {
                // out[i] = A(r_i): one Horner pass over the input.
                let want = eval_at(lane_inputs[0], r, q);
                if got != want {
                    return Err(fail("forward", got, want));
                }
            }
            SpecShape::Roundtrip => {
                let want = lane_inputs[0].get(i).copied().unwrap_or(0) % q;
                if got != want {
                    return Err(fail("roundtrip", got, want));
                }
            }
            SpecShape::Polymul => {
                // Freivalds: c(r_i) = a(r_i)·b(r_i) in Z_q[x]/(x^n + 1),
                // because r_i^n ≡ −1 makes r_i a root-compatible point.
                let want = mul_mod(
                    eval_at(lane_inputs[0], r, q),
                    eval_at(lane_inputs[1], r, q),
                    q,
                );
                let got_eval = eval_at(out, r, q);
                if got_eval != want {
                    return Err(fail("product", got_eval, want));
                }
            }
            SpecShape::PolymulSpectral => {
                // Inputs are resident spectra: out(r_i) must equal the
                // pointwise product â_i·b̂_i.
                let want = mul_mod(
                    lane_inputs[0].get(i).copied().unwrap_or(0),
                    lane_inputs[1].get(i).copied().unwrap_or(0),
                    q,
                );
                let got_eval = eval_at(out, r, q);
                if got_eval != want {
                    return Err(fail("spectral", got_eval, want));
                }
            }
            SpecShape::General => unreachable!("general shapes use the full reference compare"),
        }
        Ok(())
    }

    /// Structural classification of a spec into the shapes with
    /// closed-form point identities.
    fn classify(spec: &PipelineSpec) -> SpecShape {
        let ops = spec.ops();
        let ins = spec.input_slots();
        let out = spec.output_slot();
        match (ops, ins, out) {
            ([PipeOp::Forward { slot }], [i], Some(o)) if slot == i && *slot == o => {
                SpecShape::Forward
            }
            ([PipeOp::Forward { slot: f }, PipeOp::Inverse { slot: v }], [i], Some(o))
                if f == v && f == i && *f == o =>
            {
                SpecShape::Roundtrip
            }
            (
                [PipeOp::Forward { slot: fa }, PipeOp::Forward { slot: fb }, PipeOp::Pointwise { dst, src }, PipeOp::Inverse { slot: v }],
                [a, b],
                Some(o),
            ) if fa == a && fb == b && dst == a && src == b && v == a && *a == o => {
                SpecShape::Polymul
            }
            ([PipeOp::Pointwise { dst, src }, PipeOp::Inverse { slot: v }], [a, b], Some(o))
                if dst == a && src == b && v == a && *a == o =>
            {
                SpecShape::PolymulSpectral
            }
            _ => SpecShape::General,
        }
    }
}

/// Spec shapes with dedicated O(N) point identities.
enum SpecShape {
    Forward,
    Roundtrip,
    Polymul,
    PolymulSpectral,
    General,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpntt_ntt::Polynomial;

    fn params() -> NttParams {
        NttParams::new(16, 193).unwrap()
    }

    fn rand_poly(seed: u64) -> Vec<u64> {
        Polynomial::pseudo_random(&params(), seed).into_coeffs()
    }

    #[test]
    fn eval_points_satisfy_negacyclic_identity() {
        let p = params();
        let v = Verifier::new(&p);
        for i in 0..p.n() {
            let r = v.eval_point(i);
            let rn = bpntt_modmath::zq::pow_mod(r, p.n() as u64, p.modulus());
            assert_eq!(rn, p.modulus() - 1, "r_{i}^n must be −1");
        }
    }

    #[test]
    fn forward_spot_check_accepts_truth_and_rejects_corruption() {
        let p = params();
        let v = Verifier::new(&p);
        let spec = PipelineSpec::forward_ntt();
        let a = rand_poly(7);
        let mut out = a.clone();
        ntt_in_place(&p, &v.twiddles, &mut out).unwrap();
        let batch = [a.clone()];
        let inputs: Vec<&[Vec<u64>]> = vec![&batch];
        let policy = VerifyPolicy::SpotCheck { points: 16 };
        v.check(&spec, &inputs, &[out.clone()], policy, 1).unwrap();
        let mut bad = out;
        bad[3] = (bad[3] + 1) % p.modulus();
        let err = v.check(&spec, &inputs, &[bad], policy, 1).unwrap_err();
        assert!(matches!(err, BpNttError::IntegrityFailure { slot: 0, .. }));
    }

    #[test]
    fn polymul_freivalds_catches_single_flip() {
        let p = params();
        let v = Verifier::new(&p);
        let spec = PipelineSpec::polymul();
        let (a, b) = (rand_poly(1), rand_poly(2));
        let c = bpntt_ntt::polymul::polymul_schoolbook(&p, &a, &b).unwrap();
        let (ba, bb) = ([a.clone()], [b.clone()]);
        let inputs: Vec<&[Vec<u64>]> = vec![&ba, &bb];
        // Every point of a correct product passes.
        v.check(
            &spec,
            &inputs,
            std::slice::from_ref(&c),
            VerifyPolicy::SpotCheck { points: 16 },
            3,
        )
        .unwrap();
        // A flip changes c(r) for every r (degree < n polynomial), so a
        // single checked point suffices.
        let mut bad = c;
        bad[0] ^= 1;
        let err = v
            .check(
                &spec,
                &inputs,
                &[bad],
                VerifyPolicy::SpotCheck { points: 1 },
                3,
            )
            .unwrap_err();
        assert!(matches!(err, BpNttError::IntegrityFailure { .. }));
    }

    #[test]
    fn polymul_spot_check_catches_spectrally_sparse_corruption() {
        // The regression the moment identities exist for: an error that
        // is a single spike in the NTT spectrum vanishes at every
        // unsampled Freivalds point, so point sampling alone misses it
        // with probability ≈ 1 − points/n. The whole-output moments must
        // catch it at any seed.
        let p = params();
        let v = Verifier::new(&p);
        let spec = PipelineSpec::polymul();
        let (a, b) = (rand_poly(21), rand_poly(22));
        let c = bpntt_ntt::polymul::polymul_schoolbook(&p, &a, &b).unwrap();
        let mut chat = c.clone();
        ntt_in_place(&p, &v.twiddles, &mut chat).unwrap();
        chat[5] = (chat[5] + 1) % p.modulus();
        let mut bad = chat;
        intt_in_place(&p, &v.twiddles, &mut bad).unwrap();
        assert_ne!(bad, c);
        let (ba, bb) = ([a], [b]);
        let inputs: Vec<&[Vec<u64>]> = vec![&ba, &bb];
        for seed in 0..32 {
            let err = v
                .check(
                    &spec,
                    &inputs,
                    std::slice::from_ref(&bad),
                    VerifyPolicy::SpotCheck { points: 2 },
                    seed,
                )
                .unwrap_err();
            assert!(matches!(err, BpNttError::IntegrityFailure { .. }));
        }
    }

    #[test]
    fn range_and_full_policies() {
        let p = params();
        let v = Verifier::new(&p);
        let spec = PipelineSpec::forward_ntt();
        let a = rand_poly(9);
        let mut out = a.clone();
        ntt_in_place(&p, &v.twiddles, &mut out).unwrap();
        let batch = [a.clone()];
        let inputs: Vec<&[Vec<u64>]> = vec![&batch];
        v.check(&spec, &inputs, &[out.clone()], VerifyPolicy::Range, 0)
            .unwrap();
        v.check(&spec, &inputs, &[out.clone()], VerifyPolicy::Full, 0)
            .unwrap();
        let mut unreduced = out.clone();
        unreduced[5] += p.modulus();
        assert!(v
            .check(&spec, &inputs, &[unreduced], VerifyPolicy::Range, 0)
            .is_err());
        // In-range corruption slips past Range but not Full.
        let mut subtle = out;
        subtle[5] = (subtle[5] + 1) % p.modulus();
        v.check(&spec, &inputs, &[subtle.clone()], VerifyPolicy::Range, 0)
            .unwrap();
        assert!(v
            .check(&spec, &inputs, &[subtle], VerifyPolicy::Full, 0)
            .is_err());
    }

    #[test]
    fn software_outputs_match_schoolbook() {
        let p = params();
        let v = Verifier::new(&p);
        let (a, b) = (rand_poly(4), rand_poly(5));
        let want = bpntt_ntt::polymul::polymul_schoolbook(&p, &a, &b).unwrap();
        let (ba, bb) = ([a], [b]);
        let inputs: Vec<&[Vec<u64>]> = vec![&ba, &bb];
        let got = v
            .software_outputs(&PipelineSpec::polymul(), &inputs)
            .unwrap();
        assert_eq!(got, vec![want]);
    }
}
