//! Error type for the BP-NTT accelerator.

use bpntt_modmath::ModMathError;
use bpntt_ntt::NttError;
use bpntt_rns::RnsError;
use bpntt_sram::SramError;
use std::error::Error;
use std::fmt;

/// Errors produced by accelerator configuration and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BpNttError {
    /// The coefficient bit width must lie in `2..=64`.
    InvalidBitwidth {
        /// Requested width.
        bitwidth: usize,
    },
    /// The array is too narrow to hold even one tile.
    ArrayTooNarrow {
        /// Array columns.
        cols: usize,
        /// Requested tile width.
        bitwidth: usize,
    },
    /// The modulus needs one spare bit (`q < 2^(bitwidth−1)`) for the
    /// packing observations and the MSB-based sign checks to hold.
    NoHeadroom {
        /// The modulus.
        q: u64,
        /// The coefficient width.
        bitwidth: usize,
    },
    /// The polynomial does not fit the array under the chosen layout.
    CapacityExceeded {
        /// Polynomial order.
        n: usize,
        /// Points the layout can hold per lane.
        capacity: usize,
    },
    /// More polynomials were supplied than the layout has lanes.
    BatchTooLarge {
        /// Supplied batch size.
        batch: usize,
        /// Available lanes.
        lanes: usize,
    },
    /// A supplied polynomial had the wrong length.
    WrongLength {
        /// Expected coefficients.
        expected: usize,
        /// Got.
        actual: usize,
    },
    /// A coefficient was not reduced modulo `q`.
    Unreduced {
        /// Lane index.
        lane: usize,
        /// Coefficient index.
        index: usize,
        /// Value found.
        value: u64,
    },
    /// A sharded engine needs at least one shard.
    InvalidShardCount {
        /// Requested shard count.
        shards: usize,
    },
    /// A pipeline spec is structurally invalid (empty op-graph,
    /// duplicate input slots, pointwise self-product, unreduced scale
    /// factor, or mismatched input batches at execution time).
    InvalidPipeline {
        /// Human-readable defect description.
        reason: String,
    },
    /// Paired batch operands must have equal lengths.
    BatchMismatch {
        /// Length of the first operand batch.
        a: usize,
        /// Length of the second operand batch.
        b: usize,
    },
    /// The service shed the request under load — the bounded queue is
    /// full, or queue-depth load shedding kicked in above the configured
    /// threshold. Backpressure: the client should retry after
    /// `retry_after_ms` (the service's drain-rate estimate of when a
    /// slot frees up).
    Overloaded {
        /// Requests currently queued.
        depth: usize,
        /// The queue's configured capacity.
        capacity: usize,
        /// Suggested client back-off before resubmitting, in
        /// milliseconds (estimated from the dispatcher's recent drain
        /// rate; never zero).
        retry_after_ms: u64,
    },
    /// The tenant's token-bucket rate limit rejected the request.
    /// Distinct from [`Self::Overloaded`]: this is a per-tenant
    /// admission decision, not global queue pressure.
    RateLimited {
        /// The rate-limited tenant.
        tenant: u32,
        /// Milliseconds until the bucket refills enough for one request.
        retry_after_ms: u64,
    },
    /// The request was cancelled before (or while) executing — its
    /// ticket was dropped or explicitly cancelled, e.g. a network client
    /// disconnecting mid-request.
    Cancelled,
    /// The service dispatcher has shut down (or dropped a reply channel);
    /// no further requests will be served.
    ServiceShutdown,
    /// The tenant id was never registered with this service.
    UnknownTenant {
        /// The unrecognised tenant id.
        tenant: u32,
    },
    /// An output failed verification (see
    /// [`VerifyPolicy`](crate::VerifyPolicy)): the array returned a
    /// result that does not match the inputs it was computed from.
    IntegrityFailure {
        /// The pipeline output slot that failed the check.
        slot: usize,
        /// Which check failed and where (lane / point / values).
        detail: String,
    },
    /// A shard worker thread panicked mid-wave (e.g. an injected hard
    /// fault). The wave is lost but the engine and the remaining shards
    /// stay usable.
    WorkerPanicked {
        /// The shard whose worker died.
        shard: usize,
    },
    /// The service dispatcher died mid-flight (panicked) and the
    /// watchdog respawned it. Requests that were queued when it died
    /// fail with this error instead of hanging; the respawned
    /// dispatcher serves new submissions, so resubmitting is safe.
    DispatcherRestarted,
    /// The request's deadline passed before the dispatcher could execute
    /// it.
    DeadlineExpired {
        /// How far past the deadline the request was picked up.
        late_ms: u64,
    },
    /// Underlying RNS basis / residue failure.
    Rns(RnsError),
    /// Underlying NTT parameter failure.
    Ntt(NttError),
    /// Underlying modular-arithmetic failure.
    Math(ModMathError),
    /// Underlying SRAM simulator failure.
    Sram(SramError),
}

impl fmt::Display for BpNttError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BpNttError::InvalidBitwidth { bitwidth } => {
                write!(f, "bit width {bitwidth} outside the supported range 2..=64")
            }
            BpNttError::ArrayTooNarrow { cols, bitwidth } => {
                write!(
                    f,
                    "array with {cols} columns cannot hold a {bitwidth}-bit tile"
                )
            }
            BpNttError::NoHeadroom { q, bitwidth } => {
                write!(
                    f,
                    "modulus {q} needs one spare bit in {bitwidth}-bit words (q < 2^{})",
                    bitwidth - 1
                )
            }
            BpNttError::CapacityExceeded { n, capacity } => {
                write!(
                    f,
                    "{n}-point polynomial exceeds the layout capacity of {capacity} points"
                )
            }
            BpNttError::BatchTooLarge { batch, lanes } => {
                write!(
                    f,
                    "batch of {batch} polynomials exceeds the {lanes} available lanes"
                )
            }
            BpNttError::WrongLength { expected, actual } => {
                write!(f, "expected {expected} coefficients, got {actual}")
            }
            BpNttError::Unreduced { lane, index, value } => {
                write!(
                    f,
                    "coefficient {value} (lane {lane}, index {index}) is not reduced"
                )
            }
            BpNttError::InvalidShardCount { shards } => {
                write!(
                    f,
                    "a sharded engine needs at least one shard (got {shards})"
                )
            }
            BpNttError::InvalidPipeline { reason } => {
                write!(f, "invalid pipeline: {reason}")
            }
            BpNttError::BatchMismatch { a, b } => {
                write!(
                    f,
                    "paired batches must have equal lengths (got {a} and {b})"
                )
            }
            BpNttError::Overloaded {
                depth,
                capacity,
                retry_after_ms,
            } => {
                write!(
                    f,
                    "service queue overloaded ({depth} of {capacity} slots in use; \
                     retry after {retry_after_ms} ms)"
                )
            }
            BpNttError::RateLimited {
                tenant,
                retry_after_ms,
            } => {
                write!(
                    f,
                    "tenant {tenant} rate-limited; retry after {retry_after_ms} ms"
                )
            }
            BpNttError::Cancelled => {
                write!(f, "the request was cancelled before completing")
            }
            BpNttError::ServiceShutdown => {
                write!(f, "the NTT service has shut down")
            }
            BpNttError::UnknownTenant { tenant } => {
                write!(f, "tenant {tenant} is not registered with this service")
            }
            BpNttError::IntegrityFailure { slot, detail } => {
                write!(f, "integrity failure on output slot {slot}: {detail}")
            }
            BpNttError::WorkerPanicked { shard } => {
                write!(f, "shard {shard} worker panicked mid-wave")
            }
            BpNttError::DispatcherRestarted => {
                write!(
                    f,
                    "the service dispatcher was restarted by the watchdog; resubmit the request"
                )
            }
            BpNttError::DeadlineExpired { late_ms } => {
                write!(f, "request deadline expired {late_ms} ms before dispatch")
            }
            BpNttError::Rns(e) => write!(f, "rns error: {e}"),
            BpNttError::Ntt(e) => write!(f, "ntt parameter error: {e}"),
            BpNttError::Math(e) => write!(f, "modular arithmetic error: {e}"),
            BpNttError::Sram(e) => write!(f, "sram simulator error: {e}"),
        }
    }
}

impl Error for BpNttError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BpNttError::Rns(e) => Some(e),
            BpNttError::Ntt(e) => Some(e),
            BpNttError::Math(e) => Some(e),
            BpNttError::Sram(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RnsError> for BpNttError {
    fn from(e: RnsError) -> Self {
        BpNttError::Rns(e)
    }
}

impl From<NttError> for BpNttError {
    fn from(e: NttError) -> Self {
        BpNttError::Ntt(e)
    }
}

impl From<ModMathError> for BpNttError {
    fn from(e: ModMathError) -> Self {
        BpNttError::Math(e)
    }
}

impl From<SramError> for BpNttError {
    fn from(e: SramError) -> Self {
        BpNttError::Sram(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = BpNttError::NoHeadroom {
            q: 40961,
            bitwidth: 16,
        };
        assert!(e.to_string().contains("2^15"));
        let e = BpNttError::Sram(SramError::BadOpcode { opcode: 9 });
        assert!(e.source().is_some());
        let e = BpNttError::Overloaded {
            depth: 128,
            capacity: 128,
            retry_after_ms: 7,
        };
        assert!(e.to_string().contains("128 of 128"));
        assert!(e.to_string().contains("retry after 7 ms"));
        let e = BpNttError::RateLimited {
            tenant: 3,
            retry_after_ms: 12,
        };
        assert!(e.to_string().contains("tenant 3"));
        assert!(e.to_string().contains("12 ms"));
        assert!(BpNttError::Cancelled.to_string().contains("cancelled"));
        let e = BpNttError::InvalidPipeline {
            reason: "pointwise self-product on slot 3".into(),
        };
        assert!(e.to_string().contains("invalid pipeline"));
        assert!(e.to_string().contains("slot 3"));
        assert!(BpNttError::ServiceShutdown
            .to_string()
            .contains("shut down"));
        let e = BpNttError::DispatcherRestarted;
        assert!(e.to_string().contains("restarted"));
        assert!(e.to_string().contains("resubmit"));
        assert!(BpNttError::UnknownTenant { tenant: 7 }
            .to_string()
            .contains("tenant 7"));
    }
}
