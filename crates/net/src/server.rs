//! The TCP front-end: one accept loop, one thread per connection,
//! [`NttService`] underneath.
//!
//! Resilience posture (the point of this layer — see the crate docs):
//!
//! * **Slow-loris / truncated frames** — every socket carries read and
//!   write timeouts; a client that stalls mid-frame (either direction)
//!   is dropped without ever touching the dispatcher.
//! * **Hostile bytes** — frames are decoded against [`FrameLimits`]
//!   before any request-sized allocation; decode failures answer typed
//!   (`BadFrame`) when the stream is still framed, and drop the
//!   connection when it is not (oversized length prefix).
//! * **Mid-request disconnect** — while a submission waits on its
//!   [`Ticket`](bpntt_core::Ticket), the connection is polled for EOF;
//!   a vanished client drops the ticket, which *cancels* the queued
//!   request instead of leaking it into a wave.
//! * **Drain shutdown** — [`NetServer::shutdown`] stops accepting,
//!   wakes every connection thread, and joins them; requests already
//!   admitted to the service keep their usual completion guarantees.

use crate::frame::{
    decode_request, encode_poly_body, encode_response, read_frame, write_frame, FrameLimits,
    RecvError, Request, Response, SubmitRequest, WireErrorCode,
};
use bpntt_core::{BpNttError, NttService, PipelineRequest, TenantId, Ticket};
use std::io::{self, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tuning knobs for [`NetServer::bind`].
#[derive(Debug, Clone)]
pub struct NetOptions {
    /// Per-read socket timeout. A peer that keeps a frame incomplete
    /// longer than this is dropped (slow-loris defense). Also bounds how
    /// long a shutdown waits for idle connections.
    pub read_timeout: Duration,
    /// Per-write socket timeout; a peer that stops draining its
    /// responses is dropped rather than wedging the connection thread.
    pub write_timeout: Duration,
    /// Decode caps applied to every inbound frame.
    pub limits: FrameLimits,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            limits: FrameLimits::default(),
        }
    }
}

/// A running front-end. Dropping the handle leaks the background
/// threads until process exit; call [`Self::shutdown`] for an orderly
/// stop.
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts serving `service`.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        service: Arc<NttService>,
        opts: NetOptions,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            thread::Builder::new()
                .name("bpntt-net-accept".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                let service = Arc::clone(&service);
                                let stop = Arc::clone(&stop);
                                let opts = opts.clone();
                                let handle = thread::Builder::new()
                                    .name("bpntt-net-conn".into())
                                    .spawn(move || serve_conn(stream, &service, &opts, &stop))
                                    .expect("spawn connection thread");
                                let mut guard = conns.lock().unwrap_or_else(|p| p.into_inner());
                                // Reap finished threads so a long-lived
                                // server does not accumulate handles.
                                guard.retain(|h| !h.is_finished());
                                guard.push(handle);
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                                thread::sleep(Duration::from_millis(2));
                            }
                            Err(_) => thread::sleep(Duration::from_millis(10)),
                        }
                    }
                })
                .expect("spawn accept thread")
        };
        Ok(NetServer {
            addr,
            stop,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, then joins every connection thread. Connections
    /// notice the stop flag at their next read timeout (or frame
    /// boundary), so this returns within roughly one
    /// [`NetOptions::read_timeout`] of the last active request.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles = {
            let mut guard = self.conns.lock().unwrap_or_else(|p| p.into_inner());
            std::mem::take(&mut *guard)
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

fn serve_conn(stream: TcpStream, service: &NttService, opts: &NetOptions, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(opts.read_timeout));
    let _ = stream.set_write_timeout(Some(opts.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    while !stop.load(Ordering::Relaxed) {
        let payload = match read_frame(&mut reader, &opts.limits) {
            Ok(p) => p,
            Err(RecvError::Closed) => return,
            Err(RecvError::Io(e))
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
            {
                // Idle between frames is fine; a stall *inside* a frame
                // never reaches here (read_exact reports it as an
                // UnexpectedEof/TimedOut after partial progress — both
                // drop the peer below). Loop to re-check the stop flag.
                continue;
            }
            Err(RecvError::Io(_)) => return,
            Err(RecvError::Frame(e)) => {
                // The length prefix itself was hostile; answer typed and
                // hang up — the stream cannot be resynchronised.
                let _ = respond(
                    &mut writer,
                    &Response::Err {
                        code: WireErrorCode::BadFrame,
                        retry_after_ms: 0,
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        let req = match decode_request(&payload, &opts.limits) {
            Ok(r) => r,
            Err(e) => {
                // Framing held, so the stream is still aligned: answer
                // typed and keep the connection.
                if respond(
                    &mut writer,
                    &Response::Err {
                        code: WireErrorCode::BadFrame,
                        retry_after_ms: 0,
                        message: e.to_string(),
                    },
                )
                .is_err()
                {
                    return;
                }
                continue;
            }
        };
        let resp = match req {
            Request::Ping => Response::Ok(Vec::new()),
            Request::MetricsJson => Response::Ok(service.metrics().to_json().into_bytes()),
            Request::MetricsProm => Response::Ok(service.metrics().to_prometheus().into_bytes()),
            Request::Submit(sub) => match handle_submit(service, sub) {
                SubmitOutcome::Reply(resp) => resp,
                SubmitOutcome::Wait(ticket) => match wait_with_disconnect(ticket, &mut reader) {
                    Some(result) => result
                        .map_or_else(error_response, |poly| Response::Ok(encode_poly_body(&poly))),
                    // Peer vanished mid-wait: the ticket was dropped,
                    // cancelling the request. Nothing left to answer.
                    None => return,
                },
            },
        };
        if respond(&mut writer, &resp).is_err() {
            return;
        }
    }
}

enum SubmitOutcome {
    Reply(Response),
    Wait(Ticket),
}

fn handle_submit(service: &NttService, sub: SubmitRequest) -> SubmitOutcome {
    let tenant = sub
        .tenant
        .map_or_else(|| service.default_tenant(), TenantId::from_raw);
    let mut req = PipelineRequest::new(sub.spec, sub.inputs)
        .with_tenant(tenant)
        .with_mode(sub.mode);
    if sub.deadline_ms > 0 {
        req = req.with_deadline(Duration::from_millis(u64::from(sub.deadline_ms)));
    }
    match service.submit_pipeline(req) {
        Ok(ticket) => SubmitOutcome::Wait(ticket),
        Err(e) => SubmitOutcome::Reply(error_response(e)),
    }
}

/// Waits for a ticket while watching the connection: a peer that
/// disappears (EOF on a nonblocking peek) aborts the wait by *dropping*
/// the ticket, which cancels the queued request. Returns `None` when
/// the wait was abandoned. A server shutdown does *not* abandon the
/// wait — an admitted request keeps its drain guarantee, and the ticket
/// resolves typed even if the service itself stops.
fn wait_with_disconnect(
    ticket: Ticket,
    conn: &mut TcpStream,
) -> Option<Result<Vec<u64>, BpNttError>> {
    loop {
        if let Some(result) = ticket.wait_timeout(Duration::from_millis(20)) {
            return Some(result);
        }
        if conn.set_nonblocking(true).is_err() {
            return None;
        }
        let gone = matches!(conn.peek(&mut [0u8; 1]), Ok(0));
        let still_ok = conn.set_nonblocking(false).is_ok();
        if gone || !still_ok {
            return None;
        }
    }
}

fn error_response(e: BpNttError) -> Response {
    let (code, retry_after_ms) = WireErrorCode::classify(&e);
    Response::Err {
        code,
        retry_after_ms: retry_after_ms.min(u64::from(u32::MAX)) as u32,
        message: e.to_string(),
    }
}

fn respond(w: &mut TcpStream, resp: &Response) -> io::Result<()> {
    write_frame(w, &encode_response(resp))
}
