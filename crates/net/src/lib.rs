//! Network front-end for the BP-NTT service: a length-prefixed TCP
//! protocol whose design goal is *resilience under hostile and
//! overloaded traffic*, extending the engine's robustness ladder
//! (detect → retry → quarantine → degrade) one layer up into the
//! request path.
//!
//! Three defenses, one per module:
//!
//! * [`frame`] — a versioned, length-prefixed codec with hard caps on
//!   frame size, op count, slot count, and polynomial length. Decoding
//!   is bounds-checked and total: adversarial bytes yield typed
//!   [`FrameError`]s, never panics or unbounded allocations.
//! * [`server`] — per-connection read/write timeouts (slow-loris and
//!   truncated-frame clients are dropped before touching the
//!   dispatcher), mid-request disconnect detection that cancels the
//!   pending ticket, and a drain shutdown.
//! * [`client`] — a small blocking client that surfaces the server's
//!   typed errors, doubles as the chaos harness's raw socket, and
//!   (via [`RetryPolicy`]) turns `retry_after_ms` back-off hints from
//!   admission control into automatic capped-backoff retries,
//!   reconnects dropped sockets, and hedges slow submissions.
//!
//! Fairness and admission control themselves live in
//! [`bpntt_core::service`] (deficit-round-robin queue, token buckets,
//! load shedding); this crate is the membrane that lets untrusted
//! remote traffic reach them safely.
//!
//! # Example
//!
//! ```
//! use bpntt_core::{BpNttConfig, ExecMode, NttService, PipelineSpec, ServiceOptions};
//! use bpntt_net::{NetClient, NetOptions, NetServer, SubmitRequest};
//! use std::sync::Arc;
//!
//! let service = Arc::new(NttService::start(
//!     &BpNttConfig::new(32, 32, 8, bpntt_ntt::NttParams::new(8, 97)?)?,
//!     ServiceOptions::default(),
//! )?);
//! let server = NetServer::bind("127.0.0.1:0", Arc::clone(&service), NetOptions::default())?;
//!
//! let mut client = NetClient::connect(server.local_addr())?;
//! let spectrum = client.submit(SubmitRequest {
//!     tenant: None,
//!     mode: ExecMode::Replay,
//!     deadline_ms: 0,
//!     spec: PipelineSpec::forward_ntt(),
//!     inputs: vec![vec![1, 2, 3, 4, 5, 6, 7, 8]],
//! }).unwrap();
//! assert_eq!(spectrum.len(), 8);
//!
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod server;

pub use client::{ClientError, ClientStats, NetClient, RetryPolicy};
pub use frame::{
    decode_poly_body, decode_request, decode_response, encode_poly_body, encode_request,
    encode_response, read_frame, write_frame, FrameError, FrameLimits, RecvError, Request,
    Response, SubmitRequest, WireErrorCode,
};
pub use server::{NetOptions, NetServer};
