//! The wire codec: versioned, length-prefixed frames.
//!
//! Every message on the socket is one *frame*:
//!
//! ```text
//! [len: u32 LE] [payload: len bytes]
//! ```
//!
//! and every payload opens with the same envelope:
//!
//! ```text
//! [magic: "BPNT"] [version: u8] [kind/status: u8] [body ...]
//! ```
//!
//! Request kinds (client → server):
//!
//! | kind | name      | body |
//! |------|-----------|------|
//! | 1    | `Submit`  | tenant `u32` (`0xFFFF_FFFF` = default) · mode `u8` · deadline `u32` ms (0 = none) · op count `u16` + tagged ops · input count `u8` + slots · output flag `u8` (+ slot) · n `u32` · one `n × u64` polynomial per input |
//! | 2    | `MetricsJson` | empty |
//! | 3    | `MetricsProm` | empty |
//! | 4    | `Ping`    | empty |
//!
//! Op tags: 1 = `Forward{slot}`, 2 = `Inverse{slot}`, 3 =
//! `Pointwise{dst,src}`, 4 = `ScaleBy{slot,factor:u64}`. All integers
//! little-endian.
//!
//! Response status: 0 = ok (body is the result — `n:u32` + `n × u64` for
//! submits, UTF-8 text for metrics, empty for ping); anything else is an
//! error body `code:u8 · retry_after_ms:u32 · message` (UTF-8, rest of
//! frame).
//!
//! Decoding is cursor-based and bounds-checked throughout: adversarial
//! bytes (truncated frames, oversized length prefixes, bad versions,
//! garbage) produce a typed [`FrameError`], never a panic and never an
//! allocation proportional to an attacker-chosen length beyond
//! [`FrameLimits::max_frame_bytes`].

use bpntt_core::{BpNttError, ExecMode, PipeOp, PipelineSpec};
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

/// Leading magic of every payload.
pub const MAGIC: [u8; 4] = *b"BPNT";
/// The protocol version this build speaks.
pub const VERSION: u8 = 1;
/// The wire encoding of "no tenant; use the service default".
pub const TENANT_DEFAULT: u32 = u32::MAX;

/// Hard caps applied while decoding, before any allocation is sized by
/// attacker-controlled fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameLimits {
    /// Largest accepted frame payload, bytes. A length prefix beyond
    /// this drops the connection (the stream cannot be resynchronised).
    pub max_frame_bytes: u32,
    /// Most ops in one submitted pipeline spec.
    pub max_ops: usize,
    /// Most operand slots (inputs) in one submission.
    pub max_slots: usize,
    /// Longest accepted polynomial, points.
    pub max_poly_len: usize,
}

impl Default for FrameLimits {
    fn default() -> Self {
        FrameLimits {
            max_frame_bytes: 1 << 20,
            max_ops: 64,
            max_slots: 8,
            max_poly_len: 1 << 16,
        }
    }
}

/// Typed decode failure. Every variant is a protocol violation by the
/// peer; none is retryable on the same byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// The payload ended before a field it promised.
    Truncated {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes remaining.
        got: usize,
    },
    /// The payload does not open with [`MAGIC`].
    BadMagic,
    /// Unknown protocol version.
    BadVersion {
        /// The version byte received.
        version: u8,
    },
    /// Unknown request kind byte.
    BadKind {
        /// The kind byte received.
        kind: u8,
    },
    /// Unknown execution-mode byte in a submit.
    BadMode {
        /// The mode byte received.
        mode: u8,
    },
    /// Unknown op tag in a submitted spec.
    BadOpTag {
        /// The tag byte received.
        tag: u8,
    },
    /// The length prefix exceeds [`FrameLimits::max_frame_bytes`].
    FrameTooLarge {
        /// The advertised payload length.
        len: u32,
        /// The configured cap.
        max: u32,
    },
    /// More ops than [`FrameLimits::max_ops`].
    TooManyOps {
        /// Ops advertised.
        ops: usize,
        /// The configured cap.
        max: usize,
    },
    /// More operand slots than [`FrameLimits::max_slots`].
    TooManySlots {
        /// Slots advertised.
        slots: usize,
        /// The configured cap.
        max: usize,
    },
    /// A polynomial longer than [`FrameLimits::max_poly_len`].
    PolyTooLong {
        /// Points advertised.
        n: usize,
        /// The configured cap.
        max: usize,
    },
    /// Bytes left over after a complete message was decoded.
    TrailingBytes {
        /// How many bytes trailed.
        extra: usize,
    },
    /// A response error body carried an unknown error code.
    BadErrorCode {
        /// The code byte received.
        code: u8,
    },
    /// A textual body (metrics, error message) was not UTF-8.
    BadText,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { needed, got } => {
                write!(f, "truncated frame: field needs {needed} bytes, {got} left")
            }
            FrameError::BadMagic => write!(f, "payload does not start with the BPNT magic"),
            FrameError::BadVersion { version } => {
                write!(f, "unsupported protocol version {version}")
            }
            FrameError::BadKind { kind } => write!(f, "unknown request kind {kind}"),
            FrameError::BadMode { mode } => write!(f, "unknown execution mode {mode}"),
            FrameError::BadOpTag { tag } => write!(f, "unknown pipeline op tag {tag}"),
            FrameError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::TooManyOps { ops, max } => {
                write!(f, "spec with {ops} ops exceeds the {max}-op cap")
            }
            FrameError::TooManySlots { slots, max } => {
                write!(
                    f,
                    "submission with {slots} slots exceeds the {max}-slot cap"
                )
            }
            FrameError::PolyTooLong { n, max } => {
                write!(f, "{n}-point polynomial exceeds the {max}-point cap")
            }
            FrameError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after a complete message")
            }
            FrameError::BadErrorCode { code } => write!(f, "unknown wire error code {code}"),
            FrameError::BadText => write!(f, "textual body is not valid UTF-8"),
        }
    }
}

impl Error for FrameError {}

/// Wire error codes carried in error responses — a stable, compact
/// projection of [`BpNttError`] for clients that switch on failure kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WireErrorCode {
    /// Queue-pressure shed; retry after the carried hint.
    Overloaded = 1,
    /// Per-tenant token bucket rejected the submission.
    RateLimited = 2,
    /// The request's deadline passed before execution.
    DeadlineExpired = 3,
    /// The request was cancelled (e.g. its connection vanished).
    Cancelled = 4,
    /// The service is shutting down.
    Shutdown = 5,
    /// The tenant id is not registered.
    UnknownTenant = 6,
    /// The submission itself was invalid (spec/operand validation).
    InvalidRequest = 7,
    /// The frame could not be decoded ([`FrameError`] on the server).
    BadFrame = 8,
    /// Any other server-side failure.
    Internal = 9,
}

impl WireErrorCode {
    /// Decodes a code byte.
    pub fn from_u8(code: u8) -> Result<Self, FrameError> {
        Ok(match code {
            1 => WireErrorCode::Overloaded,
            2 => WireErrorCode::RateLimited,
            3 => WireErrorCode::DeadlineExpired,
            4 => WireErrorCode::Cancelled,
            5 => WireErrorCode::Shutdown,
            6 => WireErrorCode::UnknownTenant,
            7 => WireErrorCode::InvalidRequest,
            8 => WireErrorCode::BadFrame,
            9 => WireErrorCode::Internal,
            code => return Err(FrameError::BadErrorCode { code }),
        })
    }

    /// Classifies a service error for the wire. The boolean is whether
    /// the error is *retryable* by backing off (vs. a caller bug).
    pub fn classify(err: &BpNttError) -> (Self, u64) {
        match err {
            BpNttError::Overloaded { retry_after_ms, .. } => {
                (WireErrorCode::Overloaded, *retry_after_ms)
            }
            BpNttError::RateLimited { retry_after_ms, .. } => {
                (WireErrorCode::RateLimited, *retry_after_ms)
            }
            BpNttError::DeadlineExpired { .. } => (WireErrorCode::DeadlineExpired, 0),
            BpNttError::Cancelled => (WireErrorCode::Cancelled, 0),
            BpNttError::ServiceShutdown => (WireErrorCode::Shutdown, 0),
            BpNttError::UnknownTenant { .. } => (WireErrorCode::UnknownTenant, 0),
            BpNttError::InvalidPipeline { .. }
            | BpNttError::WrongLength { .. }
            | BpNttError::Unreduced { .. }
            | BpNttError::BatchMismatch { .. }
            | BpNttError::BatchTooLarge { .. }
            | BpNttError::CapacityExceeded { .. } => (WireErrorCode::InvalidRequest, 0),
            _ => (WireErrorCode::Internal, 0),
        }
    }
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A pipeline submission.
    Submit(SubmitRequest),
    /// Fetch [`ServiceMetrics`](bpntt_core::ServiceMetrics) as JSON.
    MetricsJson,
    /// Fetch the metrics in Prometheus text exposition format.
    MetricsProm,
    /// Liveness probe; the server answers with an empty ok.
    Ping,
}

/// The body of a [`Request::Submit`].
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// The raw tenant id, or `None` for the service default tenant.
    pub tenant: Option<u32>,
    /// Execution mode.
    pub mode: ExecMode,
    /// Per-request deadline in milliseconds; 0 = none.
    pub deadline_ms: u32,
    /// The op-graph to run.
    pub spec: PipelineSpec,
    /// One operand polynomial per spec input slot, equal lengths.
    pub inputs: Vec<Vec<u64>>,
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success; the body is interpretation-by-request (result
    /// polynomial, metrics text, or empty).
    Ok(Vec<u8>),
    /// Typed failure.
    Err {
        /// The failure class.
        code: WireErrorCode,
        /// Suggested back-off before retrying, milliseconds (0 = not a
        /// back-off situation).
        retry_after_ms: u32,
        /// Human-readable detail.
        message: String,
    },
}

// ---------------------------------------------------------------------
// Cursor
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::Truncated {
                needed: n,
                got: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.remaining() != 0 {
            return Err(FrameError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

fn envelope(cur: &mut Cursor<'_>) -> Result<u8, FrameError> {
    if cur.take(4)? != MAGIC {
        return Err(FrameError::BadMagic);
    }
    let version = cur.u8()?;
    if version != VERSION {
        return Err(FrameError::BadVersion { version });
    }
    cur.u8()
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

fn push_envelope(out: &mut Vec<u8>, kind: u8) {
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind);
}

/// Encodes a request payload (no length prefix; see [`write_frame`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Submit(sub) => {
            push_envelope(&mut out, 1);
            out.extend_from_slice(&sub.tenant.unwrap_or(TENANT_DEFAULT).to_le_bytes());
            out.push(match sub.mode {
                ExecMode::Replay => 0,
                ExecMode::FusedEmit => 1,
                ExecMode::Generic => 2,
            });
            out.extend_from_slice(&sub.deadline_ms.to_le_bytes());
            let ops = sub.spec.ops();
            out.extend_from_slice(&(ops.len() as u16).to_le_bytes());
            for op in ops {
                match *op {
                    PipeOp::Forward { slot } => out.extend_from_slice(&[1, slot]),
                    PipeOp::Inverse { slot } => out.extend_from_slice(&[2, slot]),
                    PipeOp::Pointwise { dst, src } => out.extend_from_slice(&[3, dst, src]),
                    PipeOp::ScaleBy { slot, factor } => {
                        out.extend_from_slice(&[4, slot]);
                        out.extend_from_slice(&factor.to_le_bytes());
                    }
                }
            }
            let slots = sub.spec.input_slots();
            out.push(slots.len() as u8);
            out.extend_from_slice(slots);
            match sub.spec.output_slot() {
                Some(slot) => out.extend_from_slice(&[1, slot]),
                None => out.push(0),
            }
            let n = sub.inputs.first().map_or(0, Vec::len) as u32;
            out.extend_from_slice(&n.to_le_bytes());
            for poly in &sub.inputs {
                for &c in poly {
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
        }
        Request::MetricsJson => push_envelope(&mut out, 2),
        Request::MetricsProm => push_envelope(&mut out, 3),
        Request::Ping => push_envelope(&mut out, 4),
    }
    out
}

/// Decodes one request payload (the bytes after the length prefix).
pub fn decode_request(payload: &[u8], limits: &FrameLimits) -> Result<Request, FrameError> {
    let mut cur = Cursor::new(payload);
    let kind = envelope(&mut cur)?;
    let req = match kind {
        1 => {
            let tenant = match cur.u32()? {
                TENANT_DEFAULT => None,
                raw => Some(raw),
            };
            let mode = match cur.u8()? {
                0 => ExecMode::Replay,
                1 => ExecMode::FusedEmit,
                2 => ExecMode::Generic,
                mode => return Err(FrameError::BadMode { mode }),
            };
            let deadline_ms = cur.u32()?;
            let op_count = cur.u16()? as usize;
            if op_count > limits.max_ops {
                return Err(FrameError::TooManyOps {
                    ops: op_count,
                    max: limits.max_ops,
                });
            }
            let mut spec = PipelineSpec::new();
            for _ in 0..op_count {
                spec = match cur.u8()? {
                    1 => spec.forward(cur.u8()?),
                    2 => spec.inverse(cur.u8()?),
                    3 => {
                        let dst = cur.u8()?;
                        spec.pointwise(dst, cur.u8()?)
                    }
                    4 => {
                        let slot = cur.u8()?;
                        spec.scale_by(slot, cur.u64()?)
                    }
                    tag => return Err(FrameError::BadOpTag { tag }),
                };
            }
            let slot_count = cur.u8()? as usize;
            if slot_count > limits.max_slots {
                return Err(FrameError::TooManySlots {
                    slots: slot_count,
                    max: limits.max_slots,
                });
            }
            for _ in 0..slot_count {
                spec = spec.input(cur.u8()?);
            }
            if cur.u8()? != 0 {
                spec = spec.output(cur.u8()?);
            }
            let n = cur.u32()? as usize;
            if n > limits.max_poly_len {
                return Err(FrameError::PolyTooLong {
                    n,
                    max: limits.max_poly_len,
                });
            }
            // The remaining-bytes check in `take` bounds every
            // allocation below: `slot_count × n × 8` never exceeds the
            // (already capped) payload length.
            let mut inputs = Vec::with_capacity(slot_count);
            for _ in 0..slot_count {
                let mut poly = Vec::with_capacity(n.min(cur.remaining() / 8 + 1));
                for _ in 0..n {
                    poly.push(cur.u64()?);
                }
                inputs.push(poly);
            }
            Request::Submit(SubmitRequest {
                tenant,
                mode,
                deadline_ms,
                spec,
                inputs,
            })
        }
        2 => Request::MetricsJson,
        3 => Request::MetricsProm,
        4 => Request::Ping,
        kind => return Err(FrameError::BadKind { kind }),
    };
    cur.finish()?;
    Ok(req)
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

/// Encodes a response payload (no length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Ok(body) => {
            push_envelope(&mut out, 0);
            out.extend_from_slice(body);
        }
        Response::Err {
            code,
            retry_after_ms,
            message,
        } => {
            push_envelope(&mut out, 1);
            out.push(*code as u8);
            out.extend_from_slice(&retry_after_ms.to_le_bytes());
            out.extend_from_slice(message.as_bytes());
        }
    }
    out
}

/// Decodes one response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, FrameError> {
    let mut cur = Cursor::new(payload);
    match envelope(&mut cur)? {
        0 => Ok(Response::Ok(cur.take(cur.remaining())?.to_vec())),
        _ => {
            let code = WireErrorCode::from_u8(cur.u8()?)?;
            let retry_after_ms = cur.u32()?;
            let message = std::str::from_utf8(cur.take(cur.remaining())?)
                .map_err(|_| FrameError::BadText)?
                .to_string();
            Ok(Response::Err {
                code,
                retry_after_ms,
                message,
            })
        }
    }
}

/// Encodes a polynomial result as an ok-response body.
pub fn encode_poly_body(poly: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + poly.len() * 8);
    out.extend_from_slice(&(poly.len() as u32).to_le_bytes());
    for &c in poly {
        out.extend_from_slice(&c.to_le_bytes());
    }
    out
}

/// Decodes a polynomial result from an ok-response body.
pub fn decode_poly_body(body: &[u8]) -> Result<Vec<u64>, FrameError> {
    let mut cur = Cursor::new(body);
    let n = cur.u32()? as usize;
    let mut poly = Vec::with_capacity(n.min(cur.remaining() / 8 + 1));
    for _ in 0..n {
        poly.push(cur.u64()?);
    }
    cur.finish()?;
    Ok(poly)
}

// ---------------------------------------------------------------------
// Stream I/O
// ---------------------------------------------------------------------

/// Writes one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// What ended a [`read_frame`] call.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed the stream cleanly at a frame boundary.
    Closed,
    /// Socket failure or timeout (incl. mid-frame EOF — a truncation).
    Io(io::Error),
    /// The length prefix violated [`FrameLimits::max_frame_bytes`].
    Frame(FrameError),
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Closed => write!(f, "peer closed the connection"),
            RecvError::Io(e) => write!(f, "socket error: {e}"),
            RecvError::Frame(e) => write!(f, "frame error: {e}"),
        }
    }
}

impl Error for RecvError {}

/// Reads one length-prefixed frame, enforcing the payload cap *before*
/// allocating. Clean EOF at a frame boundary is [`RecvError::Closed`];
/// EOF mid-frame is an [`io::ErrorKind::UnexpectedEof`] I/O error.
///
/// Timeout semantics (socket read timeouts surface as
/// [`io::ErrorKind::WouldBlock`]/[`io::ErrorKind::TimedOut`]): a timeout
/// *before any byte of a frame* passes through unchanged — the caller
/// may treat an idle peer however it likes. A timeout *inside* a frame
/// — a partial length prefix or payload, the slow-loris signature — is
/// rewritten to [`io::ErrorKind::UnexpectedEof`], because the stream can
/// no longer be resynchronised and the peer must be dropped.
pub fn read_frame<R: Read>(r: &mut R, limits: &FrameLimits) -> Result<Vec<u8>, RecvError> {
    let stalled = |what: &str| {
        RecvError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("peer stalled or vanished inside a {what}"),
        ))
    };
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Err(RecvError::Closed),
            Ok(0) => return Err(stalled("length prefix")),
            Ok(k) => filled += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if filled > 0
                    && (e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut) =>
            {
                return Err(stalled("length prefix"))
            }
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len > limits.max_frame_bytes {
        return Err(RecvError::Frame(FrameError::FrameTooLarge {
            len,
            max: limits.max_frame_bytes,
        }));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut {
            stalled("frame payload")
        } else {
            RecvError::Io(e)
        }
    })?;
    Ok(payload)
}
