//! A minimal blocking client for the BP-NTT wire protocol — one
//! request in flight per connection, typed errors surfaced as
//! [`ClientError::Remote`].

use crate::frame::{
    decode_poly_body, decode_response, encode_request, read_frame, write_frame, FrameError,
    FrameLimits, RecvError, Request, Response, SubmitRequest, WireErrorCode,
};
use std::error::Error;
use std::fmt;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (incl. timeouts and dropped connections).
    Io(io::Error),
    /// The server's bytes violated the protocol.
    Frame(FrameError),
    /// The server answered with a typed error.
    Remote {
        /// The failure class.
        code: WireErrorCode,
        /// Back-off hint, milliseconds.
        retry_after_ms: u32,
        /// Server-rendered detail.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Frame(e) => write!(f, "protocol error: {e}"),
            ClientError::Remote {
                code,
                retry_after_ms,
                message,
            } => write!(
                f,
                "server error {code:?} (retry after {retry_after_ms} ms): {message}"
            ),
        }
    }
}

impl Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<RecvError> for ClientError {
    fn from(e: RecvError) -> Self {
        match e {
            RecvError::Closed => ClientError::Io(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "server closed the connection",
            )),
            RecvError::Io(e) => ClientError::Io(e),
            RecvError::Frame(e) => ClientError::Frame(e),
        }
    }
}

/// One blocking protocol connection.
pub struct NetClient {
    stream: TcpStream,
    limits: FrameLimits,
}

impl NetClient {
    /// Connects with default [`FrameLimits`] and no socket timeouts.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient {
            stream,
            limits: FrameLimits::default(),
        })
    }

    /// Applies a read timeout to responses (useful in chaos tests so a
    /// wedged server cannot wedge the client).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let payload = read_frame(&mut self.stream, &self.limits)?;
        Ok(decode_response(&payload)?)
    }

    fn expect_ok(resp: Response) -> Result<Vec<u8>, ClientError> {
        match resp {
            Response::Ok(body) => Ok(body),
            Response::Err {
                code,
                retry_after_ms,
                message,
            } => Err(ClientError::Remote {
                code,
                retry_after_ms,
                message,
            }),
        }
    }

    /// Submits a pipeline and blocks for the result polynomial.
    pub fn submit(&mut self, sub: SubmitRequest) -> Result<Vec<u64>, ClientError> {
        let resp = self.round_trip(&Request::Submit(sub))?;
        Ok(decode_poly_body(&Self::expect_ok(resp)?)?)
    }

    /// Fetches the service metrics as JSON text.
    pub fn metrics_json(&mut self) -> Result<String, ClientError> {
        let body = Self::expect_ok(self.round_trip(&Request::MetricsJson)?)?;
        String::from_utf8(body).map_err(|_| ClientError::Frame(FrameError::BadText))
    }

    /// Fetches the service metrics in Prometheus text format.
    pub fn metrics_prometheus(&mut self) -> Result<String, ClientError> {
        let body = Self::expect_ok(self.round_trip(&Request::MetricsProm)?)?;
        String::from_utf8(body).map_err(|_| ClientError::Frame(FrameError::BadText))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        Self::expect_ok(self.round_trip(&Request::Ping)?).map(drop)
    }

    /// Writes raw bytes straight onto the socket — the chaos harness's
    /// entry point for malformed frames and partial writes.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads one raw response frame (after [`Self::send_raw`]).
    pub fn recv_frame(&mut self) -> Result<Vec<u8>, ClientError> {
        Ok(read_frame(&mut self.stream, &self.limits)?)
    }
}
