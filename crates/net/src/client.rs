//! A blocking client for the BP-NTT wire protocol — one request in
//! flight per connection, typed errors surfaced as
//! [`ClientError::Remote`], and an optional resilience layer
//! ([`RetryPolicy`]) that turns the server's back-pressure hints into
//! automatic capped-backoff retries, reconnects dropped sockets, and
//! hedges slow submissions with a second connection.

use crate::frame::{
    decode_poly_body, decode_response, encode_request, read_frame, write_frame, FrameError,
    FrameLimits, RecvError, Request, Response, SubmitRequest, WireErrorCode,
};
use std::error::Error;
use std::fmt;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (incl. timeouts and dropped connections).
    Io(io::Error),
    /// The server's bytes violated the protocol.
    Frame(FrameError),
    /// The server answered with a typed error.
    Remote {
        /// The failure class.
        code: WireErrorCode,
        /// Back-off hint, milliseconds.
        retry_after_ms: u32,
        /// Server-rendered detail.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Frame(e) => write!(f, "protocol error: {e}"),
            ClientError::Remote {
                code,
                retry_after_ms,
                message,
            } => write!(
                f,
                "server error {code:?} (retry after {retry_after_ms} ms): {message}"
            ),
        }
    }
}

impl Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<RecvError> for ClientError {
    fn from(e: RecvError) -> Self {
        match e {
            RecvError::Closed => ClientError::Io(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "server closed the connection",
            )),
            RecvError::Io(e) => ClientError::Io(e),
            RecvError::Frame(e) => ClientError::Frame(e),
        }
    }
}

/// Automatic-resilience knobs for [`NetClient::submit_with_retry`] and
/// [`NetClient::submit_hedged`].
///
/// The retry loop only re-sends on failures the server has declared
/// transient — `Overloaded` and `RateLimited` (both carry a
/// `retry_after_ms` hint) — plus socket-level drops when
/// [`Self::reconnect`] is on. Everything else (invalid requests,
/// integrity failures, unknown tenants) is a caller bug or a permanent
/// condition and is returned on the first attempt.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total submission attempts, including the first; clamped to ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the first retry when the server sent no hint (or
    /// a smaller one); doubles per retry up to [`Self::max_backoff`].
    pub base_backoff: Duration,
    /// Cap on any single wait, including server `retry_after_ms` hints.
    pub max_backoff: Duration,
    /// Adds a deterministic 0–25 % jitter to each wait so a fleet of
    /// shed clients does not resubmit in lockstep.
    pub jitter: bool,
    /// Reopen the socket (to the address captured at connect time) when
    /// a round trip fails with an I/O error mid-flight.
    pub reconnect: bool,
    /// When set, [`NetClient::submit_hedged`] launches a second
    /// connection after this long without a response and races the two;
    /// when `None`, hedged submits degrade to [`NetClient::submit_with_retry`].
    pub hedge_after: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(2),
            jitter: true,
            reconnect: true,
            hedge_after: None,
        }
    }
}

/// Counters for what the resilience layer did on this client's behalf.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Submissions re-sent after a transient failure (shed, rate limit,
    /// or reconnected socket).
    pub retries: u64,
    /// Sockets reopened after an I/O failure mid-round-trip.
    pub reconnects: u64,
    /// Hedge connections actually launched (the primary was still
    /// silent past `hedge_after`).
    pub hedges_launched: u64,
    /// Hedged submissions where the *hedge* arm produced the winning
    /// response.
    pub hedges_won: u64,
}

/// One blocking protocol connection.
pub struct NetClient {
    stream: TcpStream,
    limits: FrameLimits,
    addr: SocketAddr,
    policy: RetryPolicy,
    stats: ClientStats,
    read_timeout: Option<Duration>,
    jitter_state: u64,
}

impl NetClient {
    /// Connects with default [`FrameLimits`] and no socket timeouts.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Self::connect_with_policy(addr, RetryPolicy::default())
    }

    /// Connects with an explicit [`RetryPolicy`] for the resilient
    /// submission paths.
    pub fn connect_with_policy<A: ToSocketAddrs>(addr: A, policy: RetryPolicy) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let addr = stream.peer_addr()?;
        Ok(NetClient {
            stream,
            limits: FrameLimits::default(),
            addr,
            policy,
            stats: ClientStats::default(),
            read_timeout: None,
            // Deterministic per-connection seed: the ephemeral local
            // port differs between clients, which is all the jitter
            // needs to decorrelate a fleet.
            jitter_state: 0x9E37_79B9_7F4A_7C15 ^ u64::from(addr.port()),
        })
    }

    /// Replaces the retry policy.
    pub fn set_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// The active retry policy.
    #[must_use]
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// What the resilience layer has done so far on this client.
    #[must_use]
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Applies a read timeout to responses (useful in chaos tests so a
    /// wedged server cannot wedge the client). Remembered and re-applied
    /// after a [`RetryPolicy::reconnect`].
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.read_timeout = timeout;
        self.stream.set_read_timeout(timeout)
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode_request(req))?;
        let payload = read_frame(&mut self.stream, &self.limits)?;
        Ok(decode_response(&payload)?)
    }

    fn expect_ok(resp: Response) -> Result<Vec<u8>, ClientError> {
        match resp {
            Response::Ok(body) => Ok(body),
            Response::Err {
                code,
                retry_after_ms,
                message,
            } => Err(ClientError::Remote {
                code,
                retry_after_ms,
                message,
            }),
        }
    }

    /// Submits a pipeline and blocks for the result polynomial.
    pub fn submit(&mut self, sub: SubmitRequest) -> Result<Vec<u64>, ClientError> {
        let resp = self.round_trip(&Request::Submit(sub))?;
        Ok(decode_poly_body(&Self::expect_ok(resp)?)?)
    }

    /// Submits with the [`RetryPolicy`]: transient server rejections
    /// (`Overloaded`, `RateLimited`) are retried after
    /// `max(retry_after_ms, backoff)` with capped exponential backoff
    /// and optional jitter, and socket drops are healed by reconnecting
    /// to the original address. Non-transient errors return immediately.
    pub fn submit_with_retry(&mut self, sub: &SubmitRequest) -> Result<Vec<u64>, ClientError> {
        let policy = self.policy;
        let attempts = policy.max_attempts.max(1);
        let mut backoff = policy.base_backoff;
        for attempt in 1..=attempts {
            let err = match self.submit(sub.clone()) {
                Ok(poly) => return Ok(poly),
                Err(e) => e,
            };
            if attempt == attempts {
                return Err(err);
            }
            match &err {
                ClientError::Remote {
                    code: WireErrorCode::Overloaded | WireErrorCode::RateLimited,
                    retry_after_ms,
                    ..
                } => {
                    let hint = Duration::from_millis(u64::from(*retry_after_ms));
                    let wait = hint.max(backoff).min(policy.max_backoff);
                    thread::sleep(self.jittered(wait));
                }
                ClientError::Io(_) if policy.reconnect => {
                    // The stream is mid-frame in an unknown state — a
                    // fresh socket is the only way back to alignment.
                    if self.reconnect().is_err() {
                        thread::sleep(self.jittered(backoff));
                        if self.reconnect().is_err() {
                            return Err(err);
                        }
                    }
                }
                _ => return Err(err),
            }
            self.stats.retries += 1;
            backoff = (backoff * 2).min(policy.max_backoff);
        }
        unreachable!("retry loop returns on the final attempt")
    }

    /// Submits with hedging: the request goes out on a fresh
    /// connection, and if no response has arrived after
    /// [`RetryPolicy::hedge_after`], a second connection races the
    /// first — whichever answers `Ok` first wins (tail-latency
    /// insurance against a slow or half-dead server thread). Each arm
    /// applies the full retry policy independently. With `hedge_after`
    /// unset this is plain [`Self::submit_with_retry`].
    ///
    /// The losing arm's connection is abandoned to finish (and be
    /// dropped) in the background; the server sees that as a normal
    /// client disconnect and cancels any still-queued duplicate.
    pub fn submit_hedged(&mut self, sub: &SubmitRequest) -> Result<Vec<u64>, ClientError> {
        let Some(delay) = self.policy.hedge_after else {
            return self.submit_with_retry(sub);
        };
        let (tx, rx) = mpsc::channel();
        let launch = |hedge: bool| {
            let tx = tx.clone();
            let addr = self.addr;
            let policy = self.policy;
            let read_timeout = self.read_timeout;
            let sub = sub.clone();
            thread::spawn(move || {
                let res = Self::arm_submit(addr, policy, read_timeout, &sub);
                let _ = tx.send((hedge, res));
            });
        };
        launch(false);
        let mut live = 1u32;
        let first = match rx.recv_timeout(delay) {
            Ok(outcome) => Some(outcome),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(ClientError::Io(io::Error::other("hedge arm panicked")))
            }
        };
        // Hedge whenever the primary has not *succeeded* yet — a silent
        // primary and a failed primary both warrant a second try.
        let first = match first {
            Some((_, Ok(poly))) => return Ok(poly),
            other => {
                launch(true);
                self.stats.hedges_launched += 1;
                live += 1;
                other
            }
        };
        let mut last_err = None;
        if let Some((_, Err(e))) = first {
            live -= 1;
            last_err = Some(e);
        }
        while live > 0 {
            match rx.recv() {
                Ok((hedge, Ok(poly))) => {
                    if hedge {
                        self.stats.hedges_won += 1;
                    }
                    return Ok(poly);
                }
                Ok((_, Err(e))) => {
                    live -= 1;
                    last_err = Some(e);
                }
                Err(_) => break,
            }
        }
        Err(last_err.unwrap_or_else(|| ClientError::Io(io::Error::other("hedge arms vanished"))))
    }

    /// One hedging arm: a fresh connection running the retry loop.
    fn arm_submit(
        addr: SocketAddr,
        policy: RetryPolicy,
        read_timeout: Option<Duration>,
        sub: &SubmitRequest,
    ) -> Result<Vec<u64>, ClientError> {
        let mut arm = Self::connect_with_policy(addr, policy)?;
        arm.set_read_timeout(read_timeout)?;
        arm.submit_with_retry(sub)
    }

    /// Reopens the socket to the address captured at connect time and
    /// re-applies the remembered read timeout.
    pub fn reconnect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.read_timeout)?;
        self.stream = stream;
        self.stats.reconnects += 1;
        Ok(())
    }

    /// Deterministic 0–25 % additive jitter (xorshift over a
    /// per-connection seed).
    fn jittered(&mut self, wait: Duration) -> Duration {
        if !self.policy.jitter {
            return wait;
        }
        let s = &mut self.jitter_state;
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        wait + wait.mul_f64((*s % 256) as f64 / 1024.0)
    }

    /// Fetches the service metrics as JSON text.
    pub fn metrics_json(&mut self) -> Result<String, ClientError> {
        let body = Self::expect_ok(self.round_trip(&Request::MetricsJson)?)?;
        String::from_utf8(body).map_err(|_| ClientError::Frame(FrameError::BadText))
    }

    /// Fetches the service metrics in Prometheus text format.
    pub fn metrics_prometheus(&mut self) -> Result<String, ClientError> {
        let body = Self::expect_ok(self.round_trip(&Request::MetricsProm)?)?;
        String::from_utf8(body).map_err(|_| ClientError::Frame(FrameError::BadText))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        Self::expect_ok(self.round_trip(&Request::Ping)?).map(drop)
    }

    /// Writes raw bytes straight onto the socket — the chaos harness's
    /// entry point for malformed frames and partial writes.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads one raw response frame (after [`Self::send_raw`]).
    pub fn recv_frame(&mut self) -> Result<Vec<u8>, ClientError> {
        Ok(read_frame(&mut self.stream, &self.limits)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_poly_body, encode_response};
    use bpntt_core::{ExecMode, PipelineSpec};
    use std::net::TcpListener;
    use std::time::Instant;

    fn test_sub() -> SubmitRequest {
        SubmitRequest {
            tenant: None,
            mode: ExecMode::Replay,
            deadline_ms: 0,
            spec: PipelineSpec::forward_ntt(),
            inputs: vec![vec![1, 2, 3, 4]],
        }
    }

    /// Reads and discards one request frame, then plays `resp` back.
    fn serve_one(conn: &mut TcpStream, resp: &Response) {
        read_frame(conn, &FrameLimits::default()).expect("read request");
        write_frame(conn, &encode_response(resp)).expect("write response");
    }

    fn shed(code: WireErrorCode, retry_after_ms: u32) -> Response {
        Response::Err {
            code,
            retry_after_ms,
            message: "scripted shed".into(),
        }
    }

    fn ok_poly(poly: &[u64]) -> Response {
        Response::Ok(encode_poly_body(poly))
    }

    /// A scripted shedding server: sheds the first submissions with
    /// `retry_after_ms` hints, then serves — the retry loop must honor
    /// every hint (the total wait bounds it from below) and count each
    /// resubmission.
    #[test]
    fn retry_honors_shed_hints_then_succeeds() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            serve_one(&mut conn, &shed(WireErrorCode::Overloaded, 40));
            serve_one(&mut conn, &shed(WireErrorCode::RateLimited, 25));
            serve_one(&mut conn, &ok_poly(&[9, 8, 7, 6]));
        });
        let mut client = NetClient::connect_with_policy(
            addr,
            RetryPolicy {
                max_attempts: 4,
                base_backoff: Duration::from_millis(1),
                jitter: false,
                ..RetryPolicy::default()
            },
        )
        .unwrap();
        let t0 = Instant::now();
        let poly = client.submit_with_retry(&test_sub()).unwrap();
        assert_eq!(poly, vec![9, 8, 7, 6]);
        // Two hints of 40 ms and 25 ms were honored in full.
        assert!(
            t0.elapsed() >= Duration::from_millis(65),
            "retry loop ignored the server's retry_after_ms hints ({:?})",
            t0.elapsed()
        );
        assert_eq!(client.stats().retries, 2);
        assert_eq!(client.stats().reconnects, 0);
        server.join().unwrap();
    }

    /// Non-transient rejections must surface on the first attempt —
    /// retrying a malformed submission would just shed it again.
    #[test]
    fn non_transient_errors_are_not_retried() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            serve_one(&mut conn, &shed(WireErrorCode::InvalidRequest, 0));
        });
        let mut client = NetClient::connect(addr).unwrap();
        let err = client.submit_with_retry(&test_sub()).unwrap_err();
        assert!(matches!(
            err,
            ClientError::Remote {
                code: WireErrorCode::InvalidRequest,
                ..
            }
        ));
        assert_eq!(client.stats().retries, 0);
        server.join().unwrap();
    }

    /// A server that drops the connection mid-request: the client must
    /// reconnect to the remembered address and resubmit.
    #[test]
    fn reconnects_and_resubmits_after_connection_drop() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // First connection: swallow the request, hang up.
            let (mut conn, _) = listener.accept().unwrap();
            read_frame(&mut conn, &FrameLimits::default()).expect("read request");
            drop(conn);
            // Second connection (the reconnect): serve properly.
            let (mut conn, _) = listener.accept().unwrap();
            serve_one(&mut conn, &ok_poly(&[5, 5, 5, 5]));
        });
        let mut client = NetClient::connect_with_policy(
            addr,
            RetryPolicy {
                base_backoff: Duration::from_millis(1),
                ..RetryPolicy::default()
            },
        )
        .unwrap();
        let poly = client.submit_with_retry(&test_sub()).unwrap();
        assert_eq!(poly, vec![5, 5, 5, 5]);
        assert_eq!(client.stats().reconnects, 1);
        assert_eq!(client.stats().retries, 1);
        server.join().unwrap();
    }

    /// With `reconnect` off, a dropped connection is a hard error.
    #[test]
    fn reconnect_can_be_disabled() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            read_frame(&mut conn, &FrameLimits::default()).expect("read request");
            drop(conn);
        });
        let mut client = NetClient::connect_with_policy(
            addr,
            RetryPolicy {
                reconnect: false,
                ..RetryPolicy::default()
            },
        )
        .unwrap();
        assert!(matches!(
            client.submit_with_retry(&test_sub()),
            Err(ClientError::Io(_))
        ));
        assert_eq!(client.stats().reconnects, 0);
        server.join().unwrap();
    }

    /// A wedged primary connection: the hedge arm fires after
    /// `hedge_after`, wins the race, and the client returns long before
    /// the stalled arm would have.
    #[test]
    fn hedge_beats_a_stalled_primary() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // Connection 0: the client's own socket, unused by hedging.
            let (_idle, _) = listener.accept().unwrap();
            // Connection 1 (primary arm): stall, then answer late.
            let (mut slow, _) = listener.accept().unwrap();
            let slow_thread = std::thread::spawn(move || {
                read_frame(&mut slow, &FrameLimits::default()).expect("read request");
                std::thread::sleep(Duration::from_millis(600));
                let _ = write_frame(&mut slow, &encode_response(&ok_poly(&[1, 1, 1, 1])));
            });
            // Connection 2 (hedge arm): answer immediately.
            let (mut fast, _) = listener.accept().unwrap();
            serve_one(&mut fast, &ok_poly(&[2, 2, 2, 2]));
            slow_thread.join().unwrap();
        });
        let mut client = NetClient::connect_with_policy(
            addr,
            RetryPolicy {
                hedge_after: Some(Duration::from_millis(40)),
                ..RetryPolicy::default()
            },
        )
        .unwrap();
        let t0 = Instant::now();
        let poly = client.submit_hedged(&test_sub()).unwrap();
        assert_eq!(poly, vec![2, 2, 2, 2], "the hedge arm's answer wins");
        assert!(
            t0.elapsed() < Duration::from_millis(500),
            "hedged submit waited for the stalled arm ({:?})",
            t0.elapsed()
        );
        assert_eq!(client.stats().hedges_launched, 1);
        assert_eq!(client.stats().hedges_won, 1);
        server.join().unwrap();
    }

    /// A healthy fast primary: no hedge is ever launched.
    #[test]
    fn no_hedge_when_the_primary_is_prompt() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (_idle, _) = listener.accept().unwrap();
            let (mut conn, _) = listener.accept().unwrap();
            serve_one(&mut conn, &ok_poly(&[3, 3, 3, 3]));
        });
        let mut client = NetClient::connect_with_policy(
            addr,
            RetryPolicy {
                hedge_after: Some(Duration::from_millis(400)),
                ..RetryPolicy::default()
            },
        )
        .unwrap();
        assert_eq!(client.submit_hedged(&test_sub()).unwrap(), vec![3, 3, 3, 3]);
        assert_eq!(client.stats().hedges_launched, 0);
        assert_eq!(client.stats().hedges_won, 0);
        server.join().unwrap();
    }
}
