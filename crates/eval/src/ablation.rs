//! Ablation studies quantifying the paper's design arguments with
//! measured instruction counts.
//!
//! 1. **Bit-parallel vs bit-serial** (§IV-D): Algorithm 2 against a
//!    Neural-Cache-style transposed multiplier on the same simulator.
//! 2. **Costless shifts** (§IV-B/E): shift operations of the tile-based
//!    layout against a Recryptor-style word-aligned layout where every
//!    butterfly must first align its operands by column shifting.
//! 3. **`n` vs `n+1` columns** (§IV-D): the packing observations buy one
//!    column, i.e. one extra lane on narrow arrays — the paper's "12.5%
//!    worse throughput" example.
//! 4. **Timing sensitivity**: the single-cycle-per-step model against a
//!    conservative one that charges every write-back.

use crate::fig8::run_real_forward;
use crate::render::{f, Table};
use bpntt_baselines::bitserial::{BitSerialKernel, BitSerialLayout};
use bpntt_core::{BpNtt, BpNttConfig, BpNttError};
use bpntt_ntt::NttParams;
use bpntt_sram::TimingModel;

/// Bit-parallel vs bit-serial modular multiplication, measured.
#[derive(Debug, Clone, PartialEq)]
pub struct SerialParallelComparison {
    /// Word width.
    pub width: usize,
    /// Cycles for one batch of bit-parallel multiplications (all lanes).
    pub bp_cycles: u64,
    /// Bit-parallel lanes (words per array).
    pub bp_lanes: usize,
    /// Cycles for one batch of bit-serial multiplications (all columns).
    pub bs_cycles: u64,
    /// Bit-serial columns (words per array).
    pub bs_cols: usize,
    /// Rows the bit-serial operand stack needs.
    pub bs_rows: usize,
    /// Shift operations in the bit-parallel run.
    pub bp_shifts: u64,
    /// Shift operations in the bit-serial run (always 0).
    pub bs_shifts: u64,
}

impl SerialParallelComparison {
    /// Words multiplied per cycle, bit-parallel.
    #[must_use]
    pub fn bp_words_per_cycle(&self) -> f64 {
        self.bp_lanes as f64 / self.bp_cycles as f64
    }

    /// Words multiplied per cycle, bit-serial.
    #[must_use]
    pub fn bs_words_per_cycle(&self) -> f64 {
        self.bs_cols as f64 / self.bs_cycles as f64
    }
}

/// Measures one modular multiplication in both styles at width `w`
/// (modulus `q`), on arrays of the paper's 256-column width.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn serial_vs_parallel(w: usize, q: u64) -> Result<SerialParallelComparison, BpNttError> {
    // Bit-parallel: one butterfly-free modmul per lane via a tiny config.
    use bpntt_core::{Kernels, Layout};
    use bpntt_modmath::bits::low_mask;
    use bpntt_sram::{BitRow, Controller, SramArray};
    let layout = Layout::new(16, 256, w, 8)?;
    let array = SramArray::new(16, layout.active_cols())?;
    let mut ctl = Controller::new(array, w)?;
    let kernels = Kernels::new(*layout.rowmap(), q, w);
    let mask = low_mask(w as u32);
    let mut m_row = BitRow::zero(layout.active_cols());
    let mut c_row = BitRow::zero(layout.active_cols());
    let mut b_row = BitRow::zero(layout.active_cols());
    for t in 0..layout.n_tiles() {
        m_row.set_tile_word(t, w, q);
        c_row.set_tile_word(t, w, q.wrapping_neg() & mask);
        b_row.set_tile_word(t, w, (t as u64 * 37 + 5) % q);
    }
    ctl.load_data_row(layout.rowmap().modulus.index(), m_row);
    ctl.load_data_row(layout.rowmap().comp_modulus.index(), c_row);
    ctl.load_data_row(0, b_row);
    ctl.reset_stats();
    kernels.modmul_const(&mut ctl, bpntt_sram::RowAddr(0), q / 3)?;
    kernels.finish_modmul(&mut ctl)?;
    let bp = *ctl.stats();

    // Bit-serial: same multiplication across 256 columns.
    let mut bs = BitSerialKernel::new(256, w, q)?;
    let operands: Vec<u64> = (0..256u64).map(|c| (c * 37 + 5) % q).collect();
    bs.load_operands(&operands);
    bs.reset_stats();
    bs.modmul_const(q / 3)?;
    let bss = *bs.stats();

    Ok(SerialParallelComparison {
        width: w,
        bp_cycles: bp.cycles,
        bp_lanes: layout.n_tiles(),
        bs_cycles: bss.cycles,
        bs_cols: 256,
        bs_rows: BitSerialLayout::for_width(w).total(),
        bp_shifts: bp.counts.shift_moves(),
        bs_shifts: bss.counts.shift_moves(),
    })
}

/// Shift accounting for one full forward NTT: BP-NTT's measured shifts vs
/// the same schedule on a word-aligned (Recryptor-style) layout, where
/// every butterfly additionally pays `2w` one-bit shifts to stage its
/// partner word onto shared bitlines and ship the result back.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftAccounting {
    /// Measured shift moves in the BP-NTT run.
    pub bp_shifts: u64,
    /// Modeled shifts for the word-aligned layout (measured + alignment).
    pub word_aligned_shifts: u64,
    /// `word_aligned / bp` — the paper claims ≈2×.
    pub ratio: f64,
}

/// Computes the shift comparison at a configuration (with a caller-chosen
/// modulus so the width/headroom rules can be satisfied).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn shift_accounting(
    rows: usize,
    cols: usize,
    bw: usize,
    n: usize,
    q: u64,
) -> Result<ShiftAccounting, BpNttError> {
    let point = run_real_forward(rows, cols, bw, NttParams::new(n, q)?)?;
    let butterflies = (n as u64 / 2) * n.trailing_zeros() as u64;
    let alignment = butterflies * 2 * bw as u64;
    let word_aligned = point.shift_moves + alignment;
    Ok(ShiftAccounting {
        bp_shifts: point.shift_moves,
        word_aligned_shifts: word_aligned,
        ratio: word_aligned as f64 / point.shift_moves as f64,
    })
}

/// The `n` vs `n+1` columns packing claim: lanes available on a `cols`-wide
/// array with `w`-bit words against `w+1`-bit words, and the resulting
/// throughput loss (paper: 7 instead of 8 lanes at 32 bits on 256 columns,
/// −12.5%).
#[must_use]
pub fn packing_loss(cols: usize, w: usize) -> (usize, usize, f64) {
    let lanes_n = cols / w;
    let lanes_n1 = cols / (w + 1);
    let loss = 1.0 - lanes_n1 as f64 / lanes_n as f64;
    (lanes_n, lanes_n1, loss)
}

/// Latency under the paper timing model vs the conservative one.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn timing_sensitivity() -> Result<(u64, u64), BpNttError> {
    let run = |timing: TimingModel| -> Result<u64, BpNttError> {
        let cfg = BpNttConfig::new(70, 64, 14, NttParams::new(64, 7681)?)?;
        let mut acc = BpNtt::new(cfg)?;
        acc.set_timing_model(timing);
        let polys = vec![(0..64u64).map(|j| (j * 991) % 7681).collect::<Vec<_>>()];
        acc.load_batch(&polys)?;
        acc.reset_stats();
        acc.forward()?;
        Ok(acc.stats().cycles)
    };
    Ok((
        run(TimingModel::paper())?,
        run(TimingModel::conservative())?,
    ))
}

/// Renders every ablation at the default configurations.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn render_all() -> Result<String, BpNttError> {
    let mut out = String::new();

    out.push_str("== bit-parallel vs bit-serial modular multiplication ==\n");
    let mut t = Table::new(vec![
        "width",
        "bp cycles",
        "bp lanes",
        "bs cycles",
        "bs cols",
        "bs rows",
        "bp words/cyc",
        "bs words/cyc",
        "bp shifts",
        "bs shifts",
    ]);
    for (w, q) in [(8usize, 97u64), (14, 7681), (16, 12_289)] {
        let c = serial_vs_parallel(w, q)?;
        t.push_row(vec![
            c.width.to_string(),
            c.bp_cycles.to_string(),
            c.bp_lanes.to_string(),
            c.bs_cycles.to_string(),
            c.bs_cols.to_string(),
            c.bs_rows.to_string(),
            f(c.bp_words_per_cycle(), 4),
            f(c.bs_words_per_cycle(), 4),
            c.bp_shifts.to_string(),
            c.bs_shifts.to_string(),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\n== shift accounting: tile layout vs word-aligned layout ==\n");
    let s = shift_accounting(262, 256, 16, 256, 12_289)?;
    out.push_str(&format!(
        "BP-NTT shifts: {}   word-aligned shifts: {}   ratio: {:.2}x (paper: ~2x)\n",
        s.bp_shifts, s.word_aligned_shifts, s.ratio
    ));

    out.push_str("\n== n vs n+1 column packing ==\n");
    let (lanes_n, lanes_n1, loss) = packing_loss(256, 32);
    out.push_str(&format!(
        "32-bit words on 256 columns: {lanes_n} lanes vs {lanes_n1} with n+1 bits \
         -> {:.1}% throughput loss (paper: 12.5%)\n",
        loss * 100.0
    ));

    out.push_str("\n== timing-model sensitivity ==\n");
    let (paper, conservative) = timing_sensitivity()?;
    out.push_str(&format!(
        "64-pt/8-bit forward: {paper} cycles (paper model) vs {conservative} \
         (conservative, every write-back charged) -> x{:.2}\n",
        conservative as f64 / paper as f64
    ));

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_loss_matches_paper_example() {
        let (n, n1, loss) = packing_loss(256, 32);
        assert_eq!((n, n1), (8, 7));
        assert!((loss - 0.125).abs() < 1e-9, "paper's 12.5%");
    }

    #[test]
    fn word_aligned_layout_needs_about_twice_the_shifts() {
        let s = shift_accounting(70, 64, 14, 64, 7681).unwrap();
        assert!(
            s.ratio > 1.4 && s.ratio < 3.0,
            "ratio {:.2} should be around the paper's 2x",
            s.ratio
        );
    }

    #[test]
    fn bit_serial_trades_shifts_for_cycles_and_rows() {
        let c = serial_vs_parallel(8, 97).unwrap();
        assert_eq!(c.bs_shifts, 0);
        assert!(c.bp_shifts > 0);
        assert!(c.bs_cycles > c.bp_cycles, "serialization over bit rows");
        assert!(c.bs_rows > 16, "tall operand stack");
    }

    #[test]
    fn conservative_timing_costs_more() {
        let (paper, conservative) = timing_sensitivity().unwrap();
        assert!(conservative > paper);
        assert!(
            conservative < 3 * paper,
            "bounded by the per-writeback surcharge"
        );
    }
}
