//! Table I: BP-NTT versus the state of the art on a 256-point NTT.
//!
//! The BP-NTT rows are **measured** on the simulator (real instruction
//! streams over random batches); the seven baseline rows come from
//! [`bpntt_baselines::published`] (the paper's own 45 nm projections).

use crate::render::{f, Table};
use bpntt_baselines::published;
use bpntt_baselines::spec::{DesignSpec, MemTechnology};
use bpntt_core::{BpNtt, BpNttConfig, BpNttError, PerfReport};
use bpntt_sram::geometry::{AreaModel, FrequencyModel};

/// Measured BP-NTT design point plus its Table-I row.
#[derive(Debug, Clone)]
pub struct MeasuredPoint {
    /// The Table-I row derived from the measurement.
    pub spec: DesignSpec,
    /// The full performance report.
    pub report: PerfReport,
}

/// Runs one forward-NTT batch at a configuration and converts the result
/// into a Table-I row.
///
/// # Errors
///
/// Propagates configuration/simulation failures.
pub fn measure_bp_ntt(
    cfg: BpNttConfig,
    name: &'static str,
    coeff_bits: u32,
) -> Result<MeasuredPoint, BpNttError> {
    let geometry = cfg.geometry();
    let mut acc = BpNtt::new(cfg)?;
    let q = acc.config().params().modulus();
    let n = acc.config().params().n();
    let lanes = acc.config().layout().lanes();
    let polys: Vec<Vec<u64>> = (0..lanes as u64)
        .map(|s| {
            (0..n as u64)
                .map(|j| (s * 7919 + j * 104_729 + 13) % q)
                .collect()
        })
        .collect();
    acc.load_batch(&polys)?;
    acc.reset_stats(); // measure the transform, not the data loading
    acc.forward()?;
    let report = PerfReport::from_stats(
        acc.stats(),
        lanes,
        geometry,
        &AreaModel::cmos_45nm(),
        &FrequencyModel::cmos_45nm(),
    );
    let spec = DesignSpec {
        name,
        technology: MemTechnology::InSram,
        tech_nm: 45,
        coeff_bits,
        max_freq_mhz: Some(report.f_hz / 1e6),
        latency_us: report.latency_us(),
        throughput_kntt_s: report.throughput_kntt_s(),
        energy_nj: report.energy_nj,
        area_mm2: Some(report.area_mm2),
        note: "measured on this reproduction's simulator",
    };
    Ok(MeasuredPoint { spec, report })
}

/// The measured 16-bit BP-NTT headline row.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn bp_ntt_16bit() -> Result<MeasuredPoint, BpNttError> {
    measure_bp_ntt(BpNttConfig::paper_256pt_16bit()?, "BP-NTT (ours)", 16)
}

/// The measured 14-bit BP-NTT row (18 lanes of 14-bit tiles).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn bp_ntt_14bit() -> Result<MeasuredPoint, BpNttError> {
    measure_bp_ntt(BpNttConfig::paper_256pt_14bit()?, "BP-NTT 14b (ours)", 14)
}

/// The complete Table I: measured BP-NTT rows first, then the published
/// baselines.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn build() -> Result<Vec<DesignSpec>, BpNttError> {
    let mut rows = vec![bp_ntt_16bit()?.spec, bp_ntt_14bit()?.spec];
    rows.extend(published::all_baselines());
    Ok(rows)
}

/// Renders Table I with the paper's columns.
#[must_use]
pub fn render(rows: &[DesignSpec]) -> String {
    let mut t = Table::new(vec![
        "Design",
        "Tech",
        "Bits",
        "MaxF(MHz)",
        "Latency(us)",
        "Tput(kNTT/s)",
        "Energy(nJ)",
        "Area(mm2)",
        "TA(kNTT/s/mm2)",
        "TP(kNTT/mJ)",
    ]);
    for d in rows {
        t.push_row(vec![
            d.name.to_string(),
            d.technology.to_string(),
            d.coeff_bits.to_string(),
            d.max_freq_mhz.map_or("-".into(), |v| f(v, 0)),
            f(d.latency_us, 2),
            f(d.throughput_kntt_s, 1),
            f(d.energy_nj, 1),
            d.area_mm2.map_or("-".into(), |v| f(v, 3)),
            d.tput_per_area().map_or("-".into(), |v| f(v, 1)),
            f(d.tput_per_power(), 2),
        ]);
    }
    t.render()
}

/// The headline efficiency ratios of the abstract, computed against a
/// measured BP-NTT row: throughput-per-power ratios over every in-memory /
/// ASIC baseline (paper: 10–138×) and the best throughput-per-area ratio
/// over the ASIC/FPGA designs (paper: up to 29–30×).
#[must_use]
pub fn headline_ratios(bp: &DesignSpec) -> (f64, f64, f64) {
    let baselines = published::all_baselines();
    let tp_ratios: Vec<f64> = baselines
        .iter()
        .filter(|d| !matches!(d.technology, MemTechnology::Cpu | MemTechnology::Fpga))
        .map(|d| bp.tput_per_power() / d.tput_per_power())
        .collect();
    let tp_min = tp_ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let tp_max = tp_ratios.iter().cloned().fold(0.0f64, f64::max);
    let ta_vs_asic = baselines
        .iter()
        .filter(|d| d.technology == MemTechnology::Asic)
        .filter_map(|d| Some(bp.tput_per_area()? / d.tput_per_area()?))
        .fold(0.0f64, f64::max);
    (tp_min, tp_max, ta_vs_asic)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_has_all_rows() {
        // Rendering only (no simulation) keeps this test fast.
        let rows = published::all_baselines();
        let s = render(&rows);
        for name in [
            "MeNTT",
            "CryptoPIM",
            "RM-NTT",
            "LEIA",
            "Sapphire",
            "FPGA",
            "CPU",
        ] {
            assert!(s.contains(name), "missing {name}");
        }
    }
}
