//! Minimal fixed-width / markdown table rendering.

/// A simple table: header plus rows of equally many cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders as a fixed-width text table (also valid Markdown).
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with the given precision.
#[must_use]
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(vec!["name", "value"]);
        t.push_row(vec!["alpha", "1"]);
        t.push_row(vec!["b", "20000"]);
        let s = t.render();
        assert!(s.starts_with("| name"));
        assert!(s.contains("|---"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only one"]);
    }
}
