//! Evaluation harness: regenerates every table and figure of the BP-NTT
//! paper from the simulator and the baseline models.
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Table I (design comparison) | [`table1`] | `table1` |
//! | Fig. 1 (roofline) | [`roofline`] | `fig1_roofline` |
//! | Fig. 6 (worked example) | `bpntt_modmath::bitparallel` | `fig6_trace` |
//! | Fig. 7 (memory footprint) | [`fig7`] | `fig7_footprint` |
//! | Fig. 8(a) (bit-width sweep) | [`fig8`] | `fig8a_bitwidth` |
//! | Fig. 8(b) (order sweep) | [`fig8`] | `fig8b_order` |
//! | array-size remark under Fig. 8(b) | [`fig8`] | `array_scaling` |
//! | §IV claims (shifts, packing, overhead) | [`ablation`], [`claims`] | `ablations`, `claims` |
//!
//! Every binary prints the same rows/series the paper reports, next to the
//! paper's printed values where applicable; `EXPERIMENTS.md` archives one
//! run of each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod claims;
pub mod fig7;
pub mod fig8;
pub mod render;
pub mod roofline;
pub mod table1;
