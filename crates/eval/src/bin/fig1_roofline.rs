//! Regenerates Fig. 1: roofline placement of NTT/INTT kernels.

use bpntt_eval::roofline::{ntt_kernel_points, render, Machine};
use bpntt_ntt::NttParams;

fn main() {
    let machine = Machine::typical_x86();
    for (name, params) in [
        (
            "CRYSTALS-Dilithium (256-pt, 23-bit)",
            NttParams::dilithium().unwrap(),
        ),
        (
            "Falcon-1024 (1024-pt, 14-bit)",
            NttParams::falcon1024().unwrap(),
        ),
        (
            "HE level 1 (1024-pt, 16-bit)",
            NttParams::he_1024_16bit().unwrap(),
        ),
    ] {
        println!("== {name} ==");
        let points = ntt_kernel_points(&params, &machine);
        println!("{}", render(&points, &machine));
    }
    println!(
        "expected placement (paper Fig. 1): NTT and INVNTT bound by L1/L2 bandwidth, not DRAM."
    );
}
