//! The remark under Fig. 8(b): larger subarrays avoid cross-tile overhead.

fn main() {
    let pts = bpntt_eval::fig8::array_scaling(&[(128, 128), (262, 256), (512, 512), (1024, 256)])
        .expect("simulation failed");
    println!("array-size scaling at the 256-point / 16-bit workload\n");
    println!("{}", bpntt_eval::fig8::render(&pts));
}
