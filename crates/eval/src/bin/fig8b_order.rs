//! Regenerates Fig. 8(b): clock count & energy vs polynomial order
//! (16-bit, q = 12289, 262×256 array).

fn main() {
    let pts = bpntt_eval::fig8::fig8b(&[16, 32, 64, 128, 256, 512, 1024, 2048])
        .expect("simulation failed");
    println!("Fig. 8(b) — polynomial-order sweep at 16-bit\n");
    println!("{}", bpntt_eval::fig8::render(&pts));
}
