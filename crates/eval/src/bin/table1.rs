//! Regenerates Table I: BP-NTT (measured) vs published baselines.

fn main() {
    let rows = bpntt_eval::table1::build().expect("simulation failed");
    println!("Table I — 256-point NTT comparison at 45 nm");
    println!("(BP-NTT rows measured on this simulator; baselines from their papers)\n");
    println!("{}", bpntt_eval::table1::render(&rows));
    let bp = &rows[0];
    let (tp_min, tp_max, ta_asic) = bpntt_eval::table1::headline_ratios(bp);
    println!("headline ratios from the measured BP-NTT row:");
    println!(
        "  throughput-per-power vs in-memory/ASIC: {tp_min:.1}x – {tp_max:.1}x (paper: 10–138x)"
    );
    println!("  throughput-per-area vs best ASIC:       {ta_asic:.1}x (paper: up to ~29x)");
    let detail = bpntt_eval::table1::bp_ntt_16bit().expect("simulation failed");
    println!(
        "\nmeasured BP-NTT 16-bit design point detail:\n{}",
        detail.report
    );
}
