//! Re-verifies every quantitative claim of the paper.

fn main() {
    let claims = bpntt_eval::claims::check_all().expect("simulation failed");
    println!("{}", bpntt_eval::claims::render(&claims));
    let failed = claims.iter().filter(|c| !c.pass).count();
    println!(
        "\n{} claims checked, {} outside the reproduction band",
        claims.len(),
        failed
    );
    std::process::exit(i32::from(failed > 0));
}
