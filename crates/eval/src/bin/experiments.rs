//! Runs every experiment in order (source for EXPERIMENTS.md).

fn main() {
    println!("################ Table I ################\n");
    let rows = bpntt_eval::table1::build().expect("table1");
    println!("{}", bpntt_eval::table1::render(&rows));

    println!("\n################ Fig. 1 (roofline) ################\n");
    let machine = bpntt_eval::roofline::Machine::typical_x86();
    let params = bpntt_ntt::NttParams::dilithium().unwrap();
    let points = bpntt_eval::roofline::ntt_kernel_points(&params, &machine);
    println!("{}", bpntt_eval::roofline::render(&points, &machine));

    println!("\n################ Fig. 7 (footprint) ################\n");
    println!("{}", bpntt_eval::fig7::render(128, 32));

    println!("\n################ Fig. 8(a) (bit width) ################\n");
    let pts = bpntt_eval::fig8::fig8a(&[4, 8, 16, 32, 64]).expect("fig8a");
    println!("{}", bpntt_eval::fig8::render(&pts));

    println!("\n################ Fig. 8(b) (order) ################\n");
    let pts = bpntt_eval::fig8::fig8b(&[16, 32, 64, 128, 256, 512, 1024, 2048]).expect("fig8b");
    println!("{}", bpntt_eval::fig8::render(&pts));

    println!("\n################ array scaling ################\n");
    let pts = bpntt_eval::fig8::array_scaling(&[(128, 128), (262, 256), (512, 512)]).expect("scal");
    println!("{}", bpntt_eval::fig8::render(&pts));

    println!("\n################ ablations ################\n");
    println!("{}", bpntt_eval::ablation::render_all().expect("ablations"));

    println!("\n################ claim checks ################\n");
    let claims = bpntt_eval::claims::check_all().expect("claims");
    println!("{}", bpntt_eval::claims::render(&claims));
}
