//! Prints the paper's Fig. 6 worked example of Algorithm 2, plus a
//! realistic 14-bit example.

use bpntt_modmath::bitparallel::bp_modmul_traced;

fn main() {
    println!(
        "== Fig. 6: A=4, B=3, M=7, n=3 ==\n{}",
        bp_modmul_traced(4, 3, 7, 3)
    );
    println!("\n== 14-bit example: A=1234, B=567, M=7681 (original Kyber prime) ==");
    println!("{}", bp_modmul_traced(1234, 567, 7681, 14));
}
