//! Regenerates Fig. 7: memory footprint of in-memory NTT layouts.

fn main() {
    println!("Fig. 7 — 32-bit, 128-point NTT footprint\n");
    println!("{}", bpntt_eval::fig7::render(128, 32));
    println!("other configurations:\n");
    for (n, w) in [(256usize, 16usize), (1024, 29)] {
        println!("{n}-point, {w}-bit:\n{}", bpntt_eval::fig7::render(n, w));
    }
}
