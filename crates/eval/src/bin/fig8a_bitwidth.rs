//! Regenerates Fig. 8(a): clock count & energy vs coefficient bit width
//! (order 256, 262×256 array). Widths start at 4: a 2-bit word cannot hold
//! any odd modulus with the required headroom bit.

fn main() {
    let pts = bpntt_eval::fig8::fig8a(&[4, 8, 16, 32, 64]).expect("simulation failed");
    println!("Fig. 8(a) — bit-width sweep at order 256\n");
    println!("{}", bpntt_eval::fig8::render(&pts));
}
