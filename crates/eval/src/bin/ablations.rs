//! Ablation studies: bit-serial vs bit-parallel, shift accounting,
//! column packing, timing sensitivity.

fn main() {
    println!(
        "{}",
        bpntt_eval::ablation::render_all().expect("simulation failed")
    );
}
