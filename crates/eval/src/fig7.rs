//! Fig. 7: in-memory data-layout footprint comparison.

use crate::render::Table;
use bpntt_baselines::footprint;

/// Renders the Fig. 7 comparison (default: the paper's 32-bit, 128-point
/// configuration).
#[must_use]
pub fn render(n: usize, bitwidth: usize) -> String {
    let mut t = Table::new(vec!["design", "rows", "cols", "cells", "vs BP-NTT"]);
    let prints = footprint::fig7(n, bitwidth);
    let base = prints[0].cells() as f64;
    for p in &prints {
        t.push_row(vec![
            p.name.to_string(),
            p.rows.to_string(),
            p.cols.to_string(),
            p.cells().to_string(),
            format!("{:.1}x", p.cells() as f64 / base),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn paper_configuration_renders() {
        let s = super::render(128, 32);
        assert!(s.contains("4288"), "BP-NTT cell count");
        assert!(s.contains("16640"), "MeNTT cell count");
        assert!(s.contains("524288"), "RM-NTT cell count");
    }
}
