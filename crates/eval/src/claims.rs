//! Claim checks: every quantitative statement of the paper, re-verified
//! against this reproduction with explicit pass bands.

use crate::ablation;
use crate::fig8;
use crate::table1;
use bpntt_baselines::footprint;
use bpntt_core::{BpNttError, Layout};
use bpntt_modmath::bitparallel;
use bpntt_sram::geometry::{AreaModel, ArrayGeometry, FrequencyModel};

/// One checked claim.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimCheck {
    /// Short identifier (section/figure of the paper).
    pub id: &'static str,
    /// What the paper claims.
    pub description: &'static str,
    /// The paper's value.
    pub paper: String,
    /// Our measured/derived value.
    pub measured: String,
    /// Whether the measurement falls inside the reproduction band.
    pub pass: bool,
}

fn check(
    id: &'static str,
    description: &'static str,
    paper: String,
    measured: String,
    pass: bool,
) -> ClaimCheck {
    ClaimCheck {
        id,
        description,
        paper,
        measured,
        pass,
    }
}

/// Runs every claim check. The Table-I claims simulate the full paper
/// design point, so expect a few hundred thousand simulated instructions.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn check_all() -> Result<Vec<ClaimCheck>, BpNttError> {
    let mut out = Vec::new();

    // Fig. 6 worked example.
    let trace = bitparallel::bp_modmul_traced(4, 3, 7, 3);
    out.push(check(
        "Fig6",
        "A=4, B=3, M=7 bit-parallel Montgomery gives 5",
        "5".into(),
        trace.value().to_string(),
        trace.value() == 5,
    ));

    // §I capacity claims.
    let c256 = Layout::storage_capacity(256, 256, 256);
    let c14 = Layout::storage_capacity(256, 256, 14);
    out.push(check(
        "§I",
        "256×256 array stores a 250-point/256-bit polynomial",
        "250".into(),
        c256.to_string(),
        c256 == 250,
    ));
    out.push(check(
        "§I",
        "256×256 array stores a 4500-point/14-bit polynomial",
        "4500".into(),
        c14.to_string(),
        c14 == 4500,
    ));

    // §IV-B reserved rows.
    let l = Layout::new(256, 256, 32, 128)?;
    out.push(check(
        "Fig5a",
        "six intermediate rows per array (Sum, Carry, 2 temps, M, 2^w−M)",
        "6".into(),
        l.reserved_rows().to_string(),
        l.reserved_rows() == 6,
    ));

    // §IV-A area/frequency.
    let geom = ArrayGeometry::paper_256x256();
    let b = AreaModel::cmos_45nm().breakdown(geom);
    out.push(check(
        "TableI",
        "array area ≈ 0.063 mm² at 45 nm",
        "0.063".into(),
        format!("{:.4}", b.total_mm2()),
        (b.total_mm2() - 0.063).abs() < 0.004,
    ));
    out.push(check(
        "§IV-A",
        "compute modifications < 2% of a conventional array",
        "<2%".into(),
        format!("{:.2}%", b.overhead_fraction() * 100.0),
        b.overhead_fraction() < 0.02,
    ));
    let fhz = FrequencyModel::cmos_45nm().f_max_hz(geom);
    out.push(check(
        "TableI",
        "maximum clock ≈ 3.8 GHz",
        "3.8 GHz".into(),
        format!("{:.2} GHz", fhz / 1e9),
        (fhz - 3.8e9).abs() / 3.8e9 < 0.02,
    ));

    // Table I measured BP-NTT row.
    let mp = table1::bp_ntt_16bit()?;
    let r = &mp.report;
    out.push(check(
        "TableI",
        "batch latency for 16 × 256-point/16-bit NTTs",
        "61.9 µs".into(),
        format!("{:.1} µs", r.latency_us()),
        r.latency_us() > 30.0 && r.latency_us() < 124.0,
    ));
    out.push(check(
        "TableI",
        "batch energy",
        "69.4 nJ".into(),
        format!("{:.1} nJ", r.energy_nj),
        (r.energy_nj - 69.4).abs() / 69.4 < 0.25,
    ));
    out.push(check(
        "TableI",
        "throughput per power",
        "230.7 kNTT/mJ".into(),
        format!("{:.1} kNTT/mJ", r.tput_per_power),
        (r.tput_per_power - 230.7).abs() / 230.7 < 0.25,
    ));
    out.push(check(
        "TableI",
        "throughput per area",
        "4100 kNTT/s/mm²".into(),
        format!("{:.0} kNTT/s/mm²", r.tput_per_area),
        r.tput_per_area > 2050.0 && r.tput_per_area < 8200.0,
    ));

    // Abstract headline ratios, recomputed from the measured row.
    let (tp_min, tp_max, ta_asic) = table1::headline_ratios(&mp.spec);
    out.push(check(
        "Abstract",
        "10–138× better throughput-per-power than in-memory/ASIC designs",
        "10–138×".into(),
        format!("{tp_min:.1}–{tp_max:.1}×"),
        tp_min > 7.0 && (100.0..200.0).contains(&tp_max),
    ));
    out.push(check(
        "Abstract",
        "up to ≈29× higher throughput-per-area than ASICs",
        "29×".into(),
        format!("{ta_asic:.1}×"),
        ta_asic > 14.0 && ta_asic < 40.0,
    ));

    // §IV-D packing.
    let (lanes_n, lanes_n1, loss) = ablation::packing_loss(256, 32);
    out.push(check(
        "§IV-D",
        "n+1 columns would cost 12.5% throughput (7 vs 8 parallel 32-bit words)",
        "12.5%".into(),
        format!("{:.1}% ({lanes_n} vs {lanes_n1} lanes)", loss * 100.0),
        (loss - 0.125).abs() < 1e-9,
    ));

    // §I/§IV-B shifts halved.
    let s = ablation::shift_accounting(262, 256, 16, 256, 12_289)?;
    out.push(check(
        "§I",
        "tile layout halves the shifts of word-aligned in-SRAM NTT",
        "≈2×".into(),
        format!("{:.2}×", s.ratio),
        s.ratio > 1.4 && s.ratio < 3.0,
    ));

    // Fig. 7 footprints.
    let f7 = footprint::fig7(128, 32);
    let cells: Vec<usize> = f7.iter().map(footprint::Footprint::cells).collect();
    out.push(check(
        "Fig7",
        "footprint cells: BP-NTT 4288, MeNTT 16640, RM-NTT 524288",
        "4288/16640/524288".into(),
        format!("{}/{}/{}", cells[0], cells[1], cells[2]),
        cells == vec![4288, 16_640, 524_288],
    ));

    // Fig. 8 trends.
    let a = fig8::fig8a(&[4, 16, 64])?;
    let cycle_growth = a[2].cycles as f64 / a[0].cycles as f64;
    let energy_growth = a[2].energy_per_ntt_nj / a[0].energy_per_ntt_nj;
    out.push(check(
        "Fig8a",
        "clock count and energy grow with bit width; energy grows steeper",
        "monotonic, energy steeper".into(),
        format!("cycles ×{cycle_growth:.1}, energy/NTT ×{energy_growth:.1}"),
        a[0].cycles < a[1].cycles && a[1].cycles < a[2].cycles && energy_growth > cycle_growth,
    ));
    let bpts = fig8::fig8b(&[128, 256, 512])?;
    let per_ntt = |p: &fig8::SweepPoint| p.cycles as f64 / p.lanes as f64;
    let within = per_ntt(&bpts[1]) / per_ntt(&bpts[0]);
    let crossing = per_ntt(&bpts[2]) / per_ntt(&bpts[1]);
    out.push(check(
        "Fig8b",
        "per-NTT cost rises steeply once a polynomial spans tiles",
        "steeper past capacity".into(),
        format!("×{within:.2} per doubling in-capacity, ×{crossing:.2} crossing capacity"),
        crossing > 1.2 * within,
    ));

    Ok(out)
}

/// Renders the claim table.
#[must_use]
pub fn render(claims: &[ClaimCheck]) -> String {
    let mut t = crate::render::Table::new(vec!["", "id", "claim", "paper", "measured"]);
    for c in claims {
        t.push_row(vec![
            if c.pass {
                "PASS".to_string()
            } else {
                "FAIL".to_string()
            },
            c.id.to_string(),
            c.description.to_string(),
            c.paper.clone(),
            c.measured.clone(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheap_claims_pass() {
        // The non-simulating subset (capacity, rows, area, frequency,
        // packing, footprints) must hold exactly.
        let c256 = Layout::storage_capacity(256, 256, 256);
        assert_eq!(c256, 250);
        let b = AreaModel::cmos_45nm().breakdown(ArrayGeometry::paper_256x256());
        assert!(b.overhead_fraction() < 0.02);
        let (_, _, loss) = ablation::packing_loss(256, 32);
        assert!((loss - 0.125).abs() < 1e-9);
    }

    #[test]
    fn render_marks_passes() {
        let c = vec![ClaimCheck {
            id: "X",
            description: "demo",
            paper: "1".into(),
            measured: "1".into(),
            pass: true,
        }];
        assert!(render(&c).contains("PASS"));
    }
}
