//! Fig. 1: roofline placement of the NTT / inverse-NTT kernels.
//!
//! The paper profiles CRYSTALS-Dilithium/Kyber kernels with Intel Advisor
//! and observes that NTT and INTT sit against the **L1/L2 bandwidth**
//! roofs, well left of the compute roof and far from the DRAM roof. We
//! reproduce the same placement from first principles: the instrumented
//! kernels of `bpntt-ntt` emit their exact memory trace, a cache-hierarchy
//! simulation attributes the traffic to levels, and the roofline machine
//! model turns (ops, bytes-per-level) into per-level operational intensity
//! and attainable performance.

use crate::render::{f, Table};
use bpntt_cachesim::Hierarchy;
use bpntt_ntt::instrumented::{profile_forward, profile_inverse, AddressMap, KernelProfile};
use bpntt_ntt::{NttParams, TwiddleTable};

/// Roofline machine model: one compute roof and one bandwidth roof per
/// memory level (GB/s), x86-client-class numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// Peak scalar integer throughput (Gop/s).
    pub peak_gops: f64,
    /// L1 load/store bandwidth (GB/s).
    pub bw_l1: f64,
    /// L2 bandwidth (GB/s).
    pub bw_l2: f64,
    /// L3 bandwidth (GB/s).
    pub bw_l3: f64,
    /// DRAM bandwidth (GB/s).
    pub bw_dram: f64,
}

impl Machine {
    /// A client x86 core similar to the paper's Advisor target
    /// (AVX2-class integer peak, per-core cache bandwidths).
    #[must_use]
    pub fn typical_x86() -> Self {
        Machine {
            peak_gops: 96.0,
            bw_l1: 400.0,
            bw_l2: 150.0,
            bw_l3: 60.0,
            bw_dram: 18.0,
        }
    }
}

/// One kernel's roofline placement.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPoint {
    /// Kernel name.
    pub name: &'static str,
    /// Arithmetic operations executed.
    pub ops: u64,
    /// Bytes exchanged with each level: `[core↔L1, L1↔L2, L2↔L3, L3↔DRAM]`.
    pub bytes: [u64; 4],
    /// Operational intensity per level (ops/byte); `None` when that level
    /// saw no traffic (intensity is unbounded there).
    pub intensity: [Option<f64>; 4],
    /// The level whose bandwidth roof binds the kernel on `machine`.
    pub bound_by: &'static str,
}

const LEVELS: [&str; 4] = ["L1", "L2", "L3", "DRAM"];

/// Profiles one kernel through the cache hierarchy and places it on the
/// roofline. Like an Advisor measurement over repeated invocations, the
/// kernel is replayed once to warm the caches and measured on the second
/// pass (steady state) — this is what makes DRAM traffic vanish for
/// cache-resident working sets.
#[must_use]
pub fn place(profile: &KernelProfile, machine: &Machine) -> KernelPoint {
    let mut h = Hierarchy::typical_x86();
    for a in &profile.trace {
        h.access(a.addr, u64::from(a.size), a.write);
    }
    h.reset_stats();
    for a in &profile.trace {
        h.access(a.addr, u64::from(a.size), a.write);
    }
    let s = h.stats();
    let bytes = [
        s.core_bytes,
        s.traffic_bytes[0],
        s.traffic_bytes[1],
        s.traffic_bytes[2],
    ];
    let ops = profile.ops.total();
    let bws = [machine.bw_l1, machine.bw_l2, machine.bw_l3, machine.bw_dram];
    let mut intensity = [None; 4];
    let mut bound_by = "compute";
    let mut best_attainable = machine.peak_gops;
    for (i, &b) in bytes.iter().enumerate() {
        if b > 0 {
            let ai = ops as f64 / b as f64;
            intensity[i] = Some(ai);
            let attainable = ai * bws[i];
            if attainable < best_attainable {
                best_attainable = attainable;
                bound_by = LEVELS[i];
            }
        }
    }
    KernelPoint {
        name: profile.name,
        ops,
        bytes,
        intensity,
        bound_by,
    }
}

/// Profiles the forward and inverse kernels of a parameter set (cold
/// caches, like a one-shot Advisor run over a fresh working set).
#[must_use]
pub fn ntt_kernel_points(params: &NttParams, machine: &Machine) -> Vec<KernelPoint> {
    let t = TwiddleTable::new(params);
    let mut a: Vec<u64> = (0..params.n() as u64)
        .map(|i| (i * 2_654_435_761) % params.modulus())
        .collect();
    let fwd = profile_forward(params, &t, &mut a, AddressMap::default());
    let inv = profile_inverse(params, &t, &mut a, AddressMap::default());
    vec![place(&fwd, machine), place(&inv, machine)]
}

/// Renders the Fig. 1 data: per-kernel traffic, intensity, and binding roof.
#[must_use]
pub fn render(points: &[KernelPoint], machine: &Machine) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "machine: peak {} Gop/s, BW (GB/s): L1 {}, L2 {}, L3 {}, DRAM {}\n\n",
        machine.peak_gops, machine.bw_l1, machine.bw_l2, machine.bw_l3, machine.bw_dram
    ));
    let mut t = Table::new(vec![
        "kernel", "ops", "B@L1", "B@L2", "B@L3", "B@DRAM", "AI@L1", "AI@L2", "AI@DRAM", "bound by",
    ]);
    for p in points {
        let ai = |i: usize| p.intensity[i].map_or("inf".into(), |v| f(v, 2));
        t.push_row(vec![
            p.name.to_string(),
            p.ops.to_string(),
            p.bytes[0].to_string(),
            p.bytes[1].to_string(),
            p.bytes[2].to_string(),
            p.bytes[3].to_string(),
            ai(0),
            ai(1),
            ai(3),
            p.bound_by.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dilithium_kernels_are_cache_bandwidth_bound() {
        // The paper's Fig. 1 observation: NTT/INTT are bound by L1/L2
        // bandwidth, not by DRAM and not by compute.
        let params = NttParams::dilithium().unwrap();
        let m = Machine::typical_x86();
        for p in ntt_kernel_points(&params, &m) {
            assert!(
                p.bound_by == "L1" || p.bound_by == "L2",
                "{} bound by {} instead of L1/L2",
                p.name,
                p.bound_by
            );
            // Steady state: the working set is cache-resident, so no DRAM
            // traffic at all — "not bounded by the memory bandwidth
            // bottleneck".
            assert_eq!(p.bytes[3], 0, "{}: unexpected DRAM traffic", p.name);
        }
    }

    #[test]
    fn he_1024_still_cache_bound() {
        let params = NttParams::he_1024_16bit().unwrap();
        let m = Machine::typical_x86();
        for p in ntt_kernel_points(&params, &m) {
            assert!(
                p.bound_by == "L1" || p.bound_by == "L2",
                "{}: {}",
                p.name,
                p.bound_by
            );
        }
    }

    #[test]
    fn render_mentions_roofs() {
        let params = NttParams::new(64, 7681).unwrap();
        let m = Machine::typical_x86();
        let s = render(&ntt_kernel_points(&params, &m), &m);
        assert!(s.contains("bound by"));
        assert!(s.contains("NTT"));
        assert!(s.contains("INVNTT"));
    }
}
