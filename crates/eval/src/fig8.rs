//! Fig. 8: flexibility sweeps — clock count and energy across bit widths
//! (a) and polynomial orders (b) — plus the array-size scaling study the
//! paper sketches under Fig. 8(b).
//!
//! Fig. 8(a) sweeps the *word width* of the hardware at a fixed order.
//! Below 14 bits no real 256-point NTT modulus exists (`q ≡ 1 mod 512`
//! needs 13 bits plus the headroom bit), and the paper still plots 2…64
//! bits: the quantity shown is the schedule's cost, which depends only on
//! the word width, not on the number-theoretic validity of the twiddles.
//! We therefore run the *exact* instruction schedule with synthetic odd
//! moduli and pseudo-random twiddles for the sweep (validated against a
//! real-modulus run at 16 bits), and use genuine parameter sets everywhere
//! a modulus exists — in particular for the whole of Fig. 8(b).

use crate::render::{f, Table};
use bpntt_core::{BpNtt, BpNttConfig, BpNttError, Kernels, Layout};
use bpntt_modmath::bits::low_mask;
use bpntt_ntt::NttParams;
use bpntt_sram::{BitRow, Controller, SramArray};

/// One sweep measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Configuration label.
    pub label: String,
    /// Word width in bits.
    pub bitwidth: usize,
    /// Polynomial order.
    pub n: usize,
    /// Parallel NTT lanes.
    pub lanes: usize,
    /// Whether one polynomial spans several tiles.
    pub multi_tile: bool,
    /// Clock cycles for one batch.
    pub cycles: u64,
    /// Whole-array batch energy (nJ).
    pub energy_nj: f64,
    /// Per-NTT energy (nJ) — the paper's Fig. 8 energy series.
    pub energy_per_ntt_nj: f64,
    /// One-bit shift operations executed.
    pub shift_moves: u64,
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Runs the forward-NTT schedule with a synthetic modulus (cost-accurate,
/// value-agnostic) and returns the measurement.
///
/// # Errors
///
/// Propagates layout/simulator failures.
pub fn run_synthetic_forward(
    rows: usize,
    cols: usize,
    bitwidth: usize,
    n: usize,
    seed: u64,
) -> Result<SweepPoint, BpNttError> {
    let layout = Layout::new(rows, cols, bitwidth, n)?;
    // Largest odd modulus with the headroom bit free.
    let q = (1u64 << (bitwidth - 1)) - 1;
    let array = SramArray::new(rows, layout.active_cols())?;
    let mut ctl = Controller::new(array, bitwidth)?;
    let kernels = Kernels::new(*layout.rowmap(), q, bitwidth);
    let mask = low_mask(bitwidth as u32);
    // Constant rows.
    let mut m_row = BitRow::zero(layout.active_cols());
    let mut c_row = BitRow::zero(layout.active_cols());
    for t in 0..layout.n_tiles() {
        m_row.set_tile_word(t, bitwidth, q);
        c_row.set_tile_word(t, bitwidth, q.wrapping_neg() & mask);
    }
    ctl.load_data_row(layout.rowmap().modulus.index(), m_row);
    ctl.load_data_row(layout.rowmap().comp_modulus.index(), c_row);
    // Random reduced data.
    let mut st = seed | 1;
    for r in 0..layout.coeffs_per_tile() {
        let mut row = BitRow::zero(layout.active_cols());
        for t in 0..layout.n_tiles() {
            row.set_tile_word(t, bitwidth, xorshift(&mut st) % q);
        }
        ctl.load_data_row(r, row);
    }
    ctl.reset_stats();
    // The engine's schedule, with pseudo-random twiddles.
    let cpt = layout.coeffs_per_tile();
    let mut len = n / 2;
    while len > 0 {
        if !layout.is_multi_tile() || len < cpt {
            if !layout.is_multi_tile() {
                let mut idx = 0;
                while idx < n {
                    let z = xorshift(&mut st) % q;
                    for j in idx..idx + len {
                        kernels.ct_butterfly_const(
                            &mut ctl,
                            layout.offset_row(j),
                            layout.offset_row(j + len),
                            z,
                        )?;
                    }
                    idx += 2 * len;
                }
            } else {
                let mut idx = 0;
                while idx < cpt {
                    load_random_twiddles(&mut ctl, &layout, q, &mut st);
                    for r in idx..idx + len {
                        kernels.ct_butterfly_data(
                            &mut ctl,
                            layout.offset_row(r),
                            layout.offset_row(r + len),
                        )?;
                    }
                    idx += 2 * len;
                }
            }
        } else {
            let d = len / cpt;
            for r in 0..cpt {
                load_random_twiddles(&mut ctl, &layout, q, &mut st);
                cross_tile_ct_synthetic(&mut ctl, &kernels, &layout, r, d)?;
            }
        }
        len /= 2;
    }
    let stats = *ctl.stats();
    Ok(SweepPoint {
        label: format!("{bitwidth}b/{n}pt"),
        bitwidth,
        n,
        lanes: layout.lanes(),
        multi_tile: layout.is_multi_tile(),
        cycles: stats.cycles,
        energy_nj: stats.energy_nj(),
        energy_per_ntt_nj: stats.energy_nj() / layout.lanes() as f64,
        shift_moves: stats.counts.shift_moves(),
    })
}

fn load_random_twiddles(ctl: &mut Controller, layout: &Layout, q: u64, st: &mut u64) {
    let tw = layout.rowmap().twiddle.expect("multi-tile layout");
    let mut row = BitRow::zero(layout.active_cols());
    for t in 0..layout.n_tiles() {
        row.set_tile_word(t, layout.bitwidth(), xorshift(st) % q);
    }
    ctl.load_data_row(tw.index(), row);
}

fn cross_tile_ct_synthetic(
    ctl: &mut Controller,
    kernels: &Kernels,
    layout: &Layout,
    r: usize,
    d: usize,
) -> Result<(), BpNttError> {
    use bpntt_sram::{Instruction, PredMode, ShiftDir, UnaryKind};
    let rm = *layout.rowmap();
    let scratch = rm.scratch.expect("multi-tile layout");
    let row_r = layout.offset_row(r);
    let stride_log2 = d.trailing_zeros() as u8;
    kernels.move_tiles(ctl, scratch, row_r, d, ShiftDir::Right)?;
    kernels.modmul_data(ctl, scratch, rm.twiddle.expect("twiddle row"))?;
    kernels.finish_modmul(ctl)?;
    kernels.sub_mod(ctl, scratch, row_r, rm.sum, None)?;
    kernels.add_mod(ctl, row_r, row_r, rm.sum, Some((stride_log2, false)))?;
    kernels.move_tiles(ctl, scratch, scratch, d, ShiftDir::Left)?;
    ctl.execute(&Instruction::MaskTiles {
        stride_log2,
        phase: true,
    })?;
    ctl.execute(&Instruction::Unary {
        dst: row_r,
        src: scratch,
        kind: UnaryKind::Copy,
        pred: PredMode::Always,
    })?;
    ctl.execute(&Instruction::MaskAll)?;
    Ok(())
}

/// Runs a *real* forward batch (valid parameter set) and converts it to a
/// sweep point.
///
/// # Errors
///
/// Propagates configuration/simulation failures.
pub fn run_real_forward(
    rows: usize,
    cols: usize,
    bitwidth: usize,
    params: NttParams,
) -> Result<SweepPoint, BpNttError> {
    let n = params.n();
    let q = params.modulus();
    let cfg = BpNttConfig::new(rows, cols, bitwidth, params)?;
    let layout = cfg.layout().clone();
    let mut acc = BpNtt::new(cfg)?;
    let lanes = layout.lanes();
    let polys: Vec<Vec<u64>> = (0..lanes as u64)
        .map(|s| (0..n as u64).map(|j| (s * 31 + j * 131 + 7) % q).collect())
        .collect();
    acc.load_batch(&polys)?;
    acc.reset_stats();
    acc.forward()?;
    let stats = *acc.stats();
    Ok(SweepPoint {
        label: format!("{bitwidth}b/{n}pt"),
        bitwidth,
        n,
        lanes,
        multi_tile: layout.is_multi_tile(),
        cycles: stats.cycles,
        energy_nj: stats.energy_nj(),
        energy_per_ntt_nj: stats.energy_nj() / lanes as f64,
        shift_moves: stats.counts.shift_moves(),
    })
}

/// Fig. 8(a): bit-width sweep at order 256 on the paper's 262×256 array.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig8a(widths: &[usize]) -> Result<Vec<SweepPoint>, BpNttError> {
    widths
        .iter()
        .map(|&w| run_synthetic_forward(262, 256, w, 256, 0xBEEF + w as u64))
        .collect()
}

/// Fig. 8(b): polynomial-order sweep at 16-bit words on the paper's
/// 262×256 array, using the genuine `q = 12289` parameter sets.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fig8b(orders: &[usize]) -> Result<Vec<SweepPoint>, BpNttError> {
    orders
        .iter()
        .map(|&n| run_real_forward(262, 256, 16, NttParams::new(n, 12_289)?))
        .collect()
}

/// Array-size scaling at the 256-point / 16-bit workload (the remark under
/// Fig. 8(b): larger subarrays avoid the cross-tile overheads).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn array_scaling(geometries: &[(usize, usize)]) -> Result<Vec<SweepPoint>, BpNttError> {
    geometries
        .iter()
        .map(|&(rows, cols)| {
            let mut p = run_real_forward(rows, cols, 16, NttParams::new(256, 12_289)?)?;
            p.label = format!("{rows}x{cols}");
            Ok(p)
        })
        .collect()
}

/// Renders a sweep as the paper's two series (clock count, energy).
#[must_use]
pub fn render(points: &[SweepPoint]) -> String {
    let mut t = Table::new(vec![
        "config",
        "lanes",
        "multi-tile",
        "cycles",
        "energy/batch(nJ)",
        "energy/NTT(nJ)",
        "shifts",
    ]);
    for p in points {
        t.push_row(vec![
            p.label.clone(),
            p.lanes.to_string(),
            if p.multi_tile {
                "yes".into()
            } else {
                "no".to_string()
            },
            p.cycles.to_string(),
            f(p.energy_nj, 1),
            f(p.energy_per_ntt_nj, 2),
            p.shift_moves.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_matches_real_at_16bit() {
        // The synthetic scheduler must track the real engine's cost at the
        // one width where both exist (twiddle popcounts differ, so allow a
        // modest tolerance).
        let synth = run_synthetic_forward(262, 256, 16, 256, 42).unwrap();
        let real = run_real_forward(262, 256, 16, NttParams::new(256, 12_289).unwrap()).unwrap();
        let ratio = synth.cycles as f64 / real.cycles as f64;
        assert!(
            (0.85..1.15).contains(&ratio),
            "synthetic/real cycle ratio {ratio:.3}"
        );
        assert_eq!(synth.lanes, real.lanes);
    }

    #[test]
    fn fig8a_grows_with_bitwidth() {
        let pts = fig8a(&[4, 8, 16]).unwrap();
        assert!(pts[0].cycles < pts[1].cycles && pts[1].cycles < pts[2].cycles);
        // Energy per NTT grows *steeper* than cycles: fewer lanes share the
        // array as words widen (the paper's stated reason).
        let cycle_growth = pts[2].cycles as f64 / pts[0].cycles as f64;
        let energy_growth = pts[2].energy_per_ntt_nj / pts[0].energy_per_ntt_nj;
        assert!(
            energy_growth > cycle_growth,
            "energy x{energy_growth:.2} should outpace cycles x{cycle_growth:.2}"
        );
    }

    #[test]
    fn fig8b_order_growth_is_superlinear_past_capacity() {
        let pts = fig8b(&[64, 128, 256, 512]).unwrap();
        assert!(!pts[2].multi_tile && pts[3].multi_tile);
        // Per-NTT cost (batch cycles / lanes): doubling the order within
        // tile capacity roughly doubles it; crossing the capacity boundary
        // (256 → 512) multiplies lanes down by 4 on top of the longer
        // schedule — the paper's "steeper increase".
        let per_ntt = |p: &SweepPoint| p.cycles as f64 / p.lanes as f64;
        let within = per_ntt(&pts[2]) / per_ntt(&pts[1]);
        let crossing = per_ntt(&pts[3]) / per_ntt(&pts[2]);
        assert!(
            within > 1.5 && within < 3.0,
            "in-capacity growth {within:.2}"
        );
        assert!(
            crossing > 2.5,
            "capacity-crossing growth {crossing:.2} must be steeper"
        );
        let energy_growth = pts[3].energy_per_ntt_nj / pts[2].energy_per_ntt_nj;
        assert!(energy_growth > 2.5, "energy growth {energy_growth:.2}");
    }
}
