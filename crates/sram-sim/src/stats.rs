//! Execution statistics: cycles, energy, and per-class instruction counts.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Counts of executed instructions by class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstrCounts {
    /// `Check` predicate latches.
    pub check: u64,
    /// `CheckZero` wired-OR senses.
    pub check_zero: u64,
    /// `MaskTiles` / `MaskAll` configuration writes.
    pub mask: u64,
    /// `Unary` copies/complements/clears.
    pub unary: u64,
    /// Explicit `Shift` instructions.
    pub shift: u64,
    /// `Binary` dual-row activations.
    pub binary: u64,
    /// Second write-backs riding on `Binary` activations.
    pub second_writebacks: u64,
    /// Shifts fused into `Binary` write-backs.
    pub fused_shifts: u64,
}

impl InstrCounts {
    /// Total instructions executed (second write-backs and fused shifts are
    /// attributes of their `Binary`, not separate instructions).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.check + self.check_zero + self.mask + self.unary + self.shift + self.binary
    }

    /// Total one-column data movements — explicit shifts plus fused shifts.
    /// This is the quantity behind the paper's "the number of shifts in our
    /// bit-parallel design is half of the prior bit-serial solutions".
    #[must_use]
    pub fn shift_moves(&self) -> u64 {
        self.shift + self.fused_shifts
    }

    /// Tallies one instruction into its class counter — the single
    /// definition of how instructions map to counters, shared by live
    /// execution, compiled-program cost interning, and fused emission
    /// (so the three can never classify differently).
    pub fn record(&mut self, i: &crate::isa::Instruction) {
        use crate::isa::Instruction as I;
        match i {
            I::Check { .. } => self.check += 1,
            I::CheckZero { .. } => self.check_zero += 1,
            I::MaskTiles { .. } | I::MaskAll => self.mask += 1,
            I::Unary { .. } => self.unary += 1,
            I::Shift { .. } => self.shift += 1,
            I::Binary { dst2, shift, .. } => {
                self.binary += 1;
                if dst2.is_some() {
                    self.second_writebacks += 1;
                }
                if shift.is_some() {
                    self.fused_shifts += 1;
                }
            }
        }
    }

    /// Every count multiplied by `k` (batched accounting of `k` identical
    /// instruction groups).
    #[must_use]
    pub fn scaled(&self, k: u64) -> InstrCounts {
        InstrCounts {
            check: self.check * k,
            check_zero: self.check_zero * k,
            mask: self.mask * k,
            unary: self.unary * k,
            shift: self.shift * k,
            binary: self.binary * k,
            second_writebacks: self.second_writebacks * k,
            fused_shifts: self.fused_shifts * k,
        }
    }
}

impl Add for InstrCounts {
    type Output = InstrCounts;
    fn add(self, o: InstrCounts) -> InstrCounts {
        InstrCounts {
            check: self.check + o.check,
            check_zero: self.check_zero + o.check_zero,
            mask: self.mask + o.mask,
            unary: self.unary + o.unary,
            shift: self.shift + o.shift,
            binary: self.binary + o.binary,
            second_writebacks: self.second_writebacks + o.second_writebacks,
            fused_shifts: self.fused_shifts + o.fused_shifts,
        }
    }
}

impl AddAssign for InstrCounts {
    fn add_assign(&mut self, o: InstrCounts) {
        *self = *self + o;
    }
}

/// Word-engine fast-path coverage counters: how the fused superops and
/// loops actually executed. Tracked separately from [`Stats`] — coverage
/// is an *execution-strategy* diagnostic, deliberately excluded from the
/// replay≡emission bit-identity contract (a generic emission run has zero
/// fused executions yet identical [`Stats`]).
///
/// Watch these to catch "the fast path silently stopped firing": a
/// matcher or dispatch regression shows up here as `*_per_step` /
/// `fallback` growth long before it is visible as a wall-clock mystery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FastPathStats {
    /// Multiplier chains executed register-resident (rows loaded once).
    pub chains_resident: u64,
    /// Multiplier chains executed through the per-step word kernels
    /// (row too wide for the resident window, or scalar dispatch).
    pub chains_per_step: u64,
    /// Carry-resolution loops executed register-resident.
    pub resolve_loops_resident: u64,
    /// Carry-resolution loops executed per-round.
    pub resolve_loops_per_step: u64,
    /// Borrow-resolution loops executed register-resident.
    pub borrow_loops_resident: u64,
    /// Borrow-resolution loops executed per-round.
    pub borrow_loops_per_step: u64,
    /// Single-pass superop executions (add-B / halve / resolution rounds /
    /// butterfly epilogues) that ran fused.
    pub superops_fused: u64,
    /// Fused-shape executions that fell back to generic per-instruction
    /// execution (tile mask active, or aliasing rows).
    pub fallbacks: u64,
}

impl FastPathStats {
    /// Total fast-path executions (anything that avoided the generic
    /// per-instruction path).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.chains_resident
            + self.chains_per_step
            + self.resolve_loops_resident
            + self.resolve_loops_per_step
            + self.borrow_loops_resident
            + self.borrow_loops_per_step
            + self.superops_fused
    }

    /// Register-resident executions only (the chain/loop fast paths this
    /// coverage telemetry exists to guard).
    #[must_use]
    pub fn resident_hits(&self) -> u64 {
        self.chains_resident + self.resolve_loops_resident + self.borrow_loops_resident
    }
}

impl Add for FastPathStats {
    type Output = FastPathStats;
    fn add(self, o: FastPathStats) -> FastPathStats {
        FastPathStats {
            chains_resident: self.chains_resident + o.chains_resident,
            chains_per_step: self.chains_per_step + o.chains_per_step,
            resolve_loops_resident: self.resolve_loops_resident + o.resolve_loops_resident,
            resolve_loops_per_step: self.resolve_loops_per_step + o.resolve_loops_per_step,
            borrow_loops_resident: self.borrow_loops_resident + o.borrow_loops_resident,
            borrow_loops_per_step: self.borrow_loops_per_step + o.borrow_loops_per_step,
            superops_fused: self.superops_fused + o.superops_fused,
            fallbacks: self.fallbacks + o.fallbacks,
        }
    }
}

impl AddAssign for FastPathStats {
    fn add_assign(&mut self, o: FastPathStats) {
        *self = *self + o;
    }
}

impl fmt::Display for FastPathStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chains {}+{} (resident+per-step), resolve loops {}+{}, borrow loops {}+{}, superops {}, fallbacks {}",
            self.chains_resident,
            self.chains_per_step,
            self.resolve_loops_resident,
            self.resolve_loops_per_step,
            self.borrow_loops_resident,
            self.borrow_loops_per_step,
            self.superops_fused,
            self.fallbacks
        )
    }
}

/// Aggregate execution statistics of a controller run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Stats {
    /// Elapsed compute cycles (per the active [`TimingModel`](crate::TimingModel)).
    pub cycles: u64,
    /// Dynamic energy in picojoules (per the active [`EnergyModel`](crate::EnergyModel)).
    pub energy_pj: f64,
    /// Instruction counts by class.
    pub counts: InstrCounts,
    /// Data rows loaded into the array through the normal SRAM port.
    pub row_loads: u64,
    /// Data rows read out of the array through the normal SRAM port.
    pub row_stores: u64,
}

impl Stats {
    /// Energy in nanojoules.
    #[must_use]
    pub fn energy_nj(&self) -> f64 {
        self.energy_pj / 1000.0
    }

    /// Wall-clock seconds at clock frequency `hz`.
    #[must_use]
    pub fn seconds_at(&self, hz: f64) -> f64 {
        self.cycles as f64 / hz
    }
}

impl Add for Stats {
    type Output = Stats;
    fn add(self, o: Stats) -> Stats {
        Stats {
            cycles: self.cycles + o.cycles,
            energy_pj: self.energy_pj + o.energy_pj,
            counts: self.counts + o.counts,
            row_loads: self.row_loads + o.row_loads,
            row_stores: self.row_stores + o.row_stores,
        }
    }
}

impl AddAssign for Stats {
    fn add_assign(&mut self, o: Stats) {
        *self = *self + o;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles:          {}", self.cycles)?;
        writeln!(f, "energy:          {:.3} nJ", self.energy_nj())?;
        writeln!(
            f,
            "instructions:    {} (check {}, zero {}, mask {}, unary {}, shift {}, binary {})",
            self.counts.total(),
            self.counts.check,
            self.counts.check_zero,
            self.counts.mask,
            self.counts.unary,
            self.counts.shift,
            self.counts.binary
        )?;
        writeln!(
            f,
            "shift moves:     {} ({} explicit + {} fused)",
            self.counts.shift_moves(),
            self.counts.shift,
            self.counts.fused_shifts
        )?;
        write!(
            f,
            "row I/O:         {} loads, {} stores",
            self.row_loads, self.row_stores
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_addition() {
        let a = InstrCounts {
            check: 1,
            binary: 5,
            shift: 2,
            fused_shifts: 3,
            ..Default::default()
        };
        let b = InstrCounts {
            unary: 4,
            binary: 1,
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.total(), 1 + 5 + 2 + 4 + 1);
        assert_eq!(c.shift_moves(), 2 + 3);
        let mut s = Stats {
            cycles: 10,
            energy_pj: 2500.0,
            counts: a,
            row_loads: 1,
            row_stores: 2,
        };
        s += Stats {
            cycles: 5,
            energy_pj: 500.0,
            counts: b,
            row_loads: 0,
            row_stores: 1,
        };
        assert_eq!(s.cycles, 15);
        assert!((s.energy_nj() - 3.0).abs() < 1e-12);
        assert_eq!(s.row_stores, 3);
    }

    #[test]
    fn display_mentions_everything() {
        let s = Stats {
            cycles: 7,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("cycles"));
        assert!(text.contains("shift moves"));
    }
}
