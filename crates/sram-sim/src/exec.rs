//! The controller: executes BP-NTT instructions against an [`SramArray`],
//! maintaining per-tile predicates, the tile write mask, and run statistics.

use crate::array::{SenseResult, SramArray};
use crate::bitrow::BitRow;
use crate::cost::{EnergyModel, TimingModel};
use crate::error::SramError;
use crate::isa::{BitOp, Instruction, PredMode, Program, ShiftDir, UnaryKind};
use crate::stats::Stats;

/// Executes instructions against one SRAM subarray.
///
/// The controller models the CTRL/CMD subarray of Fig. 4(b): it decodes
/// instruction words, drives the two wordline decoders, latches per-tile
/// predicates from `Check`, holds the tile write mask, and accounts cycles
/// and energy per the configured models.
///
/// # Example
///
/// ```
/// use bpntt_sram::{BitOp, BitRow, Controller, Instruction, PredMode, RowAddr, SramArray};
///
/// let array = SramArray::new(8, 64)?;
/// let mut ctl = Controller::new(array, 32)?; // two 32-bit tiles
/// let mut a = BitRow::zero(64);
/// a.set_tile_word(0, 32, 0b1100);
/// ctl.load_data_row(0, a);
/// let mut b = BitRow::zero(64);
/// b.set_tile_word(0, 32, 0b1010);
/// ctl.load_data_row(1, b);
/// ctl.execute(&Instruction::Binary {
///     dst: RowAddr(2),
///     op: BitOp::Xor,
///     src0: RowAddr(0),
///     src1: RowAddr(1),
///     dst2: Some((RowAddr(3), BitOp::And)),
///     shift: None,
///     pred: PredMode::Always,
/// })?;
/// assert_eq!(ctl.peek_row(2).tile_word(0, 32), 0b0110);
/// assert_eq!(ctl.peek_row(3).tile_word(0, 32), 0b1000);
/// # Ok::<(), bpntt_sram::SramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Controller {
    array: SramArray,
    tile_width: usize,
    n_tiles: usize,
    pred: Vec<bool>,
    tile_mask: Vec<bool>,
    /// Pre-built column masks, one per tile (all of tile `t`'s bits set).
    tile_col_masks: Vec<BitRow>,
    zero_flag: bool,
    timing: TimingModel,
    energy: EnergyModel,
    stats: Stats,
}

impl Controller {
    /// Wraps an array with a tile configuration and default cost models.
    ///
    /// # Errors
    ///
    /// [`SramError::BadTileWidth`] when `tile_width` does not divide the
    /// array's column count (or is zero).
    pub fn new(array: SramArray, tile_width: usize) -> Result<Self, SramError> {
        if tile_width == 0 || array.cols() % tile_width != 0 {
            return Err(SramError::BadTileWidth { width: tile_width, cols: array.cols() });
        }
        let n_tiles = array.cols() / tile_width;
        let tile_col_masks = (0..n_tiles)
            .map(|t| {
                let mut m = BitRow::zero(array.cols());
                for c in t * tile_width..(t + 1) * tile_width {
                    m.set_bit(c, true);
                }
                m
            })
            .collect();
        Ok(Controller {
            array,
            tile_width,
            n_tiles,
            pred: vec![false; n_tiles],
            tile_mask: vec![true; n_tiles],
            tile_col_masks,
            zero_flag: false,
            timing: TimingModel::paper(),
            energy: EnergyModel::cmos_45nm(),
            stats: Stats::default(),
        })
    }

    /// Replaces the timing model (e.g. [`TimingModel::conservative`]).
    pub fn set_timing_model(&mut self, timing: TimingModel) {
        self.timing = timing;
    }

    /// Replaces the energy model.
    pub fn set_energy_model(&mut self, energy: EnergyModel) {
        self.energy = energy;
    }

    /// Tile width in columns.
    #[must_use]
    pub fn tile_width(&self) -> usize {
        self.tile_width
    }

    /// Number of tiles.
    #[must_use]
    pub fn n_tiles(&self) -> usize {
        self.n_tiles
    }

    /// Array height.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.array.rows()
    }

    /// Array width.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.array.cols()
    }

    /// The wired-OR zero flag set by the last `CheckZero`.
    #[must_use]
    pub fn zero_flag(&self) -> bool {
        self.zero_flag
    }

    /// The predicate latch of tile `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn pred(&self, t: usize) -> bool {
        self.pred[t]
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Resets the statistics to zero (array contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = Stats::default();
    }

    /// Uncosted debug view of a row (not a simulated access).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn peek_row(&self, r: usize) -> &BitRow {
        self.array.row(r)
    }

    /// Loads one data row through the normal SRAM write port (costed as a
    /// row write, not a compute instruction).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range or the row width mismatches.
    pub fn load_data_row(&mut self, r: usize, data: BitRow) {
        self.array.write_row(r, data);
        self.stats.row_loads += 1;
        self.stats.cycles += self.timing.row_io;
        self.stats.energy_pj += self.energy.row_io_pj(self.array.cols());
    }

    /// Reads one data row through the normal SRAM read port (costed).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn read_data_row(&mut self, r: usize) -> BitRow {
        self.stats.row_stores += 1;
        self.stats.cycles += self.timing.row_io;
        self.stats.energy_pj += self.energy.row_io_pj(self.array.cols());
        self.array.row(r).clone()
    }

    fn check_row(&self, r: crate::isa::RowAddr) -> Result<usize, SramError> {
        let idx = r.index();
        if idx >= self.array.rows() {
            return Err(SramError::RowOutOfRange { row: idx, rows: self.array.rows() });
        }
        Ok(idx)
    }

    fn write_enabled(&self, t: usize, pred: PredMode) -> bool {
        self.tile_mask[t]
            && match pred {
                PredMode::Always => true,
                PredMode::IfSet => self.pred[t],
                PredMode::IfClear => !self.pred[t],
            }
    }

    /// Write-back with per-tile gating: only enabled tiles take the new
    /// value; the rest keep the old row contents.
    fn write_gated(&mut self, dst: usize, computed: BitRow, pred: PredMode) {
        let all_enabled =
            pred == PredMode::Always && self.tile_mask.iter().all(|&m| m);
        if all_enabled {
            self.array.write_row(dst, computed);
            return;
        }
        // Column mask of all enabled tiles, then a word-level merge.
        let mut mask = BitRow::zero(self.array.cols());
        let mut any = false;
        for t in 0..self.n_tiles {
            if self.write_enabled(t, pred) {
                mask = mask.or(&self.tile_col_masks[t]);
                any = true;
            }
        }
        if !any {
            return;
        }
        let merged = self.array.row(dst).and(&mask.not()).or(&computed.and(&mask));
        self.array.write_row(dst, merged);
    }

    fn apply_shift(&self, row: &BitRow, dir: ShiftDir, masked: bool) -> BitRow {
        match (dir, masked) {
            (ShiftDir::Left, false) => row.shl1_global(),
            (ShiftDir::Left, true) => row.shl1_masked(self.tile_width),
            (ShiftDir::Right, false) => row.shr1_global(),
            (ShiftDir::Right, true) => row.shr1_masked(self.tile_width),
        }
    }

    fn select(sense: &SenseResult, op: BitOp) -> BitRow {
        match op {
            BitOp::And => sense.and.clone(),
            BitOp::Or => sense.or.clone(),
            BitOp::Xor => sense.xor.clone(),
            BitOp::Nor => sense.nor.clone(),
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// [`SramError::RowOutOfRange`] for bad row addresses and
    /// [`SramError::CheckBitOutOfRange`] for a `Check` outside the tile.
    pub fn execute(&mut self, instr: &Instruction) -> Result<(), SramError> {
        self.stats.cycles += self.timing.cycles(instr);
        self.stats.energy_pj += self.energy.energy_pj(instr, self.array.cols());
        match *instr {
            Instruction::Check { src, bit } => {
                let src = self.check_row(src)?;
                if usize::from(bit) >= self.tile_width {
                    return Err(SramError::CheckBitOutOfRange {
                        bit,
                        tile_width: self.tile_width,
                    });
                }
                let row = self.array.row(src);
                for t in 0..self.n_tiles {
                    self.pred[t] = row.bit(t * self.tile_width + usize::from(bit));
                }
                self.stats.counts.check += 1;
            }
            Instruction::CheckZero { src } => {
                let src = self.check_row(src)?;
                self.zero_flag = self.array.row(src).is_zero();
                self.stats.counts.check_zero += 1;
            }
            Instruction::MaskTiles { stride_log2, phase } => {
                for (t, m) in self.tile_mask.iter_mut().enumerate() {
                    let bit = if stride_log2 >= 63 { 0 } else { (t >> stride_log2) & 1 };
                    *m = (bit == 1) == phase;
                }
                self.stats.counts.mask += 1;
            }
            Instruction::MaskAll => {
                self.tile_mask.iter_mut().for_each(|m| *m = true);
                self.stats.counts.mask += 1;
            }
            Instruction::Unary { dst, src, kind, pred } => {
                let dst = self.check_row(dst)?;
                let computed = match kind {
                    UnaryKind::Copy => self.array.row(self.check_row(src)?).clone(),
                    UnaryKind::Not => self.array.row(self.check_row(src)?).not(),
                    UnaryKind::Zero => BitRow::zero(self.array.cols()),
                };
                self.write_gated(dst, computed, pred);
                self.stats.counts.unary += 1;
            }
            Instruction::Shift { dst, src, dir, masked, pred } => {
                let dst = self.check_row(dst)?;
                let src = self.check_row(src)?;
                let computed = self.apply_shift(self.array.row(src), dir, masked);
                // Clone is needed because apply_shift borrows the array.
                self.write_gated(dst, computed, pred);
                self.stats.counts.shift += 1;
            }
            Instruction::Binary { dst, op, src0, src1, dst2, shift, pred } => {
                let dst = self.check_row(dst)?;
                let src0 = self.check_row(src0)?;
                let src1 = self.check_row(src1)?;
                let sense = self.array.sense(src0, src1);
                let mut primary = Self::select(&sense, op);
                if let Some((dir, masked)) = shift {
                    primary = self.apply_shift(&primary, dir, masked);
                    self.stats.counts.fused_shifts += 1;
                }
                // Compute the second result *before* any write-back so both
                // derive from the same activation.
                let second = dst2.map(|(d2, op2)| (d2, Self::select(&sense, op2)));
                self.write_gated(dst, primary, pred);
                if let Some((d2, row2)) = second {
                    let d2 = self.check_row(d2)?;
                    self.write_gated(d2, row2, pred);
                    self.stats.counts.second_writebacks += 1;
                }
                self.stats.counts.binary += 1;
            }
        }
        Ok(())
    }

    /// Executes a straight-line program.
    ///
    /// # Errors
    ///
    /// Stops at — and returns — the first instruction error.
    pub fn run(&mut self, program: &Program) -> Result<(), SramError> {
        for i in program.instructions() {
            self.execute(i)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::RowAddr;

    fn controller(rows: usize, cols: usize, w: usize) -> Controller {
        Controller::new(SramArray::new(rows, cols).unwrap(), w).unwrap()
    }

    fn row_with(cols: usize, w: usize, words: &[u64]) -> BitRow {
        let mut r = BitRow::zero(cols);
        for (t, &v) in words.iter().enumerate() {
            r.set_tile_word(t, w, v);
        }
        r
    }

    #[test]
    fn rejects_bad_tile_width() {
        assert!(Controller::new(SramArray::new(8, 64).unwrap(), 0).is_err());
        assert!(Controller::new(SramArray::new(8, 64).unwrap(), 48).is_err());
        assert!(Controller::new(SramArray::new(8, 64).unwrap(), 16).is_ok());
    }

    #[test]
    fn check_latches_per_tile_predicates() {
        let mut c = controller(4, 64, 16);
        c.load_data_row(0, row_with(64, 16, &[1, 0, 1, 0]));
        c.execute(&Instruction::Check { src: RowAddr(0), bit: 0 }).unwrap();
        assert_eq!((c.pred(0), c.pred(1), c.pred(2), c.pred(3)), (true, false, true, false));
    }

    #[test]
    fn check_bit_out_of_tile_errors() {
        let mut c = controller(4, 64, 16);
        assert!(matches!(
            c.execute(&Instruction::Check { src: RowAddr(0), bit: 16 }),
            Err(SramError::CheckBitOutOfRange { .. })
        ));
    }

    #[test]
    fn predicated_write_only_touches_selected_tiles() {
        let mut c = controller(4, 64, 16);
        c.load_data_row(0, row_with(64, 16, &[1, 0, 1, 0])); // predicates
        c.load_data_row(1, row_with(64, 16, &[7, 7, 7, 7])); // source
        c.load_data_row(2, row_with(64, 16, &[9, 9, 9, 9])); // destination
        c.execute(&Instruction::Check { src: RowAddr(0), bit: 0 }).unwrap();
        c.execute(&Instruction::Unary {
            dst: RowAddr(2),
            src: RowAddr(1),
            kind: UnaryKind::Copy,
            pred: PredMode::IfSet,
        })
        .unwrap();
        let r = c.peek_row(2);
        assert_eq!(
            [r.tile_word(0, 16), r.tile_word(1, 16), r.tile_word(2, 16), r.tile_word(3, 16)],
            [7, 9, 7, 9]
        );
        // Complementary predicate covers the rest.
        c.execute(&Instruction::Unary {
            dst: RowAddr(2),
            src: RowAddr(1),
            kind: UnaryKind::Zero,
            pred: PredMode::IfClear,
        })
        .unwrap();
        let r = c.peek_row(2);
        assert_eq!(
            [r.tile_word(0, 16), r.tile_word(1, 16), r.tile_word(2, 16), r.tile_word(3, 16)],
            [7, 0, 7, 0]
        );
    }

    #[test]
    fn tile_mask_gates_writes() {
        let mut c = controller(4, 64, 16);
        c.load_data_row(0, row_with(64, 16, &[1, 2, 3, 4]));
        c.execute(&Instruction::MaskTiles { stride_log2: 0, phase: false }).unwrap();
        // Tiles 0 and 2 enabled ((t>>0)&1 == 0).
        c.execute(&Instruction::Unary {
            dst: RowAddr(1),
            src: RowAddr(0),
            kind: UnaryKind::Copy,
            pred: PredMode::Always,
        })
        .unwrap();
        let r = c.peek_row(1);
        assert_eq!(
            [r.tile_word(0, 16), r.tile_word(1, 16), r.tile_word(2, 16), r.tile_word(3, 16)],
            [1, 0, 3, 0]
        );
        c.execute(&Instruction::MaskAll).unwrap();
        c.execute(&Instruction::Unary {
            dst: RowAddr(1),
            src: RowAddr(0),
            kind: UnaryKind::Copy,
            pred: PredMode::Always,
        })
        .unwrap();
        assert_eq!(c.peek_row(1), c.peek_row(0));
    }

    #[test]
    fn binary_dual_writeback_uses_one_activation() {
        let mut c = controller(8, 64, 32);
        c.load_data_row(0, row_with(64, 32, &[0b1100, 0b1111]));
        c.load_data_row(1, row_with(64, 32, &[0b1010, 0b0001]));
        // dst overlaps an operand: the second write-back must still see the
        // original operands.
        c.execute(&Instruction::Binary {
            dst: RowAddr(0), // overwrite src0 with AND
            op: BitOp::And,
            src0: RowAddr(0),
            src1: RowAddr(1),
            dst2: Some((RowAddr(2), BitOp::Xor)),
            shift: None,
            pred: PredMode::Always,
        })
        .unwrap();
        assert_eq!(c.peek_row(0).tile_word(0, 32), 0b1000);
        assert_eq!(c.peek_row(2).tile_word(0, 32), 0b0110, "XOR of the *original* rows");
        assert_eq!(c.peek_row(2).tile_word(1, 32), 0b1110);
        assert_eq!(c.stats().counts.binary, 1);
        assert_eq!(c.stats().counts.second_writebacks, 1);
    }

    #[test]
    fn fused_shift_applies_to_primary_result() {
        let mut c = controller(8, 64, 32);
        c.load_data_row(0, row_with(64, 32, &[0b0110, 0]));
        c.load_data_row(1, row_with(64, 32, &[0b0000, 0]));
        c.execute(&Instruction::Binary {
            dst: RowAddr(2),
            op: BitOp::Or,
            src0: RowAddr(0),
            src1: RowAddr(1),
            dst2: None,
            shift: Some((ShiftDir::Right, false)),
            pred: PredMode::Always,
        })
        .unwrap();
        assert_eq!(c.peek_row(2).tile_word(0, 32), 0b0011);
        assert_eq!(c.stats().counts.fused_shifts, 1);
    }

    #[test]
    fn zero_flag_reflects_row_contents() {
        let mut c = controller(4, 64, 32);
        c.execute(&Instruction::CheckZero { src: RowAddr(1) }).unwrap();
        assert!(c.zero_flag());
        c.load_data_row(1, row_with(64, 32, &[0, 1]));
        c.execute(&Instruction::CheckZero { src: RowAddr(1) }).unwrap();
        assert!(!c.zero_flag());
    }

    #[test]
    fn costs_accumulate() {
        let mut c = controller(4, 64, 32);
        c.load_data_row(0, row_with(64, 32, &[5, 6]));
        c.execute(&Instruction::Shift {
            dst: RowAddr(1),
            src: RowAddr(0),
            dir: ShiftDir::Left,
            masked: true,
            pred: PredMode::Always,
        })
        .unwrap();
        let s = c.stats();
        assert_eq!(s.cycles, 2, "1 row load + 1 shift at the paper timing");
        assert!(s.energy_pj > 0.0);
        assert_eq!(s.row_loads, 1);
        assert_eq!(s.counts.shift, 1);
    }

    #[test]
    fn out_of_range_rows_error() {
        let mut c = controller(4, 64, 32);
        assert!(matches!(
            c.execute(&Instruction::CheckZero { src: RowAddr(4) }),
            Err(SramError::RowOutOfRange { row: 4, rows: 4 })
        ));
    }
}
