//! The controller: executes BP-NTT instructions against an [`SramArray`],
//! maintaining per-tile predicates, the tile write mask, and run statistics.

use crate::array::SramArray;
use crate::bitrow::BitRow;
use crate::cost::{EnergyModel, TimingModel};
use crate::error::SramError;
use crate::fault::{FaultPlan, FaultState, FaultStats};
use crate::isa::{BitOp, Instruction, PredMode, Program, ShiftDir, UnaryKind};
use crate::stats::{FastPathStats, Stats};
use crate::wordkern::FastPathKind;

/// Executes instructions against one SRAM subarray.
///
/// The controller models the CTRL/CMD subarray of Fig. 4(b): it decodes
/// instruction words, drives the two wordline decoders, latches per-tile
/// predicates from `Check`, holds the tile write mask, and accounts cycles
/// and energy per the configured models.
///
/// # Example
///
/// ```
/// use bpntt_sram::{BitOp, BitRow, Controller, Instruction, PredMode, RowAddr, SramArray};
///
/// let array = SramArray::new(8, 64)?;
/// let mut ctl = Controller::new(array, 32)?; // two 32-bit tiles
/// let mut a = BitRow::zero(64);
/// a.set_tile_word(0, 32, 0b1100);
/// ctl.load_data_row(0, a);
/// let mut b = BitRow::zero(64);
/// b.set_tile_word(0, 32, 0b1010);
/// ctl.load_data_row(1, b);
/// ctl.execute(&Instruction::Binary {
///     dst: RowAddr(2),
///     op: BitOp::Xor,
///     src0: RowAddr(0),
///     src1: RowAddr(1),
///     dst2: Some((RowAddr(3), BitOp::And)),
///     shift: None,
///     pred: PredMode::Always,
/// })?;
/// assert_eq!(ctl.peek_row(2).tile_word(0, 32), 0b0110);
/// assert_eq!(ctl.peek_row(3).tile_word(0, 32), 0b1000);
/// # Ok::<(), bpntt_sram::SramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Controller {
    array: SramArray,
    tile_width: usize,
    n_tiles: usize,
    tile_mask: Vec<bool>,
    /// Number of tiles currently disabled by the tile mask — an O(1)
    /// "is every tile enabled?" test on the write-back fast path.
    n_masked_off: usize,
    zero_flag: bool,
    timing: TimingModel,
    energy: EnergyModel,
    stats: Stats,
    /// Fast-path coverage telemetry (see [`FastPathStats`]); deliberately
    /// outside [`Stats`] so execution strategy never enters the
    /// replay≡emission bit-identity contract.
    fastpath: FastPathStats,
    /// How this geometry executes fused chains and resolution loops —
    /// decided once from the padded row width (compiled programs record
    /// the same kind, so replay never re-derives it per superop).
    fast_path: FastPathKind,
    /// Preallocated result row for the primary write-back: every compute
    /// instruction lands here before being swapped or merged into the
    /// array, so the hot loop never touches the allocator.
    scratch_a: BitRow,
    /// Preallocated result row for a `Binary`'s second write-back.
    scratch_b: BitRow,
    /// Column image of the predicate latches: every column of a
    /// pred-set tile is 1. Maintained by `Check`, consumed word-wise by
    /// gated write-backs and the fused superops.
    pred_mask: BitRow,
    /// Column image of the tile write mask (enabled tiles' columns set).
    mask_cols: BitRow,
    /// Keep-mask of a tile-masked left shift: all columns except each
    /// tile's base bit (where the crossing bit is discarded).
    shl_keep: BitRow,
    /// Keep-mask of a tile-masked right shift: all columns except each
    /// tile's top bit.
    shr_keep: BitRow,
    /// Word image with exactly the tile-base columns set — the select
    /// layer of the multiply-smear predicate latch
    /// ([`crate::wordkern::latch_tile_bit`]).
    tile_base_mask: Vec<u64>,
    /// Installed fault-injection state ([`crate::fault`]); `None` in
    /// normal operation, where the per-batch hook is one pointer test.
    fault: Option<Box<FaultState>>,
    /// When `false` every cost primitive — cycles, energy, instruction
    /// counts, row-I/O stats — is skipped and [`Self::native_clock`]
    /// advances instead. This is the native direct-execution backend's
    /// mode: same rows, same fault hooks, no cost model. Default `true`.
    costed: bool,
    /// The uncosted instruction clock: advanced by exactly the amounts
    /// `Stats::counts.total()` would grow under cost accounting, so an
    /// installed [`FaultPlan`] fires at identical instruction clocks in
    /// both modes (the clock the fault module addresses campaigns by).
    native_clock: u64,
}

impl Controller {
    /// Wraps an array with a tile configuration and default cost models.
    ///
    /// # Errors
    ///
    /// [`SramError::BadTileWidth`] when `tile_width` does not divide the
    /// array's column count, is zero, or exceeds 64 (the whole ISA is
    /// built on one ≤64-bit word per tile — `BitRow::tile_word`, the
    /// `Check` bit field, and the multiply-smear predicate latch all
    /// assume it).
    pub fn new(array: SramArray, tile_width: usize) -> Result<Self, SramError> {
        if tile_width == 0 || tile_width > 64 || !array.cols().is_multiple_of(tile_width) {
            return Err(SramError::BadTileWidth {
                width: tile_width,
                cols: array.cols(),
            });
        }
        let n_tiles = array.cols() / tile_width;
        let cols = array.cols();
        let mut mask_cols = BitRow::zero(cols);
        mask_cols.fill_range(0, cols, true);
        let mut shl_keep = mask_cols.clone();
        let mut shr_keep = mask_cols.clone();
        for base in (0..cols).step_by(tile_width) {
            shl_keep.set_bit(base, false);
            shr_keep.set_bit(base + tile_width - 1, false);
        }
        // The mask covers the chunk-padded word count; padding words stay
        // zero, so the latch writes them as zero.
        let n_words = crate::bitrow::padded_words(cols);
        let mut tile_base_mask = vec![0u64; n_words];
        for base in (0..cols).step_by(tile_width) {
            tile_base_mask[base / 64] |= 1u64 << (base % 64);
        }
        Ok(Controller {
            array,
            tile_width,
            n_tiles,
            tile_mask: vec![true; n_tiles],
            n_masked_off: 0,
            zero_flag: false,
            timing: TimingModel::paper(),
            energy: EnergyModel::cmos_45nm(),
            stats: Stats::default(),
            fastpath: FastPathStats::default(),
            fast_path: FastPathKind::for_words(n_words),
            scratch_a: BitRow::zero(cols),
            scratch_b: BitRow::zero(cols),
            pred_mask: BitRow::zero(cols),
            mask_cols,
            shl_keep,
            shr_keep,
            tile_base_mask,
            fault: None,
            costed: true,
            native_clock: 0,
        })
    }

    /// Enables or disables cost accounting. With accounting off, row
    /// contents, predicate latches, the zero flag, and fault injection
    /// behave identically, but [`Stats`] stays frozen and the
    /// [`Self::native_clock`] carries the instruction clock instead —
    /// the contract the native direct-execution backend runs under.
    pub fn set_cost_accounting(&mut self, costed: bool) {
        self.costed = costed;
    }

    /// Whether cost accounting is currently enabled.
    #[must_use]
    pub fn cost_accounting(&self) -> bool {
        self.costed
    }

    /// The uncosted instruction clock (always 0 while cost accounting is
    /// enabled — the costed clock is `stats().counts.total()`).
    #[must_use]
    pub fn native_clock(&self) -> u64 {
        self.native_clock
    }

    /// Installs a [`FaultPlan`], replacing any existing one. Faults are
    /// applied at instruction-batch boundaries on every execution path
    /// (replay, fused emission, generic emission) and at every costed
    /// data-row load/read; see the [`crate::fault`] module docs for the
    /// fault model and determinism guarantees. Installing an empty plan
    /// still routes execution through the hook, which is the cheap way
    /// to check the hook itself is cost-neutral.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(Box::new(FaultState::new(plan)));
    }

    /// Removes the installed fault plan, returning its injection
    /// counters ([`FaultStats::default`] when none was installed).
    pub fn clear_fault_plan(&mut self) -> FaultStats {
        self.fault.take().map(|s| s.stats).unwrap_or_default()
    }

    /// Injection counters of the installed plan (`None` when no plan is
    /// installed).
    #[must_use]
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.fault.as_ref().map(|s| s.stats)
    }

    /// The fault hook: called once per instruction-batch boundary. The
    /// common no-plan case is a single `Option` discriminant test.
    #[inline]
    pub(crate) fn fault_tick(&mut self) {
        if self.fault.is_some() {
            self.fault_tick_slow();
        }
    }

    /// Applies every fault due at the current instruction clock
    /// (`Stats::counts.total()`, which the bit-identity contract makes
    /// mode-independent; with cost accounting off, the `native_clock`
    /// mirror of the same count): fires due transients as live
    /// bit-flips, re-imposes stuck cells and dead rows, and trips a
    /// scheduled hard fault as a controller panic.
    #[cold]
    fn fault_tick_slow(&mut self) {
        // Exactly one addend is ever nonzero: the two clocks advance by
        // the same increments, but only the active mode's clock moves.
        let now = self.stats.counts.total() + self.native_clock;
        let rows = self.array.rows();
        let cols = self.array.cols();
        let Some(state) = self.fault.as_mut() else {
            return;
        };
        let mut flips = Vec::new();
        let hard = state.collect_due(now, rows, cols, &mut flips);
        for (r, b) in flips {
            let row = self.array.row_mut(r);
            let v = row.bit(b);
            row.set_bit(b, !v);
        }
        if state.persistent_active(now) {
            state.stats.persistent_imposications += 1;
            // Clone the small fault lists so the array can be mutated
            // while the state stays borrowed-free.
            let dead = state.plan.dead_rows.clone();
            let stuck = state.plan.stuck.clone();
            for r in dead {
                if r < rows {
                    let row = self.array.row_mut(r);
                    *row = BitRow::zero(cols);
                }
            }
            for c in stuck {
                if c.row < rows && c.bit < cols {
                    self.array.row_mut(c.row).set_bit(c.bit, c.value);
                }
            }
        }
        if hard {
            panic!("injected hard fault: SRAM controller wordline latch-up at instruction {now}");
        }
    }

    /// Latches the per-tile predicate from tile-relative column `bit` of
    /// row `src` into the predicate column mask (the boolean per-tile view
    /// is derived from the mask on demand).
    fn latch_preds(&mut self, src: usize, bit: usize) {
        crate::wordkern::latch_tile_bit(
            &self.tile_base_mask,
            self.tile_width,
            self.array.row(src).words(),
            bit,
            self.pred_mask.words_mut(),
        );
    }

    /// Replaces the timing model (e.g. [`TimingModel::conservative`]).
    pub fn set_timing_model(&mut self, timing: TimingModel) {
        self.timing = timing;
    }

    /// Replaces the energy model.
    pub fn set_energy_model(&mut self, energy: EnergyModel) {
        self.energy = energy;
    }

    /// Tile width in columns.
    #[must_use]
    pub fn tile_width(&self) -> usize {
        self.tile_width
    }

    /// Number of tiles.
    #[must_use]
    pub fn n_tiles(&self) -> usize {
        self.n_tiles
    }

    /// Array height.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.array.rows()
    }

    /// Array width.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.array.cols()
    }

    /// The wired-OR zero flag set by the last `CheckZero`.
    #[must_use]
    pub fn zero_flag(&self) -> bool {
        self.zero_flag
    }

    /// The predicate latch of tile `t` (the tile's columns in the
    /// predicate mask).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn pred(&self, t: usize) -> bool {
        assert!(t < self.n_tiles, "tile {t} out of range");
        self.pred_mask.bit(t * self.tile_width)
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Resets the statistics to zero (array contents are untouched). Also
    /// clears the fast-path coverage counters and rewinds the uncosted
    /// instruction clock (mirroring the costed clock's reset).
    pub fn reset_stats(&mut self) {
        self.stats = Stats::default();
        self.fastpath = FastPathStats::default();
        self.native_clock = 0;
    }

    /// Fast-path coverage telemetry accumulated since the last reset.
    #[must_use]
    pub fn fastpath_stats(&self) -> &FastPathStats {
        &self.fastpath
    }

    /// This geometry's fused chain/loop execution strategy.
    #[must_use]
    pub fn fast_path_kind(&self) -> FastPathKind {
        self.fast_path
    }

    /// Uncosted debug view of a row (not a simulated access).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn peek_row(&self, r: usize) -> &BitRow {
        self.array.row(r)
    }

    /// Loads one data row through the normal SRAM write port (costed as a
    /// row write, not a compute instruction).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range or the row width mismatches.
    pub fn load_data_row(&mut self, r: usize, data: BitRow) {
        self.array.write_row(r, data);
        if self.costed {
            self.stats.row_loads += 1;
            self.stats.cycles += self.timing.row_io;
            self.stats.energy_pj += self.energy.row_io_pj(self.array.cols());
        }
        self.fault_tick();
    }

    /// Reads one data row through the normal SRAM read port (costed).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn read_data_row(&mut self, r: usize) -> BitRow {
        if self.costed {
            self.stats.row_stores += 1;
            self.stats.cycles += self.timing.row_io;
            self.stats.energy_pj += self.energy.row_io_pj(self.array.cols());
        }
        self.fault_tick();
        self.array.row(r).clone()
    }

    fn check_row(&self, r: crate::isa::RowAddr) -> Result<usize, SramError> {
        let idx = r.index();
        if idx >= self.array.rows() {
            return Err(SramError::RowOutOfRange {
                row: idx,
                rows: self.array.rows(),
            });
        }
        Ok(idx)
    }

    /// Write-back of one scratch row with per-tile gating: only enabled
    /// tiles take the new value; the rest keep the old row contents. The
    /// all-enabled fast path is a pointer swap — the scratch row becomes
    /// the (dead) previous destination contents and is fully overwritten by
    /// the next compute instruction. The gated path is a word-wise merge
    /// through the predicate/tile column masks (no per-tile loop).
    fn write_back(&mut self, dst: usize, pred: PredMode, second: bool) {
        if pred == PredMode::Always && self.n_masked_off == 0 {
            let scratch = if second {
                &mut self.scratch_b
            } else {
                &mut self.scratch_a
            };
            std::mem::swap(self.array.row_mut(dst), scratch);
            return;
        }
        let scratch = if second {
            &self.scratch_b
        } else {
            &self.scratch_a
        };
        let sw = scratch.words();
        let mw = self.mask_cols.words();
        let pw = self.pred_mask.words();
        let rw = self.array.row_mut(dst).words_mut();
        match pred {
            PredMode::Always => {
                for ((r, &s), &m) in rw.iter_mut().zip(sw).zip(mw) {
                    *r = (*r & !m) | (s & m);
                }
            }
            PredMode::IfSet => {
                for (((r, &s), &m), &p) in rw.iter_mut().zip(sw).zip(mw).zip(pw) {
                    let g = m & p;
                    *r = (*r & !g) | (s & g);
                }
            }
            PredMode::IfClear => {
                for (((r, &s), &m), &p) in rw.iter_mut().zip(sw).zip(mw).zip(pw) {
                    let g = m & !p;
                    *r = (*r & !g) | (s & g);
                }
            }
        }
    }

    /// Validates an instruction's row addresses and `Check` bit against
    /// this controller (the same checks [`Self::execute`] performs, shared
    /// with program compilation).
    pub(crate) fn validate_instr(&self, instr: &Instruction) -> Result<(), SramError> {
        match *instr {
            Instruction::Check { src, bit } => {
                self.check_row(src)?;
                if usize::from(bit) >= self.tile_width {
                    return Err(SramError::CheckBitOutOfRange {
                        bit,
                        tile_width: self.tile_width,
                    });
                }
            }
            Instruction::CheckZero { src } => {
                self.check_row(src)?;
            }
            Instruction::MaskTiles { .. } | Instruction::MaskAll => {}
            Instruction::Unary { dst, src, kind, .. } => {
                self.check_row(dst)?;
                if kind != UnaryKind::Zero {
                    self.check_row(src)?;
                }
            }
            Instruction::Shift { dst, src, .. } => {
                self.check_row(dst)?;
                self.check_row(src)?;
            }
            Instruction::Binary {
                dst,
                src0,
                src1,
                dst2,
                ..
            } => {
                self.check_row(dst)?;
                self.check_row(src0)?;
                self.check_row(src1)?;
                if let Some((d2, _)) = dst2 {
                    self.check_row(d2)?;
                }
            }
        }
        Ok(())
    }

    /// Applies one *validated* instruction: the semantic work and the
    /// instruction-class counters, but no cycle/energy accounting and no
    /// address validation. Shared by [`Self::execute`] (which validates and
    /// costs per call) and compiled-program replay (which validated at
    /// compile time and replays precomputed costs).
    pub(crate) fn apply_instr(&mut self, instr: &Instruction) {
        if self.costed {
            self.stats.counts.record(instr);
        } else {
            // Every instruction records exactly one primary class, so
            // the costed clock (`counts.total()`) grows by one here.
            self.native_clock += 1;
        }
        match *instr {
            Instruction::Check { src, bit } => {
                self.latch_preds(src.index(), usize::from(bit));
            }
            Instruction::CheckZero { src } => {
                self.zero_flag = self.array.row(src.index()).is_zero();
            }
            Instruction::MaskTiles { stride_log2, phase } => {
                let mut off = 0;
                for (t, m) in self.tile_mask.iter_mut().enumerate() {
                    let bit = if stride_log2 >= 63 {
                        0
                    } else {
                        (t >> stride_log2) & 1
                    };
                    *m = (bit == 1) == phase;
                    off += usize::from(!*m);
                    self.mask_cols
                        .fill_range(t * self.tile_width, (t + 1) * self.tile_width, *m);
                }
                self.n_masked_off = off;
            }
            Instruction::MaskAll => {
                self.tile_mask.iter_mut().for_each(|m| *m = true);
                self.n_masked_off = 0;
                self.mask_cols.fill_range(0, self.array.cols(), true);
            }
            Instruction::Unary {
                dst,
                src,
                kind,
                pred,
            } => {
                match kind {
                    UnaryKind::Copy => self.scratch_a.copy_from(self.array.row(src.index())),
                    UnaryKind::Not => self.scratch_a.assign_not(self.array.row(src.index())),
                    UnaryKind::Zero => self.scratch_a.clear(),
                }
                self.write_back(dst.index(), pred, false);
            }
            Instruction::Shift {
                dst,
                src,
                dir,
                masked,
                pred,
            } => {
                self.scratch_a.copy_from(self.array.row(src.index()));
                self.shift_scratch_a(dir, masked);
                self.write_back(dst.index(), pred, false);
            }
            Instruction::Binary {
                dst,
                op,
                src0,
                src1,
                dst2,
                shift,
                pred,
            } => {
                // Both results are computed from the same activation,
                // before any write-back, so a destination overlapping an
                // operand cannot corrupt the second result.
                {
                    let a = self.array.row(src0.index());
                    let b = self.array.row(src1.index());
                    Self::assign_bitop(&mut self.scratch_a, a, b, op);
                    if let Some((_, op2)) = dst2 {
                        Self::assign_bitop(&mut self.scratch_b, a, b, op2);
                    }
                }
                if let Some((dir, masked)) = shift {
                    self.shift_scratch_a(dir, masked);
                }
                self.write_back(dst.index(), pred, false);
                if let Some((d2, _)) = dst2 {
                    self.write_back(d2.index(), pred, true);
                }
            }
        }
    }

    fn assign_bitop(out: &mut BitRow, a: &BitRow, b: &BitRow, op: BitOp) {
        match op {
            BitOp::And => out.assign_and(a, b),
            BitOp::Or => out.assign_or(a, b),
            BitOp::Xor => out.assign_xor(a, b),
            BitOp::Nor => out.assign_nor(a, b),
        }
    }

    fn shift_scratch_a(&mut self, dir: ShiftDir, masked: bool) {
        match (dir, masked) {
            (ShiftDir::Left, false) => self.scratch_a.shl1_global_in_place(),
            (ShiftDir::Left, true) => {
                self.scratch_a.shl1_global_in_place();
                self.scratch_a.and_assign(&self.shl_keep);
            }
            (ShiftDir::Right, false) => self.scratch_a.shr1_global_in_place(),
            (ShiftDir::Right, true) => {
                self.scratch_a.shr1_global_in_place();
                self.scratch_a.and_assign(&self.shr_keep);
            }
        }
    }

    /// Adds precomputed instruction costs (compiled-program replay path).
    /// Pure cost, no instruction semantics — an uncosted controller
    /// drops it entirely (the paired `add_counts`/`apply_instr` call
    /// advances the native clock).
    #[inline]
    pub(crate) fn add_cost(&mut self, cycles: u64, energy_pj: f64) {
        if self.costed {
            self.stats.cycles += cycles;
            self.stats.energy_pj += energy_pj;
        }
    }

    /// Adds a fused group's pre-aggregated costs. Cycle and count sums are
    /// exact; energies are added value by value in emission order so the
    /// floating-point accumulator matches per-instruction execution bit
    /// for bit.
    pub(crate) fn apply_group_cost(&mut self, gc: &crate::program::GroupCost) {
        if !self.costed {
            self.native_clock += gc.counts.total();
            return;
        }
        self.stats.cycles += gc.cycles;
        self.stats.counts += gc.counts;
        for &e in &gc.energy {
            self.stats.energy_pj += e;
        }
    }

    /// The current energy accumulator (replay-internal).
    #[inline]
    pub(crate) fn stats_energy(&self) -> f64 {
        self.stats.energy_pj
    }

    /// Stores the energy accumulator back (replay-internal).
    #[inline]
    pub(crate) fn set_stats_energy(&mut self, e: f64) {
        self.stats.energy_pj = e;
    }

    /// Adds batched instruction-class counts.
    #[inline]
    pub(crate) fn add_counts(&mut self, counts: crate::stats::InstrCounts) {
        if self.costed {
            self.stats.counts += counts;
        } else {
            self.native_clock += counts.total();
        }
    }

    /// Adds a sequence of per-instruction energies in order (the
    /// accumulator stays in a register for the duration — same add
    /// sequence, so the result is bit-identical to one-at-a-time adds).
    #[inline]
    pub(crate) fn add_energy_seq(&mut self, energies: &[f64]) {
        if !self.costed {
            return;
        }
        let mut acc = self.stats.energy_pj;
        for &e in energies {
            acc += e;
        }
        self.stats.energy_pj = acc;
    }

    /// Accounts one fused instruction group on the *emission* path: live
    /// cost-model evaluation per instruction, energies added in emission
    /// order, and the same per-class counters [`Self::apply_instr`] would
    /// bump — so a fused-emitted group's [`Stats`] are bit-identical to
    /// executing its instructions one at a time.
    pub(crate) fn add_emit_group_cost(&mut self, instrs: &[Instruction]) {
        if !self.costed {
            // One primary-class count per instruction.
            self.native_clock += instrs.len() as u64;
            return;
        }
        let cols = self.array.cols();
        let mut cycles = 0u64;
        let mut e_acc = self.stats.energy_pj;
        for i in instrs {
            cycles += self.timing.cycles(i);
            e_acc += self.energy.energy_pj(i, cols);
            self.stats.counts.record(i);
        }
        self.stats.energy_pj = e_acc;
        self.stats.cycles += cycles;
    }

    /// Builds one fused group's [`GroupCost`](crate::program::GroupCost)
    /// under the live cost models (the emission-path counterpart of the
    /// compiler's cost interning), reusing the caller's buffer.
    pub(crate) fn fill_emit_group_cost(
        &self,
        instrs: &[Instruction],
        gc: &mut crate::program::GroupCost,
    ) {
        let cols = self.array.cols();
        gc.cycles = 0;
        gc.counts = crate::stats::InstrCounts::default();
        gc.energy.clear();
        for i in instrs {
            gc.cycles += self.timing.cycles(i);
            gc.energy.push(self.energy.energy_pj(i, cols));
            gc.counts.record(i);
        }
    }

    // ---- fused superop executors ------------------------------------------
    //
    // Each executes one recognized instruction group in a single pass over
    // the storage words, leaving rows, predicate latches, and the zero
    // flag exactly as per-instruction execution would. All return `false`
    // (caller falls back to the generic instruction range) when the
    // current tile mask disables any tile — the fused derivations assume
    // `mask_cols` is all-enabled, which also makes them tail-safe (the
    // mask words carry zero tail bits).

    /// Fused add-B step: `c1,s1 = Sum&B, Sum⊕B; Carry <<= 1;
    /// c2,Sum = Carry&s1, Carry⊕s1; Carry = c1|c2`, optionally gated
    /// per-tile by the predicate latches (`IfSet`).
    pub(crate) fn exec_addb(&mut self, op: &crate::program::AddBOp) -> bool {
        if self.n_masked_off != 0 {
            self.fastpath.fallbacks += 1;
            return false;
        }
        let Some([sum, carry, t_sum, t_carry, b]) = self.array.rows_disjoint_mut([
            usize::from(op.sum),
            usize::from(op.carry),
            usize::from(op.t_sum),
            usize::from(op.t_carry),
            usize::from(op.b),
        ]) else {
            self.fastpath.fallbacks += 1;
            return false;
        };
        crate::wordkern::addb(
            sum.words_mut(),
            carry.words_mut(),
            t_sum.words_mut(),
            t_carry.words_mut(),
            b.words(),
            self.mask_cols.words(),
            self.pred_mask.words(),
            op.pred == PredMode::IfSet,
        );
        self.fastpath.superops_fused += 1;
        true
    }

    /// Fused Montgomery halve step: latch the per-tile LSB predicate from
    /// `Sum`, add `M` in odd tiles, and halve the carry-save pair.
    pub(crate) fn exec_halve(&mut self, op: &crate::program::HalveOp) -> bool {
        if self.n_masked_off != 0 {
            self.fastpath.fallbacks += 1;
            return false;
        }
        // The Check's predicate latch, from the pre-instruction Sum.
        self.latch_preds(usize::from(op.sum), 0);
        let Some([sum, carry, t_sum, t_carry, m]) = self.array.rows_disjoint_mut([
            usize::from(op.sum),
            usize::from(op.carry),
            usize::from(op.t_sum),
            usize::from(op.t_carry),
            usize::from(op.modulus),
        ]) else {
            self.fastpath.fallbacks += 1;
            return false;
        };
        crate::wordkern::halve(
            sum.words_mut(),
            carry.words_mut(),
            t_sum.words_mut(),
            t_carry.words_mut(),
            m.words(),
            self.pred_mask.words(),
            self.shr_keep.words(),
        );
        self.fastpath.superops_fused += 1;
        true
    }

    /// Fused multiplier chain: a run of add-B and halve steps over one
    /// accumulator row set (the inner loop of Algorithm 2), with the rows
    /// borrowed once and every step executed word-level. Rows of up to
    /// four chunks run the whole chain register-resident; wider rows run
    /// the per-step kernels under the single borrow. The per-step
    /// statistics are applied by the caller in emission order.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn exec_chain(
        &mut self,
        sum: u16,
        carry: u16,
        t_sum: u16,
        t_carry: u16,
        b: u16,
        modulus: u16,
        steps: &[crate::program::ChainStep],
    ) -> bool {
        if self.n_masked_off != 0 {
            self.fastpath.fallbacks += 1;
            return false;
        }
        let Some([sum, carry, t_sum, t_carry, b, m]) = self.array.rows_disjoint_mut([
            usize::from(sum),
            usize::from(carry),
            usize::from(t_sum),
            usize::from(t_carry),
            usize::from(b),
            usize::from(modulus),
        ]) else {
            self.fastpath.fallbacks += 1;
            return false;
        };
        let sw = sum.words_mut();
        let cw = carry.words_mut();
        let tsw = t_sum.words_mut();
        let tcw = t_carry.words_mut();
        let bw = b.words();
        let m_words = m.words();
        if crate::wordkern::chain_resident(
            self.fast_path,
            sw,
            cw,
            tsw,
            tcw,
            bw,
            m_words,
            self.pred_mask.words_mut(),
            self.shr_keep.words(),
            steps,
            &self.tile_base_mask,
            self.tile_width,
        ) {
            self.fastpath.chains_resident += 1;
            return true;
        }
        let mw = self.mask_cols.words();
        let shr = self.shr_keep.words();
        for step in steps {
            match *step {
                crate::program::ChainStep::AddB(pred) => {
                    crate::wordkern::addb(
                        sw,
                        cw,
                        tsw,
                        tcw,
                        bw,
                        mw,
                        self.pred_mask.words(),
                        pred == PredMode::IfSet,
                    );
                }
                crate::program::ChainStep::Halve => {
                    // Inline predicate latch (the Check inside the halve
                    // pattern), reading Sum through the held borrow.
                    crate::wordkern::latch_tile_bit(
                        &self.tile_base_mask,
                        self.tile_width,
                        sw,
                        0,
                        self.pred_mask.words_mut(),
                    );
                    crate::wordkern::halve(sw, cw, tsw, tcw, m_words, self.pred_mask.words(), shr);
                }
            }
        }
        self.fastpath.chains_per_step += 1;
        true
    }

    /// Fully fused carry-resolution loop: rows borrowed once, each round
    /// a zero test plus one word pass (register-resident up to four
    /// chunks). Returns the number of executed rounds, or `None` when the
    /// tile mask forces the generic path.
    pub(crate) fn exec_resolve_loop(
        &mut self,
        s: u16,
        c: u16,
        max_checks: usize,
        check_cycles: u64,
        check_energy: f64,
        round_cost: &crate::program::GroupCost,
    ) -> Option<usize> {
        if self.n_masked_off != 0 {
            self.fastpath.fallbacks += 1;
            return None;
        }
        let Some([s, c]) = self
            .array
            .rows_disjoint_mut([usize::from(s), usize::from(c)])
        else {
            self.fastpath.fallbacks += 1;
            return None;
        };
        let shl = self.shl_keep.words();
        let sw = s.words_mut();
        let cw = c.words_mut();
        if let Some((bodies, checks, converged)) =
            crate::wordkern::resolve_loop_resident(self.fast_path, sw, cw, shl, max_checks)
        {
            self.fastpath.resolve_loops_resident += 1;
            self.finish_fused_loop(
                bodies,
                checks,
                converged,
                check_cycles,
                check_energy,
                round_cost,
            );
            return Some(bodies);
        }
        let mut bodies = 0usize;
        let mut checks = 0u64;
        let mut converged = false;
        for _ in 0..max_checks {
            checks += 1;
            if cw.iter().all(|&w| w == 0) {
                converged = true;
                break;
            }
            crate::wordkern::resolve_round(sw, cw, shl);
            bodies += 1;
        }
        self.fastpath.resolve_loops_per_step += 1;
        self.finish_fused_loop(
            bodies,
            checks,
            converged,
            check_cycles,
            check_energy,
            round_cost,
        );
        Some(bodies)
    }

    /// Applies a fused resolution loop's outcome: the zero flag and the
    /// statistics, with the energy values added in exactly the order
    /// per-instruction execution interleaves them (one check per
    /// iteration, round energies per body, final check iff converged), so
    /// the floating-point accumulator stays bit-identical. Shared by the
    /// register-resident fast paths and the per-round fallback loops —
    /// this sequence is the replay/emit Stats contract; keep it in one
    /// place.
    fn finish_fused_loop(
        &mut self,
        bodies: usize,
        checks: u64,
        converged: bool,
        check_cycles: u64,
        check_energy: f64,
        round_cost: &crate::program::GroupCost,
    ) {
        self.zero_flag = converged;
        debug_assert!(converged, "resolution loop must converge within max_checks");
        if !self.costed {
            self.native_clock += checks + bodies as u64 * round_cost.counts.total();
            return;
        }
        let mut e_acc = self.stats.energy_pj;
        for _ in 0..bodies {
            e_acc += check_energy;
            for &e in &round_cost.energy {
                e_acc += e;
            }
        }
        if converged {
            e_acc += check_energy;
        }
        self.stats.energy_pj = e_acc;
        self.stats.cycles += checks * check_cycles + bodies as u64 * round_cost.cycles;
        self.stats.counts.check_zero += checks;
        self.stats.counts += round_cost.counts.scaled(bodies as u64);
    }

    /// Fully fused borrow-resolution loop: the three rows borrowed once,
    /// the live row alternating between `live` and `other` per round
    /// (register-resident up to four chunks). Returns the executed round
    /// count (the caller runs the odd-parity epilogue), or `None` when
    /// the tile mask forces the generic path.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn exec_borrow_loop(
        &mut self,
        live: u16,
        other: u16,
        t: u16,
        max_checks: usize,
        check_cycles: u64,
        check_energy: f64,
        round_cost: &crate::program::GroupCost,
    ) -> Option<usize> {
        if self.n_masked_off != 0 {
            self.fastpath.fallbacks += 1;
            return None;
        }
        let Some([live, other, t]) =
            self.array
                .rows_disjoint_mut([usize::from(live), usize::from(other), usize::from(t)])
        else {
            self.fastpath.fallbacks += 1;
            return None;
        };
        let shl = self.shl_keep.words();
        let mut cur = live.words_mut();
        let mut nxt = other.words_mut();
        let tw = t.words_mut();
        if let Some((bodies, checks, converged)) =
            crate::wordkern::borrow_loop_resident(self.fast_path, cur, nxt, tw, shl, max_checks)
        {
            self.fastpath.borrow_loops_resident += 1;
            self.finish_fused_loop(
                bodies,
                checks,
                converged,
                check_cycles,
                check_energy,
                round_cost,
            );
            return Some(bodies);
        }
        let mut bodies = 0usize;
        let mut checks = 0u64;
        let mut converged = false;
        for _ in 0..max_checks {
            checks += 1;
            if tw.iter().all(|&w| w == 0) {
                converged = true;
                break;
            }
            crate::wordkern::borrow_round(cur, nxt, tw, shl);
            std::mem::swap(&mut cur, &mut nxt);
            bodies += 1;
        }
        self.fastpath.borrow_loops_per_step += 1;
        self.finish_fused_loop(
            bodies,
            checks,
            converged,
            check_cycles,
            check_energy,
            round_cost,
        );
        Some(bodies)
    }

    /// Fused carry-resolution round: `Carry <<= 1 (masked);
    /// Carry, Sum = Sum∧Carry, Sum⊕Carry`.
    pub(crate) fn exec_resolve_round(&mut self, op: &crate::program::ResolveRoundOp) -> bool {
        if self.n_masked_off != 0 {
            self.fastpath.fallbacks += 1;
            return false;
        }
        let Some([s, c]) = self
            .array
            .rows_disjoint_mut([usize::from(op.s), usize::from(op.c)])
        else {
            self.fastpath.fallbacks += 1;
            return false;
        };
        crate::wordkern::resolve_round(s.words_mut(), c.words_mut(), self.shl_keep.words());
        self.fastpath.superops_fused += 1;
        true
    }

    /// Fused borrow-resolution round: `B <<= 1 (masked);
    /// s_other = s_cur ⊕ B; B = s_other ∧ B`.
    pub(crate) fn exec_borrow_round(&mut self, op: &crate::program::BorrowRoundOp) -> bool {
        if self.n_masked_off != 0 {
            self.fastpath.fallbacks += 1;
            return false;
        }
        self.scratch_a
            .copy_from(self.array.row(usize::from(op.s_cur)));
        let Some([s_other, b]) = self
            .array
            .rows_disjoint_mut([usize::from(op.s_other), usize::from(op.b)])
        else {
            self.fastpath.fallbacks += 1;
            return false;
        };
        crate::wordkern::borrow_round(
            self.scratch_a.words(),
            s_other.words_mut(),
            b.words_mut(),
            self.shl_keep.words(),
        );
        self.fastpath.superops_fused += 1;
        true
    }

    // ---- fused epilogue superop executors ---------------------------------
    //
    // The butterfly epilogues (conditional subtraction, sign-fix, modular
    // add/select) are straight-line shapes the compiler fuses like the
    // Algorithm 2 cores above: one pass over the storage words per group,
    // same `false`-on-tile-mask fallback contract.

    /// Fused carry-save add initiator: one dual write-back `Binary`
    /// (`d_and, d_xor = a ∧ b, a ⊕ b`) executed as a single pass.
    pub(crate) fn exec_csadd(&mut self, op: &crate::program::CsAddOp) -> bool {
        if self.n_masked_off != 0 {
            self.fastpath.fallbacks += 1;
            return false;
        }
        let Some([da, dx, a, b]) = self.array.rows_disjoint_mut([
            usize::from(op.d_and),
            usize::from(op.d_xor),
            usize::from(op.a),
            usize::from(op.b),
        ]) else {
            self.fastpath.fallbacks += 1;
            return false;
        };
        crate::wordkern::csadd(da.words_mut(), dx.words_mut(), a.words(), b.words());
        self.fastpath.superops_fused += 1;
        true
    }

    /// Fused borrow-save subtract initiator: `ts = x ⊕ y; tc = ts ∧ y`.
    pub(crate) fn exec_subinit(&mut self, op: &crate::program::SubInitOp) -> bool {
        if self.n_masked_off != 0 {
            self.fastpath.fallbacks += 1;
            return false;
        }
        let Some([ts, tc, x, y]) = self.array.rows_disjoint_mut([
            usize::from(op.t_sum),
            usize::from(op.t_carry),
            usize::from(op.x),
            usize::from(op.y),
        ]) else {
            self.fastpath.fallbacks += 1;
            return false;
        };
        crate::wordkern::subinit(ts.words_mut(), tc.words_mut(), x.words(), y.words());
        self.fastpath.superops_fused += 1;
        true
    }

    /// Fused conditional select (`add_mod` epilogue): latch the predicate
    /// from `check_src`, then `dst ← a` in pred-set tiles, `dst ← b` in
    /// pred-clear tiles.
    pub(crate) fn exec_condsel(&mut self, op: &crate::program::CondSelOp) -> bool {
        if self.n_masked_off != 0 {
            self.fastpath.fallbacks += 1;
            return false;
        }
        // The Check happens first in emission; only reads, so any aliasing
        // with the select rows is benign.
        self.latch_preds(usize::from(op.check_src), usize::from(op.bit));
        let Some([dst, a, b]) = self.array.rows_disjoint_mut([
            usize::from(op.dst),
            usize::from(op.a),
            usize::from(op.b),
        ]) else {
            self.fastpath.fallbacks += 1;
            return false;
        };
        crate::wordkern::cond_select(
            dst.words_mut(),
            a.words(),
            b.words(),
            self.mask_cols.words(),
            self.pred_mask.words(),
        );
        self.fastpath.superops_fused += 1;
        true
    }

    /// Fused conditional copy (`cond_sub_q` epilogue): latch the predicate
    /// from `check_src`, then a pred-gated `dst ← src` copy.
    pub(crate) fn exec_condcopy(&mut self, op: &crate::program::CondCopyOp) -> bool {
        if self.n_masked_off != 0 {
            self.fastpath.fallbacks += 1;
            return false;
        }
        self.latch_preds(usize::from(op.check_src), usize::from(op.bit));
        let Some([dst, src]) = self
            .array
            .rows_disjoint_mut([usize::from(op.dst), usize::from(op.src)])
        else {
            self.fastpath.fallbacks += 1;
            return false;
        };
        crate::wordkern::masked_copy(
            dst.words_mut(),
            src.words(),
            self.mask_cols.words(),
            self.pred_mask.words(),
            op.pred == PredMode::IfSet,
        );
        self.fastpath.superops_fused += 1;
        true
    }

    /// Fused sign-fix (`sub_mod`): latch the difference's sign bit, build
    /// `c ← M`-in-negative-tiles, and apply the carry-save `+q` layer in
    /// one pass.
    pub(crate) fn exec_signfix(&mut self, op: &crate::program::SignFixOp) -> bool {
        if self.n_masked_off != 0 {
            self.fastpath.fallbacks += 1;
            return false;
        }
        // Check(s, bit) reads s before the pass modifies it.
        self.latch_preds(usize::from(op.s), usize::from(op.bit));
        let Some([s, c, tc, m]) = self.array.rows_disjoint_mut([
            usize::from(op.s),
            usize::from(op.c),
            usize::from(op.t_carry),
            usize::from(op.modulus),
        ]) else {
            self.fastpath.fallbacks += 1;
            return false;
        };
        crate::wordkern::signfix(
            s.words_mut(),
            c.words_mut(),
            tc.words_mut(),
            m.words(),
            self.mask_cols.words(),
            self.pred_mask.words(),
        );
        self.fastpath.superops_fused += 1;
        true
    }

    /// The active timing model.
    #[must_use]
    pub fn timing_model(&self) -> &TimingModel {
        &self.timing
    }

    /// The active energy model.
    #[must_use]
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// True when every tile's write-back is currently enabled.
    #[must_use]
    pub fn all_tiles_enabled(&self) -> bool {
        self.n_masked_off == 0
    }

    /// Writes one data row in place through the normal SRAM write port
    /// without allocating (costed identically to [`Self::load_data_row`]).
    pub(crate) fn load_data_row_ref(&mut self, r: usize, data: &BitRow) {
        self.array.row_mut(r).copy_from(data);
        if self.costed {
            self.stats.row_loads += 1;
            self.stats.cycles += self.timing.row_io;
            self.stats.energy_pj += self.energy.row_io_pj(self.array.cols());
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// [`SramError::RowOutOfRange`] for bad row addresses and
    /// [`SramError::CheckBitOutOfRange`] for a `Check` outside the tile.
    pub fn execute(&mut self, instr: &Instruction) -> Result<(), SramError> {
        if self.costed {
            self.stats.cycles += self.timing.cycles(instr);
            self.stats.energy_pj += self.energy.energy_pj(instr, self.array.cols());
        }
        self.validate_instr(instr)?;
        self.apply_instr(instr);
        Ok(())
    }

    /// Executes a straight-line program.
    ///
    /// # Errors
    ///
    /// Stops at — and returns — the first instruction error.
    pub fn run(&mut self, program: &Program) -> Result<(), SramError> {
        for i in program.instructions() {
            self.execute(i)?;
        }
        Ok(())
    }
}

// The word-level kernel bodies — add-B, Montgomery halve, carry/borrow
// resolution rounds, and the fused epilogue passes — live in
// [`crate::wordkern`], which dispatches each between an explicit AVX2 path
// and a bit-identical scalar fallback.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::RowAddr;

    fn controller(rows: usize, cols: usize, w: usize) -> Controller {
        Controller::new(SramArray::new(rows, cols).unwrap(), w).unwrap()
    }

    fn row_with(cols: usize, w: usize, words: &[u64]) -> BitRow {
        let mut r = BitRow::zero(cols);
        for (t, &v) in words.iter().enumerate() {
            r.set_tile_word(t, w, v);
        }
        r
    }

    #[test]
    fn rejects_bad_tile_width() {
        assert!(Controller::new(SramArray::new(8, 64).unwrap(), 0).is_err());
        assert!(Controller::new(SramArray::new(8, 64).unwrap(), 48).is_err());
        assert!(Controller::new(SramArray::new(8, 64).unwrap(), 16).is_ok());
        // Tile words are at most 64 bits everywhere in the ISA; the
        // predicate latch relies on it.
        assert!(Controller::new(SramArray::new(8, 128).unwrap(), 128).is_err());
        assert!(Controller::new(SramArray::new(8, 128).unwrap(), 64).is_ok());
    }

    #[test]
    fn check_latches_per_tile_predicates() {
        let mut c = controller(4, 64, 16);
        c.load_data_row(0, row_with(64, 16, &[1, 0, 1, 0]));
        c.execute(&Instruction::Check {
            src: RowAddr(0),
            bit: 0,
        })
        .unwrap();
        assert_eq!(
            (c.pred(0), c.pred(1), c.pred(2), c.pred(3)),
            (true, false, true, false)
        );
    }

    #[test]
    fn check_bit_out_of_tile_errors() {
        let mut c = controller(4, 64, 16);
        assert!(matches!(
            c.execute(&Instruction::Check {
                src: RowAddr(0),
                bit: 16
            }),
            Err(SramError::CheckBitOutOfRange { .. })
        ));
    }

    #[test]
    fn predicated_write_only_touches_selected_tiles() {
        let mut c = controller(4, 64, 16);
        c.load_data_row(0, row_with(64, 16, &[1, 0, 1, 0])); // predicates
        c.load_data_row(1, row_with(64, 16, &[7, 7, 7, 7])); // source
        c.load_data_row(2, row_with(64, 16, &[9, 9, 9, 9])); // destination
        c.execute(&Instruction::Check {
            src: RowAddr(0),
            bit: 0,
        })
        .unwrap();
        c.execute(&Instruction::Unary {
            dst: RowAddr(2),
            src: RowAddr(1),
            kind: UnaryKind::Copy,
            pred: PredMode::IfSet,
        })
        .unwrap();
        let r = c.peek_row(2);
        assert_eq!(
            [
                r.tile_word(0, 16),
                r.tile_word(1, 16),
                r.tile_word(2, 16),
                r.tile_word(3, 16)
            ],
            [7, 9, 7, 9]
        );
        // Complementary predicate covers the rest.
        c.execute(&Instruction::Unary {
            dst: RowAddr(2),
            src: RowAddr(1),
            kind: UnaryKind::Zero,
            pred: PredMode::IfClear,
        })
        .unwrap();
        let r = c.peek_row(2);
        assert_eq!(
            [
                r.tile_word(0, 16),
                r.tile_word(1, 16),
                r.tile_word(2, 16),
                r.tile_word(3, 16)
            ],
            [7, 0, 7, 0]
        );
    }

    #[test]
    fn tile_mask_gates_writes() {
        let mut c = controller(4, 64, 16);
        c.load_data_row(0, row_with(64, 16, &[1, 2, 3, 4]));
        c.execute(&Instruction::MaskTiles {
            stride_log2: 0,
            phase: false,
        })
        .unwrap();
        // Tiles 0 and 2 enabled ((t>>0)&1 == 0).
        c.execute(&Instruction::Unary {
            dst: RowAddr(1),
            src: RowAddr(0),
            kind: UnaryKind::Copy,
            pred: PredMode::Always,
        })
        .unwrap();
        let r = c.peek_row(1);
        assert_eq!(
            [
                r.tile_word(0, 16),
                r.tile_word(1, 16),
                r.tile_word(2, 16),
                r.tile_word(3, 16)
            ],
            [1, 0, 3, 0]
        );
        c.execute(&Instruction::MaskAll).unwrap();
        c.execute(&Instruction::Unary {
            dst: RowAddr(1),
            src: RowAddr(0),
            kind: UnaryKind::Copy,
            pred: PredMode::Always,
        })
        .unwrap();
        assert_eq!(c.peek_row(1), c.peek_row(0));
    }

    #[test]
    fn binary_dual_writeback_uses_one_activation() {
        let mut c = controller(8, 64, 32);
        c.load_data_row(0, row_with(64, 32, &[0b1100, 0b1111]));
        c.load_data_row(1, row_with(64, 32, &[0b1010, 0b0001]));
        // dst overlaps an operand: the second write-back must still see the
        // original operands.
        c.execute(&Instruction::Binary {
            dst: RowAddr(0), // overwrite src0 with AND
            op: BitOp::And,
            src0: RowAddr(0),
            src1: RowAddr(1),
            dst2: Some((RowAddr(2), BitOp::Xor)),
            shift: None,
            pred: PredMode::Always,
        })
        .unwrap();
        assert_eq!(c.peek_row(0).tile_word(0, 32), 0b1000);
        assert_eq!(
            c.peek_row(2).tile_word(0, 32),
            0b0110,
            "XOR of the *original* rows"
        );
        assert_eq!(c.peek_row(2).tile_word(1, 32), 0b1110);
        assert_eq!(c.stats().counts.binary, 1);
        assert_eq!(c.stats().counts.second_writebacks, 1);
    }

    #[test]
    fn fused_shift_applies_to_primary_result() {
        let mut c = controller(8, 64, 32);
        c.load_data_row(0, row_with(64, 32, &[0b0110, 0]));
        c.load_data_row(1, row_with(64, 32, &[0b0000, 0]));
        c.execute(&Instruction::Binary {
            dst: RowAddr(2),
            op: BitOp::Or,
            src0: RowAddr(0),
            src1: RowAddr(1),
            dst2: None,
            shift: Some((ShiftDir::Right, false)),
            pred: PredMode::Always,
        })
        .unwrap();
        assert_eq!(c.peek_row(2).tile_word(0, 32), 0b0011);
        assert_eq!(c.stats().counts.fused_shifts, 1);
    }

    #[test]
    fn zero_flag_reflects_row_contents() {
        let mut c = controller(4, 64, 32);
        c.execute(&Instruction::CheckZero { src: RowAddr(1) })
            .unwrap();
        assert!(c.zero_flag());
        c.load_data_row(1, row_with(64, 32, &[0, 1]));
        c.execute(&Instruction::CheckZero { src: RowAddr(1) })
            .unwrap();
        assert!(!c.zero_flag());
    }

    #[test]
    fn costs_accumulate() {
        let mut c = controller(4, 64, 32);
        c.load_data_row(0, row_with(64, 32, &[5, 6]));
        c.execute(&Instruction::Shift {
            dst: RowAddr(1),
            src: RowAddr(0),
            dir: ShiftDir::Left,
            masked: true,
            pred: PredMode::Always,
        })
        .unwrap();
        let s = c.stats();
        assert_eq!(s.cycles, 2, "1 row load + 1 shift at the paper timing");
        assert!(s.energy_pj > 0.0);
        assert_eq!(s.row_loads, 1);
        assert_eq!(s.counts.shift, 1);
    }

    #[test]
    fn out_of_range_rows_error() {
        let mut c = controller(4, 64, 32);
        assert!(matches!(
            c.execute(&Instruction::CheckZero { src: RowAddr(4) }),
            Err(SramError::RowOutOfRange { row: 4, rows: 4 })
        ));
    }
}
