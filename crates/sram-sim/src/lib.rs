//! Bit-accurate in-SRAM computing simulator for the BP-NTT reproduction.
//!
//! The BP-NTT paper repurposes 6T SRAM subarrays as vector compute units:
//! activating two wordlines simultaneously makes each column's sense
//! amplifier read a boolean function of the two stored bits (AND on the
//! bitline, NOR on its complement; XOR/OR by combining them — Fig. 3), and
//! a small modification to the sense amplifiers (a latch and a MUX,
//! Fig. 5(b)) adds a one-bit bidirectional shift on write-back. This crate
//! simulates that substrate exactly at the bit level:
//!
//! * [`bitrow`] — rows of bits with the peripheral operations (logic,
//!   global and tile-masked 1-bit shifts);
//! * [`array`] — the subarray with dual-wordline [`SramArray::sense`];
//! * [`isa`] — the paper's `Check`/`Unary`/`Shift`/`Binary` instruction
//!   classes (Fig. 4(d)) with a binary encoding, plus the predication /
//!   zero-detect / tile-mask facilities its dataflow implies;
//! * [`exec`] — the [`Controller`] that executes programs and accounts
//!   costs;
//! * [`program`] — the compile-once/replay-many layer: record a kernel's
//!   instruction stream once ([`Recorder`]), validate and cost it once
//!   ([`ReplayProgram::compile`], with superop fusion), replay it many
//!   times ([`Controller::run_compiled`]) bit-identically to emission;
//! * [`wordkern`] — the vectorized word-engine behind both paths: chunked
//!   storage kernels with runtime-dispatched AVX2 implementations and a
//!   bit-identical scalar fallback (`BPNTT_FORCE_SCALAR=1` pins it);
//! * [`cost`] — calibrated per-instruction timing and energy models;
//! * [`geometry`] — 45 nm area and frequency models reproducing Table I's
//!   0.063 mm² / 3.8 GHz and the <2% overhead claim;
//! * [`stats`] — cycle/energy/instruction statistics.
//!
//! The accelerator logic itself (data layout, Algorithm 2 code generation,
//! NTT scheduling) lives in `bpntt-core`; this crate knows nothing about
//! number theory.
//!
//! # Example
//!
//! ```
//! use bpntt_sram::{BitOp, BitRow, Controller, Instruction, PredMode, RowAddr, SramArray};
//!
//! // Eight 32-bit tiles in a 256-column array, exactly Fig. 5(a).
//! let mut ctl = Controller::new(SramArray::new(256, 256)?, 32)?;
//! let mut a = BitRow::zero(256);
//! let mut b = BitRow::zero(256);
//! for t in 0..8 {
//!     a.set_tile_word(t, 32, 100 + t as u64); // eight independent words
//!     b.set_tile_word(t, 32, 7);
//! }
//! ctl.load_data_row(0, a);
//! ctl.load_data_row(1, b);
//! // One activation computes carry and sum half-adders in every tile.
//! ctl.execute(&Instruction::Binary {
//!     dst: RowAddr(2),
//!     op: BitOp::And,
//!     src0: RowAddr(0),
//!     src1: RowAddr(1),
//!     dst2: Some((RowAddr(3), BitOp::Xor)),
//!     shift: None,
//!     pred: PredMode::Always,
//! })?;
//! assert_eq!(ctl.peek_row(2).tile_word(3, 32), 103 & 7);
//! assert_eq!(ctl.peek_row(3).tile_word(3, 32), 103 ^ 7);
//! # Ok::<(), bpntt_sram::SramError>(())
//! ```

// Unsafe is denied crate-wide and re-allowed only inside `wordkern`, whose
// AVX2 paths need raw-pointer vector loads/stores (each documented with a
// SAFETY comment and covered by scalar-equivalence tests).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod bitrow;
pub mod cost;
pub mod error;
pub mod exec;
pub mod fault;
pub mod geometry;
pub mod isa;
pub mod program;
pub mod stats;
pub mod wordkern;

pub use array::{SenseResult, SramArray};
pub use bitrow::BitRow;
pub use cost::{EnergyModel, TimingModel};
pub use error::SramError;
pub use exec::Controller;
pub use fault::{FaultPlan, FaultStats};
pub use geometry::{AreaBreakdown, AreaModel, ArrayGeometry, FrequencyModel};
pub use isa::{BitOp, Instruction, PredMode, Program, RowAddr, ShiftDir, UnaryKind};
pub use program::{
    CompiledProgram, FusedSink, InstrSink, Recorder, ReplayOp, ReplayProgram, ZeroLoopSpec,
};
pub use stats::{FastPathStats, InstrCounts, Stats};
pub use wordkern::{force_scalar, simd_active, FastPathKind};
