//! The SRAM subarray: a grid of bits with dual-wordline sensing.

use crate::bitrow::BitRow;
use crate::error::SramError;

/// Result of activating two rows simultaneously: every boolean function the
/// modified sense amplifiers of Fig. 5(b) can produce in one access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SenseResult {
    /// Bitline AND.
    pub and: BitRow,
    /// Complementary-bitline NOR.
    pub nor: BitRow,
    /// OR (inverter after NOR).
    pub or: BitRow,
    /// XOR (combination of AND and NOR, Fig. 3(b)).
    pub xor: BitRow,
}

impl SenseResult {
    /// An all-zero result buffer of the given width, for reuse with
    /// [`SramArray::sense_into`].
    ///
    /// # Panics
    ///
    /// Panics if `cols` is zero.
    #[must_use]
    pub fn zero(cols: usize) -> Self {
        SenseResult {
            and: BitRow::zero(cols),
            nor: BitRow::zero(cols),
            or: BitRow::zero(cols),
            xor: BitRow::zero(cols),
        }
    }
}

/// A `rows × cols` 6T SRAM subarray.
///
/// # Example
///
/// ```
/// use bpntt_sram::{BitRow, SramArray};
///
/// let mut a = SramArray::new(256, 256)?;
/// let mut r = BitRow::zero(256);
/// r.set_tile_word(0, 32, 0b1100);
/// a.write_row(2, r);
/// let mut s = BitRow::zero(256);
/// s.set_tile_word(0, 32, 0b1010);
/// a.write_row(3, s);
/// let sense = a.sense(2, 3);
/// assert_eq!(sense.and.tile_word(0, 32), 0b1000);
/// assert_eq!(sense.xor.tile_word(0, 32), 0b0110);
/// # Ok::<(), bpntt_sram::SramError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SramArray {
    rows: Vec<BitRow>,
    cols: usize,
}

impl SramArray {
    /// Creates a zero-initialized array.
    ///
    /// # Errors
    ///
    /// [`SramError::BadGeometry`] when either dimension is zero or the
    /// height exceeds the ISA's 10-bit row address space (1024 rows).
    pub fn new(rows: usize, cols: usize) -> Result<Self, SramError> {
        if rows == 0 || cols == 0 {
            return Err(SramError::BadGeometry {
                rows,
                cols,
                reason: "dimensions must be nonzero",
            });
        }
        if rows > 1024 {
            return Err(SramError::BadGeometry {
                rows,
                cols,
                reason: "row address space is 10 bits (max 1024 rows)",
            });
        }
        Ok(SramArray {
            rows: vec![BitRow::zero(cols); rows],
            cols,
        })
    }

    /// Array height in rows.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Array width in columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrows a row.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range (row addresses are validated when
    /// programs are built; an out-of-range access here is a programming
    /// error, like slice indexing).
    #[inline]
    #[must_use]
    pub fn row(&self, r: usize) -> &BitRow {
        &self.rows[r]
    }

    /// Mutably borrows a row (used by the allocation-free controller fast
    /// path to write results in place).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[inline]
    #[must_use]
    pub fn row_mut(&mut self, r: usize) -> &mut BitRow {
        &mut self.rows[r]
    }

    /// Mutably borrows `N` pairwise-distinct rows at once (used by the
    /// fused superop executors). Returns `None` when indices repeat or
    /// fall out of range.
    pub(crate) fn rows_disjoint_mut<const N: usize>(
        &mut self,
        idx: [usize; N],
    ) -> Option<[&mut BitRow; N]> {
        self.rows.get_disjoint_mut(idx).ok()
    }

    /// Overwrites a row.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range or the row width differs.
    pub fn write_row(&mut self, r: usize, data: BitRow) {
        assert_eq!(data.cols(), self.cols, "row width mismatch");
        self.rows[r] = data;
    }

    /// Activates rows `r0` and `r1` together and returns every sense-amp
    /// output (the core in-SRAM computing primitive).
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range.
    #[must_use]
    pub fn sense(&self, r0: usize, r1: usize) -> SenseResult {
        let a = &self.rows[r0];
        let b = &self.rows[r1];
        let and = a.and(b);
        let nor = a.nor(b);
        let or = a.or(b);
        let xor = a.xor(b);
        SenseResult { and, nor, or, xor }
    }

    /// Allocation-free [`Self::sense`]: fills a reusable [`SenseResult`]
    /// buffer instead of building a fresh one.
    ///
    /// # Panics
    ///
    /// Panics if either row is out of range or the buffer width differs.
    pub fn sense_into(&self, r0: usize, r1: usize, out: &mut SenseResult) {
        let a = &self.rows[r0];
        let b = &self.rows[r1];
        out.and.assign_and(a, b);
        out.nor.assign_nor(a, b);
        out.or.assign_or(a, b);
        out.xor.assign_xor(a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_validation() {
        assert!(SramArray::new(0, 8).is_err());
        assert!(SramArray::new(8, 0).is_err());
        assert!(SramArray::new(2048, 8).is_err());
        let a = SramArray::new(256, 256).unwrap();
        assert_eq!(a.rows(), 256);
        assert_eq!(a.cols(), 256);
    }

    #[test]
    fn sense_produces_consistent_functions() {
        let mut a = SramArray::new(4, 64).unwrap();
        let mut r0 = BitRow::zero(64);
        let mut r1 = BitRow::zero(64);
        r0.set_tile_word(0, 64, 0xFF00_F0F0_1234_5678);
        r1.set_tile_word(0, 64, 0x0FF0_FF00_8765_4321);
        a.write_row(0, r0.clone());
        a.write_row(1, r1.clone());
        let s = a.sense(0, 1);
        assert_eq!(s.and, r0.and(&r1));
        assert_eq!(s.or, r0.or(&r1));
        assert_eq!(s.xor, r0.xor(&r1));
        assert_eq!(s.nor, r0.nor(&r1));
        // De Morgan consistency between the four outputs.
        assert_eq!(s.or.not(), s.nor);
        assert_eq!(s.xor, s.or.and(&s.and.not()));
    }

    #[test]
    fn sense_into_matches_sense() {
        let mut a = SramArray::new(4, 100).unwrap();
        let mut r0 = BitRow::zero(100);
        let mut r1 = BitRow::zero(100);
        for c in (0..100).step_by(3) {
            r0.set_bit(c, true);
        }
        for c in (0..100).step_by(5) {
            r1.set_bit(c, true);
        }
        a.write_row(0, r0);
        a.write_row(1, r1);
        let mut buf = SenseResult::zero(100);
        // Pre-dirty the buffer to prove it is fully overwritten.
        buf.and.set_bit(99, true);
        buf.nor.set_bit(0, true);
        a.sense_into(0, 1, &mut buf);
        assert_eq!(buf, a.sense(0, 1));
    }

    #[test]
    fn sensing_same_row_twice_reads_it() {
        let mut a = SramArray::new(4, 32).unwrap();
        let mut r = BitRow::zero(32);
        r.set_tile_word(0, 32, 0xA5A5_5A5A);
        a.write_row(2, r.clone());
        let s = a.sense(2, 2);
        assert_eq!(s.and, r, "AND of a row with itself is the row");
        assert_eq!(s.xor.count_ones(), 0);
    }
}
