//! Deterministic fault injection for the in-SRAM substrate.
//!
//! BP-NTT computes *inside* 6T SRAM subarrays — exactly the class of
//! compute-in-memory hardware where transient read upsets, stuck-at
//! cells, and dead wordlines are first-order reliability concerns. This
//! module models those failure modes as a seeded, fully deterministic
//! [`FaultPlan`] installed on a [`Controller`](crate::Controller):
//!
//! * **Transient bit-flips** — a one-shot inversion of one stored bit,
//!   modeling a read upset that corrupts the cell it sensed. Addressed
//!   (`(instruction index, row, bit)`) via [`FaultPlan::transient_at`],
//!   or drawn at a per-instruction rate via [`FaultPlan::transient_rate`]
//!   from the plan's seeded xorshift generator. A transient fires once
//!   and is consumed, so re-running the same computation (the recovery
//!   ladder's *retry* rung) observes clean state.
//! * **Stuck-at cells** — a cell pinned to 0 or 1
//!   ([`FaultPlan::stuck_at`]). Re-imposed at every injection point, so
//!   writes through the cell are overridden — retry does not help; the
//!   recovery ladder must *quarantine* the owning array.
//! * **Dead rows / wordlines** — an entire row reading as zero
//!   ([`FaultPlan::dead_row`]), the wordline-driver failure mode.
//! * **Hard faults** — [`FaultPlan::hard_fault_at`] panics the executing
//!   thread at a chosen instruction index, modeling the
//!   assertion-on-latch-up class of failures that takes down the whole
//!   array controller rather than corrupting data. The sharded engine's
//!   `catch_unwind` isolation converts this into a typed error.
//!
//! # Injection points and determinism
//!
//! Faults are applied by `Controller::fault_tick`, a single hook called
//! once per *instruction batch boundary* on every execution path —
//! compiled-program replay, fused emission, and strictly per-instruction
//! generic emission — plus every costed data-row load/read. The
//! instruction clock is `Stats::counts.total()`, which the bit-identity
//! contract guarantees is mode-independent, so an addressed fault at
//! instruction `i` lands at the first batch boundary where the clock has
//! passed `i` in *every* mode. Boundaries never fall inside a
//! zero-terminated resolution loop, so injected data corruption is
//! always presented to a *complete* subsequent computation (the loops'
//! `max_checks` convergence bound holds for arbitrary data states at
//! loop entry, not for mid-loop mutation).
//!
//! Rate-based draws use geometric skipping (O(faults), not
//! O(instructions)) from the plan's seed, so a given
//! `(seed, rate, execution trace)` always injects the same faults.
//!
//! When no plan is installed the hook is a single `Option` check;
//! [`Stats`](crate::Stats) are never touched by injection, so the
//! replay ≡ emission bit-identity contract is unaffected (and with an
//! empty plan the contract holds verbatim).

/// One addressed transient: flip `bit` of `row` once the instruction
/// clock reaches `at_instr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TransientAt {
    pub(crate) at_instr: u64,
    pub(crate) row: usize,
    pub(crate) bit: usize,
}

/// One stuck-at cell: `bit` of `row` always reads as `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StuckCell {
    pub(crate) row: usize,
    pub(crate) bit: usize,
    pub(crate) value: bool,
}

/// A seeded, deterministic description of the faults to inject into one
/// [`Controller`](crate::Controller). Build with the chained setters and
/// install with `Controller::install_fault_plan`; see the
/// [module docs](self) for the fault model.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    pub(crate) seed: u64,
    pub(crate) transients: Vec<TransientAt>,
    pub(crate) transient_rate: f64,
    pub(crate) stuck: Vec<StuckCell>,
    pub(crate) dead_rows: Vec<usize>,
    pub(crate) hard_fault_at: Option<u64>,
    /// Inclusive instruction-clock window outside which the plan is
    /// inert (see [`FaultPlan::active_between`]).
    pub(crate) active_lo: u64,
    pub(crate) active_hi: u64,
}

impl FaultPlan {
    /// An empty plan with the given RNG seed (used by rate-based
    /// transient draws and random flip placement).
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            transients: Vec::new(),
            transient_rate: 0.0,
            stuck: Vec::new(),
            dead_rows: Vec::new(),
            hard_fault_at: None,
            active_lo: 0,
            active_hi: u64::MAX,
        }
    }

    /// Adds an addressed transient: flip `bit` of `row` at the first
    /// batch boundary where the instruction clock has reached
    /// `at_instr`.
    #[must_use]
    pub fn transient_at(mut self, at_instr: u64, row: usize, bit: usize) -> Self {
        self.transients.push(TransientAt { at_instr, row, bit });
        self
    }

    /// Sets a per-instruction transient probability in `[0, 1]`: each
    /// executed instruction independently flips one uniformly chosen bit
    /// with probability `rate` (realized deterministically from the
    /// seed via geometric skipping).
    ///
    /// # Panics
    ///
    /// Panics when `rate` is not a probability.
    #[must_use]
    pub fn transient_rate(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate) && rate.is_finite(),
            "transient rate must lie in [0, 1]"
        );
        self.transient_rate = rate;
        self
    }

    /// Pins `bit` of `row` to `value` (re-imposed at every injection
    /// point, so writes through the cell are overridden).
    #[must_use]
    pub fn stuck_at(mut self, row: usize, bit: usize, value: bool) -> Self {
        self.stuck.push(StuckCell { row, bit, value });
        self
    }

    /// Kills an entire row: it reads as all-zero from the first
    /// injection point onward (a dead wordline).
    #[must_use]
    pub fn dead_row(mut self, row: usize) -> Self {
        self.dead_rows.push(row);
        self
    }

    /// Trips a controller panic at the first batch boundary where the
    /// instruction clock has reached `at_instr` — the hard-fault mode
    /// the sharded engine's `catch_unwind` isolation must contain.
    #[must_use]
    pub fn hard_fault_at(mut self, at_instr: u64) -> Self {
        self.hard_fault_at = Some(at_instr);
        self
    }

    /// Bounds the plan to the inclusive instruction-clock window
    /// `[instr_lo, instr_hi]`: outside it no fault of any kind fires and
    /// persistent (stuck-at / dead-row) state is *not* re-imposed — the
    /// substrate behaves as if fully repaired. This is how tests and
    /// chaos drills model a transient *burst* that should heal (and be
    /// healed from, by the scrubber) rather than permanent damage.
    ///
    /// Addressed transients and hard faults whose trigger index falls
    /// before `instr_lo` fire at the first boundary inside the window;
    /// ones still pending when the clock passes `instr_hi` expire
    /// silently.
    ///
    /// # Panics
    ///
    /// Panics when `instr_lo > instr_hi`.
    #[must_use]
    pub fn active_between(mut self, instr_lo: u64, instr_hi: u64) -> Self {
        assert!(
            instr_lo <= instr_hi,
            "fault window must be non-empty (lo {instr_lo} > hi {instr_hi})"
        );
        self.active_lo = instr_lo;
        self.active_hi = instr_hi;
        self
    }

    /// The inclusive instruction-clock window in which the plan is live
    /// (`(0, u64::MAX)` unless [`FaultPlan::active_between`] bounded it).
    #[must_use]
    pub fn active_window(&self) -> (u64, u64) {
        (self.active_lo, self.active_hi)
    }

    /// Whether the instruction clock `now` falls inside the active
    /// window.
    #[must_use]
    pub fn window_contains(&self, now: u64) -> bool {
        (self.active_lo..=self.active_hi).contains(&now)
    }

    /// Returns the same plan reseeded with `seed` — how a sharded engine
    /// derives per-shard-independent randomness from one chaos plan.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The plan's RNG seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan injects nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transients.is_empty()
            && self.transient_rate == 0.0
            && self.stuck.is_empty()
            && self.dead_rows.is_empty()
            && self.hard_fault_at.is_none()
    }
}

/// Counters describing what an installed plan actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient bit-flips applied (addressed + rate-drawn).
    pub transients: u64,
    /// Batch boundaries at which stuck-at / dead-row state was
    /// re-imposed (0 when the plan has no persistent faults).
    pub persistent_imposications: u64,
}

/// Runtime state of an installed [`FaultPlan`]: the seeded generator,
/// the cursor over addressed transients, and the next rate-drawn
/// injection point. Owned by the controller behind an `Option<Box<_>>`
/// so the absent case costs one pointer test.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    rng: u64,
    /// Next addressed transient to fire (`plan.transients` is sorted by
    /// `at_instr` at install).
    cursor: usize,
    /// Instruction-clock value at which the next rate-drawn transient
    /// fires (`u64::MAX` when rate is zero).
    next_rate_at: u64,
    pub(crate) stats: FaultStats,
}

impl FaultState {
    pub(crate) fn new(mut plan: FaultPlan) -> Self {
        plan.transients.sort_by_key(|t| t.at_instr);
        let mut st = FaultState {
            rng: plan.seed | 1,
            plan,
            cursor: 0,
            next_rate_at: u64::MAX,
            stats: FaultStats::default(),
        };
        // Burn a few draws so small seeds decorrelate.
        for _ in 0..4 {
            st.next_u64();
        }
        st.next_rate_at = st.draw_next_rate_at(0);
        st
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Uniform f64 in `(0, 1]` (never exactly zero, so `ln` is finite).
    fn next_unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    /// Geometric skip: the clock value of the next rate-drawn transient
    /// strictly after `now`.
    fn draw_next_rate_at(&mut self, now: u64) -> u64 {
        let p = self.plan.transient_rate;
        if p <= 0.0 {
            return u64::MAX;
        }
        if p >= 1.0 {
            return now.saturating_add(1);
        }
        let u = self.next_unit();
        let skip = (u.ln() / (1.0 - p).ln()).floor();
        let skip = if skip.is_finite() && skip >= 0.0 {
            skip as u64
        } else {
            0
        };
        now.saturating_add(1).saturating_add(skip)
    }

    /// Collects every transient flip due at instruction clock `now` into
    /// `out` as `(row, bit)` pairs (addressed faults first, then
    /// rate-drawn ones placed uniformly in `rows × cols`). Also reports
    /// whether a hard fault is due.
    pub(crate) fn collect_due(
        &mut self,
        now: u64,
        rows: usize,
        cols: usize,
        out: &mut Vec<(usize, usize)>,
    ) -> bool {
        let (lo, hi) = (self.plan.active_lo, self.plan.active_hi);
        while let Some(t) = self.plan.transients.get(self.cursor) {
            if t.at_instr > now || now < lo {
                // Not yet due, or the window has not opened: an
                // addressed fault before the window fires at the first
                // boundary inside it.
                break;
            }
            // Past `hi` the pending fault expires silently.
            if now <= hi {
                out.push((t.row.min(rows - 1), t.bit.min(cols - 1)));
            }
            self.cursor += 1;
        }
        while self.next_rate_at <= now {
            let at = self.next_rate_at;
            let r = (self.next_u64() % rows as u64) as usize;
            let b = (self.next_u64() % cols as u64) as usize;
            // The draw sequence is window-independent (same seed, same
            // trace → same draws); the window only gates delivery.
            if (lo..=hi).contains(&at) {
                out.push((r, b));
            }
            self.next_rate_at = self.draw_next_rate_at(at);
        }
        self.stats.transients += out.len() as u64;
        match self.plan.hard_fault_at {
            Some(at) if at.max(lo) <= now => {
                // Fire at most once even if the panic is caught; a hard
                // fault still pending when the window closes expires.
                self.plan.hard_fault_at = None;
                now <= hi
            }
            _ => false,
        }
    }

    /// Whether the plan carries persistent (stuck-at / dead-row) state
    /// that must be re-imposed at instruction clock `now` — false
    /// outside the plan's active window, which is how a windowed plan
    /// models damage that heals.
    pub(crate) fn persistent_active(&self, now: u64) -> bool {
        (!self.plan.stuck.is_empty() || !self.plan.dead_rows.is_empty())
            && self.plan.window_contains(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_and_reports_empty() {
        assert!(FaultPlan::seeded(7).is_empty());
        let p = FaultPlan::seeded(7)
            .transient_at(10, 3, 5)
            .stuck_at(1, 0, true)
            .dead_row(2)
            .transient_rate(0.5)
            .hard_fault_at(99);
        assert!(!p.is_empty());
        assert_eq!(p.transients.len(), 1);
        assert_eq!(p.stuck.len(), 1);
        assert_eq!(p.dead_rows, vec![2]);
        assert_eq!(p.hard_fault_at, Some(99));
    }

    #[test]
    #[should_panic(expected = "transient rate")]
    fn rejects_non_probability_rate() {
        let _ = FaultPlan::seeded(1).transient_rate(1.5);
    }

    #[test]
    fn addressed_transients_fire_once_in_order() {
        let mut st = FaultState::new(
            FaultPlan::seeded(3)
                .transient_at(20, 1, 1)
                .transient_at(10, 0, 0),
        );
        let mut out = Vec::new();
        assert!(!st.collect_due(5, 8, 8, &mut out));
        assert!(out.is_empty());
        assert!(!st.collect_due(15, 8, 8, &mut out));
        assert_eq!(out, vec![(0, 0)]);
        out.clear();
        assert!(!st.collect_due(100, 8, 8, &mut out));
        assert_eq!(out, vec![(1, 1)]);
        out.clear();
        // Consumed: nothing fires again.
        assert!(!st.collect_due(1000, 8, 8, &mut out));
        assert!(out.is_empty());
        assert_eq!(st.stats.transients, 2);
    }

    #[test]
    fn rate_draws_are_deterministic_and_scale() {
        let count = |seed: u64, rate: f64, horizon: u64| {
            let mut st = FaultState::new(FaultPlan::seeded(seed).transient_rate(rate));
            let mut out = Vec::new();
            st.collect_due(horizon, 64, 64, &mut out);
            out
        };
        assert_eq!(count(9, 0.01, 10_000), count(9, 0.01, 10_000));
        let lo = count(9, 0.001, 100_000).len() as f64;
        let hi = count(9, 0.01, 100_000).len() as f64;
        assert!(
            hi > 4.0 * lo,
            "10× rate must draw far more faults ({lo} vs {hi})"
        );
        // Roughly rate × horizon (loose 3× band: it is one random draw).
        assert!((hi / 1000.0) > 0.33 && (hi / 1000.0) < 3.0, "hi = {hi}");
        assert!(count(9, 0.0, 1_000_000).is_empty());
    }

    #[test]
    fn window_gates_every_fault_class() {
        // Rate draws outside [lo, hi] are suppressed; inside they fire.
        let mut st = FaultState::new(
            FaultPlan::seeded(9)
                .transient_rate(0.5)
                .active_between(100, 200),
        );
        let mut out = Vec::new();
        st.collect_due(99, 8, 8, &mut out);
        assert!(out.is_empty(), "no rate draws before the window opens");
        st.collect_due(200, 8, 8, &mut out);
        assert!(!out.is_empty(), "the window admits the burst");
        out.clear();
        st.collect_due(10_000, 8, 8, &mut out);
        assert!(out.is_empty(), "the burst heals after the window closes");

        // An addressed transient before the window fires at the first
        // boundary inside it; one pending past the window expires.
        let mut st = FaultState::new(
            FaultPlan::seeded(9)
                .transient_at(50, 1, 1)
                .transient_at(150, 2, 2)
                .active_between(100, 120),
        );
        let mut out = Vec::new();
        st.collect_due(60, 8, 8, &mut out);
        assert!(out.is_empty());
        st.collect_due(110, 8, 8, &mut out);
        assert_eq!(out, vec![(1, 1)]);
        out.clear();
        st.collect_due(500, 8, 8, &mut out);
        assert!(out.is_empty(), "transient due past the window expires");

        // Persistent state is only re-imposed inside the window.
        let st = FaultState::new(
            FaultPlan::seeded(9)
                .stuck_at(0, 0, true)
                .active_between(10, 20),
        );
        assert!(!st.persistent_active(9));
        assert!(st.persistent_active(10));
        assert!(st.persistent_active(20));
        assert!(!st.persistent_active(21));

        // Hard faults: deferred into the window, expired past it.
        let mut st = FaultState::new(FaultPlan::seeded(9).hard_fault_at(5).active_between(10, 20));
        let mut out = Vec::new();
        assert!(!st.collect_due(9, 8, 8, &mut out));
        assert!(st.collect_due(10, 8, 8, &mut out));
        let mut st = FaultState::new(FaultPlan::seeded(9).hard_fault_at(5).active_between(1, 3));
        assert!(!st.collect_due(50, 8, 8, &mut out), "expired hard fault");
    }

    #[test]
    #[should_panic(expected = "fault window")]
    fn rejects_inverted_window() {
        let _ = FaultPlan::seeded(1).active_between(10, 5);
    }

    #[test]
    fn hard_fault_fires_once() {
        let mut st = FaultState::new(FaultPlan::seeded(1).hard_fault_at(10));
        let mut out = Vec::new();
        assert!(!st.collect_due(9, 8, 8, &mut out));
        assert!(st.collect_due(10, 8, 8, &mut out));
        assert!(!st.collect_due(11, 8, 8, &mut out));
    }
}
