//! The vectorized word-engine: the innermost kernels of the SRAM hot path.
//!
//! Every compute instruction — emitted or replayed — bottoms out in a pass
//! over `u64` storage words ([`crate::BitRow`] bit `c` lives at word
//! `c/64`). At the paper's full 256-column geometry those passes dominate
//! the runtime, so this module concentrates them behind one dispatch
//! boundary:
//!
//! * **Chunked layout.** Row storage is padded to whole
//!   [`CHUNK`](crate::bitrow::WORD_CHUNK)-word blocks (256 bits — exactly
//!   one AVX2 vector) with a hard invariant that every bit at or above the
//!   column count is zero. Kernels therefore never handle remainders: an
//!   elementwise pass is a clean multiple of four words that LLVM
//!   autovectorizes, and the explicit SIMD paths load whole vectors.
//! * **Explicit AVX2 for the carry chains.** The add-B, Montgomery-halve,
//!   and carry/borrow-resolution kernels contain a one-bit shift whose
//!   carry crosses word boundaries; that loop-carried dependence defeats
//!   autovectorization, so each gets a hand-written `std::arch` path that
//!   materializes the shift with a lane permute (`valign`-style) and keeps
//!   the ~10 boolean layers per word in 256-bit registers.
//! * **Runtime dispatch, bit-identical fallback.** AVX2 use is decided
//!   once per process: `BPNTT_FORCE_SCALAR=1` (or
//!   [`force_scalar`]`(true)`) pins the scalar path, otherwise
//!   `is_x86_feature_detected!("avx2")` decides. Every kernel is pure
//!   bitwise integer arithmetic, so the two paths are bit-identical by
//!   construction — and verified against each other by this module's tests
//!   and by the workspace's replay-equivalence property tests run under
//!   both settings in CI.
//! * **Register-resident execution up to four chunks.** Rows of 1–4
//!   chunks (≤1024 columns — the paper's geometry *and* the HE-batch lane
//!   counts) execute whole multiplier chains and whole resolution loops
//!   with every live row held in vector registers, the inter-chunk shift
//!   carries threaded in-register; see [`FastPathKind`], which each
//!   geometry decides once instead of re-testing row widths per superop.
//!
//! The module also hosts the single-pass bodies of the *epilogue
//! superops* (carry-save add, conditional select/copy, sign-fix,
//! borrow-save init) that the replay compiler fuses out of the butterfly
//! epilogues; those are elementwise and rely on the chunked layout for
//! vectorization rather than explicit intrinsics.

// SIMD intrinsics need raw-pointer loads/stores; this module owns the
// crate's entire unsafe surface (see `#![deny(unsafe_code)]` in lib.rs).
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};

pub(crate) use crate::bitrow::WORD_CHUNK as CHUNK;

const UNDECIDED: u8 = 0;
const SIMD: u8 = 1;
const SCALAR: u8 = 2;

/// Lazily decided dispatch state (process-wide; see [`simd_active`]).
static STATE: AtomicU8 = AtomicU8::new(UNDECIDED);

fn detect() -> bool {
    if std::env::var_os("BPNTT_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0") {
        return false;
    }
    hardware_has_simd()
}

fn hardware_has_simd() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// True when the word-engine is running its SIMD path: the CPU supports
/// AVX2 and neither `BPNTT_FORCE_SCALAR` nor [`force_scalar`] pinned the
/// scalar fallback. Decided once and cached; cheap to call from hot loops.
#[must_use]
pub fn simd_active() -> bool {
    match STATE.load(Ordering::Relaxed) {
        SIMD => true,
        SCALAR => false,
        _ => {
            let active = detect();
            STATE.store(if active { SIMD } else { SCALAR }, Ordering::Relaxed);
            active
        }
    }
}

/// Pins the word-engine to the scalar path (`true`) or returns it to
/// hardware auto-detection (`false`, ignoring `BPNTT_FORCE_SCALAR`).
///
/// A test/bench hook: results are bit-identical either way, so flipping
/// this mid-run is safe — it only selects which kernel implementation
/// executes. Process-wide; concurrent tests that exercise both settings
/// must serialize around it.
pub fn force_scalar(on: bool) {
    let s = if on || !hardware_has_simd() {
        SCALAR
    } else {
        SIMD
    };
    STATE.store(s, Ordering::Relaxed);
}

// ---- carry-chain kernels ---------------------------------------------------
//
// Shared contract: all slices have the same, CHUNK-multiple length (the
// padded word count of one row); tile gating uses `mask`/`pred` column
// images whose padding words are zero, which keeps every output's padding
// zero as well. Each function documents its semantics once, in the scalar
// body — the AVX2 variants are transliterations kept lock-step by the
// equivalence tests at the bottom of this module.

/// One fused add-B step (`c1,s1 = Sum&B, Sum⊕B; Carry <<= 1 (global);
/// c2,Sum = Carry&s1, Carry⊕s1; Carry = c1|c2`), gated per tile by
/// `g = mask` or `g = mask & pred`: disabled tiles keep their old row
/// contents, exactly like four gated write-backs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn addb(
    sw: &mut [u64],
    cw: &mut [u64],
    tsw: &mut [u64],
    tcw: &mut [u64],
    bw: &[u64],
    mask: &[u64],
    pred: &[u64],
    if_set: bool,
) {
    let n = sw.len();
    assert!(
        cw.len() == n
            && tsw.len() == n
            && tcw.len() == n
            && bw.len() == n
            && mask.len() == n
            && pred.len() == n
    );
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: dispatch guarantees AVX2 is available.
        unsafe { avx2::addb(sw, cw, tsw, tcw, bw, mask, pred, if_set) };
        return;
    }
    addb_scalar(sw, cw, tsw, tcw, bw, mask, pred, if_set);
}

#[allow(clippy::too_many_arguments)]
fn addb_scalar(
    sw: &mut [u64],
    cw: &mut [u64],
    tsw: &mut [u64],
    tcw: &mut [u64],
    bw: &[u64],
    mask: &[u64],
    pred: &[u64],
    if_set: bool,
) {
    let mut carry_in = 0u64;
    for w in 0..sw.len() {
        let g = if if_set { mask[w] & pred[w] } else { mask[w] };
        let s_w = sw[w];
        let b_w = bw[w];
        let c_old = cw[w];
        let c1 = s_w & b_w;
        let s1 = s_w ^ b_w;
        // Global left shift computed from the *old* carry row (bits may
        // cross tile boundaries, exactly like emission).
        let csh = (c_old << 1) | carry_in;
        carry_in = c_old >> 63;
        // Gated intermediates: disabled tiles observe old contents.
        let c_eff = (csh & g) | (c_old & !g);
        let ts_eff = (s1 & g) | (tsw[w] & !g);
        let tc_new = (c1 & g) | (tcw[w] & !g);
        let c2 = c_eff & ts_eff;
        let s2 = c_eff ^ ts_eff;
        sw[w] = (s2 & g) | (s_w & !g);
        tsw[w] = ts_eff;
        tcw[w] = tc_new;
        cw[w] = ((c2 | tc_new) & g) | (c_eff & !g);
    }
}

/// One fused Montgomery halve step: `tmp = Sum ⊕ (M in pred-set tiles)` is
/// the m-selection, `c1 = Sum ∧ M ∧ pred` the half-adder carry, then the
/// tile-masked right shift of `tmp` and the two remaining half-adder
/// layers. Single pass with a one-word lookahead (only `sw[w]` has been
/// overwritten when the lookahead reads `sw[w+1]`). The predicate column
/// mask must already reflect `Check(Sum, bit 0)` and every tile must be
/// write-enabled.
pub(crate) fn halve(
    sw: &mut [u64],
    cw: &mut [u64],
    tsw: &mut [u64],
    tcw: &mut [u64],
    mw: &[u64],
    pred: &[u64],
    shr_keep: &[u64],
) {
    let n = sw.len();
    assert!(
        cw.len() == n
            && tsw.len() == n
            && tcw.len() == n
            && mw.len() == n
            && pred.len() == n
            && shr_keep.len() == n
    );
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: dispatch guarantees AVX2 is available.
        unsafe { avx2::halve(sw, cw, tsw, tcw, mw, pred, shr_keep) };
        return;
    }
    halve_scalar(sw, cw, tsw, tcw, mw, pred, shr_keep);
}

fn halve_scalar(
    sw: &mut [u64],
    cw: &mut [u64],
    tsw: &mut [u64],
    tcw: &mut [u64],
    mw: &[u64],
    pred: &[u64],
    shr_keep: &[u64],
) {
    let n = sw.len();
    let mut tmp_cur = if n > 0 { sw[0] ^ (mw[0] & pred[0]) } else { 0 };
    for w in 0..n {
        let tmp_next = if w + 1 < n {
            sw[w + 1] ^ (mw[w + 1] & pred[w + 1])
        } else {
            0
        };
        let tc1 = sw[w] & mw[w] & pred[w];
        let ts1 = ((tmp_cur >> 1) | (tmp_next << 63)) & shr_keep[w];
        let new_tc = ts1 & tc1;
        let new_ts = ts1 ^ tc1;
        let c_old = cw[w];
        let c5 = c_old & new_ts;
        sw[w] = c_old ^ new_ts;
        tsw[w] = new_ts;
        tcw[w] = new_tc;
        cw[w] = c5 | new_tc;
        tmp_cur = tmp_next;
    }
}

/// One carry-resolution round: `Carry <<= 1` (tile-masked via `shl_keep`);
/// `Carry, Sum = Sum ∧ Carry, Sum ⊕ Carry`.
pub(crate) fn resolve_round(sw: &mut [u64], cw: &mut [u64], shl_keep: &[u64]) {
    let n = sw.len();
    assert!(cw.len() == n && shl_keep.len() == n);
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: dispatch guarantees AVX2 is available.
        unsafe { avx2::resolve_round(sw, cw, shl_keep) };
        return;
    }
    resolve_round_scalar(sw, cw, shl_keep);
}

fn resolve_round_scalar(sw: &mut [u64], cw: &mut [u64], shl_keep: &[u64]) {
    let mut carry_in = 0u64;
    for w in 0..sw.len() {
        let c_old = cw[w];
        let csh = ((c_old << 1) | carry_in) & shl_keep[w];
        carry_in = c_old >> 63;
        let s_w = sw[w];
        cw[w] = s_w & csh;
        sw[w] = s_w ^ csh;
    }
}

/// One borrow-resolution round: `B <<= 1` (tile-masked);
/// `s_next = s_cur ⊕ B; B = s_next ∧ B`. Reads `cur`, writes `nxt`/`tw`.
pub(crate) fn borrow_round(cur: &[u64], nxt: &mut [u64], tw: &mut [u64], shl_keep: &[u64]) {
    let n = cur.len();
    assert!(nxt.len() == n && tw.len() == n && shl_keep.len() == n);
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: dispatch guarantees AVX2 is available.
        unsafe { avx2::borrow_round(cur, nxt, tw, shl_keep) };
        return;
    }
    borrow_round_scalar(cur, nxt, tw, shl_keep);
}

fn borrow_round_scalar(cur: &[u64], nxt: &mut [u64], tw: &mut [u64], shl_keep: &[u64]) {
    let mut carry_in = 0u64;
    for w in 0..cur.len() {
        let t_old = tw[w];
        let tsh = ((t_old << 1) | carry_in) & shl_keep[w];
        carry_in = t_old >> 63;
        let so = cur[w] ^ tsh;
        nxt[w] = so;
        tw[w] = so & tsh;
    }
}

// ---- epilogue superop kernels ----------------------------------------------
//
// Elementwise single passes over the chunked storage (no cross-word
// carries), so the plain loops below autovectorize; no explicit SIMD
// needed. All assume every tile is write-enabled (`mask` is the all-enabled
// column image), which the fused executors guarantee before calling.

/// Carry-save add initiator: `d_and, d_xor = a ∧ b, a ⊕ b` (one dual
/// write-back `Binary`, fused to one pass).
pub(crate) fn csadd(da: &mut [u64], dx: &mut [u64], aw: &[u64], bw: &[u64]) {
    let n = da.len();
    assert!(dx.len() == n && aw.len() == n && bw.len() == n);
    for (((da, dx), &a), &b) in da.iter_mut().zip(dx.iter_mut()).zip(aw).zip(bw) {
        *da = a & b;
        *dx = a ^ b;
    }
}

/// Borrow-save subtract initiator: `ts = x ⊕ y; tc = ts ∧ y` (two single
/// write-back `Binary`s, fused to one pass).
pub(crate) fn subinit(tsw: &mut [u64], tcw: &mut [u64], xw: &[u64], yw: &[u64]) {
    let n = tsw.len();
    assert!(tcw.len() == n && xw.len() == n && yw.len() == n);
    for (((ts, tc), &x), &y) in tsw.iter_mut().zip(tcw.iter_mut()).zip(xw).zip(yw) {
        let t = x ^ y;
        *ts = t;
        *tc = t & y;
    }
}

/// Conditional two-way select: `dst ← a` in pred-set tiles, `dst ← b` in
/// pred-clear tiles, untouched outside the tile mask (the `Check` +
/// `Copy IfSet` + `Copy IfClear` epilogue of `add_mod`, fused to one
/// pass after the predicate latch).
pub(crate) fn cond_select(dw: &mut [u64], aw: &[u64], bw: &[u64], mask: &[u64], pred: &[u64]) {
    let n = dw.len();
    assert!(aw.len() == n && bw.len() == n && mask.len() == n && pred.len() == n);
    for ((((d, &a), &b), &m), &p) in dw.iter_mut().zip(aw).zip(bw).zip(mask).zip(pred) {
        let g1 = m & p;
        let g2 = m & !p;
        *d = (a & g1) | (b & g2) | (*d & !m);
    }
}

/// Predicate-gated copy: `dst ← src` in pred-set (`if_set`) or pred-clear
/// tiles (the `Check` + predicated `Copy` tail of `cond_sub_q`, fused to
/// one pass after the predicate latch).
pub(crate) fn masked_copy(dw: &mut [u64], sw: &[u64], mask: &[u64], pred: &[u64], if_set: bool) {
    let n = dw.len();
    assert!(sw.len() == n && mask.len() == n && pred.len() == n);
    for (((d, &s), &m), &p) in dw.iter_mut().zip(sw).zip(mask).zip(pred) {
        let g = if if_set { m & p } else { m & !p };
        *d = (*d & !g) | (s & g);
    }
}

/// Sign-fix of borrow-save subtraction: with the predicate latched from
/// the difference's sign bit, `c ← M` in negative tiles (zero elsewhere),
/// then the carry-save `+q` layer `tc, s = s ∧ c, s ⊕ c` — four recorded
/// instructions, one pass.
pub(crate) fn signfix(
    sw: &mut [u64],
    cw: &mut [u64],
    tcw: &mut [u64],
    mw: &[u64],
    mask: &[u64],
    pred: &[u64],
) {
    let n = sw.len();
    assert!(cw.len() == n && tcw.len() == n && mw.len() == n && mask.len() == n && pred.len() == n);
    for (((((s, c), tc), &m), &msk), &p) in sw
        .iter_mut()
        .zip(cw.iter_mut())
        .zip(tcw.iter_mut())
        .zip(mw)
        .zip(mask)
        .zip(pred)
    {
        let g = msk & p;
        let c_new = m & g;
        *c = c_new;
        *tc = *s & c_new;
        *s ^= c_new;
    }
}

// ---- register-resident multi-chunk execution -------------------------------
//
// Rows of up to MAX_RESIDENT_CHUNKS chunks (1024 bits — the HE-batch
// 1024-column geometry) qualify for register-resident execution: a whole
// multiplier chain or resolution loop keeps every live row in vector
// registers for its entire duration, touching memory only at entry, exit,
// and the halve steps' predicate-latch spills. This is where the
// word-engine's speedup actually comes from: the per-step kernels above
// spend most of their time on loads and stores (nine memory ops for ~a
// dozen ALU ops), which the chain executor repeats ~36 times per modular
// multiplication. The one-bit shifts thread their carries between chunks
// in-register (`shl1_chain`/`shr1_chain`), so the K-chunk variants are the
// exact widening of the single-chunk case — K = 1 *is* the paper-geometry
// fast path of PR 2, now one instantiation of the const-generic kernels.

/// Widest register-resident row, in chunks. Four chunks (16 words) is 42
/// Dilithium lanes at 1024 columns; beyond that the working set is no
/// longer worth pinning and the per-step kernels take over.
pub(crate) const MAX_RESIDENT_CHUNKS: usize = 4;

/// Storage words behind the widest register-resident row (the chain
/// executor's fixed-size latch spill buffers).
pub(crate) const MAX_RESIDENT_WORDS: usize = MAX_RESIDENT_CHUNKS * CHUNK;

/// How a controller geometry executes fused multiplier chains and
/// resolution loops. Decided once per geometry (and recorded per
/// [`CompiledProgram`](crate::CompiledProgram) at compile time), so replay
/// never re-derives it from the row width per superop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastPathKind {
    /// Row too wide (or not x86-64): per-step kernels only.
    PerStep,
    /// Row spans this many whole chunks (1..=[`MAX_RESIDENT_CHUNKS`]),
    /// kept register-resident when SIMD is active.
    Resident(u8),
}

impl FastPathKind {
    /// The fast-path kind of a row backed by `n_words` (chunk-padded)
    /// storage words.
    #[must_use]
    pub fn for_words(n_words: usize) -> FastPathKind {
        debug_assert!(n_words.is_multiple_of(CHUNK));
        let chunks = n_words / CHUNK;
        #[cfg(target_arch = "x86_64")]
        if (1..=MAX_RESIDENT_CHUNKS).contains(&chunks) {
            return FastPathKind::Resident(chunks as u8);
        }
        let _ = chunks;
        FastPathKind::PerStep
    }

    /// True when this geometry can run register-resident (given SIMD is
    /// also active at run time).
    #[must_use]
    pub fn is_resident(self) -> bool {
        matches!(self, FastPathKind::Resident(_))
    }
}

/// Branchless predicate latch: reads tile-relative bit `bit` of every
/// tile of `src` and broadcasts it across the tile's columns of `pm`.
///
/// Three word-level layers, no per-tile loop:
///
/// 1. *align* — a global right shift by `bit` moves every tile's checked
///    bit onto its tile-base column (borrowing from the next word, like
///    any cross-word shift);
/// 2. *select* — `base_mask` keeps exactly the tile-base columns;
/// 3. *smear* — multiplying a word whose set bits sit ≥ `tile_width`
///    apart by `2^tile_width − 1` replicates each bit across its whole
///    tile with no carry collisions; the 128-bit high half is the spill
///    of a tile straddling into the next word.
///
/// `base_mask` covers only real tiles, so padding words (and the tail of
/// a partial last word) latch as zero — the invariant every kernel
/// expects of the predicate image.
///
/// Requires `tile_width <= 64` (a tile wider than its smear constant
/// would broadcast across only 64 of its columns) — the controller
/// rejects wider tiles at construction, as the whole ISA does.
pub(crate) fn latch_tile_bit(
    base_mask: &[u64],
    tile_width: usize,
    src: &[u64],
    bit: usize,
    pm: &mut [u64],
) {
    debug_assert!(tile_width <= 64, "tile words are at most 64 bits");
    debug_assert!(bit < tile_width && src.len() >= pm.len());
    let smear = if tile_width == 64 {
        u128::from(u64::MAX)
    } else {
        (1u128 << tile_width) - 1
    };
    let n = pm.len();
    let mut spill = 0u64;
    for w in 0..n {
        let aligned = if bit == 0 {
            src[w]
        } else {
            let hi = if w + 1 < n { src[w + 1] } else { 0 };
            (src[w] >> bit) | (hi << (64 - bit))
        };
        let prod = u128::from(aligned & base_mask[w]) * smear;
        pm[w] = (prod as u64) | spill;
        spill = (prod >> 64) as u64;
    }
}

/// Runs a whole multiplier chain (add-B / halve steps over one accumulator
/// row set) register-resident when `kind` and the SIMD dispatch allow it;
/// memory is touched once on entry, once per halve-latch spill, and once
/// on exit. `pred_mask` is read at entry and left holding the last halve's
/// latch image — exactly the state per-step execution leaves. Caller must
/// hold an all-enabled tile mask. Returns `false` (rows untouched) when
/// the geometry or dispatch demands the per-step path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn chain_resident(
    kind: FastPathKind,
    sw: &mut [u64],
    cw: &mut [u64],
    tsw: &mut [u64],
    tcw: &mut [u64],
    bw: &[u64],
    mw: &[u64],
    pred_mask: &mut [u64],
    shr_keep: &[u64],
    steps: &[crate::program::ChainStep],
    base_mask: &[u64],
    tile_width: usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        let FastPathKind::Resident(chunks) = kind else {
            return false;
        };
        if !simd_active() {
            return false;
        }
        debug_assert_eq!(sw.len(), usize::from(chunks) * CHUNK);
        // SAFETY: the dispatch above verified AVX2 support.
        unsafe {
            match chunks {
                1 => avx2::chain_chunks::<1>(
                    sw, cw, tsw, tcw, bw, mw, pred_mask, shr_keep, steps, base_mask, tile_width,
                ),
                2 => avx2::chain_chunks::<2>(
                    sw, cw, tsw, tcw, bw, mw, pred_mask, shr_keep, steps, base_mask, tile_width,
                ),
                3 => avx2::chain_chunks::<3>(
                    sw, cw, tsw, tcw, bw, mw, pred_mask, shr_keep, steps, base_mask, tile_width,
                ),
                _ => avx2::chain_chunks::<4>(
                    sw, cw, tsw, tcw, bw, mw, pred_mask, shr_keep, steps, base_mask, tile_width,
                ),
            }
        }
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (
            kind, sw, cw, tsw, tcw, bw, mw, pred_mask, shr_keep, steps, base_mask, tile_width,
        );
        false
    }
}

/// Runs a whole zero-terminated carry-resolution loop register-resident.
/// Returns `Some((bodies, checks, converged))` — the caller replays the
/// cost sequence (one check per iteration, round costs per body) in
/// emission order and sets the zero flag to `converged` — or `None` when
/// the geometry or dispatch demands the per-round path.
pub(crate) fn resolve_loop_resident(
    kind: FastPathKind,
    sw: &mut [u64],
    cw: &mut [u64],
    shl_keep: &[u64],
    max_checks: usize,
) -> Option<(usize, u64, bool)> {
    #[cfg(target_arch = "x86_64")]
    {
        let FastPathKind::Resident(chunks) = kind else {
            return None;
        };
        if !simd_active() {
            return None;
        }
        debug_assert_eq!(sw.len(), usize::from(chunks) * CHUNK);
        // SAFETY: the dispatch above verified AVX2 support.
        unsafe {
            Some(match chunks {
                1 => avx2::resolve_loop_chunks::<1>(sw, cw, shl_keep, max_checks),
                2 => avx2::resolve_loop_chunks::<2>(sw, cw, shl_keep, max_checks),
                3 => avx2::resolve_loop_chunks::<3>(sw, cw, shl_keep, max_checks),
                _ => avx2::resolve_loop_chunks::<4>(sw, cw, shl_keep, max_checks),
            })
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (kind, sw, cw, shl_keep, max_checks);
        None
    }
}

/// Runs a whole zero-terminated borrow-resolution loop register-resident,
/// the live value ping-ponging between the `live` and `other` rows by
/// round parity exactly as emission writes them. Returns
/// `Some((bodies, checks, converged))`, or `None` for the per-round path.
pub(crate) fn borrow_loop_resident(
    kind: FastPathKind,
    live: &mut [u64],
    other: &mut [u64],
    tw: &mut [u64],
    shl_keep: &[u64],
    max_checks: usize,
) -> Option<(usize, u64, bool)> {
    #[cfg(target_arch = "x86_64")]
    {
        let FastPathKind::Resident(chunks) = kind else {
            return None;
        };
        if !simd_active() {
            return None;
        }
        debug_assert_eq!(live.len(), usize::from(chunks) * CHUNK);
        // SAFETY: the dispatch above verified AVX2 support.
        unsafe {
            Some(match chunks {
                1 => avx2::borrow_loop_chunks::<1>(live, other, tw, shl_keep, max_checks),
                2 => avx2::borrow_loop_chunks::<2>(live, other, tw, shl_keep, max_checks),
                3 => avx2::borrow_loop_chunks::<3>(live, other, tw, shl_keep, max_checks),
                _ => avx2::borrow_loop_chunks::<4>(live, other, tw, shl_keep, max_checks),
            })
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (kind, live, other, tw, shl_keep, max_checks);
        None
    }
}

// ---- AVX2 paths ------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{latch_tile_bit, CHUNK, MAX_RESIDENT_WORDS};
    use std::arch::x86_64::{
        __m256i, _mm256_and_si256, _mm256_andnot_si256, _mm256_blend_epi32, _mm256_extract_epi64,
        _mm256_loadu_si256, _mm256_or_si256, _mm256_permute4x64_epi64, _mm256_set1_epi64x,
        _mm256_setzero_si256, _mm256_slli_epi64, _mm256_srli_epi64, _mm256_storeu_si256,
        _mm256_testz_si256, _mm256_xor_si256,
    };

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load(s: &[u64], i: usize) -> __m256i {
        debug_assert!(i + CHUNK <= s.len());
        // SAFETY: `i + CHUNK <= s.len()` (all kernel slices are CHUNK
        // multiples and `i` steps by CHUNK); unaligned load is allowed.
        unsafe { _mm256_loadu_si256(s.as_ptr().add(i).cast()) }
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store(s: &mut [u64], i: usize, v: __m256i) {
        debug_assert!(i + CHUNK <= s.len());
        // SAFETY: as for `load`; unaligned store is allowed.
        unsafe { _mm256_storeu_si256(s.as_mut_ptr().add(i).cast(), v) }
    }

    /// `(v << 1) | (prev >> 63)` per lane with the carry chained across
    /// lanes: lane 0's predecessor is `carry` (the previous chunk's last
    /// *old* word). Returns the shifted vector and this chunk's last old
    /// word, to be fed into the next chunk.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn shl1_chain(v: __m256i, carry: u64) -> (__m256i, u64) {
        // rot = [v3, v0, v1, v2]; blend lane 0 to carry → prev.
        let rot = _mm256_permute4x64_epi64::<0b10_01_00_11>(v);
        let prev = _mm256_blend_epi32::<0b0000_0011>(rot, _mm256_set1_epi64x(carry as i64));
        let sh = _mm256_or_si256(_mm256_slli_epi64::<1>(v), _mm256_srli_epi64::<63>(prev));
        (sh, _mm256_extract_epi64::<3>(v) as u64)
    }

    /// `(v >> 1) | (next << 63)` per lane with the borrow chained from the
    /// *next* lane: lane 3's successor is `next_word` (the next chunk's
    /// first value, or zero at the end of the row).
    #[inline]
    #[target_feature(enable = "avx2")]
    fn shr1_chain(v: __m256i, next_word: u64) -> __m256i {
        // rot = [v1, v2, v3, v0]; blend lane 3 to next_word → next.
        let rot = _mm256_permute4x64_epi64::<0b00_11_10_01>(v);
        let nxt = _mm256_blend_epi32::<0b1100_0000>(rot, _mm256_set1_epi64x(next_word as i64));
        _mm256_or_si256(_mm256_srli_epi64::<1>(v), _mm256_slli_epi64::<63>(nxt))
    }

    /// AVX2 transliteration of [`super::addb_scalar`].
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn addb(
        sw: &mut [u64],
        cw: &mut [u64],
        tsw: &mut [u64],
        tcw: &mut [u64],
        bw: &[u64],
        mask: &[u64],
        pred: &[u64],
        if_set: bool,
    ) {
        let mut carry = 0u64;
        let mut i = 0;
        while i < sw.len() {
            // SAFETY: all slices share the same CHUNK-multiple length.
            unsafe {
                let s = load(sw, i);
                let b = load(bw, i);
                let c = load(cw, i);
                let ts = load(tsw, i);
                let tc = load(tcw, i);
                let g = if if_set {
                    _mm256_and_si256(load(mask, i), load(pred, i))
                } else {
                    load(mask, i)
                };
                let c1 = _mm256_and_si256(s, b);
                let s1 = _mm256_xor_si256(s, b);
                let (csh, nc) = shl1_chain(c, carry);
                carry = nc;
                let c_eff = _mm256_or_si256(_mm256_and_si256(csh, g), _mm256_andnot_si256(g, c));
                let ts_eff = _mm256_or_si256(_mm256_and_si256(s1, g), _mm256_andnot_si256(g, ts));
                let tc_new = _mm256_or_si256(_mm256_and_si256(c1, g), _mm256_andnot_si256(g, tc));
                let c2 = _mm256_and_si256(c_eff, ts_eff);
                let s2 = _mm256_xor_si256(c_eff, ts_eff);
                store(
                    sw,
                    i,
                    _mm256_or_si256(_mm256_and_si256(s2, g), _mm256_andnot_si256(g, s)),
                );
                store(tsw, i, ts_eff);
                store(tcw, i, tc_new);
                store(
                    cw,
                    i,
                    _mm256_or_si256(
                        _mm256_and_si256(_mm256_or_si256(c2, tc_new), g),
                        _mm256_andnot_si256(g, c_eff),
                    ),
                );
            }
            i += CHUNK;
        }
    }

    /// AVX2 transliteration of [`super::halve_scalar`].
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn halve(
        sw: &mut [u64],
        cw: &mut [u64],
        tsw: &mut [u64],
        tcw: &mut [u64],
        mw: &[u64],
        pred: &[u64],
        shr_keep: &[u64],
    ) {
        let n = sw.len();
        let mut i = 0;
        while i < n {
            // The lookahead reads the *next* chunk's first sum word, which
            // has not been overwritten yet (chunks ascend).
            let next_word = if i + CHUNK < n {
                sw[i + CHUNK] ^ (mw[i + CHUNK] & pred[i + CHUNK])
            } else {
                0
            };
            // SAFETY: all slices share the same CHUNK-multiple length.
            unsafe {
                let s = load(sw, i);
                let m = load(mw, i);
                let p = load(pred, i);
                let c = load(cw, i);
                let mp = _mm256_and_si256(m, p);
                let tmp = _mm256_xor_si256(s, mp);
                let ts1 = _mm256_and_si256(shr1_chain(tmp, next_word), load(shr_keep, i));
                let tc1 = _mm256_and_si256(s, mp);
                let new_tc = _mm256_and_si256(ts1, tc1);
                let new_ts = _mm256_xor_si256(ts1, tc1);
                let c5 = _mm256_and_si256(c, new_ts);
                store(sw, i, _mm256_xor_si256(c, new_ts));
                store(tsw, i, new_ts);
                store(tcw, i, new_tc);
                store(cw, i, _mm256_or_si256(c5, new_tc));
            }
            i += CHUNK;
        }
    }

    /// AVX2 transliteration of [`super::resolve_round_scalar`].
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn resolve_round(sw: &mut [u64], cw: &mut [u64], shl_keep: &[u64]) {
        let mut carry = 0u64;
        let mut i = 0;
        while i < sw.len() {
            // SAFETY: all slices share the same CHUNK-multiple length.
            unsafe {
                let c = load(cw, i);
                let s = load(sw, i);
                let (csh0, nc) = shl1_chain(c, carry);
                carry = nc;
                let csh = _mm256_and_si256(csh0, load(shl_keep, i));
                store(cw, i, _mm256_and_si256(s, csh));
                store(sw, i, _mm256_xor_si256(s, csh));
            }
            i += CHUNK;
        }
    }

    /// Loads `K` consecutive chunks of a row into a register array.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load_row<const K: usize>(s: &[u64]) -> [__m256i; K] {
        let mut v = [_mm256_setzero_si256(); K];
        for (k, vk) in v.iter_mut().enumerate() {
            // SAFETY: caller guarantees `s.len() == K * CHUNK`.
            *vk = unsafe { load(s, k * CHUNK) };
        }
        v
    }

    /// Stores a register array back over `K` consecutive chunks.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store_row<const K: usize>(s: &mut [u64], v: &[__m256i; K]) {
        for (k, &vk) in v.iter().enumerate() {
            // SAFETY: caller guarantees `s.len() == K * CHUNK`.
            unsafe { store(s, k * CHUNK, vk) };
        }
    }

    /// Register-resident multiplier chain over a `K`-chunk row set (see
    /// [`super::chain_resident`]). Each step is the in-register
    /// specialization of the per-step kernels above — `Always` add-B with
    /// an all-enabled mask loses its gating entirely, halve spills `Sum`
    /// once per step for the scalar predicate latch — with the one-bit
    /// shift carries threaded between chunks through `shl1_chain` /
    /// `shr1_chain` instead of round-tripping through memory.
    ///
    /// Register budget: only the four accumulator rows live in register
    /// arrays (4·K vectors). The read-only operand rows (`b`, `m`,
    /// `shr_keep`) reload from their L1-hot slices per use, and the
    /// predicate image lives canonically in its latch spill buffer — at
    /// K = 2 the accumulators plus temporaries fit the 16-register file,
    /// where keeping every row resident would thrash the stack.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn chain_chunks<const K: usize>(
        sw: &mut [u64],
        cw: &mut [u64],
        tsw: &mut [u64],
        tcw: &mut [u64],
        bw: &[u64],
        mw: &[u64],
        pred_mask: &mut [u64],
        shr_keep: &[u64],
        steps: &[crate::program::ChainStep],
        base_mask: &[u64],
        tile_width: usize,
    ) {
        use crate::isa::PredMode;
        use crate::program::ChainStep;
        // SAFETY: all slices are K chunks long (caller contract).
        unsafe {
            let mut s = load_row::<K>(sw);
            let mut c = load_row::<K>(cw);
            let mut ts = load_row::<K>(tsw);
            let mut tc = load_row::<K>(tcw);
            let mut sum_buf = [0u64; MAX_RESIDENT_WORDS];
            let mut pm_buf = [0u64; MAX_RESIDENT_WORDS];
            pm_buf[..K * CHUNK].copy_from_slice(pred_mask);
            for step in steps {
                match *step {
                    ChainStep::AddB(PredMode::Always) => {
                        // All-enabled, unpredicated: the gating drops out.
                        let mut carry = 0u64;
                        for k in 0..K {
                            let b = load(bw, k * CHUNK);
                            let c1 = _mm256_and_si256(s[k], b);
                            let s1 = _mm256_xor_si256(s[k], b);
                            let (csh, nc) = shl1_chain(c[k], carry);
                            carry = nc;
                            let c2 = _mm256_and_si256(csh, s1);
                            s[k] = _mm256_xor_si256(csh, s1);
                            ts[k] = s1;
                            tc[k] = c1;
                            c[k] = _mm256_or_si256(c2, c1);
                        }
                    }
                    ChainStep::AddB(_) => {
                        // IfSet (IfClear is never matched into add-B ops).
                        let mut carry = 0u64;
                        for k in 0..K {
                            let b = load(bw, k * CHUNK);
                            let g = load(&pm_buf[..K * CHUNK], k * CHUNK);
                            let c1 = _mm256_and_si256(s[k], b);
                            let s1 = _mm256_xor_si256(s[k], b);
                            let (csh, nc) = shl1_chain(c[k], carry);
                            carry = nc;
                            let c_eff = _mm256_or_si256(
                                _mm256_and_si256(csh, g),
                                _mm256_andnot_si256(g, c[k]),
                            );
                            let ts_eff = _mm256_or_si256(
                                _mm256_and_si256(s1, g),
                                _mm256_andnot_si256(g, ts[k]),
                            );
                            let tc_new = _mm256_or_si256(
                                _mm256_and_si256(c1, g),
                                _mm256_andnot_si256(g, tc[k]),
                            );
                            let c2 = _mm256_and_si256(c_eff, ts_eff);
                            let s2 = _mm256_xor_si256(c_eff, ts_eff);
                            s[k] = _mm256_or_si256(
                                _mm256_and_si256(s2, g),
                                _mm256_andnot_si256(g, s[k]),
                            );
                            ts[k] = ts_eff;
                            tc[k] = tc_new;
                            c[k] = _mm256_or_si256(
                                _mm256_and_si256(_mm256_or_si256(c2, tc_new), g),
                                _mm256_andnot_si256(g, c_eff),
                            );
                        }
                    }
                    ChainStep::Halve => {
                        // The Check(Sum, bit 0) latch: spill Sum, run the
                        // scalar fill plan into the canonical predicate
                        // buffer.
                        store_row::<K>(&mut sum_buf[..K * CHUNK], &s);
                        latch_tile_bit(
                            base_mask,
                            tile_width,
                            &sum_buf[..K * CHUNK],
                            0,
                            &mut pm_buf[..K * CHUNK],
                        );
                        // Single pass per chunk: the right-shift
                        // lookahead word is recomputed scalar-side from
                        // the spill buffers, so no whole-row temporary
                        // arrays are needed.
                        for k in 0..K {
                            let m = load(mw, k * CHUNK);
                            let p = load(&pm_buf[..K * CHUNK], k * CHUNK);
                            let mp = _mm256_and_si256(m, p);
                            let tmp = _mm256_xor_si256(s[k], mp);
                            let next_word = if k + 1 < K {
                                let w = (k + 1) * CHUNK;
                                sum_buf[w] ^ (mw[w] & pm_buf[w])
                            } else {
                                0
                            };
                            let ts1 = _mm256_and_si256(
                                shr1_chain(tmp, next_word),
                                load(shr_keep, k * CHUNK),
                            );
                            let tc1 = _mm256_and_si256(s[k], mp);
                            let new_tc = _mm256_and_si256(ts1, tc1);
                            let new_ts = _mm256_xor_si256(ts1, tc1);
                            let c5 = _mm256_and_si256(c[k], new_ts);
                            s[k] = _mm256_xor_si256(c[k], new_ts);
                            ts[k] = new_ts;
                            tc[k] = new_tc;
                            c[k] = _mm256_or_si256(c5, new_tc);
                        }
                    }
                }
            }
            store_row::<K>(sw, &s);
            store_row::<K>(cw, &c);
            store_row::<K>(tsw, &ts);
            store_row::<K>(tcw, &tc);
            pred_mask.copy_from_slice(&pm_buf[..K * CHUNK]);
        }
    }

    /// Wired-OR zero test of a register-resident row.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn is_zero_regs<const K: usize>(v: &[__m256i; K]) -> bool {
        let mut any = v[0];
        for &vk in &v[1..] {
            any = _mm256_or_si256(any, vk);
        }
        _mm256_testz_si256(any, any) == 1
    }

    /// Register-resident carry-resolution loop over a `K`-chunk row pair
    /// (see [`super::resolve_loop_resident`]).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn resolve_loop_chunks<const K: usize>(
        sw: &mut [u64],
        cw: &mut [u64],
        shl_keep: &[u64],
        max_checks: usize,
    ) -> (usize, u64, bool) {
        // SAFETY: all slices are K chunks long (caller contract).
        unsafe {
            let mut s = load_row::<K>(sw);
            let mut c = load_row::<K>(cw);
            let shl = load_row::<K>(shl_keep);
            let mut bodies = 0usize;
            let mut checks = 0u64;
            let mut converged = false;
            for _ in 0..max_checks {
                checks += 1;
                if is_zero_regs(&c) {
                    converged = true;
                    break;
                }
                let mut carry = 0u64;
                for k in 0..K {
                    let (csh0, nc) = shl1_chain(c[k], carry);
                    carry = nc;
                    let csh = _mm256_and_si256(csh0, shl[k]);
                    let c_new = _mm256_and_si256(s[k], csh);
                    s[k] = _mm256_xor_si256(s[k], csh);
                    c[k] = c_new;
                }
                bodies += 1;
            }
            store_row::<K>(sw, &s);
            store_row::<K>(cw, &c);
            (bodies, checks, converged)
        }
    }

    /// Register-resident borrow-resolution loop over a `K`-chunk row trio
    /// (see [`super::borrow_loop_resident`]).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn borrow_loop_chunks<const K: usize>(
        live: &mut [u64],
        other: &mut [u64],
        tw: &mut [u64],
        shl_keep: &[u64],
        max_checks: usize,
    ) -> (usize, u64, bool) {
        // SAFETY: all slices are K chunks long (caller contract).
        unsafe {
            let mut va = load_row::<K>(live);
            let mut vb = load_row::<K>(other);
            let mut vt = load_row::<K>(tw);
            let shl = load_row::<K>(shl_keep);
            let mut bodies = 0usize;
            let mut checks = 0u64;
            let mut converged = false;
            for round in 0..max_checks {
                checks += 1;
                if is_zero_regs(&vt) {
                    converged = true;
                    break;
                }
                let mut carry = 0u64;
                for k in 0..K {
                    let (tsh0, nc) = shl1_chain(vt[k], carry);
                    carry = nc;
                    let tsh = _mm256_and_si256(tsh0, shl[k]);
                    if round % 2 == 0 {
                        vb[k] = _mm256_xor_si256(va[k], tsh);
                        vt[k] = _mm256_and_si256(vb[k], tsh);
                    } else {
                        va[k] = _mm256_xor_si256(vb[k], tsh);
                        vt[k] = _mm256_and_si256(va[k], tsh);
                    }
                }
                bodies += 1;
            }
            store_row::<K>(live, &va);
            store_row::<K>(other, &vb);
            store_row::<K>(tw, &vt);
            (bodies, checks, converged)
        }
    }

    /// AVX2 transliteration of [`super::borrow_round_scalar`].
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn borrow_round(
        cur: &[u64],
        nxt: &mut [u64],
        tw: &mut [u64],
        shl_keep: &[u64],
    ) {
        let mut carry = 0u64;
        let mut i = 0;
        while i < cur.len() {
            // SAFETY: all slices share the same CHUNK-multiple length.
            unsafe {
                let t = load(tw, i);
                let (tsh0, nc) = shl1_chain(t, carry);
                carry = nc;
                let tsh = _mm256_and_si256(tsh0, load(shl_keep, i));
                let so = _mm256_xor_si256(load(cur, i), tsh);
                store(nxt, i, so);
                store(tw, i, _mm256_and_si256(so, tsh));
            }
            i += CHUNK;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng_words(n: usize, seed: u64) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect()
    }

    /// Tile-keep style mask: mostly ones with periodic holes.
    fn keep_words(n: usize, hole: u64) -> Vec<u64> {
        (0..n).map(|w| !(hole << (w % 7))).collect()
    }

    #[test]
    fn dispatch_state_round_trips() {
        force_scalar(true);
        assert!(!simd_active());
        force_scalar(false);
        // On AVX2 hardware this re-enables SIMD; elsewhere it stays scalar.
        assert_eq!(
            simd_active(),
            hardware_has_simd(),
            "force_scalar(false) returns to hardware detection"
        );
        // Restore lazy env-aware detection for the rest of the process
        // (this test must not undo a BPNTT_FORCE_SCALAR run).
        STATE.store(UNDECIDED, Ordering::Relaxed);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_kernels_match_scalar_bit_for_bit() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            eprintln!("no AVX2; skipping");
            return;
        }
        for n in [4usize, 8, 12, 16, 32] {
            for seed in 1..=8u64 {
                let bw = rng_words(n, seed * 11);
                let mask = keep_words(n, 0x8000_0001);
                let pred = rng_words(n, seed * 13);
                let shl = keep_words(n, 1);
                let shr = keep_words(n, 0x8000_0000_0000_0000);
                for if_set in [false, true] {
                    let mut s1 = rng_words(n, seed);
                    let mut c1 = rng_words(n, seed + 100);
                    let mut ts1 = rng_words(n, seed + 200);
                    let mut tc1 = rng_words(n, seed + 300);
                    let (mut s2, mut c2, mut ts2, mut tc2) =
                        (s1.clone(), c1.clone(), ts1.clone(), tc1.clone());
                    addb_scalar(
                        &mut s1, &mut c1, &mut ts1, &mut tc1, &bw, &mask, &pred, if_set,
                    );
                    unsafe {
                        avx2::addb(
                            &mut s2, &mut c2, &mut ts2, &mut tc2, &bw, &mask, &pred, if_set,
                        )
                    };
                    assert_eq!((&s1, &c1, &ts1, &tc1), (&s2, &c2, &ts2, &tc2), "addb n={n}");
                }

                let mut s1 = rng_words(n, seed + 1);
                let mut c1 = rng_words(n, seed + 2);
                let mut ts1 = rng_words(n, seed + 3);
                let mut tc1 = rng_words(n, seed + 4);
                let (mut s2, mut c2, mut ts2, mut tc2) =
                    (s1.clone(), c1.clone(), ts1.clone(), tc1.clone());
                halve_scalar(&mut s1, &mut c1, &mut ts1, &mut tc1, &bw, &pred, &shr);
                unsafe { avx2::halve(&mut s2, &mut c2, &mut ts2, &mut tc2, &bw, &pred, &shr) };
                assert_eq!(
                    (&s1, &c1, &ts1, &tc1),
                    (&s2, &c2, &ts2, &tc2),
                    "halve n={n}"
                );

                let mut s1 = rng_words(n, seed + 5);
                let mut c1 = rng_words(n, seed + 6);
                let (mut s2, mut c2) = (s1.clone(), c1.clone());
                resolve_round_scalar(&mut s1, &mut c1, &shl);
                unsafe { avx2::resolve_round(&mut s2, &mut c2, &shl) };
                assert_eq!((&s1, &c1), (&s2, &c2), "resolve n={n}");

                let cur = rng_words(n, seed + 7);
                let mut nxt1 = rng_words(n, seed + 8);
                let mut t1 = rng_words(n, seed + 9);
                let (mut nxt2, mut t2) = (nxt1.clone(), t1.clone());
                borrow_round_scalar(&cur, &mut nxt1, &mut t1, &shl);
                unsafe { avx2::borrow_round(&cur, &mut nxt2, &mut t2, &shl) };
                assert_eq!((&nxt1, &t1), (&nxt2, &t2), "borrow n={n}");
            }
        }
    }

    #[test]
    fn fast_path_kind_tracks_chunk_count() {
        #[cfg(target_arch = "x86_64")]
        {
            assert_eq!(FastPathKind::for_words(4), FastPathKind::Resident(1));
            assert_eq!(FastPathKind::for_words(8), FastPathKind::Resident(2));
            assert_eq!(FastPathKind::for_words(12), FastPathKind::Resident(3));
            assert_eq!(FastPathKind::for_words(16), FastPathKind::Resident(4));
            assert_eq!(FastPathKind::for_words(20), FastPathKind::PerStep);
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            assert_eq!(FastPathKind::for_words(4), FastPathKind::PerStep);
        }
    }

    /// Tile-base column image for a row of `n_words` full storage words
    /// tiled at `tile_width` (the same construction as
    /// `exec::Controller::new`, for kernel-local tests).
    fn base_mask_of(n_words: usize, tile_width: usize) -> Vec<u64> {
        let cols = n_words * 64;
        let mut mask = vec![0u64; n_words];
        for base in (0..cols).step_by(tile_width) {
            mask[base / 64] |= 1u64 << (base % 64);
        }
        mask
    }

    /// The multiply-smear latch agrees with a naive per-tile read.
    #[test]
    fn latch_tile_bit_matches_naive_broadcast() {
        // Tile widths always divide the column count (controller
        // invariant); cover in-word, cross-word, and whole-word tiles.
        for (n_words, tile_width) in [(4usize, 32usize), (3, 24), (12, 24), (7, 14), (16, 64)] {
            let cols = n_words * 64;
            let usable_tiles = cols / tile_width;
            let base_mask = base_mask_of(n_words, tile_width);
            for seed in 1..=4u64 {
                let src = rng_words(n_words, seed * 31);
                for bit in [0usize, 1, tile_width / 2, tile_width - 1] {
                    let mut pm = rng_words(n_words, seed * 37);
                    latch_tile_bit(&base_mask, tile_width, &src, bit, &mut pm);
                    let mut expect = vec![0u64; n_words];
                    for t in 0..usable_tiles {
                        let pos = t * tile_width + bit;
                        if (src[pos / 64] >> (pos % 64)) & 1 == 1 {
                            for col in t * tile_width..(t + 1) * tile_width {
                                expect[col / 64] |= 1u64 << (col % 64);
                            }
                        }
                    }
                    assert_eq!(
                        pm, expect,
                        "n_words={n_words} tile={tile_width} bit={bit} seed={seed}"
                    );
                }
            }
        }
    }

    /// Register-resident K-chunk chains and loops match the per-step
    /// scalar kernels bit for bit, for every resident chunk count.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn resident_chains_and_loops_match_per_step() {
        use crate::isa::PredMode;
        use crate::program::ChainStep;
        if !std::arch::is_x86_feature_detected!("avx2") {
            eprintln!("no AVX2; skipping");
            return;
        }

        fn run_chunks<const K: usize>(seed: u64) {
            const TILE: usize = 32;
            let n = K * CHUNK;
            let base_mask = base_mask_of(n, TILE);
            // All-enabled mask; tile-boundary keep masks for 32-bit tiles.
            let mask: Vec<u64> = vec![u64::MAX; n];
            let shr: Vec<u64> = vec![!((1u64 << 31) | (1u64 << 63)); n];
            let shl: Vec<u64> = vec![!((1u64) | (1u64 << 32)); n];
            let steps = [
                ChainStep::AddB(PredMode::Always),
                ChainStep::Halve,
                ChainStep::AddB(PredMode::IfSet),
                ChainStep::Halve,
                ChainStep::Halve,
                ChainStep::AddB(PredMode::IfSet),
                ChainStep::Halve,
            ];

            // Per-step reference (the exec_chain fallback path, scalar).
            let bw = rng_words(n, seed * 3 + 1);
            let mw = rng_words(n, seed * 3 + 2);
            let mut s1 = rng_words(n, seed * 7 + 1);
            let mut c1 = rng_words(n, seed * 7 + 2);
            let mut ts1 = rng_words(n, seed * 7 + 3);
            let mut tc1 = rng_words(n, seed * 7 + 4);
            let mut p1 = rng_words(n, seed * 7 + 5);
            let (mut s2, mut c2, mut ts2, mut tc2, mut p2) =
                (s1.clone(), c1.clone(), ts1.clone(), tc1.clone(), p1.clone());
            for step in &steps {
                match *step {
                    ChainStep::AddB(pred) => addb_scalar(
                        &mut s1,
                        &mut c1,
                        &mut ts1,
                        &mut tc1,
                        &bw,
                        &mask,
                        &p1,
                        pred == PredMode::IfSet,
                    ),
                    ChainStep::Halve => {
                        latch_tile_bit(&base_mask, TILE, &s1, 0, &mut p1);
                        halve_scalar(&mut s1, &mut c1, &mut ts1, &mut tc1, &mw, &p1, &shr);
                    }
                }
            }
            unsafe {
                avx2::chain_chunks::<K>(
                    &mut s2, &mut c2, &mut ts2, &mut tc2, &bw, &mw, &mut p2, &shr, &steps,
                    &base_mask, TILE,
                );
            }
            assert_eq!(
                (&s1, &c1, &ts1, &tc1, &p1),
                (&s2, &c2, &ts2, &tc2, &p2),
                "chain K={K} seed={seed}"
            );

            // Carry-resolution loop: reference is check + per-round kernel.
            let mut s1 = rng_words(n, seed * 11 + 1);
            let mut c1 = rng_words(n, seed * 11 + 2);
            let (mut s2, mut c2) = (s1.clone(), c1.clone());
            let max_checks = 40;
            let mut ref_out = (0usize, 0u64, false);
            for _ in 0..max_checks {
                ref_out.1 += 1;
                if c1.iter().all(|&w| w == 0) {
                    ref_out.2 = true;
                    break;
                }
                resolve_round_scalar(&mut s1, &mut c1, &shl);
                ref_out.0 += 1;
            }
            let fast =
                unsafe { avx2::resolve_loop_chunks::<K>(&mut s2, &mut c2, &shl, max_checks) };
            assert_eq!(ref_out, fast, "resolve loop K={K}");
            assert_eq!((&s1, &c1), (&s2, &c2), "resolve rows K={K}");

            // Borrow-resolution loop with its live-row ping-pong.
            let mut a1 = rng_words(n, seed * 13 + 1);
            let mut b1 = rng_words(n, seed * 13 + 2);
            let mut t1 = rng_words(n, seed * 13 + 3);
            let (mut a2, mut b2, mut t2) = (a1.clone(), b1.clone(), t1.clone());
            let mut ref_out = (0usize, 0u64, false);
            {
                let (mut cur, mut nxt) = (&mut a1, &mut b1);
                for _ in 0..max_checks {
                    ref_out.1 += 1;
                    if t1.iter().all(|&w| w == 0) {
                        ref_out.2 = true;
                        break;
                    }
                    borrow_round_scalar(cur, nxt, &mut t1, &shl);
                    std::mem::swap(&mut cur, &mut nxt);
                    ref_out.0 += 1;
                }
            }
            let fast = unsafe {
                avx2::borrow_loop_chunks::<K>(&mut a2, &mut b2, &mut t2, &shl, max_checks)
            };
            assert_eq!(ref_out, fast, "borrow loop K={K}");
            assert_eq!((&a1, &b1, &t1), (&a2, &b2, &t2), "borrow rows K={K}");
        }

        for seed in 1..=6u64 {
            run_chunks::<1>(seed);
            run_chunks::<2>(seed);
            run_chunks::<3>(seed);
            run_chunks::<4>(seed);
        }
    }

    #[test]
    fn epilogue_kernels_match_reference_semantics() {
        let n = 8;
        let a = rng_words(n, 21);
        let b = rng_words(n, 22);
        let mask = keep_words(n, 0x11);
        let pred = rng_words(n, 23);

        let mut da = rng_words(n, 24);
        let mut dx = rng_words(n, 25);
        csadd(&mut da, &mut dx, &a, &b);
        for w in 0..n {
            assert_eq!(da[w], a[w] & b[w]);
            assert_eq!(dx[w], a[w] ^ b[w]);
        }

        let mut ts = rng_words(n, 26);
        let mut tc = rng_words(n, 27);
        subinit(&mut ts, &mut tc, &a, &b);
        for w in 0..n {
            assert_eq!(ts[w], a[w] ^ b[w]);
            assert_eq!(tc[w], (a[w] ^ b[w]) & b[w]);
        }

        let mut d = rng_words(n, 28);
        let before = d.clone();
        cond_select(&mut d, &a, &b, &mask, &pred);
        for w in 0..n {
            let expect =
                (a[w] & mask[w] & pred[w]) | (b[w] & mask[w] & !pred[w]) | (before[w] & !mask[w]);
            assert_eq!(d[w], expect);
        }

        for if_set in [false, true] {
            let mut d = rng_words(n, 29);
            let before = d.clone();
            masked_copy(&mut d, &a, &mask, &pred, if_set);
            for w in 0..n {
                let g = if if_set {
                    mask[w] & pred[w]
                } else {
                    mask[w] & !pred[w]
                };
                assert_eq!(d[w], (before[w] & !g) | (a[w] & g));
            }
        }

        let mut s = rng_words(n, 30);
        let mut c = rng_words(n, 31);
        let mut tcx = rng_words(n, 32);
        let s_before = s.clone();
        signfix(&mut s, &mut c, &mut tcx, &a, &mask, &pred);
        for w in 0..n {
            let g = mask[w] & pred[w];
            let cn = a[w] & g;
            assert_eq!(c[w], cn);
            assert_eq!(tcx[w], s_before[w] & cn);
            assert_eq!(s[w], s_before[w] ^ cn);
        }
    }
}
