//! Error type for the in-SRAM computing simulator.

use std::error::Error;
use std::fmt;

/// Errors produced by array construction, ISA decoding, and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SramError {
    /// Array geometry is unusable.
    BadGeometry {
        /// Rows requested.
        rows: usize,
        /// Columns requested.
        cols: usize,
        /// Why the geometry was rejected.
        reason: &'static str,
    },
    /// A row address exceeded the array height.
    RowOutOfRange {
        /// The offending row.
        row: usize,
        /// The array height.
        rows: usize,
    },
    /// The tile width must divide the column count.
    BadTileWidth {
        /// Requested tile width.
        width: usize,
        /// Array columns.
        cols: usize,
    },
    /// An instruction word had an unknown opcode.
    BadOpcode {
        /// The opcode field.
        opcode: u8,
    },
    /// An instruction word had bits set in fields its opcode does not use.
    ReservedBits {
        /// The full instruction word.
        word: u64,
    },
    /// A `Check` bit index must fall inside one tile.
    CheckBitOutOfRange {
        /// Requested bit.
        bit: u16,
        /// Tile width.
        tile_width: usize,
    },
    /// A compiled program was replayed on a controller whose geometry or
    /// cost models differ from the ones it was compiled against.
    ProgramMismatch {
        /// Which precondition failed.
        reason: &'static str,
    },
}

impl fmt::Display for SramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SramError::BadGeometry { rows, cols, reason } => {
                write!(f, "unusable array geometry {rows}×{cols}: {reason}")
            }
            SramError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range for a {rows}-row array")
            }
            SramError::BadTileWidth { width, cols } => {
                write!(f, "tile width {width} does not divide {cols} columns")
            }
            SramError::BadOpcode { opcode } => write!(f, "unknown opcode {opcode}"),
            SramError::ReservedBits { word } => {
                write!(f, "instruction word {word:#018x} sets reserved bits")
            }
            SramError::CheckBitOutOfRange { bit, tile_width } => {
                write!(f, "check bit {bit} outside the {tile_width}-column tile")
            }
            SramError::ProgramMismatch { reason } => {
                write!(
                    f,
                    "compiled program does not match this controller: {reason}"
                )
            }
        }
    }
}

impl Error for SramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let msgs = [
            SramError::BadGeometry {
                rows: 0,
                cols: 1,
                reason: "empty",
            }
            .to_string(),
            SramError::RowOutOfRange { row: 9, rows: 4 }.to_string(),
            SramError::BadTileWidth {
                width: 3,
                cols: 256,
            }
            .to_string(),
            SramError::BadOpcode { opcode: 15 }.to_string(),
            SramError::ReservedBits { word: 1 << 62 }.to_string(),
            SramError::CheckBitOutOfRange {
                bit: 40,
                tile_width: 32,
            }
            .to_string(),
            SramError::ProgramMismatch {
                reason: "stale timing model",
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
